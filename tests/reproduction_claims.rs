//! The survey's load-bearing claims as assertions — a fast, reduced
//! version of the E1/E2/E8 experiments that guards the reproduction's
//! qualitative shape in CI.

use nlidb::benchdata::{derive_slots, paraphrase, spider_like, wikisql_like};
use nlidb::core::interpretation::InterpreterKind;
use nlidb::core::neural::TrainingExample;
use nlidb::evalkit::{execution_match, EvalOutcome};
use nlidb::nlp::Lexicon;
use nlidb::prelude::*;

fn accuracy(
    nli: &NliPipeline,
    db: &nlidb::engine::Database,
    kind: InterpreterKind,
    suite: &[nlidb::benchdata::QaPair],
) -> f64 {
    let mut out = EvalOutcome::default();
    for pair in suite {
        match nli.interpreter(kind).best(&pair.question, nli.context()) {
            Some(p) => out.record(true, execution_match(db, &pair.sql, &p.sql)),
            None => out.record(false, false),
        }
    }
    out.recall()
}

fn trained_pipeline(db: &nlidb::engine::Database) -> NliPipeline {
    let slots = derive_slots(db);
    let lexicon = Lexicon::business_default();
    let train: Vec<TrainingExample> = wikisql_like(&slots, 100, 160)
        .into_iter()
        .enumerate()
        .map(|(i, p)| TrainingExample {
            question: paraphrase(&p.question, &p.protected, (i % 4) as u8, &lexicon, i as u64),
            sql: p.sql,
        })
        .collect();
    let mut nli = NliPipeline::standard(db);
    nli.train_neural(&train, 3);
    nli
}

/// §3: the capability matrix's qualitative shape.
#[test]
fn claim_capability_ladder() {
    let db = nlidb::benchdata::retail_database(42);
    let slots = derive_slots(&db);
    let nli = trained_pipeline(&db);
    let suite = spider_like(&slots, 17, 48);
    let per = |kind, class: ComplexityClass| {
        let s: Vec<_> = suite.iter().filter(|p| p.class == class).cloned().collect();
        accuracy(&nli, &db, kind, &s)
    };
    use ComplexityClass::*;
    // Keyword: selection only.
    assert!(per(InterpreterKind::Keyword, SingleTableSelection) > 0.8);
    assert_eq!(per(InterpreterKind::Keyword, SingleTableAggregation), 0.0);
    assert_eq!(per(InterpreterKind::Keyword, MultiTableJoin), 0.0);
    // Pattern: + aggregation, still no joins.
    assert!(per(InterpreterKind::Pattern, SingleTableAggregation) > 0.8);
    assert_eq!(per(InterpreterKind::Pattern, MultiTableJoin), 0.0);
    // Entity: the whole ladder.
    assert!(per(InterpreterKind::Entity, MultiTableJoin) > 0.8);
    assert!(per(InterpreterKind::Entity, NestedSubquery) > 0.8);
    // Neural: competitive on the Spider-like selection rung only where
    // the WikiSQL sketch can express the query (the rung also contains
    // BETWEEN / IN-list / date-range templates the sketch cannot emit),
    // zero on joins/nesting.
    assert!(per(InterpreterKind::Neural, SingleTableSelection) > 0.3);
    assert_eq!(per(InterpreterKind::Neural, MultiTableJoin), 0.0);
    // Nested accuracy may be nonzero by luck (a semi-join gold whose
    // answer happens to equal SELECT *), never by capability.
    assert!(per(InterpreterKind::Neural, NestedSubquery) < 0.2);
    // On its home regime (WikiSQL-like suites) it is strong.
    let home = wikisql_like(&slots, 19, 40);
    assert!(
        accuracy(&nli, &db, InterpreterKind::Neural, &home) > 0.6,
        "neural must be strong in the WikiSQL regime"
    );
}

/// §4.1 vs §4.2: under heavy paraphrase, the learned model outperforms
/// the entity-based reading; both degrade from canonical phrasing.
#[test]
fn claim_paraphrase_brittleness() {
    let lexicon = Lexicon::business_default();
    let mut entity_l0 = 0.0;
    let mut entity_l3 = 0.0;
    let mut neural_l3 = 0.0;
    let mut n_domains = 0.0;
    for (d, db) in [
        nlidb::benchdata::retail_database(42),
        nlidb::benchdata::hr_database(43),
        nlidb::benchdata::library_database(44),
    ]
    .iter()
    .enumerate()
    {
        let slots = derive_slots(db);
        let nli = trained_pipeline(db);
        let base = wikisql_like(&slots, 21 + d as u64, 40);
        let at_level = |level: u8| -> Vec<nlidb::benchdata::QaPair> {
            base.iter()
                .enumerate()
                .map(|(i, p)| {
                    let mut q = p.clone();
                    q.question =
                        paraphrase(&p.question, &p.protected, level, &lexicon, 7 + i as u64);
                    q
                })
                .collect()
        };
        entity_l0 += accuracy(&nli, db, InterpreterKind::Entity, &at_level(0));
        entity_l3 += accuracy(&nli, db, InterpreterKind::Entity, &at_level(3));
        neural_l3 += accuracy(&nli, db, InterpreterKind::Neural, &at_level(3));
        n_domains += 1.0;
    }
    let (entity_l0, entity_l3, neural_l3) = (
        entity_l0 / n_domains,
        entity_l3 / n_domains,
        neural_l3 / n_domains,
    );
    assert!(
        entity_l0 - entity_l3 > 0.1,
        "paraphrase must hurt the entity reading ({entity_l0:.2} → {entity_l3:.2})"
    );
    assert!(
        neural_l3 > entity_l3,
        "the learned model must hold up better under heavy paraphrase \
         (neural {neural_l3:.2} vs entity {entity_l3:.2})"
    );
}

/// §4, operationalized by the serving layer's degradation ladder: an
/// answer served by a fallback family can never exceed that family's
/// capability ceiling. Whatever question is asked, wherever the
/// ladder lands, the executed query's complexity class stays inside
/// the serving family's `Capabilities` mask — degradation trades
/// coverage for availability, never widens capability.
#[test]
fn claim_degraded_answers_respect_capability_ceilings() {
    use nlidb::core::entity::Capabilities;
    use nlidb::core::fallback::degradation_ladder;

    let db = nlidb::benchdata::retail_database(42);
    let slots = derive_slots(&db);
    let nli = trained_pipeline(&db);
    let suite = spider_like(&slots, 31, 48);
    let mut served = 0;
    for pair in &suite {
        // Simulate the preferred family being down at every rung.
        for &failed in degradation_ladder(InterpreterKind::Hybrid) {
            if let Ok(d) = nli.ask_degraded(&pair.question, failed) {
                served += 1;
                let class = classify(&d.answer.query);
                assert!(
                    Capabilities::of(d.served_by).permits(class),
                    "{:?} served {:?} beyond its ceiling for {:?}",
                    d.served_by,
                    class,
                    pair.question
                );
                assert_ne!(
                    d.served_by, failed,
                    "a degraded answer must come from below the failed family"
                );
            }
        }
    }
    assert!(
        served > 20,
        "the ladder must actually serve fallbacks ({served})"
    );
}

/// §6: nested-query detection — the neural family never detects
/// nesting; the entity family does.
#[test]
fn claim_nested_detection() {
    let db = nlidb::benchdata::retail_database(42);
    let slots = derive_slots(&db);
    let nli = trained_pipeline(&db);
    let suite = spider_like(&slots, 29, 48);
    let mut entity_tp = 0;
    let mut gold_nested = 0;
    for pair in &suite {
        let is_nested = pair.class == ComplexityClass::NestedSubquery;
        gold_nested += usize::from(is_nested);
        for kind in [InterpreterKind::Entity, InterpreterKind::Neural] {
            if let Some(p) = nli.interpreter(kind).best(&pair.question, nli.context()) {
                let predicted = p.sql.has_subquery();
                if kind == InterpreterKind::Neural {
                    assert!(!predicted, "the sketch family cannot emit sub-queries");
                } else if is_nested && predicted {
                    entity_tp += 1;
                }
            }
        }
    }
    assert!(gold_nested > 0);
    assert!(
        entity_tp as f64 / gold_nested as f64 > 0.8,
        "entity must detect most nesting ({entity_tp}/{gold_nested})"
    );
}
