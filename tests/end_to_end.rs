//! Cross-crate integration: the full pipeline (schema → ontology →
//! indices → interpretation → execution) on every generator domain.

use nlidb::benchdata::{all_domains, derive_slots, spider_like};
use nlidb::core::interpretation::InterpreterKind;
use nlidb::evalkit::{execution_match, EvalOutcome};
use nlidb::prelude::*;

#[test]
fn entity_interpreter_solves_canonical_suites_in_every_domain() {
    for db in all_domains(42) {
        let slots = derive_slots(&db);
        let nli = NliPipeline::standard(&db);
        let suite = spider_like(&slots, 7, 32);
        let mut out = EvalOutcome::default();
        for pair in &suite {
            match nli
                .interpreter(InterpreterKind::Entity)
                .best(&pair.question, nli.context())
            {
                Some(p) => out.record(true, execution_match(&db, &pair.sql, &p.sql)),
                None => out.record(false, false),
            }
        }
        assert!(
            out.recall() >= 0.9,
            "{}: entity accuracy too low: {out}",
            db.name
        );
    }
}

#[test]
fn capability_ladder_holds_by_construction() {
    let db = nlidb::benchdata::retail_database(5);
    let slots = derive_slots(&db);
    let nli = NliPipeline::standard(&db);
    let suite = spider_like(&slots, 11, 48);
    for pair in &suite {
        // Keyword never exceeds selection; pattern never exceeds
        // aggregation; nobody but entity/hybrid produces nesting.
        for (kind, ceiling) in [
            (
                InterpreterKind::Keyword,
                ComplexityClass::SingleTableSelection,
            ),
            (
                InterpreterKind::Pattern,
                ComplexityClass::SingleTableAggregation,
            ),
        ] {
            if let Some(p) = nli.interpreter(kind).best(&pair.question, nli.context()) {
                assert!(
                    classify(&p.sql) <= ceiling,
                    "{kind:?} exceeded its ceiling on '{}': {}",
                    pair.question,
                    p.sql
                );
            }
        }
    }
}

#[test]
fn ask_executes_and_reports() {
    let db = nlidb::benchdata::hr_database(9);
    let nli = NliPipeline::standard(&db);
    let a = nli.ask("average salary by division").unwrap();
    assert!(a.sql.contains("AVG(employees.salary)"), "{}", a.sql);
    assert!(a.sql.contains("GROUP BY departments.division"), "{}", a.sql);
    assert!(!a.result.rows.is_empty());
    assert!(a.interpretation.confidence > 0.5);
}

#[test]
fn unanswerable_questions_error_cleanly() {
    let db = nlidb::benchdata::retail_database(5);
    let nli = NliPipeline::standard(&db);
    assert!(nli.ask("what is the meaning of flurbish").is_err());
    assert!(nli.ask("").is_err());
}

#[test]
fn trained_pipeline_answers_paraphrases_entity_misses() {
    use nlidb::benchdata::{paraphrase, wikisql_like};
    use nlidb::core::neural::TrainingExample;
    use nlidb::nlp::Lexicon;

    let db = nlidb::benchdata::retail_database(5);
    let slots = derive_slots(&db);
    let lexicon = Lexicon::business_default();
    let train: Vec<TrainingExample> = wikisql_like(&slots, 100, 160)
        .into_iter()
        .enumerate()
        .map(|(i, p)| TrainingExample {
            question: paraphrase(&p.question, &p.protected, (i % 4) as u8, &lexicon, i as u64),
            sql: p.sql,
        })
        .collect();
    let mut nli = NliPipeline::standard(&db);
    nli.train_neural(&train, 3);

    // A colloquial phrasing the lexicon cannot recover ("tally").
    let a = nli.ask("give me the tally of products").unwrap();
    assert_eq!(a.sql, "SELECT COUNT(*) FROM products");
}

#[test]
fn suggestions_guide_vocabulary_gaps() {
    let db = nlidb::benchdata::retail_database(5);
    let nli = NliPipeline::standard(&db);
    // "revenue" is business vocabulary the retail schema spells
    // "amount"/"price"; the taxonomy bridges the gap.
    let s = nli.suggest("total revenue by city");
    let revenue = s
        .iter()
        .find(|(w, _)| w == "revenue")
        .map(|(_, sugg)| sugg.clone())
        .unwrap_or_default();
    assert!(
        revenue.iter().any(|x| x == "amount" || x == "price"),
        "{s:?}"
    );
    // "territory" reaches "city" through the location hypernym.
    let s = nli.suggest("customers by territory");
    assert!(
        s.iter()
            .any(|(w, sugg)| w == "territory" && sugg.iter().any(|x| x == "city")),
        "{s:?}"
    );
    // Fully-linked questions produce no suggestions; mild typos link
    // directly (fuzzy matching) and also produce none.
    assert!(nli.suggest("show customers").is_empty());
    assert!(nli.suggest("show custmers by pric").is_empty());
}
