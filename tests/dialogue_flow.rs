//! Cross-crate integration: generated SParC/CoSQL-like sessions replay
//! correctly through the dialogue layer, and the §5 flexibility ladder
//! holds end to end.

use nlidb::benchdata::{derive_slots, sparc_like, SessionKind};
use nlidb::dialogue::{ConversationSession, ManagerKind};
use nlidb::engine::execute;
use nlidb::prelude::*;

fn completion_rate(kind_filter: SessionKind, manager: ManagerKind) -> f64 {
    let db = nlidb::benchdata::retail_database(21);
    let slots = derive_slots(&db);
    let nli = NliPipeline::standard(&db);
    let sessions: Vec<_> = sparc_like(&slots, 33, 12)
        .into_iter()
        .filter(|s| s.kind == kind_filter)
        .collect();
    assert!(!sessions.is_empty());
    let mut completed = 0;
    for s in &sessions {
        let mut conv = ConversationSession::new(&db, nli.context(), manager);
        let ok = s.turns.iter().all(|turn| {
            let r = conv.turn(&turn.utterance);
            let gold = execute(&db, &turn.gold).unwrap();
            r.accepted && r.result.map(|rs| gold.unordered_eq(&rs)).unwrap_or(false)
        });
        if ok {
            completed += 1;
        }
    }
    completed as f64 / sessions.len() as f64
}

#[test]
fn agent_completes_every_session_shape() {
    for kind in SessionKind::all() {
        assert_eq!(
            completion_rate(kind, ManagerKind::Agent),
            1.0,
            "agent must complete {kind:?} sessions"
        );
    }
}

#[test]
fn finite_state_completes_only_its_script() {
    assert_eq!(
        completion_rate(SessionKind::Scripted, ManagerKind::FiniteState),
        1.0
    );
    assert_eq!(
        completion_rate(SessionKind::SlotRefill, ManagerKind::FiniteState),
        0.0
    );
    assert_eq!(
        completion_rate(SessionKind::UserInitiative, ManagerKind::FiniteState),
        0.0
    );
}

#[test]
fn frame_sits_between() {
    assert_eq!(
        completion_rate(SessionKind::Scripted, ManagerKind::Frame),
        1.0
    );
    assert_eq!(
        completion_rate(SessionKind::SlotRefill, ManagerKind::Frame),
        1.0
    );
    assert_eq!(
        completion_rate(SessionKind::UserInitiative, ManagerKind::Frame),
        0.0
    );
}

#[test]
fn context_survives_across_turns() {
    let db = nlidb::benchdata::clinic_database(13);
    let nli = NliPipeline::standard(&db);
    let mut conv = ConversationSession::new(&db, nli.context(), ManagerKind::Agent);
    let r1 = conv.turn("show visits with cost over 500");
    assert!(r1.accepted, "{}", r1.response);
    let narrowed = r1.result.unwrap().rows.len();
    let r2 = conv.turn("how many of those are there");
    assert!(r2.accepted);
    assert_eq!(
        r2.result.unwrap().rows[0][0],
        nlidb::engine::Value::Int(narrowed as i64),
        "the count must reflect the carried-over filter"
    );
}
