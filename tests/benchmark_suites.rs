//! Cross-crate integration over the benchmark generators: every suite
//! kind is consumable end-to-end by the evaluation machinery.

use nlidb::benchdata::{
    cosql_like, derive_slots, sparc_like, spider_like, wikisql_like, wtq_like, SessionKind,
};
use nlidb::core::interpretation::InterpreterKind;
use nlidb::engine::execute;
use nlidb::evalkit::EvalOutcome;
use nlidb::prelude::*;

#[test]
fn wtq_answer_accuracy_end_to_end() {
    let db = nlidb::benchdata::retail_database(31);
    let slots = derive_slots(&db);
    let nli = NliPipeline::standard(&db);
    let mut out = EvalOutcome::default();
    for ex in wtq_like(&db, &slots, 5, 40) {
        let pred = nli
            .interpreter(InterpreterKind::Entity)
            .best(&ex.question, nli.context());
        match pred {
            Some(p) => {
                let ok = execute(&db, &p.sql)
                    .map(|rs| nlidb::benchdata::answer_match(&ex.answer, &rs))
                    .unwrap_or(false);
                out.record(true, ok);
            }
            None => out.record(false, false),
        }
    }
    assert!(out.recall() > 0.85, "{out}");
}

#[test]
fn suite_classes_match_classifier() {
    for db in nlidb::benchdata::all_domains(3) {
        let slots = derive_slots(&db);
        for pair in spider_like(&slots, 11, 40) {
            assert_eq!(
                classify(&pair.sql),
                pair.class,
                "{}: recorded class must equal classified class",
                pair.id
            );
        }
    }
}

#[test]
fn wikisql_suites_are_within_the_neural_sketch() {
    use nlidb::core::neural::TrainingExample;
    let db = nlidb::benchdata::hr_database(7);
    let slots = derive_slots(&db);
    // Every WikiSQL-like pair must be ingestible as training data: an
    // interpreter trained on the full set must not end up untrained.
    let train: Vec<TrainingExample> = wikisql_like(&slots, 13, 80)
        .into_iter()
        .map(|p| TrainingExample {
            question: p.question,
            sql: p.sql,
        })
        .collect();
    let n = nlidb::core::neural::NeuralInterpreter::train(
        &train,
        &nlidb::core::pipeline::SchemaContext::build(&db),
        5,
    );
    assert!(n.is_trained());
}

#[test]
fn session_generators_cover_every_domain() {
    for db in nlidb::benchdata::all_domains(17) {
        let slots = derive_slots(&db);
        let sessions = sparc_like(&slots, 23, 6);
        assert!(!sessions.is_empty(), "{} generates no sessions", db.name);
        let dialogues = cosql_like(&slots, 23, 4);
        assert!(dialogues.iter().all(|s| s.turns.len() >= 4));
    }
}

#[test]
fn session_kinds_round_robin() {
    let db = nlidb::benchdata::retail_database(3);
    let slots = derive_slots(&db);
    let sessions = sparc_like(&slots, 29, 9);
    for kind in SessionKind::all() {
        assert_eq!(sessions.iter().filter(|s| s.kind == kind).count(), 3);
    }
}

#[test]
fn paraphrase_levels_degrade_gracefully_not_catastrophically() {
    use nlidb::benchdata::paraphrase;
    use nlidb::nlp::Lexicon;
    let db = nlidb::benchdata::library_database(5);
    let slots = derive_slots(&db);
    let nli = NliPipeline::standard(&db);
    let lexicon = Lexicon::business_default();
    let suite = wikisql_like(&slots, 41, 30);
    let acc = |level: u8| {
        let mut out = EvalOutcome::default();
        for (i, pair) in suite.iter().enumerate() {
            let q = paraphrase(&pair.question, &pair.protected, level, &lexicon, i as u64);
            match nli
                .interpreter(InterpreterKind::Entity)
                .best(&q, nli.context())
            {
                Some(p) => out.record(
                    true,
                    nlidb::evalkit::execution_match(&db, &pair.sql, &p.sql),
                ),
                None => out.record(false, false),
            }
        }
        out.recall()
    };
    let l0 = acc(0);
    let l1 = acc(1);
    assert!(l0 > 0.85, "canonical accuracy too low: {l0}");
    assert!(
        l1 > 0.5,
        "level-1 (lexicon synonyms) must be largely absorbed: {l1}"
    );
}
