//! Robustness at the front door: whatever bytes a user types, the
//! pipeline answers or refuses — it never panics. A panic here is a
//! worker death in `nlidb-serve`, so this property is what makes crash
//! recovery an *exceptional* path instead of routine traffic.

use std::sync::OnceLock;

use proptest::prelude::*;

use nlidb_benchdata::retail_database;
use nlidb_core::pipeline::NliPipeline;
use nlidb_dialogue::{ConversationSession, ManagerKind};

/// One shared pipeline: building it is the expensive part, and the
/// property under test is about inputs, not construction.
fn pipeline() -> &'static NliPipeline {
    static PIPE: OnceLock<NliPipeline> = OnceLock::new();
    PIPE.get_or_init(|| NliPipeline::standard(&retail_database(7)))
}

/// Arbitrary Unicode scalar values (surrogate range excluded), joined
/// into a string — covers control characters, emoji, astral-plane
/// text, and every separator the tokenizer might trip on.
fn arbitrary_utf8() -> impl Strategy<Value = String> {
    proptest::collection::vec(prop_oneof![0u32..0xD800, 0xE000u32..0x0011_0000], 0..200)
        .prop_map(|cs| cs.into_iter().filter_map(char::from_u32).collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn ask_never_panics_on_arbitrary_utf8(input in arbitrary_utf8()) {
        // Ok and Err are both acceptable; unwinding is not.
        let _ = pipeline().ask(&input);
    }

    #[test]
    fn turn_never_panics_on_arbitrary_utf8(a in arbitrary_utf8(), b in arbitrary_utf8()) {
        let p = pipeline();
        let mut s = ConversationSession::new(p.database(), p.context(), ManagerKind::Agent);
        // Two turns: the second hits the follow-up path with whatever
        // state (or rejection) the first left behind.
        let _ = s.turn(&a);
        let _ = s.turn(&b);
    }
}

/// The deterministic edge cases worth pinning by name, so a regression
/// fails with a readable test title rather than a proptest seed.
#[test]
fn hostile_inputs_are_survivable() {
    let p = pipeline();
    // `ask` is linear in token count (~1ms/token in release) — the
    // full 10k-token battering ram runs where it costs seconds, debug
    // builds take a shorter (still far-beyond-normal) swing.
    let long_tokens = if cfg!(debug_assertions) { 500 } else { 10_000 };
    let token_flood = "select ".repeat(long_tokens);
    let cases: Vec<String> = vec![
        String::new(),
        " ".to_string(),
        "\u{0}\u{1}\u{2}\u{7f}".to_string(),
        "\n\t\r\n".to_string(),
        token_flood,
        "🙂🙃🦀💥".repeat(50),
        "how many 🦀 are there".to_string(),
        "'; DROP TABLE customers; --".to_string(),
        "\"unclosed quote".to_string(),
        "show customers where name = 'O''Brien'".to_string(),
        "؈؈؈ مرحبا 你好 שלום".to_string(),
        "\u{202e}reversed\u{202c} text".to_string(),
    ];
    for input in &cases {
        let _ = p.ask(input);
        let mut s = ConversationSession::new(p.database(), p.context(), ManagerKind::Agent);
        let _ = s.turn(input);
        let _ = s.turn("what about Boston");
    }
}
