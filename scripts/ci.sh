#!/usr/bin/env bash
# The full CI gate. Run from the repository root.
#
#   scripts/ci.sh
#
# Mirrors the acceptance bar for every PR: release build, full test
# suite, clippy at zero warnings, rustfmt check. The workspace vendors
# its three dependencies (crates/compat/*), so everything runs with
# --offline and no registry access.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo build --release =="
cargo build --release --workspace --offline

echo "== cargo test =="
cargo test -q --workspace --offline

echo "== cargo clippy (deny warnings) =="
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "== cargo fmt --check =="
cargo fmt --all -- --check

echo "== experiment smoke (E12–E19, E21 @ seed 42 vs EXPERIMENTS.md) =="
cargo run --release --offline -q -p nlidb-bench --bin experiments -- \
  --exp e12 --seed 42 > target/serve-smoke.txt
for exp in e13 e14 e15 e16 e17 e18 e19 e21; do
  cargo run --release --offline -q -p nlidb-bench --bin experiments -- \
    --exp "$exp" --seed 42 >> target/serve-smoke.txt
done
python3 scripts/check_experiment_drift.py target/serve-smoke.txt

echo "== soak smoke (E20 @ 10^4 + BENCH_soak.json schema) =="
cargo run --release --offline -q -p nlidb-bench --bin experiments -- \
  --exp e20 --seed 42 --soak-requests 10000 > target/soak-smoke.txt
rm -f target/soak-smoke.json
cargo run --release --offline -q -p nlidb-bench --bin soak -- \
  --seed 42 --requests 10000 --out target/soak-smoke.json --git ci-smoke \
  2> /dev/null
python3 scripts/check_bench_json.py target/soak-smoke.json
python3 scripts/check_bench_json.py BENCH_soak.json

echo "== perf-drift gate (perfgate @ seed 42 vs scripts/perf_baseline_seed42.txt) =="
python3 scripts/check_perf_drift.py

echo "CI gate passed."
