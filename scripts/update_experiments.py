#!/usr/bin/env python3
"""Splice freshly generated harness tables into EXPERIMENTS.md.

Usage: python3 scripts/update_experiments.py <harness_output.txt>

The harness prints each experiment as a title line ("E3 — …") followed
by a pipe table. EXPERIMENTS.md contains the same tables under
"**Measured**" paragraphs. This script replaces each markdown table
with the fresh harness table so the document never drifts from the
code. Commentary text is left untouched.
"""

import re
import sys


def harness_tables(text: str) -> dict[str, list[str]]:
    """Map experiment id (e.g. 'E3') to its table lines."""
    tables: dict[str, list[str]] = {}
    lines = text.splitlines()
    i = 0
    while i < len(lines):
        m = re.match(r"^(E\d+) — ", lines[i])
        if m and i + 1 < len(lines) and lines[i + 1].startswith("|"):
            exp = m.group(1)
            j = i + 1
            block = []
            while j < len(lines) and lines[j].startswith("|"):
                block.append(lines[j].rstrip())
                j += 1
            tables[exp] = block
            i = j
        else:
            i += 1
    return tables


def splice(markdown: str, tables: dict[str, list[str]]) -> str:
    out_lines = []
    lines = markdown.splitlines()
    current_exp = None
    i = 0
    while i < len(lines):
        line = lines[i]
        m = re.match(r"^## (E\d+) ", line)
        if m:
            current_exp = m.group(1)
        if line.startswith("|") and current_exp in tables:
            # Skip the old table...
            while i < len(lines) and lines[i].startswith("|"):
                i += 1
            # ...and emit the fresh one (once per section).
            out_lines.extend(tables.pop(current_exp))
            continue
        out_lines.append(line)
        i += 1
    return "\n".join(out_lines) + "\n"


def main() -> None:
    harness_path = sys.argv[1]
    with open(harness_path) as f:
        tables = harness_tables(f.read())
    # E7 is laid out as two tables (paper vs ours) in the document;
    # keep it hand-maintained.
    tables.pop("E7", None)
    with open("EXPERIMENTS.md") as f:
        md = f.read()
    updated = splice(md, tables)
    with open("EXPERIMENTS.md", "w") as f:
        f.write(updated)
    print(f"updated tables: E-sections refreshed; leftovers: {sorted(tables)}")


if __name__ == "__main__":
    main()
