#!/usr/bin/env python3
"""Validate a BENCH_soak.json trajectory file.

Usage: python3 scripts/check_bench_json.py [<path>]   (default: BENCH_soak.json)

The `soak` binary appends one JSON line per invocation (schema
`nlidb-soak-v1`): run metadata (seed, request count, the producing
commit passed in via --git — library code takes no wall clock, so
provenance is stamped by the caller) plus one object per load shape
with the run's throughput/latency trajectory. This checker keeps the
file honest as it grows:

  * every line parses as a JSON object of the expected schema and
    field types,
  * `index` equals the line's position — the trajectory is append-only
    and strictly ordered, so a dropped or reordered line is an error,
  * the shapes array covers exactly the five soak shapes, in order,
  * per shape, the disposition counters account for every request and
    the signature digest is a 16-hex-digit string,
  * the per-window health series (optional: lines appended before the
    windowed-telemetry layer existed omit it) carries exactly the
    {index, served, p99, burn_milli} keys per window, all values
    non-negative ints, window indices strictly increasing, and the
    retained windows' served sum never exceeding the shape's total
    (the ring evicts, so retained ≤ cumulative).
"""

import json
import sys

SCHEMA = "nlidb-soak-v1"
SHAPES = ["zipfian", "flash-crowd", "long-session", "tenant-skew", "overload"]
RUN_INT_FIELDS = ["index", "seed", "requests"]
SHAPE_INT_FIELDS = [
    "requests",
    "served",
    "answered",
    "session",
    "degraded",
    "refused",
    "shed",
    "deadline",
    "drains",
    "ticks",
    "p50",
    "p95",
    "p99",
    "served_per_kilotick",
    "shed_overload",
    "overload_entered",
    "overload_recovered",
]
WINDOW_FIELDS = ["index", "served", "p99", "burn_milli"]


def fail(lineno: int, msg: str) -> None:
    print(f"{PATH}:{lineno}: {msg}")
    sys.exit(1)


def check_shape(lineno: int, pos: int, shape: dict) -> None:
    name = shape.get("shape")
    if name != SHAPES[pos]:
        fail(lineno, f"shape {pos} must be {SHAPES[pos]!r}, got {name!r}")
    for field in SHAPE_INT_FIELDS:
        v = shape.get(field)
        if not isinstance(v, int) or isinstance(v, bool) or v < 0:
            fail(lineno, f"shape {name!r}: field {field!r} must be a non-negative int, got {v!r}")
    accounted = shape["served"] + shape["refused"] + shape["shed"] + shape["deadline"]
    if accounted != shape["requests"]:
        fail(
            lineno,
            f"shape {name!r}: served+refused+shed+deadline = {accounted} "
            f"but requests = {shape['requests']}",
        )
    if shape["served"] != shape["answered"] + shape["session"] + shape["degraded"]:
        fail(lineno, f"shape {name!r}: served must equal answered+session+degraded")
    digest = shape.get("digest")
    if (
        not isinstance(digest, str)
        or len(digest) != 16
        or any(c not in "0123456789abcdef" for c in digest)
    ):
        fail(lineno, f"shape {name!r}: digest must be 16 lowercase hex digits, got {digest!r}")
    if "windows" in shape:
        check_windows(lineno, name, shape)
    extra = set(shape) - set(SHAPE_INT_FIELDS) - {"shape", "digest", "windows"}
    if extra:
        fail(lineno, f"shape {name!r}: unknown fields {sorted(extra)}")


def check_windows(lineno: int, name: str, shape: dict) -> None:
    windows = shape["windows"]
    if not isinstance(windows, list):
        fail(lineno, f"shape {name!r}: 'windows' must be a list, got {windows!r}")
    prev = -1
    retained_served = 0
    for pos, w in enumerate(windows):
        if not isinstance(w, dict):
            fail(lineno, f"shape {name!r}: window {pos} must be a JSON object")
        for field in WINDOW_FIELDS:
            v = w.get(field)
            if not isinstance(v, int) or isinstance(v, bool) or v < 0:
                fail(
                    lineno,
                    f"shape {name!r}: window {pos} field {field!r} must be a "
                    f"non-negative int, got {v!r}",
                )
        extra = set(w) - set(WINDOW_FIELDS)
        if extra:
            fail(lineno, f"shape {name!r}: window {pos} unknown fields {sorted(extra)}")
        if w["index"] <= prev:
            fail(
                lineno,
                f"shape {name!r}: window indices must be strictly increasing "
                f"({w['index']} after {prev})",
            )
        prev = w["index"]
        retained_served += w["served"]
    if retained_served > shape["served"]:
        fail(
            lineno,
            f"shape {name!r}: retained windows serve {retained_served} "
            f"but the shape served only {shape['served']}",
        )


def main() -> None:
    try:
        with open(PATH) as f:
            lines = [l for l in f.read().splitlines() if l.strip()]
    except OSError as e:
        print(f"cannot read {PATH!r}: {e.strerror}")
        sys.exit(2)
    if not lines:
        print(f"{PATH}: empty trajectory — the soak binary has never appended")
        sys.exit(1)
    for i, raw in enumerate(lines):
        lineno = i + 1
        try:
            run = json.loads(raw)
        except json.JSONDecodeError as e:
            fail(lineno, f"not valid JSON: {e.msg}")
        if not isinstance(run, dict):
            fail(lineno, "line must be a JSON object")
        if run.get("schema") != SCHEMA:
            fail(lineno, f"schema must be {SCHEMA!r}, got {run.get('schema')!r}")
        for field in RUN_INT_FIELDS:
            v = run.get(field)
            if not isinstance(v, int) or isinstance(v, bool) or v < 0:
                fail(lineno, f"field {field!r} must be a non-negative int, got {v!r}")
        if run["index"] != i:
            fail(lineno, f"index must equal line position {i}, got {run['index']}")
        if run["requests"] == 0:
            fail(lineno, "requests must be positive")
        git = run.get("git")
        if not isinstance(git, str) or not git:
            fail(lineno, f"field 'git' must be a non-empty string, got {git!r}")
        shapes = run.get("shapes")
        if not isinstance(shapes, list) or len(shapes) != len(SHAPES):
            fail(lineno, f"'shapes' must list all {len(SHAPES)} shapes in order")
        for pos, shape in enumerate(shapes):
            if not isinstance(shape, dict):
                fail(lineno, f"shape {pos} must be a JSON object")
            check_shape(lineno, pos, shape)
        extra = set(run) - set(RUN_INT_FIELDS) - {"schema", "git", "shapes"}
        if extra:
            fail(lineno, f"unknown fields {sorted(extra)}")
    print(f"{PATH}: {len(lines)} trajectory line(s) valid ({SCHEMA})")


if __name__ == "__main__":
    PATH = sys.argv[1] if len(sys.argv) > 1 else "BENCH_soak.json"
    if len(sys.argv) > 2:
        print("usage: python3 scripts/check_bench_json.py [<path>]")
        sys.exit(2)
    main()
