#!/usr/bin/env python3
"""Fail if the perfgate output drifted from the committed baseline.

Usage: python3 scripts/check_perf_drift.py [<perfgate_output.txt>]

Without an argument, runs the binary itself:

    cargo run --release --offline -q -p nlidb-bench --bin perfgate

`perfgate` renders per-stage profiles (self/inherited/critical-path
cost), the clean-vs-faulted diff, and the full metric export for the
seeded retail stream at seed 42. Every number is a logical tick — a
pure function of the seed — so this gate compares byte-for-byte:
exact comparison is sound because no wall-clock or scheduler noise
can reach the output. A mismatch means pipeline work genuinely
changed shape; if the change is intended, regenerate the baseline
(command printed on failure) and re-commit it alongside the change.
"""

import difflib
import subprocess
import sys

BASELINE = "scripts/perf_baseline_seed42.txt"
PERFGATE = [
    "cargo",
    "run",
    "--release",
    "--offline",
    "-q",
    "-p",
    "nlidb-bench",
    "--bin",
    "perfgate",
]


def main() -> None:
    if len(sys.argv) > 2:
        print("usage: python3 scripts/check_perf_drift.py [<perfgate_output.txt>]")
        sys.exit(2)
    if len(sys.argv) == 2:
        try:
            with open(sys.argv[1]) as f:
                fresh = f.read()
        except OSError as e:
            print(f"perf gate: cannot read {sys.argv[1]!r}: {e.strerror}")
            sys.exit(2)
    else:
        run = subprocess.run(PERFGATE, capture_output=True, text=True)
        if run.returncode != 0:
            print(f"perf gate: perfgate exited {run.returncode}")
            sys.stderr.write(run.stderr)
            sys.exit(2)
        fresh = run.stdout
    try:
        with open(BASELINE) as f:
            baseline = f.read()
    except OSError as e:
        print(f"perf gate: cannot read {BASELINE}: {e.strerror} (run from the repo root)")
        sys.exit(2)
    if fresh == baseline:
        print(f"perf gate: matches {BASELINE}")
        return
    print(f"perf gate: per-stage costs drifted from {BASELINE}")
    sys.stdout.writelines(
        difflib.unified_diff(
            baseline.splitlines(keepends=True),
            fresh.splitlines(keepends=True),
            fromfile=BASELINE,
            tofile="perfgate output",
        )
    )
    print(
        "if the drift is intended, regenerate with: "
        f"{' '.join(PERFGATE)} > {BASELINE}"
    )
    sys.exit(1)


if __name__ == "__main__":
    main()
