#!/usr/bin/env python3
"""Fail if harness output disagrees with the tables committed in
EXPERIMENTS.md.

Usage: python3 scripts/check_experiment_drift.py <harness_output.txt>

The harness prints each experiment as a title line ("E12 — …") followed
by a pipe table; EXPERIMENTS.md holds the same tables under "## E12 …"
sections. This is the CI smoke gate: run one cheap experiment at seed
42 and diff its table against the committed one, so interpreter- or
serving-visible drift is caught at commit time rather than at the next
full regeneration. E7 is hand-maintained (two-table layout) and is
skipped, matching scripts/update_experiments.py.
"""

import re
import sys


def harness_tables(text: str) -> dict[str, list[str]]:
    """Map experiment id (e.g. 'E12') to its table lines."""
    tables: dict[str, list[str]] = {}
    lines = text.splitlines()
    i = 0
    while i < len(lines):
        m = re.match(r"^(E\d+) — ", lines[i])
        if m and i + 1 < len(lines) and lines[i + 1].startswith("|"):
            exp = m.group(1)
            j = i + 1
            block = []
            while j < len(lines) and lines[j].startswith("|"):
                block.append(lines[j].rstrip())
                j += 1
            tables[exp] = block
            i = j
        else:
            i += 1
    return tables


def committed_tables(markdown: str) -> dict[str, list[str]]:
    """Map experiment id to the first pipe table in its '## EN' section."""
    tables: dict[str, list[str]] = {}
    lines = markdown.splitlines()
    current = None
    i = 0
    while i < len(lines):
        m = re.match(r"^## (E\d+) ", lines[i])
        if m:
            current = m.group(1)
        if lines[i].startswith("|") and current and current not in tables:
            block = []
            while i < len(lines) and lines[i].startswith("|"):
                block.append(lines[i].rstrip())
                i += 1
            tables[current] = block
            continue
        i += 1
    return tables


def main() -> None:
    if len(sys.argv) != 2:
        print("usage: python3 scripts/check_experiment_drift.py <harness_output.txt>")
        sys.exit(2)
    harness_path = sys.argv[1]
    try:
        with open(harness_path) as f:
            fresh = harness_tables(f.read())
    except OSError as e:
        print(f"drift check: cannot read harness output {harness_path!r}: {e.strerror}")
        sys.exit(2)
    fresh.pop("E7", None)
    if not fresh:
        print("drift check: no experiment tables found in harness output")
        sys.exit(2)
    try:
        with open("EXPERIMENTS.md") as f:
            committed = committed_tables(f.read())
    except OSError as e:
        print(f"drift check: cannot read EXPERIMENTS.md: {e.strerror} (run from the repo root)")
        sys.exit(2)
    drifted = False
    for exp, table in sorted(fresh.items()):
        recorded = committed.get(exp)
        if recorded is None:
            print(
                f"{exp}: EXPERIMENTS.md has no '## {exp} ...' section header "
                "with a pipe table under it — add the section (or regenerate, "
                "see below) before relying on the drift gate"
            )
            drifted = True
            continue
        if table != recorded:
            print(f"{exp}: harness output drifted from EXPERIMENTS.md")
            for line in recorded:
                if line not in table:
                    print(f"  - {line}")
            for line in table:
                if line not in recorded:
                    print(f"  + {line}")
            drifted = True
        else:
            print(f"{exp}: matches EXPERIMENTS.md")
    if drifted:
        print(
            "regenerate with: cargo run --release -p nlidb-bench --bin "
            "experiments > out.txt && python3 scripts/update_experiments.py out.txt"
        )
        sys.exit(1)


if __name__ == "__main__":
    main()
