//! # nlidb — natural language interfaces to data
//!
//! Facade crate re-exporting the full reproduction stack described in
//! `DESIGN.md`: the NLP substrate, SQL IR, in-memory relational engine,
//! ontology layer, value index, learning substrate, the five
//! interpreter families, the conversational layer, the synthetic
//! benchmark generators, the concurrent serving runtime, and the
//! deterministic tracing/metrics subsystem.
//!
//! ## Quickstart
//!
//! ```
//! use nlidb::prelude::*;
//!
//! // Build a small database, derive its ontology, and ask a question.
//! let db = nlidb::benchdata::retail_database(42);
//! let nli = NliPipeline::standard(&db);
//! let answer = nli.ask("how many customers are there").unwrap();
//! assert_eq!(answer.sql, "SELECT COUNT(*) FROM customers");
//! ```

pub use nlidb_benchdata as benchdata;
pub use nlidb_core as core;
pub use nlidb_dialogue as dialogue;
pub use nlidb_engine as engine;
pub use nlidb_evalkit as evalkit;
pub use nlidb_ml as ml;
pub use nlidb_nlp as nlp;
pub use nlidb_obs as obs;
pub use nlidb_ontology as ontology;
pub use nlidb_serve as serve;
pub use nlidb_sqlir as sqlir;
pub use nlidb_vindex as vindex;

/// One-stop imports for applications.
pub mod prelude {
    pub use nlidb_core::pipeline::NliPipeline;
    pub use nlidb_core::{Interpretation, Interpreter};
    pub use nlidb_dialogue::session::ConversationSession;
    pub use nlidb_engine::{Database, Value};
    pub use nlidb_serve::{Server, ServerConfig};
    pub use nlidb_sqlir::ast::Query;
    pub use nlidb_sqlir::complexity::{classify, ComplexityClass};
}
