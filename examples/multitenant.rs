//! One serving runtime, two databases: register a retail and an HR
//! tenant with different quota policies behind a single
//! `TenantServer`, replay an interleaved stream, and print each
//! tenant's own books.
//!
//! ```bash
//! cargo run --release --example multitenant
//! ```

use std::sync::Arc;

use nlidb::benchdata::{
    derive_slots, domain_database, interleave_streams, request_stream, DOMAIN_NAMES,
};
use nlidb::ontology::JoinPathCache;
use nlidb::serve::{
    run_closed_loop_tenants, tenant_pipeline, Clock, ManualClock, ServerConfig, TenantPolicy,
    TenantRegistry, TenantServer,
};

fn main() {
    // One join-path cache serves every tenant: each tenant's plans are
    // keyed under its schema fingerprint, so sharing never mixes them.
    let join_cache = Arc::new(JoinPathCache::new(256));
    let mut registry = TenantRegistry::new();

    // Tenant 1: retail, on a metered plan — at most 20 admissions.
    let retail = domain_database("retail", 42);
    let (fp_retail, retail_pipeline) = tenant_pipeline(&retail, &join_cache);
    registry.register(
        "retail",
        retail_pipeline,
        TenantPolicy {
            admission_budget: Some(20),
            ..TenantPolicy::default()
        },
    );

    // Tenant 2: HR, unmetered.
    let hr = domain_database("hr", 43);
    let (fp_hr, hr_pipeline) = tenant_pipeline(&hr, &join_cache);
    registry.register("hr", hr_pipeline, TenantPolicy::default());

    // One pool for both tenants; routing salts spread each tenant's
    // traffic over the workers independently.
    let clock = Arc::new(ManualClock::new());
    let mut server = TenantServer::start(
        &registry,
        ServerConfig {
            workers: 2,
            queue_capacity: 64,
            interp_cache: 256,
            service_estimate: 1,
            ..ServerConfig::default()
        },
        clock.clone() as Arc<dyn Clock>,
    );

    // 32 seeded requests per tenant, deterministically interleaved —
    // the retail stream outruns its budget; the HR stream never
    // notices.
    let retail_stream = request_stream(&derive_slots(&retail), 42, 32, 0.25);
    let hr_stream = request_stream(&derive_slots(&hr), 43, 32, 0.25);
    let stream = interleave_streams(42, vec![(fp_retail, retail_stream), (fp_hr, hr_stream)]);
    let report = run_closed_loop_tenants(&mut server, &clock, &stream, 8);
    println!(
        "served {} requests for {} tenants on one runtime\n",
        report.completions.len(),
        registry.len()
    );

    // Each tenant's books, from its own metrics scope.
    for (name, fp) in DOMAIN_NAMES.iter().zip([fp_retail, fp_hr]) {
        let m = server.tenant_metrics(fp).expect("registered tenant");
        println!("tenant {name} (fingerprint {fp:016x})");
        println!(
            "  submitted {:>3}  admitted {:>3}  quota-refused {:>3}",
            m.submitted, m.admitted, m.quota_refused
        );
        println!(
            "  answered  {:>3}  turns    {:>3}  cache hits    {:>3}",
            m.answered, m.session_turns, m.interp_hits
        );
        let journal = server.journal(fp).expect("registered tenant");
        println!("  journaled sessions: {:?}\n", journal.sessions());
    }

    let global = server.shutdown();
    println!(
        "global: submitted {} admitted {} quota-refused {}",
        global.submitted, global.admitted, global.quota_refused
    );
}
