//! Fault injection and graceful degradation on the serving path: replay
//! a seeded request stream under a seeded fault schedule and watch the
//! server absorb transients, degrade down the interpreter ladder, trip
//! circuit breakers, and contain a worker panic — all deterministically.
//!
//! ```bash
//! cargo run --release --example degradation
//! ```

use std::sync::Arc;

use nlidb::benchdata::{
    derive_slots, request_stream, retail_database, FaultKind, FaultPlan, FaultRates,
};
use nlidb::core::pipeline::NliPipeline;
use nlidb::serve::{
    fault_plan_hook, run_closed_loop, silence_worker_panics, Clock, Disposition, ManualClock,
    Server, ServerConfig,
};

fn main() {
    // The injected worker panic below is expected; keep its backtrace
    // off the terminal.
    silence_worker_panics();

    let db = retail_database(42);
    let pipeline = Arc::new(NliPipeline::standard(&db));
    let slots = derive_slots(&db);

    // A seeded schedule: ~10% transient / ~5% fatal faults drawn from
    // seed 42, plus a pinned worker panic at request #41 (an id that
    // computes fresh — cache hits never reach the fault hook). The
    // schedule is a pure function of (request id, rung, attempt) —
    // replaying this binary reproduces every outcome byte for byte.
    let plan = FaultPlan::seeded(42, 64, &FaultRates::default()).with(41, FaultKind::WorkerPanic);
    println!("fault schedule covers {} of 64 requests\n", plan.len());

    let clock = Arc::new(ManualClock::new());
    let config = ServerConfig {
        workers: 2,
        queue_capacity: 64,
        ..ServerConfig::default()
    };
    let mut server = Server::start_with_hook(
        Arc::clone(&pipeline),
        config,
        clock.clone() as Arc<dyn Clock>,
        Some(fault_plan_hook(plan)),
    );

    let stream = request_stream(&slots, 42, 64, 0.25);
    let report = run_closed_loop(&mut server, &clock, &stream, 16);

    // Show the interesting completions: anything that didn't come back
    // as a full-fidelity answer.
    for completion in &report.completions {
        match &completion.disposition {
            Disposition::Degraded { served_by, sql, .. } => {
                println!("[degraded → {served_by}] {sql}");
            }
            Disposition::Refused { reason } => println!("[refused] {reason}"),
            _ => {}
        }
    }

    let metrics = server.shutdown();
    println!("\n{metrics}");
}
