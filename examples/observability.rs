//! Trace a served request stream: attach a `ServeObs` to the server,
//! replay a seeded stream with one injected fault, then read back the
//! span tree of a faulted request, the per-stage cost histograms, and
//! the deterministic JSONL export.
//!
//! ```bash
//! cargo run --release --example observability
//! ```

use std::sync::Arc;

use nlidb::benchdata::{derive_slots, request_stream, retail_database, FaultKind, FaultPlan};
use nlidb::core::pipeline::NliPipeline;
use nlidb::serve::{
    fault_plan_hook, run_closed_loop, Clock, ManualClock, ServeObs, Server, ServerConfig,
};

fn main() {
    let db = retail_database(42);
    let pipeline = Arc::new(NliPipeline::standard(&db));
    let clock = Arc::new(ManualClock::new());

    // The obs endpoints: a bounded trace sink and a metrics registry.
    // The server clones the handles; we keep ours to read afterwards.
    let obs = ServeObs::new(64);

    // A fatal rung-0 fault over the first few ids: whichever of them
    // is a fresh single-shot question will degrade down the ladder,
    // and its trace shows the fallback machinery in action.
    let mut plan = FaultPlan::none();
    for id in 0..8 {
        plan = plan.with(id, FaultKind::Fatal { depth: 1 });
    }
    let mut server = Server::start_observed(
        pipeline,
        ServerConfig {
            workers: 2,
            queue_capacity: 64,
            ..ServerConfig::default()
        },
        clock.clone() as Arc<dyn Clock>,
        Some(fault_plan_hook(plan)),
        Some(obs.clone()),
    );

    let slots = derive_slots(&db);
    let stream = request_stream(&slots, 42, 32, 0.25);
    run_closed_loop(&mut server, &clock, &stream, 16);
    let metrics = server.shutdown();

    // The degraded request's span tree: every rung it tried, with the
    // fault evidence and the pipeline stages of the rung that served.
    let traces = obs.sink.traces();
    let trace = traces
        .iter()
        .find(|t| {
            t.root()
                .is_some_and(|r| r.attr("outcome") == Some("degraded"))
        })
        .expect("a fresh single inside the fault window degrades");
    println!("trace {} — span tree (cost in trace ticks):", trace.id);
    for span in &trace.spans {
        let indent = depth_of(trace, span.parent) * 2;
        let attrs: Vec<String> = span.attrs.iter().map(|(k, v)| format!("{k}={v}")).collect();
        println!(
            "  {:indent$}{} [{}] {}",
            "",
            span.name,
            span.cost(),
            attrs.join(" "),
        );
    }

    // Serving counters and per-stage histograms live in one registry.
    metrics.export_into(&obs.registry);
    println!("\n{}", obs.registry.report());

    // The export replays byte-identically at a fixed seed — pipe it
    // to a file and diff two runs to see nothing.
    let jsonl = obs.sink.export_jsonl();
    println!(
        "exported {} traces, {} JSONL bytes; first line:\n{}",
        obs.sink.len(),
        jsonl.len(),
        jsonl.lines().next().unwrap_or_default()
    );
}

/// How deep `parent` chains go — indentation for the tree print.
fn depth_of(trace: &nlidb::obs::Trace, mut parent: Option<usize>) -> usize {
    let mut depth = 0;
    while let Some(p) = parent {
        depth += 1;
        parent = trace.spans[p].parent;
    }
    depth
}
