//! A business-intelligence mini-dashboard driven entirely by natural
//! language — the survey's motivating scenario: "non-technical
//! business owners deriving insights from their data".
//!
//! ```text
//! cargo run --example bi_dashboard
//! ```

use nlidb::evalkit::Table;
use nlidb::prelude::*;

fn panel(nli: &NliPipeline, title: &str, question: &str) {
    println!("── {title} ──");
    println!("   \"{question}\"");
    match nli.ask(question) {
        Ok(answer) => {
            println!("   {}", answer.sql);
            let mut t = Table::new(answer.result.columns.clone());
            for row in answer.result.rows.iter().take(6) {
                t.row(row.iter().map(|v| v.to_string()));
            }
            for line in t.to_string().lines() {
                println!("   {line}");
            }
            if answer.result.rows.len() > 6 {
                println!("   … {} more rows", answer.result.rows.len() - 6);
            }
        }
        Err(e) => println!("   (no answer: {e})"),
    }
    println!();
}

fn main() {
    let db = nlidb::benchdata::retail_database(7);
    let nli = NliPipeline::standard(&db);

    println!("═══ RETAIL DASHBOARD (all panels asked in English) ═══\n");
    panel(
        &nli,
        "Revenue by market",
        "total order amount by customer city",
    );
    panel(
        &nli,
        "Revenue by product line",
        "total order amount by product category",
    );
    panel(&nli, "Order pipeline", "count of orders per status");
    panel(&nli, "Premium products", "top 5 products by price");
    panel(
        &nli,
        "Big-ticket orders",
        "orders with amount above average",
    );
    panel(&nli, "Dormant accounts", "customers without orders");
    panel(&nli, "Key accounts", "customers with more than 8 orders");
    panel(&nli, "Class of 2019", "customers who signed up in 2019");
}
