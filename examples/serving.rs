//! Stand up the concurrent serving runtime over a retail pipeline,
//! replay a seeded request stream, and show what the caches did.
//!
//! ```bash
//! cargo run --release --example serving
//! ```

use std::sync::Arc;

use nlidb::benchdata::{derive_slots, request_stream, retail_database};
use nlidb::core::pipeline::{NliPipeline, SchemaContext};
use nlidb::ontology::JoinPathCache;
use nlidb::serve::{run_closed_loop, Clock, Disposition, ManualClock, Server, ServerConfig};

fn main() {
    // One pipeline, shared immutably by every worker; the join-path
    // cache is attached to the schema context before it freezes.
    let db = retail_database(42);
    let join_cache = Arc::new(JoinPathCache::new(128));
    let mut ctx = SchemaContext::build(&db);
    ctx.graph = ctx.graph.clone().with_cache(Arc::clone(&join_cache));
    let pipeline = Arc::new(NliPipeline::with_context(&db, ctx));

    // A deterministic clock: time advances only when we say so.
    let clock = Arc::new(ManualClock::new());
    let config = ServerConfig {
        workers: 2,
        queue_capacity: 64,
        interp_cache: 256,
        service_estimate: 1,
        ..ServerConfig::default()
    };
    let mut server = Server::start(
        Arc::clone(&pipeline),
        config,
        clock.clone() as Arc<dyn Clock>,
    );

    // A seeded stream: 48 requests, 25% of them multi-turn session turns.
    let slots = derive_slots(&db);
    let stream = request_stream(&slots, 42, 48, 0.25);
    let report = run_closed_loop(&mut server, &clock, &stream, 16);

    for completion in report.completions.iter().take(6) {
        match &completion.disposition {
            Disposition::Answered {
                sql, from_cache, ..
            } => {
                let tag = if *from_cache { "cache" } else { "fresh" };
                println!("[{tag}] {sql}");
            }
            Disposition::SessionReply { response, .. } => println!("[turn ] {response}"),
            other => println!("[other] {other:?}"),
        }
    }

    let metrics = server.shutdown();
    println!("\n{metrics}");
    let join = join_cache.stats();
    println!(
        "join-path cache: {} hits / {} misses ({:.1}% hit rate)",
        join.hits,
        join.misses,
        join.hit_rate() * 100.0
    );
}
