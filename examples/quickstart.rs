//! Quickstart: point the pipeline at a database and ask questions.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use nlidb::prelude::*;

fn main() {
    // A seeded demo database: customers ← orders → products.
    let db = nlidb::benchdata::retail_database(42);

    // One call builds the ontology, the join graph, the value and
    // metadata indices, and all five interpreter families.
    let nli = NliPipeline::standard(&db);

    let questions = [
        "show customers in Austin",
        "how many orders are there",
        "total order amount by customer city",
        "top 3 products by price",
        "customers without orders",
        "orders with amount above average",
    ];

    for q in questions {
        println!("Q: {q}");
        match nli.ask(q) {
            Ok(answer) => {
                println!("   SQL:  {}", answer.sql);
                println!(
                    "   rows: {} (first: {})",
                    answer.result.rows.len(),
                    answer
                        .result
                        .rows
                        .first()
                        .map(|r| r
                            .iter()
                            .map(|v| v.to_string())
                            .collect::<Vec<_>>()
                            .join(", "))
                        .unwrap_or_else(|| "—".to_string())
                );
                println!(
                    "   confidence {:.2}, complexity: {}",
                    answer.interpretation.confidence,
                    classify(&answer.query)
                );
            }
            Err(e) => {
                println!("   could not answer: {e}");
                for (word, suggestions) in nli.suggest(q) {
                    println!(
                        "   did you mean (for '{word}'): {}?",
                        suggestions.join(", ")
                    );
                }
            }
        }
        println!();
    }

    // Vocabulary-gap guidance: "revenue" is not a retail column, but
    // the lexicon taxonomy points at the closest measures.
    println!("Q: total revenue by city");
    match nli.ask("total revenue by city") {
        Ok(a) => println!("   SQL: {}", a.sql),
        Err(_) => {
            for (word, suggestions) in nli.suggest("total revenue by city") {
                println!(
                    "   did you mean (for '{word}'): {}?",
                    suggestions.join(", ")
                );
            }
        }
    }
}
