//! Conversational data exploration (§5 of the survey): the same
//! multi-turn session under the three dialogue-management regimes,
//! showing the finite-state → frame → agent flexibility ladder.
//!
//! ```text
//! cargo run --example conversation
//! ```

use nlidb::dialogue::{ConversationSession, ManagerKind};
use nlidb::prelude::*;

fn run_session(
    db: &nlidb::engine::Database,
    ctx: &nlidb::core::pipeline::SchemaContext,
    kind: ManagerKind,
) {
    println!("── manager: {} ──", kind.label());
    let mut session = ConversationSession::new(db, ctx, kind);
    let turns = [
        "show customers in Austin",
        "what about Boston", // slot refill — frame territory
        "how many of those are there",
        "remove the filters please", // user initiative — agent territory
        "break that down by city",
    ];
    for t in turns {
        let r = session.turn(t);
        let status = if r.accepted { "✓" } else { "✗" };
        println!("  {status} user: {t}");
        match (&r.sql, &r.result) {
            (Some(sql), Some(rs)) => {
                println!("      sql: {sql}");
                println!("      {} row(s)", rs.rows.len());
            }
            _ => println!("      system: {}", r.response),
        }
    }
    println!();
}

fn main() {
    let db = nlidb::benchdata::retail_database(11);
    let nli = NliPipeline::standard(&db);
    let ctx = nli.context();

    println!("The same conversation under each §5 dialogue regime:\n");
    for kind in ManagerKind::all() {
        run_session(&db, ctx, kind);
    }
    println!(
        "finite-state follows its script only; frame accepts slot refills;\n\
         agent handles user initiative (filter removal, regrouping)."
    );
}
