//! Train the neural sketch model on synthetic (question, SQL) pairs
//! and race it against the entity-based interpreter — a miniature of
//! experiments E1/E2.
//!
//! ```text
//! cargo run --release --example train_and_compare
//! ```

use nlidb::benchdata::{derive_slots, paraphrase, wikisql_like};
use nlidb::core::interpretation::InterpreterKind;
use nlidb::core::neural::TrainingExample;
use nlidb::evalkit::{execution_match, EvalOutcome, Table};
use nlidb::nlp::Lexicon;
use nlidb::prelude::*;

fn main() {
    let db = nlidb::benchdata::retail_database(3);
    let slots = derive_slots(&db);
    let lexicon = Lexicon::business_default();

    // Training set: 200 pairs with paraphrase levels 0–3 mixed in.
    let train: Vec<TrainingExample> = wikisql_like(&slots, 100, 200)
        .into_iter()
        .enumerate()
        .map(|(i, p)| TrainingExample {
            question: paraphrase(&p.question, &p.protected, (i % 4) as u8, &lexicon, i as u64),
            sql: p.sql,
        })
        .collect();

    let mut nli = NliPipeline::standard(&db);
    println!(
        "training the neural sketch model on {} examples…",
        train.len()
    );
    nli.train_neural(&train, 9);

    // Held-out evaluation at two paraphrase intensities.
    let held_out = wikisql_like(&slots, 777, 60);
    let mut table = Table::new(["interpreter", "canonical", "heavy paraphrase"])
        .title("execution accuracy on 60 held-out questions");
    for kind in [
        InterpreterKind::Entity,
        InterpreterKind::Neural,
        InterpreterKind::Hybrid,
    ] {
        let mut canonical = EvalOutcome::default();
        let mut heavy = EvalOutcome::default();
        for (i, pair) in held_out.iter().enumerate() {
            for (level, out) in [(0u8, &mut canonical), (3u8, &mut heavy)] {
                let q = paraphrase(&pair.question, &pair.protected, level, &lexicon, i as u64);
                let pred = nli.interpreter(kind).best(&q, nli.context());
                match pred {
                    Some(p) => out.record(true, execution_match(&db, &pair.sql, &p.sql)),
                    None => out.record(false, false),
                }
            }
        }
        table.row([
            kind.label().to_string(),
            format!("{:.1}%", canonical.recall() * 100.0),
            format!("{:.1}%", heavy.recall() * 100.0),
        ]);
    }
    println!("\n{table}");
    println!(
        "The survey's §4 trade-off in one table: the entity-based reading is\n\
         precise on canonical phrasings; the learned model holds up better\n\
         under paraphrase; the hybrid takes the best of both."
    );
}
