//! Profile a served request stream: replay the same seeded stream
//! clean and faulted, aggregate each trace corpus into a per-stage
//! profile, walk the costliest trace's critical path, attribute the
//! p95 tail, and diff the two regimes to isolate what the faults
//! cost. This is `tracetool`'s library API end to end — the binary
//! does the same over a JSONL file exported by an earlier run.
//!
//! ```bash
//! cargo run --release --example profiling
//! ```

use std::sync::Arc;

use nlidb::benchdata::{derive_slots, request_stream, retail_database, FaultKind, FaultPlan};
use nlidb::core::pipeline::NliPipeline;
use nlidb::obs::profile::self_costs;
use nlidb::obs::{
    critical_path, folded_stacks, parse_jsonl, tail_attribution, Profile, ProfileDiff, Trace,
};
use nlidb::serve::{
    fault_plan_hook, run_closed_loop, Clock, ManualClock, ServeObs, Server, ServerConfig,
};

/// Serve the seeded retail stream under `plan` and return the traces.
fn traced_run(plan: FaultPlan) -> Vec<Trace> {
    let db = retail_database(42);
    let pipeline = Arc::new(NliPipeline::standard(&db));
    let clock = Arc::new(ManualClock::new());
    let obs = ServeObs::new(64);
    let mut server = Server::start_observed(
        pipeline,
        ServerConfig {
            workers: 2,
            queue_capacity: 64,
            ..ServerConfig::default()
        },
        clock.clone() as Arc<dyn Clock>,
        Some(fault_plan_hook(plan)),
        Some(obs.clone()),
    );
    let slots = derive_slots(&db);
    let stream = request_stream(&slots, 42, 32, 0.25);
    run_closed_loop(&mut server, &clock, &stream, 16);
    server.shutdown();
    obs.sink.traces()
}

fn main() {
    // The same fatal rung-0 window the observability example injects:
    // fresh singles inside it degrade down the interpreter ladder.
    let mut plan = FaultPlan::none();
    for id in 0..8 {
        plan = plan.with(id, FaultKind::Fatal { depth: 1 });
    }
    let clean = traced_run(FaultPlan::none());
    let faulted = traced_run(plan);

    // Per-stage attribution: self vs inherited cost, and how much of
    // each stage sat on a critical path (`tracetool profile`).
    let clean_profile = Profile::from_traces(&clean);
    let faulted_profile = Profile::from_traces(&faulted);
    println!("faulted profile:\n{}", faulted_profile.export_text());

    // The costliest trace's critical path — the root-to-leaf spine the
    // greedy descent picks (`tracetool critical`).
    let hot = faulted
        .iter()
        .max_by_key(|t| (t.root().map_or(0, |r| r.cost()), std::cmp::Reverse(t.id)))
        .expect("the stream produced traces");
    let selfs = self_costs(hot);
    let spine: Vec<String> = critical_path(hot)
        .iter()
        .map(|&i| format!("{}[{}]", hot.spans[i].name, selfs[i]))
        .collect();
    println!(
        "hottest trace {} critical path: {}",
        hot.id,
        spine.join(" > ")
    );

    // Which stage dominates the expensive tail, split by the rung that
    // answered (`tracetool tail`).
    let tail = tail_attribution(&faulted, 95.0).expect("non-empty corpus");
    println!("\n{}", tail.export_text());

    // What the faults cost, stage by stage (`tracetool diff`).
    let diff = ProfileDiff::between(&clean_profile, &faulted_profile);
    println!("{}", diff.export_text());

    // Render-ready exports: folded stacks for a flamegraph, and the
    // JSONL round-trip tracetool relies on. Both byte-reproducible.
    let folded = folded_stacks(&faulted);
    println!("folded stacks ({} lines), deepest:", folded.lines().count());
    let deepest = folded
        .lines()
        .max_by_key(|l| l.matches(';').count())
        .unwrap_or_default();
    println!("  {deepest}");
    let sink = nlidb::obs::TraceSink::new(64);
    for t in &faulted {
        sink.push(t.clone());
    }
    assert_eq!(parse_jsonl(&sink.export_jsonl()).unwrap(), sink.traces());
    println!(
        "JSONL export re-imports to the same {} traces",
        faulted.len()
    );
}
