//! Tenant identity, policy, and registry for multi-tenant serving.
//!
//! One serving runtime can front many independent databases — the
//! paper's §6 enterprise-adaptation challenge. Each database becomes a
//! *tenant*, identified by its [`schema_fingerprint`]: a seedless hash
//! of everything that determines interpretations (concept labels,
//! table names, data-property labels, and the full join structure).
//! The fingerprint is the tenant's identity everywhere — routing salt,
//! interpretation-cache key prefix, join-path-cache scope, journal
//! namespace, and metrics label — so isolation falls out of keying
//! rather than out of locks.
//!
//! # Collision hygiene
//!
//! Fingerprints are 64-bit FNV-1a digests, not cryptographic hashes.
//! Accidental collisions across real schemas are vanishingly unlikely
//! (the six `benchdata` domains are pairwise distinct, asserted by the
//! tenant test-suite), but a collision would silently merge two
//! tenants — so [`TenantRegistry::register`] *panics* on a duplicate
//! fingerprint instead of overwriting. Registering the same schema
//! twice is a configuration error, not a runtime condition.

use std::sync::Arc;

use nlidb_core::interpretation::InterpreterKind;
use nlidb_core::pipeline::{NliPipeline, SchemaContext};
use nlidb_engine::Database;
use nlidb_ontology::{JoinPathCache, Ontology};

/// Per-tenant serving policy: what this tenant is allowed to consume
/// and how far down the degradation ladder it may be served.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TenantPolicy {
    /// Maximum requests this tenant may have *admitted* over the
    /// server's lifetime (`None` = unlimited). Enforced by the
    /// single-threaded submitter, so refusals are deterministic;
    /// sheds and deadline rejects do not consume budget.
    pub admission_budget: Option<u64>,
    /// Strongest interpreter family this tenant may be served by; the
    /// degradation ladder starts here (see
    /// [`nlidb_core::fallback::degradation_ladder`]). Default:
    /// [`InterpreterKind::Hybrid`], the full ladder.
    pub rung_ceiling: InterpreterKind,
    /// Per-worker interpretation-cache entries for this tenant
    /// (`Some(0)` disables caching; `None` inherits the server-wide
    /// `interp_cache` config).
    pub interp_cache: Option<usize>,
    /// Maximum estimated logical plan cost (see
    /// [`nlidb_engine::explain`]) a standalone question of this tenant
    /// may execute (`None` = unlimited). An input to the validation
    /// layer (`nlidb_core::validate::cost_gate`), checked *before*
    /// execution: on the classic path a winning plan estimated above
    /// the ceiling is refused with `InterpretError::CostExceeded` and
    /// counted in the `cost_refused` metric — the query never runs; in
    /// approved mode the ceiling is one rejection reason among the
    /// candidate checks, so a cheaper lower-ranked candidate can still
    /// be approved.
    pub cost_ceiling: Option<u64>,
}

impl Default for TenantPolicy {
    fn default() -> TenantPolicy {
        TenantPolicy {
            admission_budget: None,
            rung_ceiling: InterpreterKind::Hybrid,
            interp_cache: None,
            cost_ceiling: None,
        }
    }
}

/// One registered tenant: identity, pipeline, and policy.
#[derive(Clone)]
pub struct TenantEntry {
    name: String,
    fingerprint: u64,
    pipeline: Arc<NliPipeline>,
    policy: TenantPolicy,
}

impl TenantEntry {
    /// The tenant's human-readable name (metrics label).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The tenant's schema fingerprint (identity).
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// The tenant's trained pipeline.
    pub fn pipeline(&self) -> &Arc<NliPipeline> {
        &self.pipeline
    }

    /// The tenant's serving policy.
    pub fn policy(&self) -> &TenantPolicy {
        &self.policy
    }

    /// The tenant's ontology (through the pipeline's schema context —
    /// the registry holds one artifact per tenant, not parallel maps).
    pub fn ontology(&self) -> &Ontology {
        &self.pipeline.context().ontology
    }
}

/// An ordered set of tenants, keyed by schema fingerprint.
///
/// Registration order is load-bearing: a tenant's *index* feeds its
/// routing salt, so two registries with the same tenants in the same
/// order produce byte-identical serving runs. Index 0 carries a zero
/// salt — a single-tenant registry routes exactly like the
/// pre-tenancy server.
#[derive(Default)]
pub struct TenantRegistry {
    entries: Vec<TenantEntry>,
}

impl TenantRegistry {
    /// An empty registry.
    pub fn new() -> TenantRegistry {
        TenantRegistry::default()
    }

    /// Register a tenant; returns its schema fingerprint.
    ///
    /// # Panics
    ///
    /// Panics if a tenant with the same fingerprint is already
    /// registered (see the module's collision-hygiene notes).
    pub fn register(
        &mut self,
        name: impl Into<String>,
        pipeline: Arc<NliPipeline>,
        policy: TenantPolicy,
    ) -> u64 {
        let name = name.into();
        let fingerprint = schema_fingerprint(&pipeline);
        if let Some(prior) = self.entries.iter().find(|e| e.fingerprint == fingerprint) {
            panic!(
                "tenant {name:?} collides with already-registered tenant {:?} \
                 on schema fingerprint {fingerprint:016x}",
                prior.name
            );
        }
        self.entries.push(TenantEntry {
            name,
            fingerprint,
            pipeline,
            policy,
        });
        fingerprint
    }

    /// Number of registered tenants.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no tenant is registered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Tenants in registration order.
    pub fn entries(&self) -> &[TenantEntry] {
        &self.entries
    }

    /// Registration index of `fingerprint`, if registered.
    pub fn index_of(&self, fingerprint: u64) -> Option<usize> {
        self.entries
            .iter()
            .position(|e| e.fingerprint == fingerprint)
    }
}

/// Hash the parts of a schema that determine interpretations: concept
/// labels, table names, data-property labels, and the relationships
/// (with their endpoints and FK columns). Two pipelines over the same
/// schema share cache keys; any schema change — join structure
/// included — changes the fingerprint and thus invalidates nothing
/// silently. In multi-tenant serving this digest *is* the tenant
/// identity (see the module docs).
pub fn schema_fingerprint(pipeline: &NliPipeline) -> u64 {
    schema_fingerprint_of(&pipeline.context().ontology)
}

/// [`schema_fingerprint`] over a bare ontology.
pub fn schema_fingerprint_of(onto: &Ontology) -> u64 {
    let mut acc = String::new();
    for c in &onto.concepts {
        acc.push_str(&c.label);
        acc.push('\u{1}');
        acc.push_str(&c.table);
        acc.push('\u{1}');
    }
    for p in &onto.data_properties {
        acc.push_str(&p.label);
        acc.push('\u{1}');
    }
    // Relationships decide join paths; two schemas differing only in
    // join structure must not share cache keys.
    for r in &onto.object_properties {
        for part in [&r.label, &r.from, &r.from_column, &r.to, &r.to_column] {
            acc.push_str(part);
            acc.push('\u{1}');
        }
        acc.push('\u{2}');
    }
    crate::server::fnv1a(acc.as_bytes())
}

/// Build a tenant-ready pipeline over `db`: derive the schema context,
/// scope its join graph into the shared `join_cache` under the schema
/// fingerprint, and return `(fingerprint, pipeline)`. This is how one
/// [`JoinPathCache`] serves every tenant without ever mixing plans
/// (see [`nlidb_ontology::JoinPathCache::get_or_compute_scoped`]).
pub fn tenant_pipeline(db: &Database, join_cache: &Arc<JoinPathCache>) -> (u64, Arc<NliPipeline>) {
    let mut ctx = SchemaContext::build(db);
    let fingerprint = schema_fingerprint_of(&ctx.ontology);
    ctx.graph = ctx
        .graph
        .clone()
        .with_scoped_cache(Arc::clone(join_cache), fingerprint);
    (fingerprint, Arc::new(NliPipeline::with_context(db, ctx)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use nlidb_benchdata::retail_database;

    #[test]
    fn fingerprint_is_stable_across_pipeline_builds() {
        let db = retail_database(7);
        let a = schema_fingerprint(&NliPipeline::standard(&db));
        let b = schema_fingerprint(&NliPipeline::standard(&retail_database(7)));
        assert_eq!(a, b, "same schema, same identity");
    }

    #[test]
    fn tenant_pipeline_scopes_the_shared_cache() {
        let cache = Arc::new(JoinPathCache::new(64));
        let db = retail_database(7);
        let (fp, pipeline) = tenant_pipeline(&db, &cache);
        assert_eq!(fp, schema_fingerprint(&pipeline));
        // The pipeline's graph writes into the shared cache under the
        // fingerprint scope.
        pipeline
            .context()
            .graph
            .steiner_plan(&["order", "customer"]);
        assert_eq!(cache.len_in_scope(fp), 1);
        assert_eq!(cache.len_in_scope(0), 0, "nothing in the default scope");
    }

    #[test]
    #[should_panic(expected = "collides")]
    fn duplicate_fingerprints_are_rejected() {
        let db = retail_database(7);
        let mut reg = TenantRegistry::new();
        reg.register(
            "a",
            Arc::new(NliPipeline::standard(&db)),
            TenantPolicy::default(),
        );
        reg.register(
            "b",
            Arc::new(NliPipeline::standard(&db)),
            TenantPolicy::default(),
        );
    }

    #[test]
    fn registry_indexes_by_fingerprint() {
        let mut reg = TenantRegistry::new();
        assert!(reg.is_empty());
        let fp = reg.register(
            "retail",
            Arc::new(NliPipeline::standard(&retail_database(7))),
            TenantPolicy {
                admission_budget: Some(10),
                ..TenantPolicy::default()
            },
        );
        assert_eq!(reg.len(), 1);
        assert_eq!(reg.index_of(fp), Some(0));
        assert_eq!(reg.index_of(fp ^ 1), None);
        let e = &reg.entries()[0];
        assert_eq!(e.name(), "retail");
        assert_eq!(e.fingerprint(), fp);
        assert_eq!(e.policy().admission_budget, Some(10));
        assert!(!e.ontology().concepts.is_empty());
    }
}
