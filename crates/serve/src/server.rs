//! The serving runtime: worker pool, affinity routing, bounded queues,
//! deterministic backpressure, and the interpretation cache.
//!
//! # Determinism model
//!
//! Concurrency usually trades away reproducibility; this server is
//! built so it does not:
//!
//! * **Admission is single-threaded and credit-based.** The submitter
//!   tracks per-worker queue depth itself and only *drains* return
//!   credits — workers never free slots asynchronously. Whether a
//!   request is admitted, shed, or deadline-rejected is therefore a
//!   pure function of the submit/advance/drain sequence, never of how
//!   fast worker threads happen to run.
//! * **Routing is content-addressed.** A request with a session id
//!   goes to `id % workers` (keeping conversation turns ordered on one
//!   thread); a standalone question goes to `fnv1a(normalized) %
//!   workers` (so duplicates of a question always meet the same
//!   worker-local cache).
//! * **Clocks are injected.** Deadline decisions read a [`Clock`] the
//!   driver advances explicitly; no wall-clock exists in this crate.
//! * **Caches return exactly what the slow path returns.** A hit
//!   replays the rendered answer computed on the first miss, so the
//!   visible output stream is byte-identical with caches on, off, hot,
//!   or cold — E12's serving-equivalence claim.
//! * **Failure is deterministic too.** Faults enter only through the
//!   [`RequestHook`], a pure function of `(request id, ladder rung,
//!   attempt)`; retries, circuit breakers, and the degradation ladder
//!   (see [`nlidb_core::fallback`]) are all counted in logical units.
//!   A worker that panics is contained by `catch_unwind` — and then
//!   *recovered from*, not merely survived: the crashed request and
//!   everything still queued on the corpse bounce back to the
//!   submitter, which marks the worker dead, re-admits the bounced
//!   work to live workers (retry-budgeted, deadline-checked against
//!   the injected clock, in request-id order so thread timing cannot
//!   reorder it), and never routes new work to the corpse again. The
//!   corpse keeps a drain-only path — already-queued envelopes bounce
//!   instead of rotting — so `drain` and `shutdown` never hang.
//!   E13's fault-determinism claim.
//! * **Dialogue state survives its worker.** Every committed dialogue
//!   turn is written ahead to the [`SessionJournal`] before its reply
//!   is released; when a dead worker's sessions are remapped, the new
//!   worker lazily rebuilds each one by exact replay of its journaled
//!   turns and verifies the rebuild digest-by-digest — E15's
//!   crash-recovery claim (lost work ≡ replayed work).
//! * **Tenancy is keying, not locking.** The pool can serve many
//!   databases at once (see [`crate::tenant`] and
//!   [`crate::TenantServer`]): every job carries its tenant's
//!   registration index, worker state (interpretation caches,
//!   sessions, circuit breakers) is per-(worker, tenant), journals
//!   and metrics are per-tenant, and routing XORs a per-tenant salt
//!   into the content address so tenants spread over the pool
//!   independently. Tenant 0's salt is zero, so a single-tenant
//!   server is byte-identical to the pre-tenancy runtime — which is
//!   how E17 can assert that a multi-tenant run is
//!   signature-identical to N isolated single-tenant runs.

use std::collections::hash_map::Entry;
use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::Ordering;
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;

use nlidb_benchdata::RequestSpec;
use nlidb_core::fallback::degradation_ladder;
use nlidb_core::interpretation::InterpreterKind;
use nlidb_core::pipeline::NliPipeline;
use nlidb_dialogue::{ConversationSession, ManagerKind};
use nlidb_engine::ResultSet;
use nlidb_obs::{SpanId, TraceBuilder};

use crate::clock::Clock;
use crate::fault::{HookCtx, InjectedFault};
use crate::journal::{AuditRecord, JournalEntry, SessionJournal};
use crate::lru::LruCache;
use crate::metrics::{MetricsSnapshot, ScopedMetrics, ServeMetrics};
use crate::obs::ServeObs;
use crate::retry::{BreakerPolicy, CircuitBreaker, RetryPolicy};
use crate::tenant::{TenantPolicy, TenantRegistry};

/// Per-request work hook, consulted by the owning worker before every
/// pipeline attempt. Returning `Some` injects that fault into the
/// attempt; returning `None` lets it proceed. Benches also use it to
/// add a simulated I/O stall (do the stall, return `None`) — either
/// way this crate never touches a wall clock. Hooks must be pure
/// functions of the [`HookCtx`] for runs to replay deterministically.
pub type RequestHook = Box<dyn Fn(&HookCtx) -> Option<InjectedFault> + Send + Sync>;

/// Serving knobs. All bounds are per worker.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker thread count (≥ 1).
    pub workers: usize,
    /// Max requests outstanding per worker before shedding.
    pub queue_capacity: usize,
    /// Interpretation-cache entries per worker (0 disables caching).
    pub interp_cache: usize,
    /// Estimated ticks to serve one request, used for deadline
    /// admission: a request whose projected completion
    /// (`now + (depth + 1) × estimate`) exceeds its deadline is
    /// rejected up front instead of timing out in queue.
    pub service_estimate: u64,
    /// Retry budget for transiently-faulted attempts (backoff is
    /// accounted in ticks, never slept).
    pub retry: RetryPolicy,
    /// Per-(worker, interpreter-family) circuit-breaker thresholds.
    pub breaker: BreakerPolicy,
    /// Cost-aware load shedding (`None` = off, the default — leaving
    /// admission byte-identical to the pre-cost runtime). When set,
    /// the submitter remembers the estimated plan cost of every
    /// answered standalone question; once a target queue is under
    /// pressure, repeat questions whose learned cost exceeds the
    /// threshold are shed *before* the queue fills — expensive plans
    /// go first, cheap ones keep flowing.
    pub cost_shed: Option<CostShedPolicy>,
    /// High/low-watermark overload control (`None` = off, the default
    /// — leaving admission byte-identical to the pre-overload
    /// runtime). When set, the submitter watches the credit ledger's
    /// *total* outstanding count: crossing `high_watermark` opens an
    /// overload episode in which learned-expensive standalone repeats
    /// and standalone traffic from tenants over their fair share are
    /// shed at admission; the episode closes — deterministically, at
    /// the latest at the next drain, which returns every credit — once
    /// pressure falls back to `low_watermark`. Dialogue turns are
    /// never overload-shed: session state must advance (see the
    /// DESIGN.md soak & overload model for why that is deliberate).
    pub overload: Option<OverloadPolicy>,
    /// Answer standalone questions through the Ask → Plan → Approve
    /// path ([`NliPipeline::ask_approved_bounded`]): gather the
    /// family's candidate set, validate each candidate before
    /// execution, execute the first survivor, and journal the approved
    /// plan with its provenance digest as an audit record (see
    /// [`crate::journal::AuditRecord`]). `false` (the default) keeps
    /// the classic pick-first path byte-identical to the pre-candidate
    /// runtime. Dialogue turns are unaffected either way.
    pub approved_mode: bool,
}

/// Knobs for cost-aware shedding (see [`ServerConfig::cost_shed`]).
/// Both the engagement point and the decision are submitter-owned
/// state, so cost sheds are as deterministic as every other admission
/// outcome.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CostShedPolicy {
    /// Queue depth at/above which the policy engages (0 = always).
    pub pressure_depth: usize,
    /// Learned plan cost above which an engaged request is shed.
    pub cost_threshold: u64,
}

/// Knobs for the high/low-watermark overload controller (see
/// [`ServerConfig::overload`]). Pressure is measured on the credit
/// ledger — the submitter's own total of admitted-but-undrained
/// requests — so every overload decision is a pure function of the
/// submit/drain sequence, deterministic like all other admission.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OverloadPolicy {
    /// Total outstanding requests at/above which an overload episode
    /// opens.
    pub high_watermark: usize,
    /// Total outstanding requests at/below which an open episode
    /// closes (must be ≤ `high_watermark`). A drain returns every
    /// credit, so pressure reaches 0 ≤ `low_watermark` there — the
    /// drain-to-empty invariant that guarantees recovery.
    pub low_watermark: usize,
    /// Learned plan cost above which an engaged standalone repeat is
    /// shed — the "expensive work goes first" half of degradation.
    pub cost_threshold: u64,
    /// Opt-in early warning: when the server runs with a
    /// [`crate::HealthHub`] (see [`crate::ServeObs::with_health`]) and
    /// the maximum short-span SLO burn rate (milli) reaches this
    /// value, an overload episode opens *before* the high watermark —
    /// the controller reacts to the budget-burn trend, not only to
    /// instantaneous queue pressure. The burn signal changes only at
    /// drains, so consulting it at submit time keeps admission a pure
    /// function of the submit/drain sequence. `None` (the default)
    /// preserves pre-existing behavior bit for bit.
    pub early_warning: Option<u64>,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            workers: 2,
            queue_capacity: 64,
            interp_cache: 256,
            service_estimate: 1,
            retry: RetryPolicy::default(),
            breaker: BreakerPolicy::default(),
            cost_shed: None,
            overload: None,
            approved_mode: false,
        }
    }
}

/// What happened to a submitted request, decided at admission.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admission {
    /// Queued on `worker`; a [`Completion`] will arrive at the next
    /// drain.
    Admitted {
        /// Request id (submission order, starting at 0).
        id: u64,
        /// Worker the request was routed to.
        worker: usize,
    },
    /// Rejected: the target worker's queue was full.
    Shed {
        /// Request id.
        id: u64,
    },
    /// Rejected: the deadline had passed or could not be met.
    DeadlineExceeded {
        /// Request id.
        id: u64,
    },
    /// Rejected: every worker in the pool has died, so there is no
    /// live worker to route to (see the crash-recovery notes in the
    /// module docs).
    Refused {
        /// Request id.
        id: u64,
    },
}

impl Admission {
    /// The request id this admission decision is about.
    pub fn id(&self) -> u64 {
        match *self {
            Admission::Admitted { id, .. }
            | Admission::Shed { id }
            | Admission::DeadlineExceeded { id }
            | Admission::Refused { id } => id,
        }
    }
}

/// The terminal outcome of one request.
#[derive(Debug, Clone, PartialEq)]
pub enum Disposition {
    /// A standalone question, answered.
    Answered {
        /// Rendered SQL that produced the answer.
        sql: String,
        /// Rendered result rows (`col=value` cells joined by `, `).
        rows: Vec<String>,
        /// Whether the interpretation cache served this.
        from_cache: bool,
    },
    /// A dialogue turn, processed by the session's manager.
    SessionReply {
        /// The manager's user-facing response line.
        response: String,
        /// SQL executed this turn, if the turn produced one.
        sql: Option<String>,
        /// Whether the manager accepted the dialogue act.
        accepted: bool,
    },
    /// Answered, but by a weaker interpreter family because the
    /// preferred one was faulted (see [`nlidb_core::fallback`]).
    /// Never served from or written to the interpretation cache — the
    /// cache holds full-fidelity answers only.
    Degraded {
        /// Rendered SQL that produced the answer.
        sql: String,
        /// Rendered result rows (`col=value` cells joined by `, `).
        rows: Vec<String>,
        /// Label of the family that actually served it (e.g.
        /// `"entity"`, `"pattern"`).
        served_by: &'static str,
    },
    /// The pipeline produced no interpretation / failed to execute.
    Refused {
        /// The pipeline's error rendering.
        reason: String,
    },
    /// Never queued: queue full at admission.
    Shed,
    /// Never queued: deadline unmeetable at admission.
    DeadlineExceeded,
}

/// One finished request.
#[derive(Debug, Clone, PartialEq)]
pub struct Completion {
    /// Request id (submission order).
    pub id: u64,
    /// Worker that processed it (`None` for admission-time rejects).
    pub worker: Option<usize>,
    /// Session id, for dialogue turns.
    pub session: Option<u64>,
    /// Estimated logical cost of the executed plan, present for
    /// full-fidelity answers (cache hits replay the value learned at
    /// the miss, so hit and miss completions carry the same cost).
    /// Like cache provenance, this is accounting — it is excluded
    /// from [`Completion::signature`].
    pub plan_cost: Option<u64>,
    /// The outcome.
    pub disposition: Disposition,
}

impl Completion {
    /// A stable one-line digest of the *semantic* outcome — everything
    /// except cache provenance (`from_cache`) and worker placement.
    /// Two serving runs are equivalent iff their per-id signatures
    /// match; E12 and the equivalence tests compare exactly this.
    pub fn signature(&self) -> String {
        match &self.disposition {
            Disposition::Answered { sql, rows, .. } => {
                format!(
                    "#{} answered sql=[{}] rows=[{}]",
                    self.id,
                    sql,
                    rows.join(" ; ")
                )
            }
            Disposition::SessionReply {
                response,
                sql,
                accepted,
            } => format!(
                "#{} session={:?} accepted={} sql={:?} response=[{}]",
                self.id, self.session, accepted, sql, response
            ),
            Disposition::Degraded {
                sql,
                rows,
                served_by,
            } => format!(
                "#{} degraded[{}] sql=[{}] rows=[{}]",
                self.id,
                served_by,
                sql,
                rows.join(" ; ")
            ),
            Disposition::Refused { reason } => format!("#{} refused [{}]", self.id, reason),
            Disposition::Shed => format!("#{} shed", self.id),
            Disposition::DeadlineExceeded => format!("#{} deadline", self.id),
        }
    }
}

/// Work sent to a worker thread. The envelope carries the admission
/// facts the worker's tracer needs (the single-threaded submitter
/// recorded them, so they are exact): the clock tick at admission and
/// how many requests were queued ahead. The deadline and redelivery
/// fields exist for crash recovery — a job bounced off a dead worker
/// is re-admitted from this same envelope.
struct Job {
    id: u64,
    /// Registration index of the owning tenant (0 in a single-tenant
    /// server): selects the worker's per-tenant cache, sessions, and
    /// breakers, and the tenant's metrics/journal.
    tenant: usize,
    submit_tick: u64,
    queued_behind: usize,
    /// Original deadline, re-checked at every re-admission.
    deadline: Option<u64>,
    /// How many times this job has bounced off a dead worker.
    redeliveries: u32,
    /// The most recent dead worker it bounced off.
    bounced_from: Option<usize>,
    work: Work,
}

enum Work {
    Single { question: String },
    Turn { session: u64, utterance: String },
}

/// What a worker sends back on the completion channel: a finished
/// request, or a job bounced off a dead worker for the submitter to
/// re-admit during the current drain.
enum Delivery {
    Done(Completion),
    Bounce { worker: usize, job: Job },
}

/// Everything the runtime holds for one tenant, frozen at server
/// start: the trained pipeline, the policy rendered into its enforced
/// form (ladder, budget, cache size), and the tenant's own metrics
/// and write-ahead journal. Indexed by registration order.
struct TenantRuntime {
    name: String,
    fingerprint: u64,
    pipeline: Arc<NliPipeline>,
    /// Degradation ladder starting at the policy's rung ceiling.
    ladder: &'static [InterpreterKind],
    /// Lifetime admission budget (`None` = unlimited).
    admission_budget: Option<u64>,
    /// Estimated-plan-cost ceiling (`None` = unlimited), enforced by
    /// the worker before execution.
    cost_ceiling: Option<u64>,
    /// Per-worker interpretation-cache entries (0 = disabled).
    cache_capacity: usize,
    metrics: ServeMetrics,
    journal: SessionJournal,
}

/// State shared between the submitter and all workers.
struct Shared {
    /// Registered tenants, in registration order (never empty).
    tenants: Vec<TenantRuntime>,
    /// Whole-runtime counters; every increment also lands in the
    /// owning tenant's [`TenantRuntime::metrics`] (see
    /// [`ScopedMetrics`]).
    metrics: ServeMetrics,
    hook: Option<RequestHook>,
    clock: Arc<dyn Clock>,
    obs: Option<ServeObs>,
    /// Annotate traces with tenant names — true only for multi-tenant
    /// servers, so single-tenant traces stay byte-identical to the
    /// pre-tenancy runtime (E14/E16).
    label_tenants: bool,
    /// Serve standalone questions via the approved (candidate
    /// validation) path; see [`ServerConfig::approved_mode`].
    approved_mode: bool,
}

/// Lowercase + whitespace-collapse: the cache/routing key form, so
/// "Total sales  by region" and "total sales by region" unify.
pub fn normalize_question(question: &str) -> String {
    let mut out = String::with_capacity(question.len());
    let mut pending_space = false;
    for c in question.trim().chars() {
        if c.is_whitespace() {
            pending_space = true;
        } else {
            if pending_space && !out.is_empty() {
                out.push(' ');
            }
            pending_space = false;
            for l in c.to_lowercase() {
                out.push(l);
            }
        }
    }
    out
}

/// FNV-1a — a fixed, seedless hash, so routing never depends on
/// `RandomState`.
pub(crate) fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The routing salt for a tenant's registration index: a multiple of
/// the 64-bit golden-ratio constant, XORed into the content address
/// before the worker modulus so each tenant's traffic spreads over
/// the pool independently. Index 0 maps to salt 0 — a single-tenant
/// server routes exactly like the pre-tenancy runtime.
fn tenant_salt(tenant: usize) -> u64 {
    (tenant as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15)
}

/// The serving runtime. Owns the worker pool; dropped or
/// [`Server::shutdown`] joins it.
pub struct Server {
    shared: Arc<Shared>,
    config: ServerConfig,
    fingerprint: u64,
    senders: Vec<mpsc::Sender<Job>>,
    completion_rx: mpsc::Receiver<Delivery>,
    handles: Vec<JoinHandle<()>>,
    /// Per-worker outstanding counts — the credit ledger. Owned by the
    /// submitter thread; workers never touch it (see module docs).
    outstanding: Vec<usize>,
    /// Workers known dead, learned from bounced jobs at drain time.
    /// Owned by the submitter like the credit ledger, so routing
    /// around a corpse is as deterministic as admission itself.
    dead: Vec<bool>,
    in_flight: usize,
    /// Admission-time rejects, merged into the next drain.
    rejected: Vec<Completion>,
    /// Lifetime admissions per tenant, charged against each tenant's
    /// [`TenantPolicy::admission_budget`]. Submitter-owned, like the
    /// credit ledger, so quota refusals are deterministic.
    admitted_per_tenant: Vec<u64>,
    /// Learned plan cost per (tenant, normalized question), fed from
    /// completions at drain time; the memory cost-aware shedding
    /// consults. Maintained only when [`ServerConfig::cost_shed`] is
    /// set. Submitter-owned, like the credit ledger.
    plan_costs: HashMap<(usize, String), u64>,
    /// Admitted standalone questions awaiting cost learning at the
    /// next drain: request id → (tenant, normalized question).
    pending_costs: HashMap<u64, (usize, String)>,
    /// Whether an overload episode is open (see
    /// [`ServerConfig::overload`]). Submitter-owned, like the credit
    /// ledger it watches.
    overloaded: bool,
    /// Admissions per tenant during the open overload episode — the
    /// numerators of the fair-share check. Zeroed when an episode
    /// opens.
    episode_admitted: Vec<u64>,
    /// Total admissions during the open overload episode.
    episode_total: u64,
    /// Submitted requests awaiting their health feed at the next
    /// drain: request id → (tenant, submit tick). Maintained only
    /// when the attached [`ServeObs`] carries a [`HealthHub`]; empty
    /// otherwise.
    health_meta: HashMap<u64, (usize, u64)>,
    next_id: u64,
}

impl Server {
    /// Start a pool over a trained, immutable pipeline.
    pub fn start(
        pipeline: Arc<NliPipeline>,
        config: ServerConfig,
        clock: Arc<dyn Clock>,
    ) -> Server {
        Server::start_with_hook(pipeline, config, clock, None)
    }

    /// [`Server::start`], with a per-request hook (see [`RequestHook`]).
    pub fn start_with_hook(
        pipeline: Arc<NliPipeline>,
        config: ServerConfig,
        clock: Arc<dyn Clock>,
        hook: Option<RequestHook>,
    ) -> Server {
        Server::start_observed(pipeline, config, clock, hook, None)
    }

    /// [`Server::start_with_hook`], with optional observability: when
    /// `obs` is given, every request (admitted or rejected) finishes
    /// as one span tree in the sink and feeds the registry's
    /// per-stage cost histograms. Tracing never changes dispositions —
    /// the observed completion stream is signature-identical to the
    /// unobserved one.
    pub fn start_observed(
        pipeline: Arc<NliPipeline>,
        config: ServerConfig,
        clock: Arc<dyn Clock>,
        hook: Option<RequestHook>,
        obs: Option<ServeObs>,
    ) -> Server {
        let mut registry = TenantRegistry::new();
        registry.register("default", pipeline, TenantPolicy::default());
        Server::start_registry(&registry, config, clock, hook, obs)
    }

    /// Start a pool over every tenant in `registry` (the engine behind
    /// both the single-tenant constructors above — they register one
    /// tenant named `"default"` — and [`crate::TenantServer`]).
    ///
    /// # Panics
    ///
    /// Panics if the registry is empty.
    pub(crate) fn start_registry(
        registry: &TenantRegistry,
        config: ServerConfig,
        clock: Arc<dyn Clock>,
        hook: Option<RequestHook>,
        obs: Option<ServeObs>,
    ) -> Server {
        assert!(!registry.is_empty(), "cannot serve zero tenants");
        if let Some(policy) = &config.overload {
            assert!(
                policy.low_watermark <= policy.high_watermark,
                "overload low watermark must not exceed the high watermark"
            );
        }
        let config = ServerConfig {
            workers: config.workers.max(1),
            ..config
        };
        let tenants: Vec<TenantRuntime> = registry
            .entries()
            .iter()
            .map(|e| {
                let cache_capacity = e.policy().interp_cache.unwrap_or(config.interp_cache);
                TenantRuntime {
                    name: e.name().to_string(),
                    fingerprint: e.fingerprint(),
                    pipeline: Arc::clone(e.pipeline()),
                    ladder: degradation_ladder(e.policy().rung_ceiling),
                    admission_budget: e.policy().admission_budget,
                    cost_ceiling: e.policy().cost_ceiling,
                    cache_capacity,
                    metrics: ServeMetrics::new(config.workers, cache_capacity == 0),
                    journal: SessionJournal::new(),
                }
            })
            .collect();
        let fingerprint = tenants[0].fingerprint;
        let tenant_count = tenants.len();
        let shared = Arc::new(Shared {
            label_tenants: tenant_count > 1,
            approved_mode: config.approved_mode,
            tenants,
            metrics: ServeMetrics::new(config.workers, config.interp_cache == 0),
            hook,
            clock,
            obs,
        });
        let (completion_tx, completion_rx) = mpsc::channel::<Delivery>();
        let mut senders = Vec::with_capacity(config.workers);
        let mut handles = Vec::with_capacity(config.workers);
        for worker in 0..config.workers {
            let (tx, rx) = mpsc::channel::<Job>();
            senders.push(tx);
            let shared = Arc::clone(&shared);
            let completions = completion_tx.clone();
            let retry = config.retry;
            let breaker = config.breaker;
            handles.push(
                std::thread::Builder::new()
                    .name(format!("nlidb-serve-{worker}"))
                    .spawn(move || worker_loop(worker, &shared, rx, completions, retry, breaker))
                    .expect("spawn serve worker"),
            );
        }
        // `completion_tx` clones live in the workers; dropping the
        // original here means `drain` can detect worker death instead
        // of hanging.
        drop(completion_tx);
        Server {
            shared,
            fingerprint,
            outstanding: vec![0; config.workers],
            dead: vec![false; config.workers],
            in_flight: 0,
            rejected: Vec::new(),
            admitted_per_tenant: vec![0; tenant_count],
            plan_costs: HashMap::new(),
            pending_costs: HashMap::new(),
            overloaded: false,
            episode_admitted: vec![0; tenant_count],
            episode_total: 0,
            health_meta: HashMap::new(),
            next_id: 0,
            config,
            senders,
            completion_rx,
            handles,
        }
    }

    /// The worker a request would be routed to: its content-addressed
    /// home worker, or — when that worker has died — the next live
    /// worker after it (where a remapped session is rebuilt from the
    /// journal). With every worker dead the home worker is returned;
    /// [`Server::submit`] refuses such requests at admission.
    pub fn route(&self, spec: &RequestSpec) -> usize {
        self.route_for(0, spec)
    }

    /// [`Server::route`] for the tenant at registration index
    /// `tenant`: the tenant's salt is XORed into the content address
    /// before the worker modulus (salt 0 for tenant 0, so the public
    /// single-tenant `route` is unchanged).
    pub(crate) fn route_for(&self, tenant: usize, spec: &RequestSpec) -> usize {
        let salt = tenant_salt(tenant);
        let base = match spec.session {
            Some(id) => ((id ^ salt) % self.config.workers as u64) as usize,
            None => {
                let key = normalize_question(&spec.question);
                ((fnv1a(key.as_bytes()) ^ salt) % self.config.workers as u64) as usize
            }
        };
        self.live_worker_from(base).unwrap_or(base)
    }

    /// First live worker at or after `base`, wrapping; `None` when the
    /// whole pool is dead. Depends only on which workers have bounced
    /// work so far — submitter-owned state — never on thread timing.
    fn live_worker_from(&self, base: usize) -> Option<usize> {
        let n = self.config.workers;
        (0..n).map(|k| (base + k) % n).find(|&w| !self.dead[w])
    }

    /// Whether the submitter learns plan costs from completions — both
    /// the cost-aware shedder and the overload controller consume the
    /// learned map.
    fn learn_costs(&self) -> bool {
        self.config.cost_shed.is_some() || self.config.overload.is_some()
    }

    /// Whether an overload episode is currently open. Submitter state:
    /// meaningful between a submit and the next drain.
    pub fn is_overloaded(&self) -> bool {
        self.overloaded
    }

    /// The attached health hub, if the server was started with
    /// [`ServeObs::with_health`](crate::ServeObs::with_health).
    fn health_hub(&self) -> Option<&Arc<crate::health::HealthHub>> {
        self.shared.obs.as_ref().and_then(|o| o.health.as_ref())
    }

    /// The attached health hub, if any — per-tenant window matrices,
    /// burn rates, and the fire/clear event log live there.
    pub fn health(&self) -> Option<Arc<crate::health::HealthHub>> {
        self.health_hub().cloned()
    }

    /// Offer one request. Decides admit/shed/deadline *now* (see
    /// module docs); admitted work completes at the next [`Server::drain`].
    pub fn submit(&mut self, spec: &RequestSpec) -> Admission {
        self.submit_for(0, spec)
    }

    /// [`Server::submit`] on behalf of the tenant at registration
    /// index `tenant`: counters land in the tenant's scope as well as
    /// the global one, the tenant's admission budget is enforced, and
    /// routing carries the tenant's salt.
    pub(crate) fn submit_for(&mut self, tenant: usize, spec: &RequestSpec) -> Admission {
        let id = self.next_id;
        self.next_id += 1;
        let shared = Arc::clone(&self.shared);
        let metrics = ScopedMetrics {
            global: &shared.metrics,
            tenant: &shared.tenants[tenant].metrics,
        };
        metrics.add(|m| &m.submitted, 1);
        // Health bookkeeping: remember who submitted when, so the
        // drain can feed disposition + sojourn into the tenant's
        // windowed scope. Only when a hub is attached — the map stays
        // empty (and unhashed) on every default path.
        if self.health_hub().is_some() {
            self.health_meta.insert(id, (tenant, shared.clock.now()));
        }
        // Overload watermark: between drains the credit ledger's total
        // is monotone non-decreasing, so the episode opens on the
        // first offer that finds pressure at/above the high watermark
        // — a pure function of the submit/drain sequence. With the
        // opt-in early-warning knob, a hot short-window SLO burn rate
        // (which moves only at drains) opens the episode below the
        // watermark.
        if let Some(policy) = self.config.overload {
            if !self.overloaded {
                let pressure = self.in_flight >= policy.high_watermark;
                let early = !pressure
                    && policy.early_warning.is_some_and(|threshold| {
                        self.health_hub()
                            .is_some_and(|hub| hub.max_short_burn_milli() >= threshold)
                    });
                if pressure || early {
                    self.overloaded = true;
                    self.episode_admitted.iter_mut().for_each(|e| *e = 0);
                    self.episode_total = 0;
                    shared
                        .metrics
                        .overload_entered
                        .fetch_add(1, Ordering::Relaxed);
                    if early {
                        shared
                            .metrics
                            .overload_entered_early
                            .fetch_add(1, Ordering::Relaxed);
                    }
                }
            }
        }
        if self.dead.iter().all(|&d| d) {
            metrics.add(|m| &m.refused, 1);
            self.trace_reject(tenant, id, spec, 0, "refused");
            self.rejected.push(Completion {
                id,
                worker: None,
                session: spec.session,
                plan_cost: None,
                disposition: Disposition::Refused {
                    reason: "no live workers".to_string(),
                },
            });
            return Admission::Refused { id };
        }
        if let Some(budget) = shared.tenants[tenant].admission_budget {
            if self.admitted_per_tenant[tenant] >= budget {
                metrics.add(|m| &m.quota_refused, 1);
                self.trace_reject(tenant, id, spec, 0, "quota_refused");
                self.rejected.push(Completion {
                    id,
                    worker: None,
                    session: spec.session,
                    plan_cost: None,
                    disposition: Disposition::Refused {
                        reason: "tenant admission budget exhausted".to_string(),
                    },
                });
                return Admission::Refused { id };
            }
        }
        let worker = self.route_for(tenant, spec);
        let depth = self.outstanding[worker];
        let now = shared.clock.now();

        if let Some(deadline) = spec.deadline {
            let projected = now + (depth as u64 + 1) * self.config.service_estimate;
            if now > deadline || projected > deadline {
                metrics.add(|m| &m.shed_deadline, 1);
                self.trace_reject(tenant, id, spec, depth, "deadline_exceeded");
                self.rejected.push(Completion {
                    id,
                    worker: None,
                    session: spec.session,
                    plan_cost: None,
                    disposition: Disposition::DeadlineExceeded,
                });
                return Admission::DeadlineExceeded { id };
            }
        }
        // Overload shedding: while an episode is open, standalone work
        // degrades along two axes — learned-expensive repeats go
        // first, and tenants over their fair share of the episode's
        // admissions are trimmed back. Dialogue turns always pass:
        // session state must advance (the deliberate non-backpressure
        // documented in DESIGN.md's soak & overload model). First
        // sightings have no learned cost and pass the cost axis.
        if self.overloaded && spec.session.is_none() {
            let policy = self.config.overload.expect("overloaded implies a policy");
            let key = (tenant, normalize_question(&spec.question));
            let expensive = self
                .plan_costs
                .get(&key)
                .is_some_and(|&c| c > policy.cost_threshold);
            // Fair share with slack: tenant t is over when its episode
            // admissions exceed (total + N) / N — impossible for a
            // single tenant, where admissions equal the total.
            let tenant_count = self.episode_admitted.len() as u64;
            let over_share =
                self.episode_admitted[tenant] * tenant_count > self.episode_total + tenant_count;
            if expensive || over_share {
                metrics.add(|m| &m.shed_overload, 1);
                self.trace_reject(tenant, id, spec, depth, "shed_overload");
                self.rejected.push(Completion {
                    id,
                    worker: None,
                    session: None,
                    plan_cost: self.plan_costs.get(&key).copied(),
                    disposition: Disposition::Shed,
                });
                return Admission::Shed { id };
            }
        }
        // Cost-aware shedding: under pressure, a standalone question
        // whose *learned* plan cost exceeds the threshold is shed
        // before the queue fills — expensive plans go first. First
        // sightings have no learned cost and pass through; dialogue
        // turns are never cost-shed (session state must advance).
        if let Some(policy) = self.config.cost_shed {
            if depth >= policy.pressure_depth && spec.session.is_none() {
                let key = (tenant, normalize_question(&spec.question));
                if self
                    .plan_costs
                    .get(&key)
                    .is_some_and(|&c| c > policy.cost_threshold)
                {
                    metrics.add(|m| &m.shed_cost, 1);
                    self.trace_reject(tenant, id, spec, depth, "shed_cost");
                    self.rejected.push(Completion {
                        id,
                        worker: None,
                        session: None,
                        plan_cost: self.plan_costs.get(&key).copied(),
                        disposition: Disposition::Shed,
                    });
                    return Admission::Shed { id };
                }
            }
        }
        if depth >= self.config.queue_capacity {
            metrics.add(|m| &m.shed_full, 1);
            self.trace_reject(tenant, id, spec, depth, "shed");
            self.rejected.push(Completion {
                id,
                worker: None,
                session: spec.session,
                plan_cost: None,
                disposition: Disposition::Shed,
            });
            return Admission::Shed { id };
        }

        let job = Job {
            id,
            tenant,
            submit_tick: now,
            queued_behind: depth,
            deadline: spec.deadline,
            redeliveries: 0,
            bounced_from: None,
            work: match spec.session {
                Some(session) => Work::Turn {
                    session,
                    utterance: spec.question.clone(),
                },
                None => Work::Single {
                    question: spec.question.clone(),
                },
            },
        };
        self.senders[worker]
            .send(job)
            .expect("worker alive while server running");
        if self.learn_costs() && spec.session.is_none() {
            self.pending_costs
                .insert(id, (tenant, normalize_question(&spec.question)));
        }
        self.outstanding[worker] += 1;
        self.in_flight += 1;
        self.admitted_per_tenant[tenant] += 1;
        if self.overloaded {
            self.episode_admitted[tenant] += 1;
            self.episode_total += 1;
        }
        metrics.add(|m| &m.admitted, 1);
        metrics.observe_depth(self.outstanding[worker] as u64);
        Admission::Admitted { id, worker }
    }

    /// Refuse a request that names no registered tenant. The refusal
    /// is counted against the global scope only (there is no tenant to
    /// attribute it to) and surfaces as a completion at the next
    /// drain, like every other admission-time reject.
    pub(crate) fn refuse_unknown(&mut self, spec: &RequestSpec) -> Admission {
        let id = self.next_id;
        self.next_id += 1;
        self.shared
            .metrics
            .submitted
            .fetch_add(1, Ordering::Relaxed);
        self.shared.metrics.refused.fetch_add(1, Ordering::Relaxed);
        self.rejected.push(Completion {
            id,
            worker: None,
            session: spec.session,
            plan_cost: None,
            disposition: Disposition::Refused {
                reason: "unknown tenant fingerprint".to_string(),
            },
        });
        Admission::Refused { id }
    }

    /// Record an admission-time reject as a two-span trace (the
    /// request never reaches a worker, so the submitter is the only
    /// place this evidence exists).
    fn trace_reject(
        &self,
        tenant: usize,
        id: u64,
        spec: &RequestSpec,
        depth: usize,
        outcome: &str,
    ) {
        let Some(obs) = &self.shared.obs else { return };
        let mut tb = TraceBuilder::new(id, Arc::clone(&self.shared.clock));
        let root = tb.open("request");
        tb.annotate(root, "id", id.to_string());
        tb.annotate(
            root,
            "kind",
            if spec.session.is_some() {
                "turn"
            } else {
                "single"
            },
        );
        if self.shared.label_tenants {
            tb.annotate(root, "tenant", self.shared.tenants[tenant].name.clone());
        }
        tb.annotate(root, "outcome", outcome);
        let adm = tb.open("admission");
        tb.annotate(adm, "depth", depth.to_string());
        tb.annotate(adm, "outcome", outcome);
        tb.close(adm);
        tb.close(root);
        obs.record(tb.finish());
    }

    /// Wait for every admitted request to finish; return all outcomes
    /// since the last drain (admission-time rejects included), in
    /// submission order. Returns queue credits to every worker.
    ///
    /// This is also where crash recovery happens: a job bounced off a
    /// dead worker marks that worker dead and is re-admitted to a live
    /// one (see [`Server::readmit`]). Re-admission runs in rounds —
    /// every expected delivery is received before any bounce goes back
    /// out, and bounces are replayed in request-id order — so the
    /// recovered outcome stream is a pure function of the submit
    /// sequence, never of which thread's messages arrived first.
    pub fn drain(&mut self) -> Vec<Completion> {
        let mut out = Vec::with_capacity(self.in_flight + self.rejected.len());
        let mut expected = self.in_flight;
        while expected > 0 {
            let mut bounces: Vec<(usize, Job)> = Vec::new();
            while expected > 0 {
                match self
                    .completion_rx
                    .recv()
                    .expect("workers alive while draining")
                {
                    Delivery::Done(c) => out.push(c),
                    Delivery::Bounce { worker, job } => bounces.push((worker, job)),
                }
                expected -= 1;
            }
            bounces.sort_by_key(|(_, job)| job.id);
            for (worker, job) in bounces {
                self.dead[worker] = true;
                match self.readmit(worker, job) {
                    Some(c) => out.push(c),
                    None => expected += 1,
                }
            }
        }
        self.in_flight = 0;
        self.outstanding.iter_mut().for_each(|d| *d = 0);
        // Overload recovery: the drain returned every credit, so
        // pressure is 0 — at or below any low watermark. Every episode
        // therefore closes no later than the next drain: the
        // controller can shed, never wedge.
        if self.overloaded && self.in_flight <= self.config.overload.map_or(0, |p| p.low_watermark)
        {
            self.overloaded = false;
            self.shared
                .metrics
                .overload_recovered
                .fetch_add(1, Ordering::Relaxed);
        }
        out.append(&mut self.rejected);
        out.sort_by_key(|c| c.id);
        // Learn plan costs for the cost-aware shedder and the overload
        // controller. Requests that finished without a cost (refusals,
        // bounces) still clear their pending entry so the map never
        // grows unbounded.
        if self.learn_costs() {
            for c in &out {
                if let Some(key) = self.pending_costs.remove(&c.id) {
                    if let Some(cost) = c.plan_cost {
                        self.plan_costs.insert(key, cost);
                    }
                }
            }
        }
        // Health feed: dispositions and sojourns land in the tenant
        // windowed scopes, then every SLO engine is evaluated at the
        // drain tick. `out` is id-sorted, so the feed order — and
        // therefore the whole health layer — is a pure function of
        // the completion stream. Unknown-tenant refusals
        // (`refuse_unknown`) never enter `health_meta` and are
        // deliberately skipped: they have no tenant scope.
        if let Some(hub) = self.health_hub().cloned() {
            let tick = self.shared.clock.now();
            for c in &out {
                if let Some((tenant, submitted)) = self.health_meta.remove(&c.id) {
                    hub.feed(
                        &self.shared.tenants[tenant].name,
                        &c.disposition,
                        tick.saturating_sub(submitted),
                        tick,
                    );
                }
            }
            hub.evaluate(tick, self.shared.obs.as_ref());
        }
        out
    }

    /// Re-admit one job bounced off dead worker `from`. `None` means
    /// the job went back out to a live worker (its completion arrives
    /// with the rest of the drain); `Some` is a terminal completion —
    /// redelivery budget exhausted, deadline unmeetable, or no live
    /// worker left. Re-admission deliberately skips the queue-capacity
    /// check: the request already paid for its slot at original
    /// admission, and the drain is emptying every queue anyway.
    fn readmit(&mut self, from: usize, mut job: Job) -> Option<Completion> {
        let shared = Arc::clone(&self.shared);
        let metrics = ScopedMetrics {
            global: &shared.metrics,
            tenant: &shared.tenants[job.tenant].metrics,
        };
        let session = match &job.work {
            Work::Turn { session, .. } => Some(*session),
            Work::Single { .. } => None,
        };
        job.redeliveries += 1;
        job.bounced_from = Some(from);
        // Redelivery rides the retry budget: a request does not get to
        // chase crashing workers forever.
        let budget = self.config.retry.max_retries.max(1);
        if job.redeliveries > budget {
            metrics.add(|m| &m.readmit_refused, 1);
            metrics.add(|m| &m.refused, 1);
            self.trace_bounce(
                job.tenant,
                job.id,
                session,
                from,
                job.redeliveries,
                "refused",
            );
            return Some(Completion {
                id: job.id,
                worker: None,
                session,
                plan_cost: None,
                disposition: Disposition::Refused {
                    reason: format!(
                        "redelivery budget exhausted after {} bounces",
                        job.redeliveries
                    ),
                },
            });
        }
        if let Some(deadline) = job.deadline {
            let projected = shared.clock.now() + self.config.service_estimate;
            if projected > deadline {
                metrics.add(|m| &m.readmit_refused, 1);
                metrics.add(|m| &m.shed_deadline, 1);
                self.trace_bounce(
                    job.tenant,
                    job.id,
                    session,
                    from,
                    job.redeliveries,
                    "deadline_exceeded",
                );
                return Some(Completion {
                    id: job.id,
                    worker: None,
                    session,
                    plan_cost: None,
                    disposition: Disposition::DeadlineExceeded,
                });
            }
        }
        let salt = tenant_salt(job.tenant);
        let base = match &job.work {
            Work::Turn { session, .. } => ((*session ^ salt) % self.config.workers as u64) as usize,
            Work::Single { question } => {
                ((fnv1a(normalize_question(question).as_bytes()) ^ salt)
                    % self.config.workers as u64) as usize
            }
        };
        match self.live_worker_from(base) {
            Some(target) => {
                metrics.add(|m| &m.readmitted, 1);
                self.senders[target]
                    .send(job)
                    .expect("live worker while draining");
                None
            }
            None => {
                metrics.add(|m| &m.readmit_refused, 1);
                metrics.add(|m| &m.refused, 1);
                self.trace_bounce(
                    job.tenant,
                    job.id,
                    session,
                    from,
                    job.redeliveries,
                    "refused",
                );
                Some(Completion {
                    id: job.id,
                    worker: None,
                    session,
                    plan_cost: None,
                    disposition: Disposition::Refused {
                        reason: "no live workers".to_string(),
                    },
                })
            }
        }
    }

    /// Record a terminal re-admission failure as a one-span trace (the
    /// bounced request never reaches another worker, so the submitter
    /// is the only place this evidence exists).
    fn trace_bounce(
        &self,
        tenant: usize,
        id: u64,
        session: Option<u64>,
        from: usize,
        redeliveries: u32,
        outcome: &str,
    ) {
        let Some(obs) = &self.shared.obs else { return };
        let mut tb = TraceBuilder::new(id, Arc::clone(&self.shared.clock));
        let root = tb.open("request");
        tb.annotate(root, "id", id.to_string());
        tb.annotate(
            root,
            "kind",
            if session.is_some() { "turn" } else { "single" },
        );
        if self.shared.label_tenants {
            tb.annotate(root, "tenant", self.shared.tenants[tenant].name.clone());
        }
        tb.annotate(root, "outcome", outcome);
        tb.annotate(root, "redeliveries", redeliveries.to_string());
        tb.annotate(root, "bounced_from", from.to_string());
        tb.close(root);
        obs.record(tb.finish());
    }

    /// The write-ahead session journal (one entry per committed
    /// dialogue turn; see [`crate::journal`]). Journals are
    /// per-tenant; this is tenant 0's — the only tenant of a server
    /// started through the public constructors.
    pub fn journal(&self) -> &SessionJournal {
        &self.shared.tenants[0].journal
    }

    /// Current counter snapshot.
    pub fn metrics(&self) -> MetricsSnapshot {
        self.shared.metrics.snapshot()
    }

    /// Counter snapshot for the tenant at registration index `tenant`.
    pub(crate) fn tenant_metrics_at(&self, tenant: usize) -> MetricsSnapshot {
        self.shared.tenants[tenant].metrics.snapshot()
    }

    /// Session journal of the tenant at registration index `tenant`.
    pub(crate) fn tenant_journal_at(&self, tenant: usize) -> &SessionJournal {
        &self.shared.tenants[tenant].journal
    }

    /// Name of the tenant at registration index `tenant`.
    pub(crate) fn tenant_name_at(&self, tenant: usize) -> &str {
        &self.shared.tenants[tenant].name
    }

    /// Number of registered tenants.
    pub(crate) fn tenant_count(&self) -> usize {
        self.shared.tenants.len()
    }

    /// The schema fingerprint baked into cache keys.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// Number of workers.
    pub fn workers(&self) -> usize {
        self.config.workers
    }

    /// Stop accepting work, join the pool, and return final metrics.
    /// Any still-queued work is completed first (workers drain their
    /// channels before exiting). Idempotent with the destructor: after
    /// `shutdown`, `Drop` has nothing left to join.
    pub fn shutdown(mut self) -> MetricsSnapshot {
        self.join_pool();
        self.shared.metrics.snapshot()
    }

    /// Close every job channel and join the worker threads. Worker
    /// panics are contained inside the workers themselves
    /// (`catch_unwind`), so a join failing is a genuine anomaly —
    /// counted as a worker death, never propagated as an opaque panic.
    fn join_pool(&mut self) {
        self.senders.clear(); // closes every job channel
        for h in self.handles.drain(..) {
            if h.join().is_err() {
                self.shared
                    .metrics
                    .worker_deaths
                    .fetch_add(1, Ordering::Relaxed);
            }
        }
    }
}

/// Dropping the server joins the pool, exactly as the struct docs
/// promise: still-queued work is completed (workers drain their
/// channels before exiting) and no worker thread is ever leaked.
impl Drop for Server {
    fn drop(&mut self) {
        self.join_pool();
    }
}

/// Render a result set to stable row strings (`col=value` cells).
fn render_rows(result: &ResultSet) -> Vec<String> {
    result
        .rows
        .iter()
        .map(|row| {
            row.iter()
                .zip(&result.columns)
                .map(|(v, c)| format!("{c}={v}"))
                .collect::<Vec<_>>()
                .join(", ")
        })
        .collect()
}

/// What [`ride_out_faults`] did for one rung: whether the attempt may
/// proceed, and the retry accounting the caller's tracer attributes to
/// its span.
struct FaultRide {
    /// `true`: proceed with the pipeline; `false`: abandon the rung
    /// (fatal fault, or transient budget exhausted).
    proceed: bool,
    /// Transient retries absorbed.
    retries: u32,
    /// Logical backoff ticks accounted to those retries.
    backoff: u64,
}

impl FaultRide {
    /// Annotate `span` with the retries this ride absorbed (no-op when
    /// it absorbed none — quiet rungs stay quiet in the trace).
    fn annotate(&self, tb: &mut TraceBuilder, span: SpanId) {
        if self.retries > 0 {
            tb.annotate(span, "retries", self.retries.to_string());
            tb.annotate(span, "backoff", self.backoff.to_string());
        }
    }
}

/// Consult the hook for the attempt described by `ctx`, absorbing
/// transient faults within the retry budget. An injected
/// [`InjectedFault::WorkerPanic`] panics right here — before any
/// pipeline or session state is touched — and is contained by the
/// `catch_unwind` in [`worker_loop`].
///
/// `attempt_base` is the job's redelivery count: a request re-admitted
/// after bouncing off a dead worker presents attempt numbers ≥ 1 to
/// the hook, so a panic pinned at attempt 0 fires exactly once and the
/// recovered delivery proceeds. The retry budget stays absolute
/// (`attempt < max_retries`) — it is per request, not per delivery.
fn ride_out_faults(
    hook: Option<&RequestHook>,
    metrics: ScopedMetrics<'_>,
    retry: &RetryPolicy,
    id: u64,
    rung: usize,
    attempt_base: u32,
) -> FaultRide {
    let mut ride = FaultRide {
        proceed: true,
        retries: 0,
        backoff: 0,
    };
    let Some(hook) = hook else { return ride };
    let mut attempt = attempt_base;
    loop {
        match hook(&HookCtx { id, rung, attempt }) {
            None => return ride,
            Some(InjectedFault::Transient) if attempt < retry.max_retries => {
                metrics.add(|m| &m.retries, 1);
                metrics.add(|m| &m.retry_backoff_ticks, retry.backoff(attempt));
                ride.retries += 1;
                ride.backoff += retry.backoff(attempt);
                attempt += 1;
            }
            Some(InjectedFault::WorkerPanic) => {
                panic!("injected worker panic (request #{id})")
            }
            Some(_) => {
                ride.proceed = false;
                return ride;
            }
        }
    }
}

/// A cached full-fidelity answer: rendered SQL, rendered rows, and
/// the plan's estimated logical cost (so a cache hit replays the same
/// `plan_cost` the miss reported).
type CachedAnswer = (String, Vec<String>, u64);

/// Walk the degradation ladder for one standalone question. Returns
/// the disposition plus the rendered answer to cache — present only
/// for a full-fidelity rung-0 answer; degraded answers are never
/// cached. When a tracer is passed, every rung gets a span recording
/// the breaker decision, absorbed retries, injected faults, and the
/// rung's outcome — the per-query evidence E14 reconciles against the
/// aggregate counters.
///
/// With `audit` set (approved mode), every rung asks through the
/// Ask → Plan → Approve path instead of pick-first: vetoed candidates
/// land in `candidates_rejected`, and every answer appends an
/// [`AuditRecord`] — the approved SQL, the losers' rejection reasons,
/// and the winner's provenance digest — to the tenant's journal
/// *before* the completion is released, so a bounced request that
/// re-runs approval elsewhere provably approves the same candidate.
#[allow(clippy::too_many_arguments)]
fn interpret_single(
    id: u64,
    question: &str,
    pipeline: &NliPipeline,
    hook: Option<&RequestHook>,
    metrics: ScopedMetrics<'_>,
    retry: &RetryPolicy,
    attempt_base: u32,
    ladder: &[InterpreterKind],
    cost_ceiling: Option<u64>,
    breakers: &mut [CircuitBreaker],
    audit: Option<&SessionJournal>,
    mut tracer: Option<&mut TraceBuilder>,
) -> (Disposition, Option<CachedAnswer>) {
    let mut last_refusal: Option<String> = None;
    for (rung, &kind) in ladder.iter().enumerate() {
        let span = tracer.as_deref_mut().map(|tb| {
            let s = tb.open("rung");
            tb.annotate(s, "rung", rung.to_string());
            tb.annotate(s, "family", kind.label());
            s
        });
        let seal = |tracer: &mut Option<&mut TraceBuilder>, key: &str, value: &str| {
            if let (Some(tb), Some(s)) = (tracer.as_deref_mut(), span) {
                tb.annotate(s, key, value);
                tb.annotate(s, "outcome", key_outcome(key, value));
                tb.close(s);
            }
        };
        if !breakers[rung].allow() {
            metrics.add(|m| &m.breaker_skips, 1);
            seal(&mut tracer, "breaker", "open");
            continue;
        }
        let ride = ride_out_faults(hook, metrics, retry, id, rung, attempt_base);
        if let (Some(tb), Some(s)) = (tracer.as_deref_mut(), span) {
            ride.annotate(tb, s);
        }
        if !ride.proceed {
            let tripped = breakers[rung].on_failure();
            if tripped {
                metrics.add(|m| &m.breaker_trips, 1);
            }
            if let (Some(tb), Some(s)) = (tracer.as_deref_mut(), span) {
                if tripped {
                    tb.annotate(s, "breaker", "tripped");
                }
            }
            seal(&mut tracer, "fault", "fatal");
            continue;
        }
        let asked = match audit {
            Some(journal) => {
                let approved = match tracer.as_deref_mut() {
                    Some(tb) => {
                        pipeline.ask_approved_with_trace_bounded(question, kind, tb, cost_ceiling)
                    }
                    None => pipeline.ask_approved_bounded(question, kind, cost_ceiling),
                };
                approved.map(|a| {
                    metrics.add(|m| &m.candidates_rejected, a.report.vetoed_count() as u64);
                    // Write-ahead: the audit record is visible before
                    // the completion, like every journal commit.
                    journal.append_audit(AuditRecord {
                        request_id: id,
                        question: question.to_string(),
                        sql: a.answer.sql.clone(),
                        candidate_count: a.report.candidate_count,
                        chosen_rank: a.report.chosen_rank,
                        rejections: a.report.rejected.iter().map(render_rejection).collect(),
                        provenance_digest: a.report.provenance_digest,
                    });
                    a.answer
                })
            }
            None => match tracer.as_deref_mut() {
                Some(tb) => pipeline.ask_with_trace_bounded(question, kind, tb, cost_ceiling),
                None => pipeline.ask_bounded(question, kind, cost_ceiling),
            },
        };
        match asked {
            Ok(answer) => {
                breakers[rung].on_success();
                let rows = render_rows(&answer.result);
                if rung == 0 {
                    metrics.add(|m| &m.answered, 1);
                    seal(&mut tracer, "served", "full");
                    let cost = answer.explain.est_cost;
                    return (
                        Disposition::Answered {
                            sql: answer.sql.clone(),
                            rows: rows.clone(),
                            from_cache: false,
                        },
                        Some((answer.sql, rows, cost)),
                    );
                }
                metrics.add(|m| &m.degraded, 1);
                seal(&mut tracer, "served", "degraded");
                return (
                    Disposition::Degraded {
                        sql: answer.sql,
                        rows,
                        served_by: kind.label(),
                    },
                    None,
                );
            }
            // A semantic refusal means the family is *healthy*: at
            // rung 0 the refusal stands (degrading past a healthy
            // refusal would trade precision for coverage); below it,
            // the next family down gets its chance. A cost-ceiling
            // refusal is policy, not health — it also stands at rung 0
            // (a weaker family would only re-estimate the same data).
            Err(e) => {
                breakers[rung].on_success();
                if matches!(e, nlidb_core::InterpretError::CostExceeded { .. }) {
                    metrics.add(|m| &m.cost_refused, 1);
                }
                if let nlidb_core::InterpretError::AllCandidatesRejected { count, .. } = &e {
                    metrics.add(|m| &m.candidates_rejected, *count as u64);
                }
                if rung == 0 {
                    metrics.add(|m| &m.refused, 1);
                    seal(&mut tracer, "refusal", "healthy");
                    return (
                        Disposition::Refused {
                            reason: e.to_string(),
                        },
                        None,
                    );
                }
                last_refusal = Some(e.to_string());
                seal(&mut tracer, "refusal", "pass");
            }
        }
    }
    metrics.add(|m| &m.refused, 1);
    let reason = match last_refusal {
        Some(r) => format!("degraded ladder exhausted: {r}"),
        None => "no interpreter family available (all rungs faulted or circuit-broken)".to_string(),
    };
    (Disposition::Refused { reason }, None)
}

/// Render one losing candidate for the audit trail: `#rank` plus its
/// rejection labels joined by `+`, matching the
/// [`nlidb_core::InterpretError::AllCandidatesRejected`] reason form.
fn render_rejection(r: &nlidb_core::pipeline::RejectedCandidate) -> String {
    let labels: Vec<&str> = r.reasons.iter().map(|x| x.label()).collect();
    format!("#{} {}", r.rank, labels.join("+"))
}

/// Map a rung's terminal annotation to its `outcome` value, so every
/// rung span carries a uniform `outcome` key whatever ended it.
fn key_outcome(key: &str, value: &str) -> &'static str {
    match (key, value) {
        ("breaker", "open") => "breaker_skipped",
        ("fault", _) => "faulted",
        ("served", "full") => "answered",
        ("served", "degraded") => "degraded",
        ("refusal", "healthy") => "refused",
        ("refusal", _) => "passed",
        _ => "unknown",
    }
}

/// A short label for the disposition, for the root span's `outcome`.
fn disposition_label(d: &Disposition) -> &'static str {
    match d {
        Disposition::Answered { .. } => "answered",
        Disposition::SessionReply { .. } => "session_reply",
        Disposition::Degraded { .. } => "degraded",
        Disposition::Refused { .. } => "refused",
        Disposition::Shed => "shed",
        Disposition::DeadlineExceeded => "deadline_exceeded",
    }
}

fn worker_loop(
    worker: usize,
    shared: &Shared,
    jobs: mpsc::Receiver<Job>,
    completions: mpsc::Sender<Delivery>,
    retry: RetryPolicy,
    breaker: BreakerPolicy,
) {
    let hook = shared.hook.as_ref();
    // All worker-retained state is per-(worker, tenant): caches and
    // breakers indexed by the tenant's registration index, sessions
    // keyed by (tenant, session id) — one tenant's questions can never
    // observe another's cached answers, sessions, or breaker state.
    let mut caches: HashMap<usize, LruCache<String, CachedAnswer>> = HashMap::new();
    let mut sessions: HashMap<(usize, u64), ConversationSession<'_>> = HashMap::new();
    let mut breakers: Vec<Vec<CircuitBreaker>> = shared
        .tenants
        .iter()
        .map(|t| {
            t.ladder
                .iter()
                .map(|_| CircuitBreaker::new(breaker))
                .collect()
        })
        .collect();
    // Set on a contained panic. A dead worker frees everything it
    // retained (sessions, caches — mid-mutation state is not trusted
    // and sessions are rebuilt elsewhere from the journal) and keeps
    // only a drain-only path: every envelope still in its queue
    // bounces back to the submitter for re-admission, so admission
    // credits, `drain`, and `shutdown` all stay race-free.
    let mut dead = false;

    while let Ok(job) = jobs.recv() {
        let tenant = job.tenant;
        let rt = &shared.tenants[tenant];
        let metrics = ScopedMetrics {
            global: &shared.metrics,
            tenant: &rt.metrics,
        };
        if dead {
            metrics.add(|m| &m.crashed_requests, 1);
            // No trace and no per-worker count here: the job is not
            // processed, it bounces; the worker that finally serves it
            // owns its one trace.
            if completions.send(Delivery::Bounce { worker, job }).is_err() {
                break;
            }
            continue;
        }
        let pipeline = &rt.pipeline;
        let db = pipeline.database();
        let ctx = pipeline.context();
        let journal = &rt.journal;
        let (id, submit_tick, queued_behind) = (job.id, job.submit_tick, job.queued_behind);
        let (redeliveries, bounced_from) = (job.redeliveries, job.bounced_from);
        let session = match &job.work {
            Work::Turn { session, .. } => Some(*session),
            Work::Single { .. } => None,
        };
        let kind_label = if session.is_some() { "turn" } else { "single" };
        // One trace per request: root `request` span, an `admission`
        // span stamped at the submitter-recorded tick, and a `queued`
        // span from that tick to dequeue (now).
        let mut tracer: Option<(TraceBuilder, SpanId)> = shared.obs.as_ref().map(|_| {
            let mut tb = TraceBuilder::new(id, Arc::clone(&shared.clock));
            let root = tb.open_at("request", submit_tick);
            tb.annotate(root, "id", id.to_string());
            tb.annotate(root, "kind", kind_label);
            if shared.label_tenants {
                tb.annotate(root, "tenant", rt.name.clone());
            }
            tb.annotate(root, "worker", worker.to_string());
            if redeliveries > 0 {
                tb.annotate(root, "redeliveries", redeliveries.to_string());
            }
            if let Some(b) = bounced_from {
                tb.annotate(root, "bounced_from", b.to_string());
            }
            let adm = tb.open_at("admission", submit_tick);
            tb.annotate(adm, "depth", queued_behind.to_string());
            tb.annotate(adm, "outcome", "admitted");
            tb.close_at(adm, submit_tick);
            let q = tb.open_at("queued", submit_tick);
            tb.annotate(q, "depth", queued_behind.to_string());
            tb.close(q);
            (tb, root)
        });
        let outcome = catch_unwind(AssertUnwindSafe(|| match &job.work {
            Work::Single { question } => {
                let key = format!("{:016x}|{}", rt.fingerprint, normalize_question(question));
                let cache_enabled = rt.cache_capacity > 0;
                let probe = tracer.as_mut().map(|(tb, _)| (tb.open("cache"), tb));
                let cached = if cache_enabled {
                    caches
                        .entry(tenant)
                        .or_insert_with(|| LruCache::new(rt.cache_capacity))
                        .get(&key)
                        .cloned()
                } else {
                    None
                };
                if let Some((s, tb)) = probe {
                    tb.annotate(
                        s,
                        "outcome",
                        match (cache_enabled, cached.is_some()) {
                            (false, _) => "disabled",
                            (true, true) => "hit",
                            (true, false) => "miss",
                        },
                    );
                    tb.close(s);
                }
                let (disposition, plan_cost) = match cached {
                    Some((sql, rows, cost)) => {
                        metrics.add(|m| &m.interp_hits, 1);
                        metrics.add(|m| &m.answered, 1);
                        (
                            Disposition::Answered {
                                sql,
                                rows,
                                from_cache: true,
                            },
                            Some(cost),
                        )
                    }
                    None => {
                        metrics.add(|m| &m.interp_misses, 1);
                        let (disposition, cacheable) = interpret_single(
                            id,
                            question,
                            pipeline,
                            hook,
                            metrics,
                            &retry,
                            redeliveries,
                            rt.ladder,
                            rt.cost_ceiling,
                            &mut breakers[tenant],
                            shared.approved_mode.then_some(journal),
                            tracer.as_mut().map(|(tb, _)| tb),
                        );
                        let plan_cost = cacheable.as_ref().map(|(_, _, c)| *c);
                        if cache_enabled {
                            if let Some(payload) = cacheable {
                                caches
                                    .get_mut(&tenant)
                                    .expect("cache ensured at probe")
                                    .put(key, payload);
                            }
                        }
                        (disposition, plan_cost)
                    }
                };
                Completion {
                    id,
                    worker: Some(worker),
                    session: None,
                    plan_cost,
                    disposition,
                }
            }
            Work::Turn { session, utterance } => {
                let session = *session;
                let span = tracer.as_mut().map(|(tb, _)| {
                    let s = tb.open("turn");
                    tb.annotate(s, "session", session.to_string());
                    s
                });
                // Faults are consulted *before* the manager runs, so a
                // retried turn has mutated nothing: each dialogue turn
                // executes at most once.
                let ride = ride_out_faults(hook, metrics, &retry, id, 0, redeliveries);
                if let (Some((tb, _)), Some(s)) = (tracer.as_mut(), span) {
                    ride.annotate(tb, s);
                }
                let disposition = if ride.proceed {
                    if let Entry::Vacant(slot) = sessions.entry((tenant, session)) {
                        let journaled = journal.turns(session);
                        if journaled.is_empty() {
                            slot.insert(ConversationSession::new(db, ctx, ManagerKind::Agent));
                        } else {
                            // Crash recovery: this session committed
                            // turns on a worker that has since died.
                            // Rebuild its state by exact replay of the
                            // journal, and prove the rebuild by
                            // comparing per-turn digests.
                            let rspan = tracer.as_mut().map(|(tb, _)| {
                                let s = tb.open("replay");
                                tb.annotate(s, "session", session.to_string());
                                tb.annotate(s, "turns_replayed", journaled.len().to_string());
                                tb.annotate(s, "remap_target", worker.to_string());
                                s
                            });
                            let (rebuilt, results) = ConversationSession::replay(
                                db,
                                ctx,
                                ManagerKind::Agent,
                                journaled.iter().map(|e| e.utterance.as_str()),
                            );
                            let diverged = results
                                .iter()
                                .zip(&journaled)
                                .filter(|(r, e)| r.digest() != e.outcome_digest)
                                .count() as u64;
                            metrics.add(|m| &m.sessions_recovered, 1);
                            metrics.add(|m| &m.turns_replayed, journaled.len() as u64);
                            metrics.add(|m| &m.replay_divergence, diverged);
                            if let (Some((tb, _)), Some(s)) = (tracer.as_mut(), rspan) {
                                tb.annotate(s, "divergence", diverged.to_string());
                                tb.close(s);
                            }
                            slot.insert(rebuilt);
                        }
                    }
                    let s = sessions
                        .get_mut(&(tenant, session))
                        .expect("session just ensured");
                    let r = s.turn(utterance);
                    metrics.add(|m| &m.session_turns, 1);
                    // Write-ahead commit: the turn enters the journal
                    // before its reply leaves the worker, so a crash
                    // any time after this line loses nothing.
                    journal.append(
                        session,
                        JournalEntry {
                            request_id: id,
                            tick: submit_tick,
                            utterance: utterance.clone(),
                            outcome_digest: r.digest(),
                        },
                    );
                    metrics.add(|m| &m.journal_turns, 1);
                    if let (Some((tb, _)), Some(sp)) = (tracer.as_mut(), span) {
                        tb.annotate(sp, "accepted", r.accepted.to_string());
                        tb.annotate(sp, "sql", if r.sql.is_some() { "yes" } else { "no" });
                    }
                    Disposition::SessionReply {
                        response: r.response,
                        sql: r.sql.map(|q| q.to_string()),
                        accepted: r.accepted,
                    }
                } else {
                    // Dialogue has no family ladder to fall down; a
                    // fatally-faulted turn is refused outright.
                    metrics.add(|m| &m.refused, 1);
                    if let (Some((tb, _)), Some(sp)) = (tracer.as_mut(), span) {
                        tb.annotate(sp, "fault", "fatal");
                    }
                    Disposition::Refused {
                        reason: "session manager unavailable (injected fault)".to_string(),
                    }
                };
                if let (Some((tb, _)), Some(sp)) = (tracer.as_mut(), span) {
                    tb.close(sp);
                }
                Completion {
                    id,
                    worker: Some(worker),
                    session: Some(session),
                    plan_cost: None,
                    disposition,
                }
            }
        }));
        let completion = match outcome {
            Ok(completion) => completion,
            Err(_) => {
                dead = true;
                // Free everything the corpse retained — every tenant's
                // sessions and caches: sessions are rebuilt elsewhere
                // from the journals, and caches that may have been
                // mid-mutation are not trusted again.
                sessions.clear();
                caches.clear();
                metrics.add(|m| &m.worker_deaths, 1);
                metrics.add(|m| &m.crashed_requests, 1);
                // The half-built trace is dropped, not recorded: the
                // request is not finished — it bounces back to the
                // submitter for re-admission, and whichever worker
                // finally serves it records its one trace.
                let _ = tracer.take();
                if completions.send(Delivery::Bounce { worker, job }).is_err() {
                    break;
                }
                continue;
            }
        };
        if let (Some(obs), Some((mut tb, root))) = (shared.obs.as_ref(), tracer.take()) {
            tb.annotate(root, "outcome", disposition_label(&completion.disposition));
            obs.record(tb.finish());
        }
        metrics.per_worker(worker);
        if completions.send(Delivery::Done(completion)).is_err() {
            // Submitter went away mid-flight; nothing left to report to.
            break;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::ManualClock;
    use nlidb_benchdata::retail_database;
    use nlidb_engine::Database;

    fn pipeline() -> Arc<NliPipeline> {
        let db: Database = retail_database(7);
        Arc::new(NliPipeline::standard(&db))
    }

    fn server(workers: usize, pipeline: &Arc<NliPipeline>) -> (Server, Arc<ManualClock>) {
        let clock = Arc::new(ManualClock::new());
        let cfg = ServerConfig {
            workers,
            ..ServerConfig::default()
        };
        (
            Server::start(Arc::clone(pipeline), cfg, clock.clone() as Arc<dyn Clock>),
            clock,
        )
    }

    #[test]
    fn answers_and_caches_repeats() {
        let p = pipeline();
        let (mut srv, _) = server(2, &p);
        let q = RequestSpec::single("how many customers are there");
        for _ in 0..3 {
            srv.submit(&q);
        }
        let done = srv.drain();
        assert_eq!(done.len(), 3);
        let answered: Vec<bool> = done
            .iter()
            .map(|c| match &c.disposition {
                Disposition::Answered { from_cache, .. } => *from_cache,
                other => panic!("expected answer, got {other:?}"),
            })
            .collect();
        assert_eq!(
            answered,
            vec![false, true, true],
            "first computes, rest hit"
        );
        let sigs: std::collections::HashSet<String> = done
            .iter()
            .map(|c| c.signature().split_once(' ').unwrap().1.to_string())
            .collect();
        assert_eq!(sigs.len(), 1, "hits replay the identical answer");
        let m = srv.shutdown();
        assert_eq!((m.interp_hits, m.interp_misses), (2, 1));
        assert_eq!(m.answered, 3);
    }

    #[test]
    fn refusals_are_reported_not_panicked() {
        let p = pipeline();
        let (mut srv, _) = server(1, &p);
        srv.submit(&RequestSpec::single(
            "colorless green ideas sleep furiously",
        ));
        let done = srv.drain();
        assert!(matches!(done[0].disposition, Disposition::Refused { .. }));
        assert_eq!(srv.metrics().refused, 1);
        srv.shutdown();
    }

    #[test]
    fn queue_full_sheds_deterministically() {
        let p = pipeline();
        let clock = Arc::new(ManualClock::new());
        let cfg = ServerConfig {
            workers: 1,
            queue_capacity: 2,
            ..ServerConfig::default()
        };
        let mut srv = Server::start(Arc::clone(&p), cfg, clock as Arc<dyn Clock>);
        let q = RequestSpec::single("how many customers are there");
        let a: Vec<Admission> = (0..4).map(|_| srv.submit(&q)).collect();
        assert!(matches!(a[0], Admission::Admitted { .. }));
        assert!(matches!(a[1], Admission::Admitted { .. }));
        assert!(matches!(a[2], Admission::Shed { .. }));
        assert!(matches!(a[3], Admission::Shed { .. }));
        let done = srv.drain();
        assert_eq!(done.len(), 4, "rejects surface as completions too");
        assert!(matches!(done[2].disposition, Disposition::Shed));
        // Credits returned: same submissions admit again.
        assert!(matches!(srv.submit(&q), Admission::Admitted { .. }));
        srv.drain();
        let m = srv.shutdown();
        assert_eq!(m.shed_full, 2);
        assert_eq!(m.max_queue_depth, 2);
    }

    #[test]
    fn deadline_rejection_is_admission_time() {
        let p = pipeline();
        let clock = Arc::new(ManualClock::new());
        let cfg = ServerConfig {
            workers: 1,
            queue_capacity: 8,
            service_estimate: 10,
            ..ServerConfig::default()
        };
        let mut srv = Server::start(Arc::clone(&p), cfg, clock.clone() as Arc<dyn Clock>);
        let mut q = RequestSpec::single("how many customers are there");
        // Deadline 15 ticks out, service estimate 10: first fits
        // (projected 10), second does not (projected 20).
        q.deadline = Some(15);
        assert!(matches!(srv.submit(&q), Admission::Admitted { .. }));
        assert!(matches!(srv.submit(&q), Admission::DeadlineExceeded { .. }));
        srv.drain();
        // A deadline already in the past rejects outright.
        clock.set(100);
        q.deadline = Some(99);
        assert!(matches!(srv.submit(&q), Admission::DeadlineExceeded { .. }));
        let done = srv.drain();
        assert!(matches!(done[0].disposition, Disposition::DeadlineExceeded));
        let m = srv.shutdown();
        assert_eq!(m.shed_deadline, 2);
    }

    #[test]
    fn session_turns_keep_state_on_one_worker() {
        let p = pipeline();
        let (mut srv, _) = server(3, &p);
        let turns = ["show orders", "only status shipped", "how many are there"];
        for t in turns {
            srv.submit(&RequestSpec {
                question: t.to_string(),
                session: Some(41),
                deadline: None,
            });
        }
        let done = srv.drain();
        assert_eq!(done.len(), 3);
        let workers: std::collections::HashSet<_> = done.iter().map(|c| c.worker).collect();
        assert_eq!(workers.len(), 1, "all turns of one session on one worker");
        assert!(done
            .iter()
            .all(|c| matches!(c.disposition, Disposition::SessionReply { .. })));
        let m = srv.shutdown();
        assert_eq!(m.session_turns, 3);
    }

    #[test]
    fn tenant_cost_ceiling_refuses_before_execution() {
        let p = pipeline();
        let clock = Arc::new(ManualClock::new());
        let mut registry = TenantRegistry::new();
        registry.register(
            "capped",
            Arc::clone(&p),
            TenantPolicy {
                cost_ceiling: Some(0),
                ..TenantPolicy::default()
            },
        );
        let mut srv = Server::start_registry(
            &registry,
            ServerConfig::default(),
            clock as Arc<dyn Clock>,
            None,
            None,
        );
        srv.submit(&RequestSpec::single("how many customers are there"));
        let done = srv.drain();
        match &done[0].disposition {
            Disposition::Refused { reason } => {
                assert!(reason.contains("plan cost"), "unexpected reason: {reason}")
            }
            other => panic!("expected cost refusal, got {other:?}"),
        }
        assert_eq!(done[0].plan_cost, None, "refused plans report no cost");
        let m = srv.shutdown();
        assert_eq!(m.cost_refused, 1);
        assert_eq!(m.refused, 1);
        assert_eq!(m.answered, 0, "never executed");
    }

    #[test]
    fn cost_aware_shedding_drops_expensive_repeats_under_pressure() {
        let p = pipeline();
        let clock = Arc::new(ManualClock::new());
        let cfg = ServerConfig {
            workers: 1,
            cost_shed: Some(CostShedPolicy {
                pressure_depth: 1,
                cost_threshold: 0,
            }),
            ..ServerConfig::default()
        };
        let mut srv = Server::start(Arc::clone(&p), cfg, clock as Arc<dyn Clock>);
        let q = RequestSpec::single("how many customers are there");
        // Learn the question's plan cost on an unpressured first pass.
        srv.submit(&q);
        let first = srv.drain();
        let learned = first[0].plan_cost.expect("answered questions carry cost");
        assert!(learned > 0);
        // Depth 0: below the pressure point, admitted even though the
        // cost is known. Depth 1: pressure — the known-expensive
        // repeat is shed while an unlearned question still flows.
        assert!(matches!(srv.submit(&q), Admission::Admitted { .. }));
        assert!(matches!(srv.submit(&q), Admission::Shed { .. }));
        let fresh = RequestSpec::single("show all customers");
        assert!(matches!(srv.submit(&fresh), Admission::Admitted { .. }));
        let done = srv.drain();
        assert_eq!(done.len(), 3);
        // The cache hit replays the exact cost the miss computed.
        assert_eq!(done[0].plan_cost, Some(learned));
        assert!(matches!(done[1].disposition, Disposition::Shed));
        assert_eq!(
            done[1].plan_cost,
            Some(learned),
            "shed quotes the learned cost"
        );
        let m = srv.shutdown();
        assert_eq!(m.shed_cost, 1);
        assert_eq!(m.shed_full, 0);
    }

    #[test]
    fn approved_mode_journals_an_audit_trail_and_matches_pick_first() {
        let p = pipeline();
        let questions = ["how many customers are there", "show all products"];
        // Classic pick-first answers, for parity.
        let (mut classic, _) = server(1, &p);
        let baseline: Vec<String> = {
            for q in questions {
                classic.submit(&RequestSpec::single(q));
            }
            let done = classic.drain();
            classic.shutdown();
            done.iter().map(Completion::signature).collect()
        };
        let clock = Arc::new(ManualClock::new());
        let cfg = ServerConfig {
            workers: 1,
            approved_mode: true,
            ..ServerConfig::default()
        };
        let mut srv = Server::start(Arc::clone(&p), cfg, clock as Arc<dyn Clock>);
        for q in questions {
            srv.submit(&RequestSpec::single(q));
        }
        srv.submit(&RequestSpec::single(questions[0])); // cache hit
        let done = srv.drain();
        assert_eq!(
            done[..2]
                .iter()
                .map(Completion::signature)
                .collect::<Vec<String>>(),
            baseline,
            "clean top candidates answer identically to pick-first"
        );
        let journal = srv.journal();
        assert_eq!(
            journal.audited_requests(),
            vec![0, 1],
            "every approved answer is audited; cache hits are not re-approved"
        );
        for (id, q) in questions.iter().enumerate() {
            let audits = journal.audits(id as u64);
            assert_eq!(audits.len(), 1);
            assert_eq!(audits[0].question, *q);
            assert!(audits[0].candidate_count >= 1);
            assert_ne!(audits[0].provenance_digest, 0);
            match &done[id].disposition {
                Disposition::Answered { sql, .. } => assert_eq!(&audits[0].sql, sql),
                other => panic!("expected answer, got {other:?}"),
            }
        }
        srv.shutdown();
    }

    #[test]
    fn cache_hit_replay_teaches_the_cost_shedder() {
        let p = pipeline();
        let clock = Arc::new(ManualClock::new());
        let cfg = ServerConfig {
            workers: 1,
            cost_shed: Some(CostShedPolicy {
                pressure_depth: 1,
                cost_threshold: 0,
            }),
            ..ServerConfig::default()
        };
        let mut srv = Server::start(Arc::clone(&p), cfg, clock as Arc<dyn Clock>);
        let q = RequestSpec::single("how many customers are there");
        srv.submit(&q);
        let first = srv.drain();
        let learned = first[0].plan_cost.expect("miss computes the cost");
        assert_eq!(srv.plan_costs.len(), 1, "the miss taught the shedder");
        // Forget the miss's lesson while the worker cache stays warm —
        // the next drain's only possible teacher is the cache hit.
        srv.plan_costs.clear();
        srv.submit(&q);
        let second = srv.drain();
        match &second[0].disposition {
            Disposition::Answered { from_cache, .. } => assert!(from_cache),
            other => panic!("expected cached answer, got {other:?}"),
        }
        assert_eq!(
            second[0].plan_cost,
            Some(learned),
            "the hit replays the exact cost the miss computed"
        );
        assert_eq!(
            srv.plan_costs.values().copied().collect::<Vec<u64>>(),
            vec![learned],
            "re-learned from the cache-hit completion alone"
        );
        // And the replay-learned cost is live policy input: pressure
        // sheds the repeat exactly as an execution-learned cost would.
        assert!(matches!(srv.submit(&q), Admission::Admitted { .. }));
        assert!(matches!(srv.submit(&q), Admission::Shed { .. }));
        let done = srv.drain();
        assert!(matches!(done[1].disposition, Disposition::Shed));
        assert_eq!(done[1].plan_cost, Some(learned));
        let m = srv.shutdown();
        assert_eq!(m.shed_cost, 1);
    }

    #[test]
    fn equal_learned_costs_shed_deterministically() {
        // Two distinct questions with byte-equal learned plan cost:
        // shedding is per-request (no comparative ranking), so under
        // pressure the tie resolves purely by submission order — the
        // depth-0 submission flows, every engaged repeat sheds — and
        // two identical runs agree byte-for-byte.
        let run = || {
            let p = pipeline();
            let clock = Arc::new(ManualClock::new());
            let cfg = ServerConfig {
                workers: 1,
                cost_shed: Some(CostShedPolicy {
                    pressure_depth: 1,
                    cost_threshold: 0,
                }),
                ..ServerConfig::default()
            };
            let mut srv = Server::start(Arc::clone(&p), cfg, clock as Arc<dyn Clock>);
            let a = RequestSpec::single("show all customers");
            let b = RequestSpec::single("list all customers");
            srv.submit(&a);
            srv.submit(&b);
            let first = srv.drain();
            let (ca, cb) = (
                first[0].plan_cost.expect("answered"),
                first[1].plan_cost.expect("answered"),
            );
            assert_eq!(ca, cb, "the two questions must tie on learned cost");
            let admissions: Vec<bool> = [&a, &b, &a, &b]
                .iter()
                .map(|q| matches!(srv.submit(q), Admission::Admitted { .. }))
                .collect();
            let signatures: Vec<String> = srv.drain().iter().map(Completion::signature).collect();
            let m = srv.shutdown();
            (admissions, signatures, m.shed_cost)
        };
        let (r1, r2) = (run(), run());
        assert_eq!(r1, r2, "identical runs shed identically");
        assert_eq!(
            r1.0,
            vec![true, false, false, false],
            "depth 0 flows; every engaged equal-cost repeat sheds"
        );
        assert_eq!(r1.2, 3);
    }

    #[test]
    fn overload_controller_sheds_expensive_repeats_and_recovers_at_drain() {
        let p = pipeline();
        let clock = Arc::new(ManualClock::new());
        let cfg = ServerConfig {
            workers: 1,
            queue_capacity: 64,
            overload: Some(OverloadPolicy {
                high_watermark: 2,
                low_watermark: 0,
                cost_threshold: 0,
                early_warning: None,
            }),
            ..ServerConfig::default()
        };
        let mut srv = Server::start(Arc::clone(&p), cfg, clock as Arc<dyn Clock>);
        let q = RequestSpec::single("how many customers are there");
        // Teach the controller the question's cost on a quiet pass.
        srv.submit(&q);
        srv.drain();
        assert!(!srv.is_overloaded(), "one request never crosses high=2");
        // Pressure 0 and 1 admit; the offer that finds pressure 2
        // opens the episode and is itself shed (learned-expensive).
        assert!(matches!(srv.submit(&q), Admission::Admitted { .. }));
        assert!(matches!(srv.submit(&q), Admission::Admitted { .. }));
        assert!(!srv.is_overloaded());
        assert!(matches!(srv.submit(&q), Admission::Shed { .. }));
        assert!(srv.is_overloaded());
        // Unlearned standalones and dialogue turns still pass.
        let fresh = RequestSpec::single("show all customers");
        assert!(matches!(srv.submit(&fresh), Admission::Admitted { .. }));
        let turn = RequestSpec {
            question: "show orders".to_string(),
            session: Some(7),
            deadline: None,
        };
        assert!(matches!(srv.submit(&turn), Admission::Admitted { .. }));
        // Drain returns every credit: the episode closes (never
        // wedges) and the same repeat is admitted again.
        srv.drain();
        assert!(!srv.is_overloaded(), "drain-to-empty closes the episode");
        assert!(matches!(srv.submit(&q), Admission::Admitted { .. }));
        srv.drain();
        let m = srv.shutdown();
        assert_eq!(m.shed_overload, 1);
        assert_eq!(m.overload_entered, 1);
        assert_eq!(m.overload_recovered, 1);
        assert_eq!(m.shed_full, 0, "watermark fired well below capacity");
    }

    #[test]
    fn overload_shed_set_is_deterministic_and_empty_below_the_watermark() {
        let p = pipeline();
        let run = |high: usize| {
            let clock = Arc::new(ManualClock::new());
            let cfg = ServerConfig {
                workers: 1,
                overload: Some(OverloadPolicy {
                    high_watermark: high,
                    low_watermark: 0,
                    cost_threshold: 0,
                    early_warning: None,
                }),
                ..ServerConfig::default()
            };
            let mut srv = Server::start(Arc::clone(&p), cfg, clock as Arc<dyn Clock>);
            let hot = RequestSpec::single("how many customers are there");
            let cold = RequestSpec::single("show all customers");
            srv.submit(&hot);
            srv.submit(&cold);
            srv.drain(); // learn both costs quietly
            let mut shed = Vec::new();
            for round in 0..3 {
                for (i, q) in [&hot, &cold, &hot, &hot, &cold].iter().enumerate() {
                    if matches!(srv.submit(q), Admission::Shed { .. }) {
                        shed.push((round, i));
                    }
                }
                srv.drain();
            }
            let m = srv.shutdown();
            (
                shed,
                m.shed_overload,
                m.overload_entered,
                m.overload_recovered,
            )
        };
        let (a, b) = (run(3), run(3));
        assert_eq!(a, b, "identical runs shed the identical set");
        assert!(!a.0.is_empty(), "high=3 must engage within a 5-burst");
        assert_eq!(a.0.len() as u64, a.1);
        assert_eq!(a.2, a.3, "every episode recovered");
        // With the watermark above the burst size the shed set is
        // empty: the controller is inert below its high watermark.
        let quiet = run(6);
        assert_eq!(quiet.0, Vec::new());
        assert_eq!(quiet.1, 0);
        assert_eq!(quiet.2, 0, "never entered");
    }

    #[test]
    fn overload_fair_share_trims_the_hog_tenant_not_the_quiet_one() {
        let p = pipeline();
        let clock = Arc::new(ManualClock::new());
        let quiet_p: Arc<NliPipeline> = {
            let db: Database = nlidb_benchdata::hr_database(7);
            Arc::new(NliPipeline::standard(&db))
        };
        let mut registry = TenantRegistry::new();
        registry.register("hog", Arc::clone(&p), TenantPolicy::default());
        registry.register("quiet", quiet_p, TenantPolicy::default());
        let cfg = ServerConfig {
            workers: 1,
            overload: Some(OverloadPolicy {
                high_watermark: 2,
                low_watermark: 0,
                // No learned-cost axis: isolate the fair-share axis.
                cost_threshold: u64::MAX,
                early_warning: None,
            }),
            ..ServerConfig::default()
        };
        let mut srv = Server::start_registry(&registry, cfg, clock as Arc<dyn Clock>, None, None);
        let q = RequestSpec::single("how many customers are there");
        // Open the episode, then let tenant 0 hog it.
        srv.submit_for(0, &q);
        srv.submit_for(0, &q);
        assert!(!srv.is_overloaded());
        let mut hog_shed = 0;
        let mut hog_admitted = 0;
        for _ in 0..8 {
            match srv.submit_for(0, &q) {
                Admission::Shed { .. } => hog_shed += 1,
                Admission::Admitted { .. } => hog_admitted += 1,
                other => panic!("unexpected {other:?}"),
            }
        }
        assert!(srv.is_overloaded());
        assert!(hog_shed > 0, "the hog must be trimmed");
        assert!(hog_admitted > 0, "trimmed to fair share, not starved");
        // The quiet tenant's traffic flows untouched mid-episode.
        assert!(matches!(srv.submit_for(1, &q), Admission::Admitted { .. }));
        srv.drain();
        let m = srv.shutdown();
        assert_eq!(m.shed_overload, hog_shed);
    }

    #[test]
    fn routing_is_stable_and_normalized() {
        let p = pipeline();
        let (srv, _) = server(4, &p);
        let a = RequestSpec::single("Total Price by   Category");
        let b = RequestSpec::single("total price by category");
        assert_eq!(srv.route(&a), srv.route(&b));
        assert_eq!(
            normalize_question("  Total   Price\tby Category "),
            "total price by category"
        );
        srv.shutdown();
    }
}
