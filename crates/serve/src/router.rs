//! The shard router: one serving runtime fronting many tenants.
//!
//! [`TenantServer`] wraps the worker pool in a tenant-addressed
//! surface: requests are submitted against a schema fingerprint (the
//! tenant identity minted by [`crate::tenant::schema_fingerprint`]),
//! routed to workers with the owning tenant's salt mixed into the
//! content address, and served from per-(worker, tenant) state. The
//! router adds *no* new concurrency — it is the same single-threaded
//! submitter, credit ledger, and drain protocol as [`Server`], with
//! tenant attribution threaded through — so every determinism claim
//! the single-tenant runtime makes holds per tenant, which is exactly
//! what experiment E17 asserts: a multi-tenant run over N domains is
//! signature-identical to N isolated single-tenant runs.

use std::collections::HashMap;
use std::sync::Arc;

use nlidb_benchdata::RequestSpec;
use nlidb_obs::MetricsRegistry;

use crate::clock::Clock;
use crate::journal::SessionJournal;
use crate::metrics::MetricsSnapshot;
use crate::obs::ServeObs;
use crate::server::{Admission, Completion, RequestHook, Server, ServerConfig};
use crate::tenant::TenantRegistry;

/// A multi-tenant serving runtime: the [`Server`] worker pool behind a
/// fingerprint-addressed submit surface.
pub struct TenantServer {
    server: Server,
    /// Fingerprint → registration index.
    index: HashMap<u64, usize>,
    /// Fingerprints in registration order.
    fingerprints: Vec<u64>,
}

impl TenantServer {
    /// Start a pool serving every tenant in `registry`.
    ///
    /// # Panics
    ///
    /// Panics if the registry is empty.
    pub fn start(registry: &TenantRegistry, config: ServerConfig, clock: Arc<dyn Clock>) -> Self {
        TenantServer::start_observed(registry, config, clock, None, None)
    }

    /// [`TenantServer::start`], with a per-request hook (see
    /// [`RequestHook`]). Hook identity is request-global: the hook
    /// sees the same request ids a single merged submission sequence
    /// produces, whatever tenant each id belongs to.
    pub fn start_with_hook(
        registry: &TenantRegistry,
        config: ServerConfig,
        clock: Arc<dyn Clock>,
        hook: Option<RequestHook>,
    ) -> Self {
        TenantServer::start_observed(registry, config, clock, hook, None)
    }

    /// [`TenantServer::start_with_hook`], with optional observability.
    /// Multi-tenant traces carry a `tenant` attribute on every request
    /// root span (single-tenant servers omit it, keeping their traces
    /// byte-identical to the pre-tenancy runtime).
    pub fn start_observed(
        registry: &TenantRegistry,
        config: ServerConfig,
        clock: Arc<dyn Clock>,
        hook: Option<RequestHook>,
        obs: Option<ServeObs>,
    ) -> Self {
        let fingerprints: Vec<u64> = registry.entries().iter().map(|e| e.fingerprint()).collect();
        let index = fingerprints
            .iter()
            .enumerate()
            .map(|(i, &f)| (f, i))
            .collect();
        TenantServer {
            server: Server::start_registry(registry, config, clock, hook, obs),
            index,
            fingerprints,
        }
    }

    /// Offer one request on behalf of the tenant identified by
    /// `fingerprint`. An unregistered fingerprint is refused
    /// deterministically (the refusal surfaces as a completion at the
    /// next [`TenantServer::drain`], counted in the global scope only).
    pub fn submit(&mut self, fingerprint: u64, spec: &RequestSpec) -> Admission {
        match self.index.get(&fingerprint) {
            Some(&tenant) => self.server.submit_for(tenant, spec),
            None => self.server.refuse_unknown(spec),
        }
    }

    /// The worker a request of `fingerprint`'s tenant would be routed
    /// to (`None` for an unregistered fingerprint).
    pub fn route(&self, fingerprint: u64, spec: &RequestSpec) -> Option<usize> {
        self.index
            .get(&fingerprint)
            .map(|&tenant| self.server.route_for(tenant, spec))
    }

    /// Wait for every admitted request to finish; see [`Server::drain`].
    pub fn drain(&mut self) -> Vec<Completion> {
        self.server.drain()
    }

    /// Whole-runtime counter snapshot (every tenant's traffic).
    pub fn metrics(&self) -> MetricsSnapshot {
        self.server.metrics()
    }

    /// Counter snapshot for one tenant (`None` for an unregistered
    /// fingerprint). In lockstep with the global snapshot: summing a
    /// counter over all tenants yields the global value (minus
    /// unknown-tenant refusals, which have no tenant scope).
    pub fn tenant_metrics(&self, fingerprint: u64) -> Option<MetricsSnapshot> {
        self.index
            .get(&fingerprint)
            .map(|&t| self.server.tenant_metrics_at(t))
    }

    /// One tenant's write-ahead session journal (`None` for an
    /// unregistered fingerprint). Journals are fully namespaced:
    /// session ids only collide across tenants by name, never by
    /// state.
    pub fn journal(&self, fingerprint: u64) -> Option<&SessionJournal> {
        self.index
            .get(&fingerprint)
            .map(|&t| self.server.tenant_journal_at(t))
    }

    /// Per-tenant health: window matrix, event log, and firing
    /// states for the tenant behind `fingerprint`. `None` when the
    /// fingerprint is unregistered, when the runtime has no
    /// [`crate::HealthHub`] attached, or when the tenant has not yet
    /// completed a request (its scope does not exist until then).
    pub fn tenant_health(&self, fingerprint: u64) -> Option<crate::health::HealthReport> {
        let &tenant = self.index.get(&fingerprint)?;
        self.server
            .health()?
            .report(self.server.tenant_name_at(tenant))
    }

    /// The shared health hub, if the runtime was started with
    /// [`crate::ServeObs::with_health`].
    pub fn health(&self) -> Option<std::sync::Arc<crate::health::HealthHub>> {
        self.server.health()
    }

    /// Export the global counters (`serve.*`, via
    /// [`MetricsSnapshot::export_into`]) plus every tenant's breakdown
    /// (`serve.tenant.<name>.*`, via
    /// [`MetricsSnapshot::export_labelled_into`]) into `registry`.
    pub fn export_metrics(&self, registry: &MetricsRegistry) {
        self.metrics().export_into(registry);
        for tenant in 0..self.server.tenant_count() {
            self.server
                .tenant_metrics_at(tenant)
                .export_labelled_into(registry, self.server.tenant_name_at(tenant));
        }
    }

    /// Registered fingerprints, in registration order.
    pub fn fingerprints(&self) -> &[u64] {
        &self.fingerprints
    }

    /// Tenant names in registration order.
    pub fn names(&self) -> Vec<String> {
        (0..self.server.tenant_count())
            .map(|t| self.server.tenant_name_at(t).to_string())
            .collect()
    }

    /// Number of workers.
    pub fn workers(&self) -> usize {
        self.server.workers()
    }

    /// Stop accepting work, join the pool, and return final global
    /// metrics; see [`Server::shutdown`].
    pub fn shutdown(self) -> MetricsSnapshot {
        self.server.shutdown()
    }
}
