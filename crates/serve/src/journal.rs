//! The write-ahead session journal: every committed dialogue turn is
//! recorded here *before* its reply is released, so a session whose
//! worker dies can be rebuilt anywhere by exact replay.
//!
//! The journal is deliberately minimal — per session, an ordered list
//! of (request id, logical tick, utterance, outcome digest). Replay
//! needs only the utterance sequence; the digests let the recovering
//! worker prove the rebuilt state matches what was answered before the
//! crash (`replay_divergence` stays zero in every experiment).
//!
//! What is journaled: every turn the dialogue manager *executed*,
//! accepted or rejected — both mutate `DialogueState::history`, so
//! both are part of the state a replay must reproduce. What is not:
//! turns refused by injected faults before reaching the manager (no
//! state was touched), single-shot questions (stateless), and degraded
//! answers (never authoritative, per the fault-injection invariants).

use std::collections::BTreeMap;
use std::sync::Mutex;

/// One approved-plan audit record (the Ask → Plan → Approve trail).
///
/// Appended when a worker answers a standalone question in approved
/// mode: which candidate won, how many were considered, why the losers
/// were rejected, and the winner's provenance digest. A bounced
/// request that recovers on another worker re-runs the approval and
/// appends again under the same request id — identical digests across
/// the records *prove* the recovered worker approved the same
/// candidate, grounded the same way (asserted by
/// `serve/tests/recovery.rs`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AuditRecord {
    /// The request that asked the question.
    pub request_id: u64,
    /// The question as asked.
    pub question: String,
    /// The approved SQL.
    pub sql: String,
    /// Candidates considered by the validation pass.
    pub candidate_count: usize,
    /// Original confidence-order rank of the approved candidate.
    pub chosen_rank: usize,
    /// Rejection-reason labels of the losing candidates, rendered
    /// `#rank label+label` in rank order.
    pub rejections: Vec<String>,
    /// The approved candidate's provenance digest
    /// (`nlidb_core::candidates::Candidate::provenance_digest`).
    pub provenance_digest: u64,
}

/// One committed dialogue turn.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JournalEntry {
    /// The request that carried the turn.
    pub request_id: u64,
    /// Logical tick at which the turn was admitted.
    pub tick: u64,
    /// What the user said.
    pub utterance: String,
    /// Digest of the turn's visible outcome (`TurnResult::digest`).
    pub outcome_digest: u64,
}

/// Append-only journal of committed turns, keyed by session id.
///
/// Shared between the submitter and every worker; the `BTreeMap` keeps
/// enumeration order deterministic. Appends happen worker-side before
/// the turn's completion is sent, so by the time a crashed session's
/// next turn is re-admitted anywhere, every prior committed turn is
/// already visible.
#[derive(Debug, Default)]
pub struct SessionJournal {
    inner: Mutex<BTreeMap<u64, Vec<JournalEntry>>>,
    audits: Mutex<BTreeMap<u64, Vec<AuditRecord>>>,
}

impl SessionJournal {
    /// An empty journal.
    pub fn new() -> SessionJournal {
        SessionJournal::default()
    }

    /// Commit one turn for `session`.
    pub fn append(&self, session: u64, entry: JournalEntry) {
        self.inner
            .lock()
            .expect("journal lock")
            .entry(session)
            .or_default()
            .push(entry);
    }

    /// The committed turns of `session`, in commit order.
    pub fn turns(&self, session: u64) -> Vec<JournalEntry> {
        self.inner
            .lock()
            .expect("journal lock")
            .get(&session)
            .cloned()
            .unwrap_or_default()
    }

    /// How many turns `session` has committed.
    pub fn turn_count(&self, session: u64) -> usize {
        self.inner
            .lock()
            .expect("journal lock")
            .get(&session)
            .map_or(0, Vec::len)
    }

    /// Every session with at least one committed turn, ascending.
    pub fn sessions(&self) -> Vec<u64> {
        self.inner
            .lock()
            .expect("journal lock")
            .keys()
            .copied()
            .collect()
    }

    /// Total committed turns across all sessions.
    pub fn total_turns(&self) -> usize {
        self.inner
            .lock()
            .expect("journal lock")
            .values()
            .map(Vec::len)
            .sum()
    }

    /// Record one approved plan for `record.request_id`. Append-only:
    /// a request answered again after a crash gets a second record,
    /// and the digests are expected to agree.
    pub fn append_audit(&self, record: AuditRecord) {
        self.audits
            .lock()
            .expect("audit lock")
            .entry(record.request_id)
            .or_default()
            .push(record);
    }

    /// Every audit record for `request`, in append order.
    pub fn audits(&self, request: u64) -> Vec<AuditRecord> {
        self.audits
            .lock()
            .expect("audit lock")
            .get(&request)
            .cloned()
            .unwrap_or_default()
    }

    /// Request ids with at least one audit record, ascending.
    pub fn audited_requests(&self) -> Vec<u64> {
        self.audits
            .lock()
            .expect("audit lock")
            .keys()
            .copied()
            .collect()
    }

    /// Total audit records across all requests.
    pub fn total_audits(&self) -> usize {
        self.audits
            .lock()
            .expect("audit lock")
            .values()
            .map(Vec::len)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(id: u64, utterance: &str) -> JournalEntry {
        JournalEntry {
            request_id: id,
            tick: id / 16,
            utterance: utterance.to_string(),
            outcome_digest: 0xd1_9e57 ^ id,
        }
    }

    #[test]
    fn appends_preserve_commit_order() {
        let j = SessionJournal::new();
        j.append(7, entry(1, "show orders"));
        j.append(7, entry(9, "only shipped ones"));
        j.append(3, entry(4, "show customers"));
        let turns = j.turns(7);
        assert_eq!(turns.len(), 2);
        assert_eq!(turns[0].utterance, "show orders");
        assert_eq!(turns[1].utterance, "only shipped ones");
        assert_eq!(j.turn_count(7), 2);
        assert_eq!(j.turn_count(3), 1);
        assert_eq!(j.total_turns(), 3);
    }

    #[test]
    fn sessions_enumerate_deterministically() {
        let j = SessionJournal::new();
        for s in [9, 2, 5, 2] {
            j.append(s, entry(s, "hi"));
        }
        assert_eq!(j.sessions(), vec![2, 5, 9]);
    }

    #[test]
    fn audit_records_append_per_request() {
        let j = SessionJournal::new();
        let rec = |id: u64| AuditRecord {
            request_id: id,
            question: "show products in tools".to_string(),
            sql: "SELECT * FROM products WHERE category = 'tools'".to_string(),
            candidate_count: 3,
            chosen_rank: 1,
            rejections: vec!["#0 ungrounded_value".to_string()],
            provenance_digest: 0xfeed ^ id,
        };
        j.append_audit(rec(5));
        j.append_audit(rec(2));
        j.append_audit(rec(5)); // post-recovery re-approval
        assert_eq!(j.audited_requests(), vec![2, 5]);
        assert_eq!(j.audits(5).len(), 2);
        assert_eq!(j.audits(5)[0], j.audits(5)[1], "re-approval is exact");
        assert_eq!(j.total_audits(), 3);
        assert!(j.audits(99).is_empty());
        // The dialogue journal is untouched by audits.
        assert_eq!(j.total_turns(), 0);
    }

    #[test]
    fn unknown_session_is_empty() {
        let j = SessionJournal::new();
        assert!(j.turns(42).is_empty());
        assert_eq!(j.turn_count(42), 0);
        assert_eq!(j.total_turns(), 0);
    }
}
