//! Fault injection surface: the hook context, the injected fault
//! vocabulary, and the adapter from a seeded
//! [`FaultPlan`](nlidb_benchdata::FaultPlan) to a [`RequestHook`].
//!
//! The worker consults the hook *before* every pipeline attempt —
//! pre-processing, so a retried attempt has observed no side effects
//! (a dialogue turn in particular executes at most once). The hook is
//! a pure function of `(request id, ladder rung, attempt)`, which is
//! why an injected schedule stays bit-deterministic: the same submit
//! sequence meets the same faults, retries, and degradations on every
//! run, regardless of thread timing.

use std::panic;
use std::sync::Once;

use nlidb_benchdata::{FaultKind, FaultPlan};

use crate::server::RequestHook;

/// What the worker is about to do when it consults the hook.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HookCtx {
    /// Request id (submission order).
    pub id: u64,
    /// Degradation-ladder rung about to be tried (0 = the preferred
    /// interpreter; dialogue turns are always rung 0).
    pub rung: usize,
    /// Attempt number at this rung (0 = first try, ≥ 1 = retries).
    pub attempt: u32,
}

/// A failure the hook injects into the attempt it was consulted for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InjectedFault {
    /// This attempt fails recoverably; retrying may succeed.
    Transient,
    /// This rung is down for this request; the worker must degrade.
    Fatal,
    /// The worker thread panics while holding this request.
    WorkerPanic,
}

/// Adapt a seeded [`FaultPlan`] into a [`RequestHook`]:
///
/// * [`FaultKind::Transient`]`{ failures }` fails the first `failures`
///   attempts at rung 0, then recovers — within the retry budget the
///   request is served identically to an unfaulted run.
/// * [`FaultKind::Fatal`]`{ depth }` fails every attempt at the top
///   `depth` rungs, forcing degradation below them.
/// * [`FaultKind::WorkerPanic`] kills the worker on first contact
///   (rung 0, attempt 0) — *exactly once*: a bounced job is re-admitted
///   with its redelivery count as the attempt base, so the recovered
///   delivery presents attempt ≥ 1 and proceeds. This is what makes
///   crash recovery terminate instead of chasing the panic across the
///   pool.
pub fn fault_plan_hook(plan: FaultPlan) -> RequestHook {
    Box::new(move |ctx: &HookCtx| match plan.fault_for(ctx.id)? {
        FaultKind::Transient { failures } => {
            (ctx.rung == 0 && ctx.attempt < failures).then_some(InjectedFault::Transient)
        }
        FaultKind::Fatal { depth } => ((ctx.rung as u32) < depth).then_some(InjectedFault::Fatal),
        FaultKind::WorkerPanic => {
            (ctx.rung == 0 && ctx.attempt == 0).then_some(InjectedFault::WorkerPanic)
        }
    })
}

/// Install (once, process-wide) a panic hook that suppresses the
/// default "thread panicked" report for this crate's worker threads
/// and forwards everything else untouched. Injected worker panics are
/// *expected* output in fault experiments; without this they spray
/// backtraces over the harness tables.
pub fn silence_worker_panics() {
    static INSTALL: Once = Once::new();
    INSTALL.call_once(|| {
        let previous = panic::take_hook();
        panic::set_hook(Box::new(move |info| {
            let in_worker = std::thread::current()
                .name()
                .is_some_and(|n| n.starts_with("nlidb-serve-"));
            if !in_worker {
                previous(info);
            }
        }));
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx(id: u64, rung: usize, attempt: u32) -> HookCtx {
        HookCtx { id, rung, attempt }
    }

    #[test]
    fn transient_faults_recover_after_budgeted_attempts() {
        let hook = fault_plan_hook(FaultPlan::none().with(5, FaultKind::Transient { failures: 2 }));
        assert_eq!(hook(&ctx(5, 0, 0)), Some(InjectedFault::Transient));
        assert_eq!(hook(&ctx(5, 0, 1)), Some(InjectedFault::Transient));
        assert_eq!(hook(&ctx(5, 0, 2)), None, "recovers on the third attempt");
        assert_eq!(hook(&ctx(5, 1, 0)), None, "lower rungs are healthy");
        assert_eq!(hook(&ctx(4, 0, 0)), None, "other requests are healthy");
    }

    #[test]
    fn fatal_faults_knock_out_the_top_rungs() {
        let hook = fault_plan_hook(FaultPlan::none().with(2, FaultKind::Fatal { depth: 2 }));
        assert_eq!(hook(&ctx(2, 0, 0)), Some(InjectedFault::Fatal));
        assert_eq!(
            hook(&ctx(2, 0, 7)),
            Some(InjectedFault::Fatal),
            "no retry escape"
        );
        assert_eq!(hook(&ctx(2, 1, 0)), Some(InjectedFault::Fatal));
        assert_eq!(hook(&ctx(2, 2, 0)), None, "rung below depth is healthy");
    }

    #[test]
    fn panic_fires_exactly_once() {
        let hook = fault_plan_hook(FaultPlan::none().with(0, FaultKind::WorkerPanic));
        assert_eq!(hook(&ctx(0, 0, 0)), Some(InjectedFault::WorkerPanic));
        assert_eq!(hook(&ctx(0, 0, 1)), None);
        assert_eq!(hook(&ctx(0, 1, 0)), None);
    }

    #[test]
    fn empty_plan_is_a_no_op_hook() {
        let hook = fault_plan_hook(FaultPlan::none());
        for id in 0..20 {
            assert_eq!(hook(&ctx(id, 0, 0)), None);
        }
    }
}
