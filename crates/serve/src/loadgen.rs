//! A seeded closed-loop load driver.
//!
//! Replays a [`RequestSpec`] stream against a [`Server`] in fixed-size
//! batches: submit a batch, advance the [`ManualClock`] one tick,
//! drain, repeat. Closed-loop means a batch's completions are
//! collected before the next batch is offered — so queue depth (and
//! therefore shedding) is a pure function of `batch` and the server's
//! `queue_capacity`, never of thread scheduling.

use nlidb_benchdata::RequestSpec;

use crate::clock::ManualClock;
use crate::router::TenantServer;
use crate::server::{Completion, Server};

/// Everything a load run produced.
#[derive(Debug, Clone)]
pub struct LoadReport {
    /// All completions, in submission order.
    pub completions: Vec<Completion>,
    /// Batches driven.
    pub batches: usize,
}

impl LoadReport {
    /// The per-request semantic digests (see [`Completion::signature`]),
    /// in submission order — the unit of serving-equivalence checks.
    pub fn signatures(&self) -> Vec<String> {
        self.completions.iter().map(Completion::signature).collect()
    }
}

/// Drive `stream` through `server` in closed-loop batches of `batch`
/// requests, advancing `clock` one tick per batch.
pub fn run_closed_loop(
    server: &mut Server,
    clock: &ManualClock,
    stream: &[RequestSpec],
    batch: usize,
) -> LoadReport {
    let batch = batch.max(1);
    let mut completions = Vec::with_capacity(stream.len());
    let mut batches = 0;
    for chunk in stream.chunks(batch) {
        for spec in chunk {
            server.submit(spec);
        }
        completions.append(&mut server.drain());
        clock.advance(1);
        batches += 1;
    }
    LoadReport {
        completions,
        batches,
    }
}

/// [`run_closed_loop`] for a multi-tenant stream: each element of
/// `stream` is a `(schema fingerprint, request)` pair (the shape
/// [`nlidb_benchdata::interleave_streams`] produces), submitted to
/// `server` under its owning tenant.
pub fn run_closed_loop_tenants(
    server: &mut TenantServer,
    clock: &ManualClock,
    stream: &[(u64, RequestSpec)],
    batch: usize,
) -> LoadReport {
    let batch = batch.max(1);
    let mut completions = Vec::with_capacity(stream.len());
    let mut batches = 0;
    for chunk in stream.chunks(batch) {
        for (fingerprint, spec) in chunk {
            server.submit(*fingerprint, spec);
        }
        completions.append(&mut server.drain());
        clock.advance(1);
        batches += 1;
    }
    LoadReport {
        completions,
        batches,
    }
}

/// Assign a deadline of `now + budget` ticks to every `period`-th
/// request of `stream` (a deterministic deadline mix for backpressure
/// experiments). `now` is taken per batch position: request `i` is
/// submitted in batch `i / batch`, so its submit-time tick is known in
/// advance — no clock reads needed here.
pub fn with_deadlines(
    mut stream: Vec<RequestSpec>,
    period: usize,
    budget: u64,
    batch: usize,
) -> Vec<RequestSpec> {
    let period = period.max(1);
    let batch = batch.max(1);
    for (i, spec) in stream.iter_mut().enumerate() {
        if i % period == 0 {
            let submit_tick = (i / batch) as u64;
            spec.deadline = Some(submit_tick + budget);
        }
    }
    stream
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::{Clock, ManualClock};
    use crate::server::ServerConfig;
    use nlidb_benchdata::{derive_slots, request_stream, retail_database};
    use nlidb_core::pipeline::NliPipeline;
    use std::sync::Arc;

    #[test]
    fn closed_loop_completes_everything() {
        let db = retail_database(7);
        let slots = derive_slots(&db);
        let pipeline = Arc::new(NliPipeline::standard(&db));
        let stream = request_stream(&slots, 42, 40, 0.25);
        let clock = Arc::new(ManualClock::new());
        let mut server = Server::start(
            pipeline,
            ServerConfig {
                workers: 2,
                ..ServerConfig::default()
            },
            clock.clone() as Arc<dyn Clock>,
        );
        let report = run_closed_loop(&mut server, &clock, &stream, 8);
        assert_eq!(report.completions.len(), 40);
        assert_eq!(report.batches, 5);
        assert_eq!(clock.now(), 5, "one tick per batch");
        // Submission order is preserved.
        let ids: Vec<u64> = report.completions.iter().map(|c| c.id).collect();
        assert_eq!(ids, (0..40).collect::<Vec<u64>>());
        server.shutdown();
    }

    #[test]
    fn with_deadlines_marks_the_periodic_subset() {
        let stream = vec![RequestSpec::single("q"); 10];
        let marked = with_deadlines(stream, 3, 5, 4);
        let deadlines: Vec<Option<u64>> = marked.iter().map(|r| r.deadline).collect();
        // i = 0, 3, 6, 9 get deadlines; submit ticks 0, 0, 1, 2.
        assert_eq!(deadlines[0], Some(5));
        assert_eq!(deadlines[3], Some(5));
        assert_eq!(deadlines[6], Some(6));
        assert_eq!(deadlines[9], Some(7));
        assert!(deadlines[1].is_none() && deadlines[2].is_none());
    }
}
