//! Seeded load drivers: the exact closed loop and the soak-scale open
//! loop.
//!
//! [`run_closed_loop`] replays a [`RequestSpec`] stream against a
//! [`Server`] in fixed-size batches: submit a batch, advance the
//! [`ManualClock`] one tick, drain, repeat. Closed-loop means a
//! batch's completions are collected before the next batch is offered
//! — so queue depth (and therefore shedding) is a pure function of
//! `batch` and the server's `queue_capacity`, never of thread
//! scheduling. It keeps every [`Completion`] and is what E12–E19
//! compare signature-for-signature.
//!
//! [`run_open_loop`] decouples arrivals from completions, the way real
//! traffic does: a fixed number of requests arrive every tick whether
//! or not earlier ones finished, and the server is only drained every
//! `drain_every` ticks — so between drains the credit ledger
//! accumulates `arrivals_per_tick × drain_every` requests and
//! sustained saturation is a *deterministic* property of the schedule,
//! not an accident of thread timing. At soak scale (10⁵–10⁶ requests)
//! nothing may accumulate per request: completions are folded into a
//! [`SoakReport`] — counters, a bounded-memory latency sketch, and a
//! rolling signature digest — the moment they drain, and dropped.
//!
//! Sojourn latency is measured in logical ticks, submit to drain; it
//! is recorded for *served* requests only (answered, session replies,
//! degraded answers) — a shed request has no service time.

use std::collections::HashMap;

use nlidb_benchdata::RequestSpec;
use nlidb_obs::SketchHistogram;

use crate::clock::{Clock, ManualClock};
use crate::router::TenantServer;
use crate::server::{Completion, Disposition, Server};

/// Everything a closed-loop run produced.
#[derive(Debug, Clone)]
pub struct LoadReport {
    /// All completions, in submission order.
    pub completions: Vec<Completion>,
    /// Batches driven.
    pub batches: usize,
}

impl LoadReport {
    /// The per-request semantic digests (see [`Completion::signature`]),
    /// in submission order — the unit of serving-equivalence checks.
    pub fn signatures(&self) -> Vec<String> {
        self.completions.iter().map(Completion::signature).collect()
    }
}

/// Drive `stream` through `server` in closed-loop batches of `batch`
/// requests, advancing `clock` one tick per batch.
pub fn run_closed_loop(
    server: &mut Server,
    clock: &ManualClock,
    stream: &[RequestSpec],
    batch: usize,
) -> LoadReport {
    let batch = batch.max(1);
    // Grown drain by drain — capacity stays chunk-bounded instead of
    // preallocating the whole stream's length up front (the soak-scale
    // hazard the open loop avoids entirely by never keeping
    // completions at all).
    let mut completions = Vec::new();
    let mut batches = 0;
    for chunk in stream.chunks(batch) {
        for spec in chunk {
            server.submit(spec);
        }
        completions.append(&mut server.drain());
        clock.advance(1);
        batches += 1;
    }
    LoadReport {
        completions,
        batches,
    }
}

/// [`run_closed_loop`] for a multi-tenant stream: each element of
/// `stream` is a `(schema fingerprint, request)` pair (the shape
/// [`nlidb_benchdata::interleave_streams`] produces), submitted to
/// `server` under its owning tenant.
pub fn run_closed_loop_tenants(
    server: &mut TenantServer,
    clock: &ManualClock,
    stream: &[(u64, RequestSpec)],
    batch: usize,
) -> LoadReport {
    let batch = batch.max(1);
    let mut completions = Vec::new();
    let mut batches = 0;
    for chunk in stream.chunks(batch) {
        for (fingerprint, spec) in chunk {
            server.submit(*fingerprint, spec);
        }
        completions.append(&mut server.drain());
        clock.advance(1);
        batches += 1;
    }
    LoadReport {
        completions,
        batches,
    }
}

/// The open-loop arrival schedule (see the module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OpenLoopConfig {
    /// Requests offered per clock tick, regardless of completions
    /// (at least 1).
    pub arrivals_per_tick: usize,
    /// Ticks between drains (at least 1). Between drains the credit
    /// ledger only grows — this knob times overload pressure.
    pub drain_every: u64,
}

impl Default for OpenLoopConfig {
    fn default() -> OpenLoopConfig {
        OpenLoopConfig {
            arrivals_per_tick: 8,
            drain_every: 4,
        }
    }
}

/// FNV-1a continuation: fold `bytes` into a running 64-bit hash.
fn fnv1a_chain(mut hash: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x100_0000_01b3);
    }
    hash
}

/// The FNV-1a offset basis — the rolling digest's initial value.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

/// The streaming summary of an open-loop run: O(1) memory in the
/// stream length. Completions fold in as they drain — disposition
/// counters, a [`SketchHistogram`] of served sojourn ticks, and a
/// rolling FNV-1a digest of every [`Completion::signature`] in id
/// order — and are then dropped. Two runs fold byte-identical
/// summaries iff they served the stream identically.
#[derive(Debug)]
pub struct SoakReport {
    /// Requests offered to the server.
    pub requests: u64,
    /// Standalone questions answered at full fidelity.
    pub answered: u64,
    /// Dialogue turns processed.
    pub session_replies: u64,
    /// Questions answered by a weaker interpreter family.
    pub degraded: u64,
    /// Requests the pipeline refused or the runtime could not place.
    pub refused: u64,
    /// Requests shed at admission (queue-full, cost, or overload —
    /// the metrics snapshot breaks these apart).
    pub shed: u64,
    /// Requests rejected for an unmeetable deadline.
    pub deadline_exceeded: u64,
    /// Drains performed.
    pub drains: u64,
    /// Clock ticks the run spanned.
    pub ticks: u64,
    /// Sojourn ticks (submit → drain) of served requests, in a
    /// bounded-memory log₂-bucket sketch.
    pub latency: SketchHistogram,
    /// Submit ticks of requests still awaiting their drain — bounded
    /// by one drain window's arrivals, emptied by every drain.
    pending: HashMap<u64, u64>,
    /// Rolling FNV-1a digest over completion signatures, folded in id
    /// order.
    digest: u64,
}

impl Default for SoakReport {
    fn default() -> SoakReport {
        SoakReport::new()
    }
}

impl SoakReport {
    /// An empty report.
    pub fn new() -> SoakReport {
        SoakReport {
            requests: 0,
            answered: 0,
            session_replies: 0,
            degraded: 0,
            refused: 0,
            shed: 0,
            deadline_exceeded: 0,
            drains: 0,
            ticks: 0,
            latency: SketchHistogram::new(),
            pending: HashMap::new(),
            digest: FNV_OFFSET,
        }
    }

    /// Note a submission: request `id` went in at `tick`.
    fn note_submit(&mut self, id: u64, tick: u64) {
        self.requests += 1;
        self.pending.insert(id, tick);
    }

    /// Fold one drained completion and drop it. `drain_tick` is the
    /// clock tick of the drain that delivered it.
    fn fold(&mut self, completion: &Completion, drain_tick: u64) {
        let submitted = self
            .pending
            .remove(&completion.id)
            .expect("completion for a noted submission");
        let served = match completion.disposition {
            Disposition::Answered { .. } => {
                self.answered += 1;
                true
            }
            Disposition::SessionReply { .. } => {
                self.session_replies += 1;
                true
            }
            Disposition::Degraded { .. } => {
                self.degraded += 1;
                true
            }
            Disposition::Refused { .. } => {
                self.refused += 1;
                false
            }
            Disposition::Shed => {
                self.shed += 1;
                false
            }
            Disposition::DeadlineExceeded => {
                self.deadline_exceeded += 1;
                false
            }
        };
        if served {
            self.latency.observe(drain_tick.saturating_sub(submitted));
        }
        self.digest = fnv1a_chain(self.digest, completion.signature().as_bytes());
        self.digest = fnv1a_chain(self.digest, b"\n");
    }

    /// Requests served at some fidelity (answered + session replies +
    /// degraded).
    pub fn served(&self) -> u64 {
        self.answered + self.session_replies + self.degraded
    }

    /// The rolling FNV-1a digest over every completion signature, in
    /// id order. Equal digests ⇔ signature-identical runs; this is the
    /// O(1)-memory stand-in for comparing full signature vectors.
    pub fn signature_digest(&self) -> u64 {
        self.digest
    }

    /// One canonical line: every counter, the latency percentiles
    /// (bucket upper bounds, 0 when nothing was served), and the
    /// signature digest. E20 byte-compares exactly this across paired
    /// runs.
    pub fn summary_line(&self) -> String {
        format!(
            "requests={} served={} answered={} session={} degraded={} refused={} shed={} \
             deadline={} drains={} ticks={} p50={} p95={} p99={} digest={:016x}",
            self.requests,
            self.served(),
            self.answered,
            self.session_replies,
            self.degraded,
            self.refused,
            self.shed,
            self.deadline_exceeded,
            self.drains,
            self.ticks,
            self.latency.percentile(50.0).unwrap_or(0),
            self.latency.percentile(95.0).unwrap_or(0),
            self.latency.percentile(99.0).unwrap_or(0),
            self.digest,
        )
    }
}

/// Drive a lazy `stream` through `server` open-loop (see the module
/// docs): `arrivals_per_tick` requests arrive per tick whether or not
/// earlier ones finished, the server is drained every `drain_every`
/// ticks (plus once at the end), and completions fold straight into
/// the returned [`SoakReport`].
pub fn run_open_loop(
    server: &mut Server,
    clock: &ManualClock,
    stream: impl IntoIterator<Item = RequestSpec>,
    config: OpenLoopConfig,
) -> SoakReport {
    let arrivals = config.arrivals_per_tick.max(1);
    let drain_every = config.drain_every.max(1);
    let start = clock.now();
    let mut report = SoakReport::new();
    let mut stream = stream.into_iter();
    let mut since_drain = 0u64;
    let mut exhausted = false;
    while !exhausted {
        for _ in 0..arrivals {
            match stream.next() {
                Some(spec) => {
                    let id = server.submit(&spec).id();
                    report.note_submit(id, clock.now());
                }
                None => {
                    exhausted = true;
                    break;
                }
            }
        }
        clock.advance(1);
        since_drain += 1;
        if since_drain >= drain_every {
            let tick = clock.now();
            for c in server.drain() {
                report.fold(&c, tick);
            }
            report.drains += 1;
            since_drain = 0;
        }
    }
    let tick = clock.now();
    for c in server.drain() {
        report.fold(&c, tick);
    }
    report.drains += 1;
    report.ticks = clock.now() - start;
    debug_assert!(report.pending.is_empty(), "final drain folds everything");
    report
}

/// [`run_open_loop`] for a multi-tenant stream of
/// `(schema fingerprint, request)` pairs against a [`TenantServer`].
pub fn run_open_loop_tenants(
    server: &mut TenantServer,
    clock: &ManualClock,
    stream: impl IntoIterator<Item = (u64, RequestSpec)>,
    config: OpenLoopConfig,
) -> SoakReport {
    let arrivals = config.arrivals_per_tick.max(1);
    let drain_every = config.drain_every.max(1);
    let start = clock.now();
    let mut report = SoakReport::new();
    let mut stream = stream.into_iter();
    let mut since_drain = 0u64;
    let mut exhausted = false;
    while !exhausted {
        for _ in 0..arrivals {
            match stream.next() {
                Some((fingerprint, spec)) => {
                    let id = server.submit(fingerprint, &spec).id();
                    report.note_submit(id, clock.now());
                }
                None => {
                    exhausted = true;
                    break;
                }
            }
        }
        clock.advance(1);
        since_drain += 1;
        if since_drain >= drain_every {
            let tick = clock.now();
            for c in server.drain() {
                report.fold(&c, tick);
            }
            report.drains += 1;
            since_drain = 0;
        }
    }
    let tick = clock.now();
    for c in server.drain() {
        report.fold(&c, tick);
    }
    report.drains += 1;
    report.ticks = clock.now() - start;
    debug_assert!(report.pending.is_empty(), "final drain folds everything");
    report
}

/// Assign a deadline of `now + budget` ticks to every `period`-th
/// request of `stream` (a deterministic deadline mix for backpressure
/// experiments). `now` is taken per batch position: request `i` is
/// submitted in batch `i / batch`, so its submit-time tick is known in
/// advance — no clock reads needed here.
pub fn with_deadlines(
    mut stream: Vec<RequestSpec>,
    period: usize,
    budget: u64,
    batch: usize,
) -> Vec<RequestSpec> {
    let period = period.max(1);
    let batch = batch.max(1);
    for (i, spec) in stream.iter_mut().enumerate() {
        if i % period == 0 {
            let submit_tick = (i / batch) as u64;
            spec.deadline = Some(submit_tick + budget);
        }
    }
    stream
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::{Clock, ManualClock};
    use crate::server::{OverloadPolicy, ServerConfig};
    use nlidb_benchdata::{derive_slots, question_pool, request_stream, retail_database};
    use nlidb_core::pipeline::NliPipeline;
    use std::sync::Arc;

    fn setup(workers: usize, overload: Option<OverloadPolicy>) -> (Server, Arc<ManualClock>) {
        let db = retail_database(7);
        let pipeline = Arc::new(NliPipeline::standard(&db));
        let clock = Arc::new(ManualClock::new());
        let server = Server::start(
            pipeline,
            ServerConfig {
                workers,
                overload,
                ..ServerConfig::default()
            },
            clock.clone() as Arc<dyn Clock>,
        );
        (server, clock)
    }

    #[test]
    fn closed_loop_completes_everything() {
        let db = retail_database(7);
        let slots = derive_slots(&db);
        let pipeline = Arc::new(NliPipeline::standard(&db));
        let stream = request_stream(&slots, 42, 40, 0.25);
        let clock = Arc::new(ManualClock::new());
        let mut server = Server::start(
            pipeline,
            ServerConfig {
                workers: 2,
                ..ServerConfig::default()
            },
            clock.clone() as Arc<dyn Clock>,
        );
        let report = run_closed_loop(&mut server, &clock, &stream, 8);
        assert_eq!(report.completions.len(), 40);
        assert_eq!(report.batches, 5);
        assert_eq!(clock.now(), 5, "one tick per batch");
        // Submission order is preserved.
        let ids: Vec<u64> = report.completions.iter().map(|c| c.id).collect();
        assert_eq!(ids, (0..40).collect::<Vec<u64>>());
        server.shutdown();
    }

    #[test]
    fn with_deadlines_marks_the_periodic_subset() {
        let stream = vec![RequestSpec::single("q"); 10];
        let marked = with_deadlines(stream, 3, 5, 4);
        let deadlines: Vec<Option<u64>> = marked.iter().map(|r| r.deadline).collect();
        // i = 0, 3, 6, 9 get deadlines; submit ticks 0, 0, 1, 2.
        assert_eq!(deadlines[0], Some(5));
        assert_eq!(deadlines[3], Some(5));
        assert_eq!(deadlines[6], Some(6));
        assert_eq!(deadlines[9], Some(7));
        assert!(deadlines[1].is_none() && deadlines[2].is_none());
    }

    #[test]
    fn open_loop_accounts_every_request_and_is_repeatable() {
        let db = retail_database(7);
        let slots = derive_slots(&db);
        let pool = question_pool(&slots, 42, 8);
        let run = || {
            let (mut server, clock) = setup(2, None);
            let stream = nlidb_benchdata::zipfian_stream(pool.clone(), 42, 120, 1.0);
            let report = run_open_loop(
                &mut server,
                &clock,
                stream,
                OpenLoopConfig {
                    arrivals_per_tick: 6,
                    drain_every: 3,
                },
            );
            server.shutdown();
            report.summary_line()
        };
        let (a, b) = (run(), run());
        assert_eq!(a, b, "open-loop summaries are byte-identical");
        assert!(a.contains("requests=120"), "unexpected summary: {a}");
        // Everything either served or rejected — nothing vanishes.
        let report = {
            let (mut server, clock) = setup(2, None);
            let stream = nlidb_benchdata::zipfian_stream(pool.clone(), 42, 120, 1.0);
            let r = run_open_loop(&mut server, &clock, stream, OpenLoopConfig::default());
            server.shutdown();
            r
        };
        assert_eq!(
            report.served() + report.refused + report.shed + report.deadline_exceeded,
            report.requests
        );
        assert!(report.latency.count() > 0, "served requests have sojourns");
    }

    #[test]
    fn open_loop_overload_sheds_then_recovers() {
        let db = retail_database(7);
        let slots = derive_slots(&db);
        let pool = question_pool(&slots, 42, 6);
        let policy = OverloadPolicy {
            high_watermark: 8,
            low_watermark: 2,
            cost_threshold: 0,
            early_warning: None,
        };
        let (mut server, clock) = setup(1, Some(policy));
        // Warm pass teaches costs without pressure.
        let warm: Vec<RequestSpec> =
            nlidb_benchdata::zipfian_stream(pool.clone(), 7, 6, 0.0).collect();
        run_closed_loop(&mut server, &clock, &warm, 1);
        // Open loop at 6 arrivals/tick, drain every 4 ticks: the
        // ledger hits 8+ mid-window, so overload must engage.
        let stream = nlidb_benchdata::zipfian_stream(pool.clone(), 42, 200, 1.0);
        let report = run_open_loop(
            &mut server,
            &clock,
            stream,
            OpenLoopConfig {
                arrivals_per_tick: 6,
                drain_every: 4,
            },
        );
        let m = server.shutdown();
        assert!(m.overload_entered > 0, "pressure must open episodes");
        assert_eq!(
            m.overload_entered, m.overload_recovered,
            "every episode closed by a drain — the controller never wedges"
        );
        assert!(m.shed_overload > 0, "learned-expensive repeats were shed");
        assert_eq!(report.shed, m.shed_overload + m.shed_full + m.shed_cost);
        assert!(report.served() > 0, "degradation, not collapse");
    }
}
