//! Injectable logical time — re-exported from [`nlidb_obs`].
//!
//! The [`Clock`] trait and [`ManualClock`] originated here; they moved
//! down to the observability crate so the tracer can stamp spans from
//! the same time source deadlines are decided against, and are
//! re-exported under their original paths. The serving-side contract
//! is unchanged: deadlines and admission decisions are made against a
//! clock the *caller* owns, and experiments drive a [`ManualClock`]
//! forward explicitly, so every deadline outcome is a pure function of
//! the request stream, not of scheduler timing.

pub use nlidb_obs::{Clock, ManualClock};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manual_clock_moves_only_on_advance() {
        let c = ManualClock::new();
        assert_eq!(c.now(), 0);
        assert_eq!(c.advance(5), 5);
        assert_eq!(c.now(), 5);
        c.set(100);
        assert_eq!(c.now(), 100);
    }

    #[test]
    fn starting_at_offsets() {
        let c = ManualClock::starting_at(7);
        assert_eq!(c.now(), 7);
    }

    #[test]
    fn advance_saturates_at_the_boundary_instead_of_wrapping() {
        // Deadline admission compares `now + projected`; a wrapped
        // clock would silently re-admit everything. The clock saturates
        // instead, keeping monotonicity at the representable ceiling.
        let c = ManualClock::starting_at(u64::MAX - 1);
        assert_eq!(c.advance(5), u64::MAX);
        assert_eq!(c.now(), u64::MAX);
        assert_eq!(c.advance(1), u64::MAX, "stays pinned, never wraps");
    }
}
