//! Injectable logical time.
//!
//! The workspace invariant — no wall-clock in library code — extends
//! to serving: deadlines and admission decisions are made against a
//! [`Clock`] the *caller* owns. Experiments drive a [`ManualClock`]
//! forward explicitly, so every deadline outcome is a pure function of
//! the request stream, not of scheduler timing.

use std::sync::atomic::{AtomicU64, Ordering};

/// A monotonic tick source. Ticks are dimensionless; the driver
/// decides what one tick means (the load generator advances one tick
/// per submitted batch).
pub trait Clock: Send + Sync {
    /// Current tick.
    fn now(&self) -> u64;
}

/// A clock that moves only when told to.
#[derive(Debug, Default)]
pub struct ManualClock {
    ticks: AtomicU64,
}

impl ManualClock {
    /// A clock starting at tick 0.
    pub fn new() -> ManualClock {
        ManualClock::default()
    }

    /// A clock starting at `start`.
    pub fn starting_at(start: u64) -> ManualClock {
        ManualClock {
            ticks: AtomicU64::new(start),
        }
    }

    /// Advance by `delta` ticks, returning the new time.
    pub fn advance(&self, delta: u64) -> u64 {
        self.ticks.fetch_add(delta, Ordering::Relaxed) + delta
    }

    /// Jump to an absolute tick (must not move backwards in normal
    /// use; not enforced, since tests rewind freely).
    pub fn set(&self, ticks: u64) {
        self.ticks.store(ticks, Ordering::Relaxed);
    }
}

impl Clock for ManualClock {
    fn now(&self) -> u64 {
        self.ticks.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manual_clock_moves_only_on_advance() {
        let c = ManualClock::new();
        assert_eq!(c.now(), 0);
        assert_eq!(c.advance(5), 5);
        assert_eq!(c.now(), 5);
        c.set(100);
        assert_eq!(c.now(), 100);
    }

    #[test]
    fn starting_at_offsets() {
        let c = ManualClock::starting_at(7);
        assert_eq!(c.now(), 7);
    }
}
