//! Serving-side observability wiring.
//!
//! A [`ServeObs`] bundles the two obs endpoints a server writes into:
//! a bounded [`TraceSink`] receiving one span tree per request, and a
//! [`MetricsRegistry`] receiving per-stage cost histograms (and, via
//! [`crate::metrics::MetricsSnapshot::export_into`], the serving
//! counters). The caller keeps its own handles; the server only
//! clones the `Arc`s — so after a run the driver reads traces and
//! metrics without touching the server again.
//!
//! Determinism note: workers stamp coarse span ticks by reading the
//! shared injected clock. Under the closed-loop driver the clock only
//! advances while no request is in flight (submit batch → drain →
//! advance), so those reads — and therefore entire traces — are pure
//! functions of the request stream. A driver that advances the clock
//! mid-flight would keep the *semantic* stream deterministic but could
//! shift coarse tick stamps; trace-tick sequence numbers are immune
//! either way.

use std::sync::Arc;

use nlidb_obs::{MetricsRegistry, TraceSink};

use crate::health::{HealthConfig, HealthHub};

/// Trace + metrics endpoints for one observed server.
#[derive(Debug, Clone)]
pub struct ServeObs {
    /// Receives one finished trace per request (admitted or rejected).
    pub sink: Arc<TraceSink>,
    /// Receives `span.<name>` cost histograms as traces finish.
    pub registry: Arc<MetricsRegistry>,
    /// Optional windowed telemetry + SLO engine, fed by the server's
    /// drain loop (`None` — the default — records nothing, keeping
    /// every pre-existing committed artifact byte-identical).
    pub health: Option<Arc<HealthHub>>,
}

impl ServeObs {
    /// A fresh sink (retaining `trace_capacity` traces) and registry.
    pub fn new(trace_capacity: usize) -> ServeObs {
        ServeObs::sampled(trace_capacity, 1)
    }

    /// Like [`ServeObs::new`], but the sink samples: only traces whose
    /// id is a multiple of `every` are stored. Soak drivers use this so
    /// span memory stays `trace_capacity` whatever the stream length;
    /// metrics histograms still observe *every* trace (sampling gates
    /// storage, not measurement).
    pub fn sampled(trace_capacity: usize, every: u64) -> ServeObs {
        ServeObs {
            sink: Arc::new(TraceSink::with_sampling(trace_capacity, every)),
            registry: Arc::new(MetricsRegistry::new()),
            health: None,
        }
    }

    /// [`ServeObs::sampled`] plus a [`HealthHub`]: the server feeds
    /// every completion's disposition and sojourn into per-tenant
    /// windowed scopes at each drain and evaluates the SLO engines
    /// there, emitting `health` traces into the sink and `health.*`
    /// counters into the registry. Health traces carry ids from
    /// [`nlidb_obs::slo::HEALTH_TRACE_BASE`] up — disjoint from the
    /// small sequential request ids, and subject to the same
    /// deterministic id-modulus sampling as every other trace.
    pub fn with_health(trace_capacity: usize, every: u64, config: HealthConfig) -> ServeObs {
        ServeObs {
            health: Some(Arc::new(HealthHub::new(config))),
            ..ServeObs::sampled(trace_capacity, every)
        }
    }

    /// Record a finished trace: per-stage cost histograms first, then
    /// the trace itself.
    pub fn record(&self, trace: nlidb_obs::Trace) {
        self.registry.observe_trace(&trace);
        self.sink.push(trace);
    }
}
