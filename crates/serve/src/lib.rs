#![warn(missing_docs)]
#![forbid(unsafe_code)]

//! # nlidb-serve — a concurrent, cache-fronted query-serving runtime
//!
//! The survey's systems are built as single-user pipelines; production
//! NLIDBs sit behind many concurrent users asking overlapping
//! questions and holding multi-turn conversations. This crate wraps a
//! trained [`NliPipeline`](nlidb_core::pipeline::NliPipeline) in a
//! serving runtime that adds exactly the things a single-user pipeline
//! lacks, while preserving the workspace's determinism invariant:
//!
//! * [`server`] — a fixed pool of `std::thread` workers behind
//!   per-worker bounded queues; session-affinity routing keeps each
//!   conversation's turns ordered on one thread, and content-hash
//!   routing sends duplicate questions to the same worker-local cache.
//!   Backpressure (admit / shed / deadline-reject) is decided entirely
//!   at admission time from a credit ledger the single-threaded
//!   submitter owns — so outcomes never depend on thread timing.
//! * [`lru`] — the O(1) LRU interpretation cache, keyed by
//!   (normalized question, schema fingerprint), storing the fully
//!   rendered answer so a hit skips interpretation *and* execution.
//!   The join-path cache in front of Steiner-tree search lives in
//!   [`nlidb_ontology::cache`] and is shared by all workers.
//! * [`clock`] — injectable logical time ([`ManualClock`], re-exported
//!   from [`nlidb_obs`]); deadlines are ticks of a clock the driver
//!   advances, never a wall clock.
//! * [`metrics`] — atomic counters with a comparable, printable
//!   [`MetricsSnapshot`], exportable into an obs
//!   [`MetricsRegistry`](nlidb_obs::MetricsRegistry).
//! * [`obs`] — per-request tracing: start the server with a
//!   [`ServeObs`] and every request finishes as a span tree
//!   (admission, queueing, cache probe, ladder rungs with retry /
//!   breaker / fault evidence, pipeline stages) in a deterministic
//!   [`TraceSink`](nlidb_obs::TraceSink) — E14's byte-identical-JSONL
//!   claim.
//! * [`loadgen`] — seeded load drivers: the exact closed loop
//!   replaying [`nlidb_benchdata::request_stream`] workloads batch by
//!   batch, and the soak-scale open loop ([`loadgen::run_open_loop`])
//!   whose arrival schedule is decoupled from completion and whose
//!   completions fold into a streaming [`loadgen::SoakReport`] —
//!   O(1) memory at 10⁵–10⁶ requests.
//! * [`fault`] / [`retry`] — the robustness layer: seeded fault
//!   injection through the request hook, retry with logical backoff,
//!   per-interpreter circuit breakers, graceful degradation down the
//!   §4 family ladder, and contained worker panics.
//! * [`journal`] — the write-ahead session journal behind crash
//!   recovery: every committed dialogue turn is journaled before its
//!   reply is released, a panicked worker's queued work bounces back
//!   for deterministic re-admission, and its sessions are rebuilt on
//!   live workers by exact replay of their journaled turns.
//! * [`tenant`] / [`router`] — multi-tenant sharding: a
//!   [`TenantRegistry`] maps schema fingerprints to (pipeline, policy,
//!   journal namespace), and [`TenantServer`] routes fingerprints over
//!   the same worker pool with per-(worker, tenant) caches and
//!   sessions, per-tenant metrics/journals, deterministic admission
//!   quotas, and tenant-scoped join-path caching. A single-tenant
//!   registry is byte-identical to the plain [`Server`].
//! * [`health`] — windowed telemetry + SLO tracking: a [`HealthHub`]
//!   (attached via [`ServeObs::with_health`](obs::ServeObs::with_health))
//!   buckets every drained completion into per-tenant logical-tick
//!   windows, computes error-budget burn rates over short+long window
//!   pairs, and emits deterministic fire/clear health events into the
//!   trace sink and a `health.*` metrics scope. The overload
//!   controller's opt-in [`OverloadPolicy::early_warning`] knob
//!   consults the short-window burn to open episodes before the high
//!   watermark — E21's claim.
//!
//! Experiment E12 asserts the payoff: at seed 42, the completion
//! stream of a 4-worker server is signature-identical to a 1-worker
//! server (and to itself with caches disabled), while the caches
//! absorb most repeat traffic. E13 extends the claim to failure:
//! under a seeded fault schedule the full completion stream and
//! metrics snapshot are bit-identical run over run, and transient
//! faults absorbed by the retry budget leave the stream byte-identical
//! to the unfaulted run. E15 extends it to recovery: runs that lose a
//! worker mid-stream produce the same answers as runs that never
//! crash — lost work ≡ replayed work.

pub mod clock;
pub mod fault;
pub mod health;
pub mod journal;
pub mod loadgen;
pub mod lru;
pub mod metrics;
pub mod obs;
pub mod retry;
pub mod router;
pub mod server;
pub mod tenant;

pub use clock::{Clock, ManualClock};
pub use fault::{fault_plan_hook, silence_worker_panics, HookCtx, InjectedFault};
pub use health::{HealthConfig, HealthHub, HealthReport, WindowSample};
pub use journal::{AuditRecord, JournalEntry, SessionJournal};
pub use loadgen::{
    run_closed_loop, run_closed_loop_tenants, run_open_loop, run_open_loop_tenants, with_deadlines,
    LoadReport, OpenLoopConfig, SoakReport,
};
pub use lru::LruCache;
pub use metrics::{MetricsSnapshot, ServeMetrics};
pub use obs::ServeObs;
pub use retry::{BreakerPolicy, CircuitBreaker, RetryPolicy};
pub use router::TenantServer;
pub use server::{
    normalize_question, Admission, Completion, Disposition, OverloadPolicy, RequestHook, Server,
    ServerConfig,
};
pub use tenant::{
    schema_fingerprint, schema_fingerprint_of, tenant_pipeline, TenantEntry, TenantPolicy,
    TenantRegistry,
};

/// Compile-time proof of the sharing model: the server handle moves
/// between threads, and everything workers touch is `Send + Sync`.
fn assert_send<T: Send>() {}
fn assert_send_sync<T: Send + Sync>() {}
const _: () = {
    let _ = assert_send::<Server>;
    let _ = assert_send_sync::<ManualClock>;
    let _ = assert_send_sync::<ServeMetrics>;
    let _ = assert_send_sync::<std::sync::Arc<dyn Clock>>;
};
