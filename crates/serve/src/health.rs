//! Windowed health tracking for the serving runtime.
//!
//! A [`HealthHub`] is the bridge between the server's drain loop and
//! the obs-layer time-series/SLO machinery
//! ([`nlidb_obs::timeseries`], [`nlidb_obs::slo`]): on every drain the
//! submitter feeds each completion's disposition and sojourn ticks
//! into a per-tenant [`WindowedScope`] and [`SloEngine`], then
//! evaluates the engines at the drain tick. Everything downstream —
//! the window matrix, the burn rates, the fire/clear event log, the
//! `health.*` metrics and the `health` traces pushed into the sink —
//! is therefore a pure function of the completion stream, which E21
//! asserts by running every regime twice and byte-comparing.
//!
//! Two objectives are tracked per tenant, the classic pair:
//!
//! * **availability** — good = the request was served (answered,
//!   session reply, or degraded); bad = refused, shed, or expired.
//! * **latency** — over served requests only: good = sojourn (drain
//!   tick − submit tick) at or below the configured threshold.
//!
//! Unknown-tenant refusals ([`crate::TenantServer`] traffic naming no
//! registered fingerprint) belong to no tenant scope and are not fed;
//! every other completion, including admission-time rejects, is.
//!
//! Lock discipline: the hub's interior `Mutex` exists only to make
//! [`crate::ServeObs`] `Sync` for the worker threads that share it —
//! the single-threaded submitter is the only writer, so there is no
//! lock-order dependence to make runs diverge.

use std::collections::BTreeMap;
use std::sync::Mutex;

use nlidb_obs::slo::HEALTH_TRACE_BASE;
use nlidb_obs::{HealthEvent, SloEngine, SloKind, SloPolicy, WindowedScope};

use crate::obs::ServeObs;
use crate::server::Disposition;

/// Knobs for a [`HealthHub`]: window geometry plus the two objective
/// policies, in the same spirit as the other serve policy structs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HealthConfig {
    /// Logical ticks per window.
    pub window_ticks: u64,
    /// Windows retained per series (ring capacity). Series older than
    /// this fold into evicted totals — sums still reconcile exactly.
    pub windows: usize,
    /// Availability target in milli-units (990 = 99.0% served).
    pub availability_target_milli: u64,
    /// Latency target in milli-units over served requests.
    pub latency_target_milli: u64,
    /// Sojourn ticks at or below which a served request counts as
    /// latency-good.
    pub latency_threshold_ticks: u64,
    /// Short burn span, in windows (responsiveness).
    pub short_windows: u64,
    /// Long burn span, in windows (memory); clamped to ≥ short.
    pub long_windows: u64,
    /// Burn (milli) at/above which — on both spans — an objective
    /// fires. 1000 = spending the error budget exactly on schedule.
    pub fire_burn_milli: u64,
}

impl Default for HealthConfig {
    fn default() -> HealthConfig {
        HealthConfig {
            window_ticks: 8,
            windows: 64,
            availability_target_milli: 990,
            latency_target_milli: 950,
            latency_threshold_ticks: 8,
            short_windows: 2,
            long_windows: 8,
            fire_burn_milli: 2000,
        }
    }
}

impl HealthConfig {
    fn policies(&self) -> [SloPolicy; 2] {
        [
            SloPolicy {
                objective: "availability".to_string(),
                kind: SloKind::Availability,
                target_milli: self.availability_target_milli,
                short_windows: self.short_windows,
                long_windows: self.long_windows,
                fire_burn_milli: self.fire_burn_milli,
            },
            SloPolicy {
                objective: "latency".to_string(),
                kind: SloKind::Latency {
                    threshold_ticks: self.latency_threshold_ticks,
                },
                target_milli: self.latency_target_milli,
                short_windows: self.short_windows,
                long_windows: self.long_windows,
                fire_burn_milli: self.fire_burn_milli,
            },
        ]
    }
}

/// One per-window sample of the merged (all-tenant) series — what the
/// soak binary appends to its JSON line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WindowSample {
    /// Window index (tick / `window_ticks`).
    pub index: u64,
    /// Requests served (answered + session replies + degraded) whose
    /// completing drain fell in this window.
    pub served: u64,
    /// p99 sojourn ticks over the window's served requests (sketch
    /// bucket top; 0 for an empty window).
    pub p99: u64,
    /// Availability burn (milli) computed over this single window.
    pub burn_milli: u64,
}

/// A point-in-time view of one tenant's health, for callers that
/// should not hold the hub lock ([`crate::TenantServer::tenant_health`]).
#[derive(Debug, Clone)]
pub struct HealthReport {
    /// Canonical window-matrix rendering of the tenant's scope.
    pub matrix: String,
    /// Canonical event-log rendering of the tenant's engine.
    pub events: String,
    /// `(objective, currently firing)` pairs, objective-sorted.
    pub firing: Vec<(String, bool)>,
}

#[derive(Debug)]
struct TenantHealth {
    scope: WindowedScope,
    engine: SloEngine,
}

#[derive(Debug)]
struct HubInner {
    tenants: BTreeMap<String, TenantHealth>,
    /// Health traces emitted so far — the offset from
    /// [`HEALTH_TRACE_BASE`] for the next event's trace id.
    emitted: u64,
    /// Hub-global `(tenant, event)` log, emission order.
    events: Vec<(String, HealthEvent)>,
}

/// Per-tenant windowed scopes + SLO engines, fed by the server's
/// drain loop. See the module docs for the data flow.
#[derive(Debug)]
pub struct HealthHub {
    config: HealthConfig,
    inner: Mutex<HubInner>,
}

/// Counter series name for a disposition (the windowed analogue of
/// the cumulative [`crate::ServeMetrics`] counters).
fn series_of(disposition: &Disposition) -> &'static str {
    match disposition {
        Disposition::Answered { .. } => "answered",
        Disposition::SessionReply { .. } => "session",
        Disposition::Degraded { .. } => "degraded",
        Disposition::Refused { .. } => "refused",
        Disposition::Shed => "shed",
        Disposition::DeadlineExceeded => "deadline",
    }
}

fn is_served(disposition: &Disposition) -> bool {
    matches!(
        disposition,
        Disposition::Answered { .. }
            | Disposition::SessionReply { .. }
            | Disposition::Degraded { .. }
    )
}

impl HealthHub {
    /// An empty hub; tenant states appear on first feed.
    pub fn new(config: HealthConfig) -> HealthHub {
        let mut config = config;
        config.long_windows = config.long_windows.max(config.short_windows.max(1));
        assert!(
            config.long_windows <= config.windows as u64,
            "long span exceeds window ring capacity"
        );
        HealthHub {
            config,
            inner: Mutex::new(HubInner {
                tenants: BTreeMap::new(),
                emitted: 0,
                events: Vec::new(),
            }),
        }
    }

    /// The hub's configuration.
    pub fn config(&self) -> HealthConfig {
        self.config
    }

    /// Feed one completion: `sojourn` is drain tick − submit tick,
    /// `tick` the drain tick the completion surfaced at.
    pub fn feed(&self, tenant: &str, disposition: &Disposition, sojourn: u64, tick: u64) {
        let config = self.config;
        let mut inner = self.inner.lock().expect("health hub lock");
        let state = inner.tenants.entry(tenant.to_string()).or_insert_with(|| {
            let mut engine = SloEngine::new(config.window_ticks, config.windows);
            for policy in config.policies() {
                engine.add_objective(policy);
            }
            TenantHealth {
                scope: WindowedScope::new(config.window_ticks, config.windows),
                engine,
            }
        });
        let served = is_served(disposition);
        state.scope.counter(series_of(disposition)).record(tick, 1);
        if served {
            state.scope.histogram("sojourn").record(tick, sojourn);
        }
        state
            .engine
            .record("availability", tick, u64::from(served), u64::from(!served));
        if served {
            let slow = sojourn > config.latency_threshold_ticks;
            state
                .engine
                .record("latency", tick, u64::from(!slow), u64::from(slow));
        }
    }

    /// Evaluate every tenant's engine at `tick` (tenant-name order).
    /// Emitted events are appended to the hub log, pushed into the
    /// obs sink as `health` traces (ids from [`HEALTH_TRACE_BASE`]),
    /// and counted into the registry's `health.*` scope.
    pub fn evaluate(&self, tick: u64, obs: Option<&ServeObs>) {
        let mut inner = self.inner.lock().expect("health hub lock");
        let mut emitted: Vec<(String, HealthEvent)> = Vec::new();
        for (tenant, state) in inner.tenants.iter_mut() {
            for event in state.engine.evaluate(tick) {
                emitted.push((tenant.clone(), event));
            }
        }
        for (tenant, event) in emitted {
            if let Some(obs) = obs {
                obs.sink
                    .push(event.to_trace(HEALTH_TRACE_BASE + inner.emitted));
                obs.registry
                    .counter(&format!("health.{}", event.kind.label()))
                    .inc();
                obs.registry
                    .counter(&format!(
                        "health.{tenant}.{}.{}",
                        event.objective,
                        event.kind.label()
                    ))
                    .inc();
            }
            inner.emitted += 1;
            inner.events.push((tenant, event));
        }
    }

    /// The maximum short-span burn (milli) across every tenant and
    /// objective — the overload controller's early-warning signal.
    /// Updated only at drains, so consulting it at submit time is as
    /// deterministic as the credit ledger.
    pub fn max_short_burn_milli(&self) -> u64 {
        let inner = self.inner.lock().expect("health hub lock");
        inner
            .tenants
            .values()
            .map(|t| t.engine.max_short_burn_milli())
            .max()
            .unwrap_or(0)
    }

    /// Whether `objective` currently fires for `tenant`.
    pub fn is_firing(&self, tenant: &str, objective: &str) -> bool {
        let inner = self.inner.lock().expect("health hub lock");
        inner
            .tenants
            .get(tenant)
            .is_some_and(|t| t.engine.is_firing(objective))
    }

    /// Hub-global `(tenant, event)` log, emission order.
    pub fn events(&self) -> Vec<(String, HealthEvent)> {
        self.inner.lock().expect("health hub lock").events.clone()
    }

    /// Canonical rendering of the hub-global event log: one line per
    /// event, `tenant=<name> ` prefix then the event's own rendering.
    pub fn render_events(&self) -> String {
        let inner = self.inner.lock().expect("health hub lock");
        let mut out = String::new();
        for (tenant, event) in &inner.events {
            out.push_str(&format!("tenant={tenant} {}\n", event.render()));
        }
        out
    }

    /// Canonical rendering of every tenant's window matrix plus the
    /// event log — the byte-compared artifact of E21.
    pub fn render_all(&self) -> String {
        let inner = self.inner.lock().expect("health hub lock");
        let mut out = String::new();
        for (tenant, state) in &inner.tenants {
            out.push_str(&format!("tenant {tenant}\n"));
            out.push_str(&state.scope.render_text());
        }
        drop(inner);
        let events = self.render_events();
        if !events.is_empty() {
            out.push_str("events\n");
            out.push_str(&events);
        }
        out
    }

    /// A point-in-time report for one tenant (`None` if the tenant
    /// has fed nothing yet).
    pub fn report(&self, tenant: &str) -> Option<HealthReport> {
        let inner = self.inner.lock().expect("health hub lock");
        let state = inner.tenants.get(tenant)?;
        let matrix = state.scope.render_text();
        let firing: Vec<(String, bool)> = state
            .engine
            .policies()
            .iter()
            .map(|p| (p.objective.clone(), state.engine.is_firing(&p.objective)))
            .collect();
        let events = state.engine.render_events();
        Some(HealthReport {
            matrix,
            events,
            firing,
        })
    }

    /// A clone of one tenant's windowed scope, for reconciliation
    /// assertions (E21 byte- and sum-compares it against the
    /// cumulative serve counters).
    pub fn scope_snapshot(&self, tenant: &str) -> Option<WindowedScope> {
        let inner = self.inner.lock().expect("health hub lock");
        inner.tenants.get(tenant).map(|t| t.scope.clone())
    }

    /// Tenant names that have fed at least one completion, sorted.
    pub fn tenant_names(&self) -> Vec<String> {
        let inner = self.inner.lock().expect("health hub lock");
        inner.tenants.keys().cloned().collect()
    }

    /// The merged (all-tenant) per-window series: served throughput,
    /// p99 sojourn, and single-window availability burn, oldest
    /// retained window first. What the soak binary serializes.
    pub fn window_series(&self) -> Vec<WindowSample> {
        let inner = self.inner.lock().expect("health hub lock");
        let mut merged = WindowedScope::new(self.config.window_ticks, self.config.windows);
        for state in inner.tenants.values() {
            merged.merge(&state.scope);
        }
        drop(inner);
        let Some((from, to)) = merged.window_range() else {
            return Vec::new();
        };
        let delta = |name: &str, w: u64| merged.counter_ref(name).map_or(0, |c| c.delta(w));
        let budget = 1000 - self.config.availability_target_milli.min(999);
        (from..=to)
            .map(|w| {
                let served = delta("answered", w) + delta("session", w) + delta("degraded", w);
                let bad = delta("refused", w) + delta("shed", w) + delta("deadline", w);
                let total = served + bad;
                let burn_milli = bad
                    .saturating_mul(1000)
                    .checked_div(total)
                    .map_or(0, |share| share.saturating_mul(1000) / budget);
                let p99 = merged
                    .histogram_ref("sojourn")
                    .and_then(|h| h.percentile_in(w, 99.0))
                    .unwrap_or(0);
                WindowSample {
                    index: w,
                    served,
                    p99,
                    burn_milli,
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn served() -> Disposition {
        Disposition::Answered {
            sql: "SELECT 1".to_string(),
            rows: vec!["n=1".to_string()],
            from_cache: false,
        }
    }

    #[test]
    fn feed_and_reconcile() {
        let hub = HealthHub::new(HealthConfig {
            window_ticks: 4,
            windows: 16,
            ..HealthConfig::default()
        });
        for tick in 0..20 {
            hub.feed("default", &served(), 2, tick);
        }
        hub.feed("default", &Disposition::Shed, 0, 20);
        let scope = hub.scope_snapshot("default").unwrap();
        assert_eq!(scope.counter_ref("answered").unwrap().total(), 20);
        assert_eq!(scope.counter_ref("shed").unwrap().total(), 1);
        assert_eq!(scope.histogram_ref("sojourn").unwrap().total_count(), 20);
        assert!(hub.scope_snapshot("ghost").is_none());
        assert_eq!(hub.tenant_names(), vec!["default".to_string()]);
    }

    #[test]
    fn burn_fires_and_is_visible_to_early_warning() {
        let config = HealthConfig {
            window_ticks: 1,
            windows: 16,
            short_windows: 2,
            long_windows: 4,
            ..HealthConfig::default()
        };
        let hub = HealthHub::new(config);
        hub.feed("default", &served(), 1, 0);
        hub.evaluate(0, None);
        assert_eq!(hub.max_short_burn_milli(), 0);
        for tick in 1..3 {
            for _ in 0..10 {
                hub.feed("default", &Disposition::Shed, 0, tick);
            }
            hub.evaluate(tick, None);
        }
        assert!(hub.is_firing("default", "availability"));
        assert!(hub.max_short_burn_milli() >= 2000);
        let events = hub.events();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].0, "default");
        let report = hub.report("default").unwrap();
        assert!(report.firing.contains(&("availability".to_string(), true)));
        assert!(report.matrix.starts_with("windows width=1"));
        assert!(hub.render_all().contains("events\n"));
    }

    #[test]
    fn window_series_merges_tenants() {
        let hub = HealthHub::new(HealthConfig {
            window_ticks: 4,
            windows: 8,
            ..HealthConfig::default()
        });
        hub.feed("a", &served(), 3, 0);
        hub.feed("b", &served(), 5, 1);
        hub.feed("b", &Disposition::Shed, 0, 5);
        let series = hub.window_series();
        assert_eq!(series.len(), 2);
        assert_eq!(series[0].index, 0);
        assert_eq!(series[0].served, 2);
        assert_eq!(series[0].burn_milli, 0);
        assert_eq!(series[0].p99, 7, "sketch top of bucket holding 5");
        assert_eq!(series[1].served, 0);
        // One shed, zero served: error share 1000‰ over a 10‰ budget.
        assert_eq!(series[1].burn_milli, 100_000);
    }

    #[test]
    fn latency_objective_counts_only_served() {
        let hub = HealthHub::new(HealthConfig {
            window_ticks: 1,
            windows: 8,
            latency_threshold_ticks: 2,
            ..HealthConfig::default()
        });
        hub.feed("t", &served(), 3, 0); // slow
        hub.feed("t", &served(), 1, 0); // fast
        hub.feed("t", &Disposition::Shed, 9, 0); // no latency sample
        let report = hub.report("t").unwrap();
        assert!(report.firing.iter().any(|(o, _)| o == "latency"));
        let scope = hub.scope_snapshot("t").unwrap();
        assert_eq!(scope.histogram_ref("sojourn").unwrap().total_count(), 2);
    }
}
