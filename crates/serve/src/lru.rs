//! An O(1) LRU cache on a slab-allocated doubly-linked list.
//!
//! The interpretation cache sits on the serving hot path, so eviction
//! must not scan. Entries live in a `Vec` slab; recency is a linked
//! list of slab indices (no `unsafe`, no pointer juggling). `get`
//! promotes to most-recent; `put` evicts the least-recent entry when
//! full.

use std::collections::HashMap;
use std::hash::Hash;

const NIL: usize = usize::MAX;

#[derive(Debug)]
struct Slot<K, V> {
    key: K,
    value: V,
    prev: usize,
    next: usize,
}

/// A least-recently-used cache with a fixed capacity.
#[derive(Debug)]
pub struct LruCache<K, V> {
    map: HashMap<K, usize>,
    slab: Vec<Option<Slot<K, V>>>,
    free: Vec<usize>,
    head: usize,
    tail: usize,
    capacity: usize,
    hits: u64,
    misses: u64,
}

impl<K: Hash + Eq + Clone, V> LruCache<K, V> {
    /// A cache holding at most `capacity` entries (`capacity` ≥ 1).
    pub fn new(capacity: usize) -> LruCache<K, V> {
        let capacity = capacity.max(1);
        LruCache {
            map: HashMap::with_capacity(capacity),
            slab: Vec::with_capacity(capacity),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            capacity,
            hits: 0,
            misses: 0,
        }
    }

    /// Resident entry count.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Configured bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// `(hits, misses)` counted across [`LruCache::get`] calls.
    pub fn counters(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    fn slot(&self, idx: usize) -> &Slot<K, V> {
        self.slab[idx].as_ref().expect("linked index is live")
    }

    fn slot_mut(&mut self, idx: usize) -> &mut Slot<K, V> {
        self.slab[idx].as_mut().expect("linked index is live")
    }

    /// Detach `idx` from the recency list.
    fn unlink(&mut self, idx: usize) {
        let (prev, next) = {
            let s = self.slot(idx);
            (s.prev, s.next)
        };
        if prev == NIL {
            self.head = next;
        } else {
            self.slot_mut(prev).next = next;
        }
        if next == NIL {
            self.tail = prev;
        } else {
            self.slot_mut(next).prev = prev;
        }
    }

    /// Attach `idx` as most-recent.
    fn push_front(&mut self, idx: usize) {
        let old_head = self.head;
        {
            let s = self.slot_mut(idx);
            s.prev = NIL;
            s.next = old_head;
        }
        if old_head != NIL {
            self.slot_mut(old_head).prev = idx;
        }
        self.head = idx;
        if self.tail == NIL {
            self.tail = idx;
        }
    }

    /// Look up `key`, promoting it to most-recent on a hit.
    pub fn get(&mut self, key: &K) -> Option<&V> {
        match self.map.get(key).copied() {
            Some(idx) => {
                self.hits += 1;
                if self.head != idx {
                    self.unlink(idx);
                    self.push_front(idx);
                }
                Some(&self.slot(idx).value)
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Look up `key` without touching recency or counters.
    pub fn peek(&self, key: &K) -> Option<&V> {
        self.map.get(key).map(|&idx| &self.slot(idx).value)
    }

    /// Insert or replace `key`, evicting the least-recent entry if the
    /// cache is full. Returns the evicted `(key, value)`, if any.
    pub fn put(&mut self, key: K, value: V) -> Option<(K, V)> {
        if let Some(&idx) = self.map.get(&key) {
            self.slot_mut(idx).value = value;
            if self.head != idx {
                self.unlink(idx);
                self.push_front(idx);
            }
            return None;
        }
        let evicted = if self.map.len() >= self.capacity {
            let victim = self.tail;
            self.unlink(victim);
            let s = self.slab[victim].take().expect("tail is live");
            self.map.remove(&s.key);
            self.free.push(victim);
            Some((s.key, s.value))
        } else {
            None
        };
        let idx = match self.free.pop() {
            Some(idx) => {
                self.slab[idx] = Some(Slot {
                    key: key.clone(),
                    value,
                    prev: NIL,
                    next: NIL,
                });
                idx
            }
            None => {
                self.slab.push(Some(Slot {
                    key: key.clone(),
                    value,
                    prev: NIL,
                    next: NIL,
                }));
                self.slab.len() - 1
            }
        };
        self.map.insert(key, idx);
        self.push_front(idx);
        evicted
    }

    /// Keys from most- to least-recent (test/diagnostic helper).
    pub fn keys_by_recency(&self) -> Vec<&K> {
        let mut out = Vec::with_capacity(self.map.len());
        let mut idx = self.head;
        while idx != NIL {
            let s = self.slot(idx);
            out.push(&s.key);
            idx = s.next;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_after_put() {
        let mut c = LruCache::new(2);
        assert!(c.put("a", 1).is_none());
        assert_eq!(c.get(&"a"), Some(&1));
        assert_eq!(c.counters(), (1, 0));
        assert_eq!(c.get(&"b"), None);
        assert_eq!(c.counters(), (1, 1));
    }

    #[test]
    fn evicts_lru_not_mru() {
        let mut c = LruCache::new(2);
        c.put("a", 1);
        c.put("b", 2);
        c.get(&"a"); // a is now most-recent
        let evicted = c.put("c", 3);
        assert_eq!(evicted, Some(("b", 2)));
        assert!(c.peek(&"a").is_some());
        assert!(c.peek(&"b").is_none());
        assert_eq!(c.keys_by_recency(), vec![&"c", &"a"]);
    }

    #[test]
    fn replace_updates_value_and_recency() {
        let mut c = LruCache::new(2);
        c.put("a", 1);
        c.put("b", 2);
        c.put("a", 10);
        assert_eq!(c.peek(&"a"), Some(&10));
        assert_eq!(
            c.put("c", 3),
            Some(("b", 2)),
            "b was least-recent after a's refresh"
        );
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn capacity_one_thrashes_correctly() {
        let mut c = LruCache::new(1);
        assert_eq!(c.capacity(), 1);
        c.put(1, "one");
        assert_eq!(c.put(2, "two"), Some((1, "one")));
        assert_eq!(c.get(&2), Some(&"two"));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn slab_reuses_freed_slots() {
        let mut c = LruCache::new(2);
        for i in 0..100u32 {
            c.put(i, i);
        }
        assert_eq!(c.len(), 2);
        assert!(
            c.slab.len() <= 3,
            "slab must not grow unboundedly: {}",
            c.slab.len()
        );
    }
}
