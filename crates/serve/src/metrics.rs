//! Serving counters and their deterministic snapshot.
//!
//! Counters that are *admission-side* (submitted, admitted, shed) are
//! incremented by the single-threaded submitter, so they are exact.
//! Counters that are *worker-side* (answered, refused, cache hits) are
//! atomics written by worker threads; because the request→worker
//! mapping and each worker's queue order are deterministic, their
//! values after a drain are also exact — snapshots taken between
//! drains are what E12 compares across runs.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

/// Shared mutable counters (workers hold this behind an `Arc`).
#[derive(Debug)]
pub struct ServeMetrics {
    /// Requests offered to [`crate::Server::submit`].
    pub submitted: AtomicU64,
    /// Requests accepted into a worker queue.
    pub admitted: AtomicU64,
    /// Requests rejected because the target queue was full.
    pub shed_full: AtomicU64,
    /// Requests rejected because the deadline could not be met.
    pub shed_deadline: AtomicU64,
    /// Standalone questions answered (cache hit or computed).
    pub answered: AtomicU64,
    /// Standalone questions the pipeline could not interpret/execute.
    pub refused: AtomicU64,
    /// Dialogue turns processed.
    pub session_turns: AtomicU64,
    /// Interpretation-cache hits.
    pub interp_hits: AtomicU64,
    /// Interpretation-cache misses — every lookup that was not a hit,
    /// counted whether or not a cache is configured, so the hit rate
    /// is meaningful (and distinguishable from "no lookups") even with
    /// the cache disabled.
    pub interp_misses: AtomicU64,
    /// Highest per-worker queue depth observed at admission time.
    pub max_queue_depth: AtomicU64,
    /// Transient-fault retries performed.
    pub retries: AtomicU64,
    /// Logical backoff ticks accounted to those retries (never slept).
    pub retry_backoff_ticks: AtomicU64,
    /// Circuit-breaker open transitions.
    pub breaker_trips: AtomicU64,
    /// Ladder rungs skipped because their breaker was open.
    pub breaker_skips: AtomicU64,
    /// Questions answered by a weaker family after the preferred one
    /// faulted (not included in `answered`).
    pub degraded: AtomicU64,
    /// Worker threads that panicked and were contained.
    pub worker_deaths: AtomicU64,
    /// Requests bounced off a dead worker: the request it panicked on
    /// plus everything still queued on it or routed to it before the
    /// submitter learned of the death. Each bounce is re-admitted to a
    /// live worker where possible (see `readmitted`) — bouncing is not
    /// an outcome, it is the start of recovery.
    pub crashed_requests: AtomicU64,
    /// Bounced requests successfully re-admitted to a live worker.
    pub readmitted: AtomicU64,
    /// Bounced requests that could not be re-admitted (redelivery
    /// budget exhausted, deadline unmeetable, or no live worker left).
    pub readmit_refused: AtomicU64,
    /// Dialogue sessions rebuilt by journal replay after their worker
    /// died.
    pub sessions_recovered: AtomicU64,
    /// Journaled turns re-executed during those rebuilds.
    pub turns_replayed: AtomicU64,
    /// Replayed turns whose outcome digest did not match the journal
    /// (must stay 0 — replay is exact; asserted by E15).
    pub replay_divergence: AtomicU64,
    /// Dialogue turns committed to the write-ahead session journal.
    pub journal_turns: AtomicU64,
    /// Whether this server runs with the interpretation cache off
    /// (`interp_cache = 0`) — lets snapshot readers tell "cache
    /// disabled" from "cache enabled but cold".
    pub cache_disabled: bool,
    /// Requests completed per worker.
    pub per_worker: Vec<AtomicU64>,
}

impl ServeMetrics {
    /// Zeroed counters for `workers` workers.
    pub fn new(workers: usize, cache_disabled: bool) -> ServeMetrics {
        ServeMetrics {
            submitted: AtomicU64::new(0),
            admitted: AtomicU64::new(0),
            shed_full: AtomicU64::new(0),
            shed_deadline: AtomicU64::new(0),
            answered: AtomicU64::new(0),
            refused: AtomicU64::new(0),
            session_turns: AtomicU64::new(0),
            interp_hits: AtomicU64::new(0),
            interp_misses: AtomicU64::new(0),
            max_queue_depth: AtomicU64::new(0),
            retries: AtomicU64::new(0),
            retry_backoff_ticks: AtomicU64::new(0),
            breaker_trips: AtomicU64::new(0),
            breaker_skips: AtomicU64::new(0),
            degraded: AtomicU64::new(0),
            worker_deaths: AtomicU64::new(0),
            crashed_requests: AtomicU64::new(0),
            readmitted: AtomicU64::new(0),
            readmit_refused: AtomicU64::new(0),
            sessions_recovered: AtomicU64::new(0),
            turns_replayed: AtomicU64::new(0),
            replay_divergence: AtomicU64::new(0),
            journal_turns: AtomicU64::new(0),
            cache_disabled,
            per_worker: (0..workers).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    /// Raise `max_queue_depth` to at least `depth`.
    pub fn observe_depth(&self, depth: u64) {
        self.max_queue_depth.fetch_max(depth, Ordering::Relaxed);
    }

    /// Point-in-time copy of every counter.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            submitted: self.submitted.load(Ordering::Relaxed),
            admitted: self.admitted.load(Ordering::Relaxed),
            shed_full: self.shed_full.load(Ordering::Relaxed),
            shed_deadline: self.shed_deadline.load(Ordering::Relaxed),
            answered: self.answered.load(Ordering::Relaxed),
            refused: self.refused.load(Ordering::Relaxed),
            session_turns: self.session_turns.load(Ordering::Relaxed),
            interp_hits: self.interp_hits.load(Ordering::Relaxed),
            interp_misses: self.interp_misses.load(Ordering::Relaxed),
            max_queue_depth: self.max_queue_depth.load(Ordering::Relaxed),
            retries: self.retries.load(Ordering::Relaxed),
            retry_backoff_ticks: self.retry_backoff_ticks.load(Ordering::Relaxed),
            breaker_trips: self.breaker_trips.load(Ordering::Relaxed),
            breaker_skips: self.breaker_skips.load(Ordering::Relaxed),
            degraded: self.degraded.load(Ordering::Relaxed),
            worker_deaths: self.worker_deaths.load(Ordering::Relaxed),
            crashed_requests: self.crashed_requests.load(Ordering::Relaxed),
            readmitted: self.readmitted.load(Ordering::Relaxed),
            readmit_refused: self.readmit_refused.load(Ordering::Relaxed),
            sessions_recovered: self.sessions_recovered.load(Ordering::Relaxed),
            turns_replayed: self.turns_replayed.load(Ordering::Relaxed),
            replay_divergence: self.replay_divergence.load(Ordering::Relaxed),
            journal_turns: self.journal_turns.load(Ordering::Relaxed),
            cache_disabled: self.cache_disabled,
            per_worker: self
                .per_worker
                .iter()
                .map(|c| c.load(Ordering::Relaxed))
                .collect(),
        }
    }
}

/// A frozen view of [`ServeMetrics`]; plain values, comparable and
/// printable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// See [`ServeMetrics::submitted`].
    pub submitted: u64,
    /// See [`ServeMetrics::admitted`].
    pub admitted: u64,
    /// See [`ServeMetrics::shed_full`].
    pub shed_full: u64,
    /// See [`ServeMetrics::shed_deadline`].
    pub shed_deadline: u64,
    /// See [`ServeMetrics::answered`].
    pub answered: u64,
    /// See [`ServeMetrics::refused`].
    pub refused: u64,
    /// See [`ServeMetrics::session_turns`].
    pub session_turns: u64,
    /// See [`ServeMetrics::interp_hits`].
    pub interp_hits: u64,
    /// See [`ServeMetrics::interp_misses`].
    pub interp_misses: u64,
    /// See [`ServeMetrics::max_queue_depth`].
    pub max_queue_depth: u64,
    /// See [`ServeMetrics::retries`].
    pub retries: u64,
    /// See [`ServeMetrics::retry_backoff_ticks`].
    pub retry_backoff_ticks: u64,
    /// See [`ServeMetrics::breaker_trips`].
    pub breaker_trips: u64,
    /// See [`ServeMetrics::breaker_skips`].
    pub breaker_skips: u64,
    /// See [`ServeMetrics::degraded`].
    pub degraded: u64,
    /// See [`ServeMetrics::worker_deaths`].
    pub worker_deaths: u64,
    /// See [`ServeMetrics::crashed_requests`].
    pub crashed_requests: u64,
    /// See [`ServeMetrics::readmitted`].
    pub readmitted: u64,
    /// See [`ServeMetrics::readmit_refused`].
    pub readmit_refused: u64,
    /// See [`ServeMetrics::sessions_recovered`].
    pub sessions_recovered: u64,
    /// See [`ServeMetrics::turns_replayed`].
    pub turns_replayed: u64,
    /// See [`ServeMetrics::replay_divergence`].
    pub replay_divergence: u64,
    /// See [`ServeMetrics::journal_turns`].
    pub journal_turns: u64,
    /// See [`ServeMetrics::cache_disabled`].
    pub cache_disabled: bool,
    /// See [`ServeMetrics::per_worker`].
    pub per_worker: Vec<u64>,
}

impl MetricsSnapshot {
    /// Interpretation-cache hit fraction in `[0, 1]` (0 when unused).
    pub fn interp_hit_rate(&self) -> f64 {
        let total = self.interp_hits + self.interp_misses;
        if total == 0 {
            0.0
        } else {
            self.interp_hits as f64 / total as f64
        }
    }

    /// Fraction of submitted requests rejected (shed or deadline).
    pub fn shed_rate(&self) -> f64 {
        if self.submitted == 0 {
            0.0
        } else {
            (self.shed_full + self.shed_deadline) as f64 / self.submitted as f64
        }
    }

    /// Export every counter into `registry` under `serve.`-prefixed
    /// names (per-worker counts as `serve.per_worker.N`), overwriting
    /// prior values — so the obs registry is the one place a driver
    /// reads both serving counters and stage-cost histograms from.
    pub fn export_into(&self, registry: &nlidb_obs::MetricsRegistry) {
        let fields: [(&str, u64); 23] = [
            ("serve.submitted", self.submitted),
            ("serve.admitted", self.admitted),
            ("serve.shed_full", self.shed_full),
            ("serve.shed_deadline", self.shed_deadline),
            ("serve.answered", self.answered),
            ("serve.refused", self.refused),
            ("serve.session_turns", self.session_turns),
            ("serve.interp_hits", self.interp_hits),
            ("serve.interp_misses", self.interp_misses),
            ("serve.max_queue_depth", self.max_queue_depth),
            ("serve.retries", self.retries),
            ("serve.retry_backoff_ticks", self.retry_backoff_ticks),
            ("serve.breaker_trips", self.breaker_trips),
            ("serve.breaker_skips", self.breaker_skips),
            ("serve.degraded", self.degraded),
            ("serve.worker_deaths", self.worker_deaths),
            ("serve.crashed_requests", self.crashed_requests),
            ("serve.readmitted", self.readmitted),
            ("serve.readmit_refused", self.readmit_refused),
            ("serve.sessions_recovered", self.sessions_recovered),
            ("serve.turns_replayed", self.turns_replayed),
            ("serve.replay_divergence", self.replay_divergence),
            ("serve.journal_turns", self.journal_turns),
        ];
        for (name, value) in fields {
            registry.counter(name).store(value);
        }
        for (w, value) in self.per_worker.iter().enumerate() {
            registry
                .counter(&format!("serve.per_worker.{w}"))
                .store(*value);
        }
    }
}

impl fmt::Display for MetricsSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "submitted {}  admitted {}  shed(full) {}  shed(deadline) {}",
            self.submitted, self.admitted, self.shed_full, self.shed_deadline
        )?;
        writeln!(
            f,
            "answered {}  refused {}  session-turns {}  max-depth {}",
            self.answered, self.refused, self.session_turns, self.max_queue_depth
        )?;
        if self.cache_disabled {
            writeln!(
                f,
                "interp-cache off ({} lookups bypassed)",
                self.interp_misses
            )?;
        } else {
            writeln!(
                f,
                "interp-cache {} hits / {} misses ({:.1}% hit)",
                self.interp_hits,
                self.interp_misses,
                self.interp_hit_rate() * 100.0
            )?;
        }
        writeln!(
            f,
            "faults: retries {} (backoff {} ticks)  degraded {}  breaker trips {} / skips {}",
            self.retries,
            self.retry_backoff_ticks,
            self.degraded,
            self.breaker_trips,
            self.breaker_skips
        )?;
        writeln!(
            f,
            "worker deaths {}  crashed requests {}",
            self.worker_deaths, self.crashed_requests
        )?;
        writeln!(
            f,
            "recovery: readmitted {} / refused {}  sessions recovered {}  turns replayed {} (journal {}, divergence {})",
            self.readmitted,
            self.readmit_refused,
            self.sessions_recovered,
            self.turns_replayed,
            self.journal_turns,
            self.replay_divergence
        )?;
        write!(f, "per-worker {:?}", self.per_worker)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_copies_counters() {
        let m = ServeMetrics::new(2, false);
        m.submitted.fetch_add(3, Ordering::Relaxed);
        m.interp_hits.fetch_add(1, Ordering::Relaxed);
        m.interp_misses.fetch_add(1, Ordering::Relaxed);
        m.per_worker[1].fetch_add(2, Ordering::Relaxed);
        m.observe_depth(5);
        m.observe_depth(3);
        let s = m.snapshot();
        assert_eq!(s.submitted, 3);
        assert_eq!(s.per_worker, vec![0, 2]);
        assert_eq!(s.max_queue_depth, 5);
        assert!((s.interp_hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn rates_default_to_zero() {
        let s = ServeMetrics::new(1, false).snapshot();
        assert_eq!(s.interp_hit_rate(), 0.0);
        assert_eq!(s.shed_rate(), 0.0);
    }

    #[test]
    fn display_mentions_every_section() {
        let text = ServeMetrics::new(2, false).snapshot().to_string();
        for needle in [
            "submitted",
            "shed",
            "interp-cache",
            "faults:",
            "worker deaths",
            "recovery:",
            "per-worker",
        ] {
            assert!(text.contains(needle), "missing {needle} in {text}");
        }
    }

    #[test]
    fn export_into_registry_mirrors_every_counter() {
        let m = ServeMetrics::new(2, false);
        m.submitted.fetch_add(9, Ordering::Relaxed);
        m.retries.fetch_add(3, Ordering::Relaxed);
        m.per_worker[1].fetch_add(4, Ordering::Relaxed);
        let registry = nlidb_obs::MetricsRegistry::new();
        m.snapshot().export_into(&registry);
        let report = registry.report();
        assert_eq!(report.counter("serve.submitted"), Some(9));
        assert_eq!(report.counter("serve.retries"), Some(3));
        assert_eq!(report.counter("serve.readmitted"), Some(0));
        assert_eq!(report.counter("serve.turns_replayed"), Some(0));
        assert_eq!(report.counter("serve.per_worker.0"), Some(0));
        assert_eq!(report.counter("serve.per_worker.1"), Some(4));
        // Re-export overwrites rather than accumulates.
        m.snapshot().export_into(&registry);
        assert_eq!(registry.report().counter("serve.submitted"), Some(9));
    }

    #[test]
    fn disabled_cache_is_distinguishable_from_cold() {
        let off = ServeMetrics::new(1, true);
        off.interp_misses.fetch_add(4, Ordering::Relaxed);
        let s = off.snapshot();
        assert!(s.cache_disabled);
        assert_eq!(s.interp_misses, 4, "lookups are still counted");
        assert!(s.to_string().contains("interp-cache off"));
        let cold = ServeMetrics::new(1, false).snapshot();
        assert!(!cold.cache_disabled);
        assert!(cold.to_string().contains("0.0% hit"));
    }
}
