//! Serving counters and their deterministic snapshot.
//!
//! Counters that are *admission-side* (submitted, admitted, shed) are
//! incremented by the single-threaded submitter, so they are exact.
//! Counters that are *worker-side* (answered, refused, cache hits) are
//! atomics written by worker threads; because the request→worker
//! mapping and each worker's queue order are deterministic, their
//! values after a drain are also exact — snapshots taken between
//! drains are what E12 compares across runs.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

/// Shared mutable counters (workers hold this behind an `Arc`).
#[derive(Debug)]
pub struct ServeMetrics {
    /// Requests offered to [`crate::Server::submit`].
    pub submitted: AtomicU64,
    /// Requests accepted into a worker queue.
    pub admitted: AtomicU64,
    /// Requests rejected because the target queue was full.
    pub shed_full: AtomicU64,
    /// Requests rejected because the deadline could not be met.
    pub shed_deadline: AtomicU64,
    /// Standalone questions answered (cache hit or computed).
    pub answered: AtomicU64,
    /// Standalone questions the pipeline could not interpret/execute.
    pub refused: AtomicU64,
    /// Dialogue turns processed.
    pub session_turns: AtomicU64,
    /// Interpretation-cache hits.
    pub interp_hits: AtomicU64,
    /// Interpretation-cache misses (computed the slow way).
    pub interp_misses: AtomicU64,
    /// Highest per-worker queue depth observed at admission time.
    pub max_queue_depth: AtomicU64,
    /// Requests completed per worker.
    pub per_worker: Vec<AtomicU64>,
}

impl ServeMetrics {
    /// Zeroed counters for `workers` workers.
    pub fn new(workers: usize) -> ServeMetrics {
        ServeMetrics {
            submitted: AtomicU64::new(0),
            admitted: AtomicU64::new(0),
            shed_full: AtomicU64::new(0),
            shed_deadline: AtomicU64::new(0),
            answered: AtomicU64::new(0),
            refused: AtomicU64::new(0),
            session_turns: AtomicU64::new(0),
            interp_hits: AtomicU64::new(0),
            interp_misses: AtomicU64::new(0),
            max_queue_depth: AtomicU64::new(0),
            per_worker: (0..workers).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    /// Raise `max_queue_depth` to at least `depth`.
    pub fn observe_depth(&self, depth: u64) {
        self.max_queue_depth.fetch_max(depth, Ordering::Relaxed);
    }

    /// Point-in-time copy of every counter.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            submitted: self.submitted.load(Ordering::Relaxed),
            admitted: self.admitted.load(Ordering::Relaxed),
            shed_full: self.shed_full.load(Ordering::Relaxed),
            shed_deadline: self.shed_deadline.load(Ordering::Relaxed),
            answered: self.answered.load(Ordering::Relaxed),
            refused: self.refused.load(Ordering::Relaxed),
            session_turns: self.session_turns.load(Ordering::Relaxed),
            interp_hits: self.interp_hits.load(Ordering::Relaxed),
            interp_misses: self.interp_misses.load(Ordering::Relaxed),
            max_queue_depth: self.max_queue_depth.load(Ordering::Relaxed),
            per_worker: self
                .per_worker
                .iter()
                .map(|c| c.load(Ordering::Relaxed))
                .collect(),
        }
    }
}

/// A frozen view of [`ServeMetrics`]; plain values, comparable and
/// printable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// See [`ServeMetrics::submitted`].
    pub submitted: u64,
    /// See [`ServeMetrics::admitted`].
    pub admitted: u64,
    /// See [`ServeMetrics::shed_full`].
    pub shed_full: u64,
    /// See [`ServeMetrics::shed_deadline`].
    pub shed_deadline: u64,
    /// See [`ServeMetrics::answered`].
    pub answered: u64,
    /// See [`ServeMetrics::refused`].
    pub refused: u64,
    /// See [`ServeMetrics::session_turns`].
    pub session_turns: u64,
    /// See [`ServeMetrics::interp_hits`].
    pub interp_hits: u64,
    /// See [`ServeMetrics::interp_misses`].
    pub interp_misses: u64,
    /// See [`ServeMetrics::max_queue_depth`].
    pub max_queue_depth: u64,
    /// See [`ServeMetrics::per_worker`].
    pub per_worker: Vec<u64>,
}

impl MetricsSnapshot {
    /// Interpretation-cache hit fraction in `[0, 1]` (0 when unused).
    pub fn interp_hit_rate(&self) -> f64 {
        let total = self.interp_hits + self.interp_misses;
        if total == 0 {
            0.0
        } else {
            self.interp_hits as f64 / total as f64
        }
    }

    /// Fraction of submitted requests rejected (shed or deadline).
    pub fn shed_rate(&self) -> f64 {
        if self.submitted == 0 {
            0.0
        } else {
            (self.shed_full + self.shed_deadline) as f64 / self.submitted as f64
        }
    }
}

impl fmt::Display for MetricsSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "submitted {}  admitted {}  shed(full) {}  shed(deadline) {}",
            self.submitted, self.admitted, self.shed_full, self.shed_deadline
        )?;
        writeln!(
            f,
            "answered {}  refused {}  session-turns {}  max-depth {}",
            self.answered, self.refused, self.session_turns, self.max_queue_depth
        )?;
        writeln!(
            f,
            "interp-cache {} hits / {} misses ({:.1}% hit)",
            self.interp_hits,
            self.interp_misses,
            self.interp_hit_rate() * 100.0
        )?;
        write!(f, "per-worker {:?}", self.per_worker)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_copies_counters() {
        let m = ServeMetrics::new(2);
        m.submitted.fetch_add(3, Ordering::Relaxed);
        m.interp_hits.fetch_add(1, Ordering::Relaxed);
        m.interp_misses.fetch_add(1, Ordering::Relaxed);
        m.per_worker[1].fetch_add(2, Ordering::Relaxed);
        m.observe_depth(5);
        m.observe_depth(3);
        let s = m.snapshot();
        assert_eq!(s.submitted, 3);
        assert_eq!(s.per_worker, vec![0, 2]);
        assert_eq!(s.max_queue_depth, 5);
        assert!((s.interp_hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn rates_default_to_zero() {
        let s = ServeMetrics::new(1).snapshot();
        assert_eq!(s.interp_hit_rate(), 0.0);
        assert_eq!(s.shed_rate(), 0.0);
    }

    #[test]
    fn display_mentions_every_section() {
        let text = ServeMetrics::new(2).snapshot().to_string();
        for needle in ["submitted", "shed", "interp-cache", "per-worker"] {
            assert!(text.contains(needle), "missing {needle} in {text}");
        }
    }
}
