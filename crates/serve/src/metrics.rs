//! Serving counters and their deterministic snapshot.
//!
//! Counters that are *admission-side* (submitted, admitted, shed) are
//! incremented by the single-threaded submitter, so they are exact.
//! Counters that are *worker-side* (answered, refused, cache hits) are
//! atomics written by worker threads; because the request→worker
//! mapping and each worker's queue order are deterministic, their
//! values after a drain are also exact — snapshots taken between
//! drains are what E12 compares across runs.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

/// Shared mutable counters (workers hold this behind an `Arc`).
#[derive(Debug)]
pub struct ServeMetrics {
    /// Requests offered to [`crate::Server::submit`].
    pub submitted: AtomicU64,
    /// Requests accepted into a worker queue.
    pub admitted: AtomicU64,
    /// Requests rejected because the target queue was full.
    pub shed_full: AtomicU64,
    /// Requests rejected because the deadline could not be met.
    pub shed_deadline: AtomicU64,
    /// Requests refused because the tenant's admission budget was
    /// exhausted (always 0 for tenants without a budget).
    pub quota_refused: AtomicU64,
    /// Requests shed at admission by the cost-aware policy: their
    /// learned plan cost exceeded the configured threshold while the
    /// target queue was under pressure (always 0 with cost-aware
    /// shedding off — the default).
    pub shed_cost: AtomicU64,
    /// Requests shed by the overload controller while the runtime was
    /// above its high watermark: standalone repeats whose learned plan
    /// cost exceeded the policy threshold, or standalone traffic from
    /// a tenant over its fair share of the overload episode (always 0
    /// with no [`crate::OverloadPolicy`] — the default).
    pub shed_overload: AtomicU64,
    /// Overload episodes begun: the credit ledger crossed the policy's
    /// high watermark while the controller was idle.
    pub overload_entered: AtomicU64,
    /// The subset of `overload_entered` opened by the opt-in
    /// early-warning burn-rate signal *below* the high watermark
    /// (always 0 with [`crate::OverloadPolicy::early_warning`] unset —
    /// the default). Deliberately not in the exported scalar set: the
    /// perf-drift baseline predates the knob and is byte-compared.
    pub overload_entered_early: AtomicU64,
    /// Overload episodes ended: pressure fell back to the low
    /// watermark (the drain-to-empty invariant guarantees every
    /// episode ends at the next drain, so after a final drain this
    /// equals `overload_entered` — the controller never wedges).
    pub overload_recovered: AtomicU64,
    /// Questions refused *before execution* because their plan's
    /// estimated cost exceeded the tenant's `cost_ceiling` (always 0
    /// for tenants without a ceiling). Also counted in `refused`.
    pub cost_refused: AtomicU64,
    /// Candidates vetoed by pre-execution validation on the approved
    /// path (`ServerConfig::approved_mode`): schema-validity, shape,
    /// value-grounding, or cost-ceiling rejections, summed across all
    /// answered questions. Always 0 with approved mode off — the
    /// default. Ambiguity annotations are not counted.
    pub candidates_rejected: AtomicU64,
    /// Standalone questions answered (cache hit or computed).
    pub answered: AtomicU64,
    /// Standalone questions the pipeline could not interpret/execute.
    pub refused: AtomicU64,
    /// Dialogue turns processed.
    pub session_turns: AtomicU64,
    /// Interpretation-cache hits.
    pub interp_hits: AtomicU64,
    /// Interpretation-cache misses — every lookup that was not a hit,
    /// counted whether or not a cache is configured, so the hit rate
    /// is meaningful (and distinguishable from "no lookups") even with
    /// the cache disabled.
    pub interp_misses: AtomicU64,
    /// Highest per-worker queue depth observed at admission time.
    pub max_queue_depth: AtomicU64,
    /// Transient-fault retries performed.
    pub retries: AtomicU64,
    /// Logical backoff ticks accounted to those retries (never slept).
    pub retry_backoff_ticks: AtomicU64,
    /// Circuit-breaker open transitions.
    pub breaker_trips: AtomicU64,
    /// Ladder rungs skipped because their breaker was open.
    pub breaker_skips: AtomicU64,
    /// Questions answered by a weaker family after the preferred one
    /// faulted (not included in `answered`).
    pub degraded: AtomicU64,
    /// Worker threads that panicked and were contained.
    pub worker_deaths: AtomicU64,
    /// Requests bounced off a dead worker: the request it panicked on
    /// plus everything still queued on it or routed to it before the
    /// submitter learned of the death. Each bounce is re-admitted to a
    /// live worker where possible (see `readmitted`) — bouncing is not
    /// an outcome, it is the start of recovery.
    pub crashed_requests: AtomicU64,
    /// Bounced requests successfully re-admitted to a live worker.
    pub readmitted: AtomicU64,
    /// Bounced requests that could not be re-admitted (redelivery
    /// budget exhausted, deadline unmeetable, or no live worker left).
    pub readmit_refused: AtomicU64,
    /// Dialogue sessions rebuilt by journal replay after their worker
    /// died.
    pub sessions_recovered: AtomicU64,
    /// Journaled turns re-executed during those rebuilds.
    pub turns_replayed: AtomicU64,
    /// Replayed turns whose outcome digest did not match the journal
    /// (must stay 0 — replay is exact; asserted by E15).
    pub replay_divergence: AtomicU64,
    /// Dialogue turns committed to the write-ahead session journal.
    pub journal_turns: AtomicU64,
    /// Whether this server runs with the interpretation cache off
    /// (`interp_cache = 0`) — lets snapshot readers tell "cache
    /// disabled" from "cache enabled but cold".
    pub cache_disabled: bool,
    /// Requests completed per worker.
    pub per_worker: Vec<AtomicU64>,
}

impl ServeMetrics {
    /// Zeroed counters for `workers` workers.
    pub fn new(workers: usize, cache_disabled: bool) -> ServeMetrics {
        ServeMetrics {
            submitted: AtomicU64::new(0),
            admitted: AtomicU64::new(0),
            shed_full: AtomicU64::new(0),
            shed_deadline: AtomicU64::new(0),
            quota_refused: AtomicU64::new(0),
            shed_cost: AtomicU64::new(0),
            shed_overload: AtomicU64::new(0),
            overload_entered: AtomicU64::new(0),
            overload_entered_early: AtomicU64::new(0),
            overload_recovered: AtomicU64::new(0),
            cost_refused: AtomicU64::new(0),
            candidates_rejected: AtomicU64::new(0),
            answered: AtomicU64::new(0),
            refused: AtomicU64::new(0),
            session_turns: AtomicU64::new(0),
            interp_hits: AtomicU64::new(0),
            interp_misses: AtomicU64::new(0),
            max_queue_depth: AtomicU64::new(0),
            retries: AtomicU64::new(0),
            retry_backoff_ticks: AtomicU64::new(0),
            breaker_trips: AtomicU64::new(0),
            breaker_skips: AtomicU64::new(0),
            degraded: AtomicU64::new(0),
            worker_deaths: AtomicU64::new(0),
            crashed_requests: AtomicU64::new(0),
            readmitted: AtomicU64::new(0),
            readmit_refused: AtomicU64::new(0),
            sessions_recovered: AtomicU64::new(0),
            turns_replayed: AtomicU64::new(0),
            replay_divergence: AtomicU64::new(0),
            journal_turns: AtomicU64::new(0),
            cache_disabled,
            per_worker: (0..workers).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    /// Raise `max_queue_depth` to at least `depth`.
    pub fn observe_depth(&self, depth: u64) {
        self.max_queue_depth.fetch_max(depth, Ordering::Relaxed);
    }

    /// Point-in-time copy of every counter.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            submitted: self.submitted.load(Ordering::Relaxed),
            admitted: self.admitted.load(Ordering::Relaxed),
            shed_full: self.shed_full.load(Ordering::Relaxed),
            shed_deadline: self.shed_deadline.load(Ordering::Relaxed),
            quota_refused: self.quota_refused.load(Ordering::Relaxed),
            shed_cost: self.shed_cost.load(Ordering::Relaxed),
            shed_overload: self.shed_overload.load(Ordering::Relaxed),
            overload_entered: self.overload_entered.load(Ordering::Relaxed),
            overload_entered_early: self.overload_entered_early.load(Ordering::Relaxed),
            overload_recovered: self.overload_recovered.load(Ordering::Relaxed),
            cost_refused: self.cost_refused.load(Ordering::Relaxed),
            candidates_rejected: self.candidates_rejected.load(Ordering::Relaxed),
            answered: self.answered.load(Ordering::Relaxed),
            refused: self.refused.load(Ordering::Relaxed),
            session_turns: self.session_turns.load(Ordering::Relaxed),
            interp_hits: self.interp_hits.load(Ordering::Relaxed),
            interp_misses: self.interp_misses.load(Ordering::Relaxed),
            max_queue_depth: self.max_queue_depth.load(Ordering::Relaxed),
            retries: self.retries.load(Ordering::Relaxed),
            retry_backoff_ticks: self.retry_backoff_ticks.load(Ordering::Relaxed),
            breaker_trips: self.breaker_trips.load(Ordering::Relaxed),
            breaker_skips: self.breaker_skips.load(Ordering::Relaxed),
            degraded: self.degraded.load(Ordering::Relaxed),
            worker_deaths: self.worker_deaths.load(Ordering::Relaxed),
            crashed_requests: self.crashed_requests.load(Ordering::Relaxed),
            readmitted: self.readmitted.load(Ordering::Relaxed),
            readmit_refused: self.readmit_refused.load(Ordering::Relaxed),
            sessions_recovered: self.sessions_recovered.load(Ordering::Relaxed),
            turns_replayed: self.turns_replayed.load(Ordering::Relaxed),
            replay_divergence: self.replay_divergence.load(Ordering::Relaxed),
            journal_turns: self.journal_turns.load(Ordering::Relaxed),
            cache_disabled: self.cache_disabled,
            per_worker: self
                .per_worker
                .iter()
                .map(|c| c.load(Ordering::Relaxed))
                .collect(),
        }
    }
}

/// A runtime-global and a per-tenant counter set updated in lockstep.
///
/// Every increment site in the serving hot path goes through this pair
/// so the global counters keep their exact pre-tenancy values (the
/// perf-drift baseline byte-compares them) while each tenant's
/// breakdown accrues the same amounts. In a single-tenant server both
/// references point at different instances but see identical traffic,
/// so `global == tenant` holds — a property the tenant tests assert.
#[derive(Clone, Copy)]
pub(crate) struct ScopedMetrics<'a> {
    /// The whole-runtime counters.
    pub global: &'a ServeMetrics,
    /// The owning tenant's counters.
    pub tenant: &'a ServeMetrics,
}

impl ScopedMetrics<'_> {
    /// Add `n` to the counter `sel` picks, in both scopes.
    pub fn add(&self, sel: fn(&ServeMetrics) -> &AtomicU64, n: u64) {
        sel(self.global).fetch_add(n, Ordering::Relaxed);
        sel(self.tenant).fetch_add(n, Ordering::Relaxed);
    }

    /// Raise the max-depth watermark in both scopes.
    pub fn observe_depth(&self, depth: u64) {
        self.global.observe_depth(depth);
        self.tenant.observe_depth(depth);
    }

    /// Count a completion against worker `w` in both scopes (the
    /// tenant's `per_worker` is sized like the global one).
    pub fn per_worker(&self, w: usize) {
        self.global.per_worker[w].fetch_add(1, Ordering::Relaxed);
        self.tenant.per_worker[w].fetch_add(1, Ordering::Relaxed);
    }
}

/// A frozen view of [`ServeMetrics`]; plain values, comparable and
/// printable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// See [`ServeMetrics::submitted`].
    pub submitted: u64,
    /// See [`ServeMetrics::admitted`].
    pub admitted: u64,
    /// See [`ServeMetrics::shed_full`].
    pub shed_full: u64,
    /// See [`ServeMetrics::shed_deadline`].
    pub shed_deadline: u64,
    /// See [`ServeMetrics::quota_refused`].
    pub quota_refused: u64,
    /// See [`ServeMetrics::shed_cost`].
    pub shed_cost: u64,
    /// See [`ServeMetrics::shed_overload`].
    pub shed_overload: u64,
    /// See [`ServeMetrics::overload_entered`].
    pub overload_entered: u64,
    /// See [`ServeMetrics::overload_entered_early`].
    pub overload_entered_early: u64,
    /// See [`ServeMetrics::overload_recovered`].
    pub overload_recovered: u64,
    /// See [`ServeMetrics::cost_refused`].
    pub cost_refused: u64,
    /// See [`ServeMetrics::candidates_rejected`].
    pub candidates_rejected: u64,
    /// See [`ServeMetrics::answered`].
    pub answered: u64,
    /// See [`ServeMetrics::refused`].
    pub refused: u64,
    /// See [`ServeMetrics::session_turns`].
    pub session_turns: u64,
    /// See [`ServeMetrics::interp_hits`].
    pub interp_hits: u64,
    /// See [`ServeMetrics::interp_misses`].
    pub interp_misses: u64,
    /// See [`ServeMetrics::max_queue_depth`].
    pub max_queue_depth: u64,
    /// See [`ServeMetrics::retries`].
    pub retries: u64,
    /// See [`ServeMetrics::retry_backoff_ticks`].
    pub retry_backoff_ticks: u64,
    /// See [`ServeMetrics::breaker_trips`].
    pub breaker_trips: u64,
    /// See [`ServeMetrics::breaker_skips`].
    pub breaker_skips: u64,
    /// See [`ServeMetrics::degraded`].
    pub degraded: u64,
    /// See [`ServeMetrics::worker_deaths`].
    pub worker_deaths: u64,
    /// See [`ServeMetrics::crashed_requests`].
    pub crashed_requests: u64,
    /// See [`ServeMetrics::readmitted`].
    pub readmitted: u64,
    /// See [`ServeMetrics::readmit_refused`].
    pub readmit_refused: u64,
    /// See [`ServeMetrics::sessions_recovered`].
    pub sessions_recovered: u64,
    /// See [`ServeMetrics::turns_replayed`].
    pub turns_replayed: u64,
    /// See [`ServeMetrics::replay_divergence`].
    pub replay_divergence: u64,
    /// See [`ServeMetrics::journal_turns`].
    pub journal_turns: u64,
    /// See [`ServeMetrics::cache_disabled`].
    pub cache_disabled: bool,
    /// See [`ServeMetrics::per_worker`].
    pub per_worker: Vec<u64>,
}

impl MetricsSnapshot {
    /// Interpretation-cache hit fraction in `[0, 1]` (0 when unused).
    pub fn interp_hit_rate(&self) -> f64 {
        let total = self.interp_hits + self.interp_misses;
        if total == 0 {
            0.0
        } else {
            self.interp_hits as f64 / total as f64
        }
    }

    /// Fraction of submitted requests rejected (shed or deadline).
    pub fn shed_rate(&self) -> f64 {
        if self.submitted == 0 {
            0.0
        } else {
            (self.shed_full + self.shed_deadline) as f64 / self.submitted as f64
        }
    }

    /// Every scalar counter as `(bare_name, value)`, in export order.
    fn scalar_fields(&self) -> [(&'static str, u64); 30] {
        [
            ("submitted", self.submitted),
            ("admitted", self.admitted),
            ("shed_full", self.shed_full),
            ("shed_deadline", self.shed_deadline),
            ("shed_cost", self.shed_cost),
            ("shed_overload", self.shed_overload),
            ("overload_entered", self.overload_entered),
            ("overload_recovered", self.overload_recovered),
            ("quota_refused", self.quota_refused),
            ("cost_refused", self.cost_refused),
            ("candidates_rejected", self.candidates_rejected),
            ("answered", self.answered),
            ("refused", self.refused),
            ("session_turns", self.session_turns),
            ("interp_hits", self.interp_hits),
            ("interp_misses", self.interp_misses),
            ("max_queue_depth", self.max_queue_depth),
            ("retries", self.retries),
            ("retry_backoff_ticks", self.retry_backoff_ticks),
            ("breaker_trips", self.breaker_trips),
            ("breaker_skips", self.breaker_skips),
            ("degraded", self.degraded),
            ("worker_deaths", self.worker_deaths),
            ("crashed_requests", self.crashed_requests),
            ("readmitted", self.readmitted),
            ("readmit_refused", self.readmit_refused),
            ("sessions_recovered", self.sessions_recovered),
            ("turns_replayed", self.turns_replayed),
            ("replay_divergence", self.replay_divergence),
            ("journal_turns", self.journal_turns),
        ]
    }

    /// Export every counter into `registry` under `serve.`-prefixed
    /// names (per-worker counts as `serve.per_worker.N`), overwriting
    /// prior values — so the obs registry is the one place a driver
    /// reads both serving counters and stage-cost histograms from.
    pub fn export_into(&self, registry: &nlidb_obs::MetricsRegistry) {
        for (name, value) in self.scalar_fields() {
            registry.counter(&format!("serve.{name}")).store(value);
        }
        for (w, value) in self.per_worker.iter().enumerate() {
            registry
                .counter(&format!("serve.per_worker.{w}"))
                .store(*value);
        }
    }

    /// Export the scalar counters under `serve.tenant.<label>.<name>`,
    /// overwriting prior values. Per-worker counts are deliberately
    /// skipped: worker placement is runtime-global, not per-tenant.
    /// [`crate::TenantServer::export_metrics`] calls this once per
    /// tenant next to the global [`MetricsSnapshot::export_into`], so
    /// one registry report breaks the workload down by tenant.
    pub fn export_labelled_into(&self, registry: &nlidb_obs::MetricsRegistry, label: &str) {
        for (name, value) in self.scalar_fields() {
            registry
                .counter(&format!("serve.tenant.{label}.{name}"))
                .store(value);
        }
    }
}

impl fmt::Display for MetricsSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "submitted {}  admitted {}  shed(full) {}  shed(deadline) {}  shed(cost) {}  quota-refused {}  cost-refused {}",
            self.submitted,
            self.admitted,
            self.shed_full,
            self.shed_deadline,
            self.shed_cost,
            self.quota_refused,
            self.cost_refused
        )?;
        writeln!(
            f,
            "overload: shed {}  entered {}  recovered {}",
            self.shed_overload, self.overload_entered, self.overload_recovered
        )?;
        writeln!(
            f,
            "answered {}  refused {}  session-turns {}  max-depth {}  candidates-rejected {}",
            self.answered,
            self.refused,
            self.session_turns,
            self.max_queue_depth,
            self.candidates_rejected
        )?;
        if self.cache_disabled {
            writeln!(
                f,
                "interp-cache off ({} lookups bypassed)",
                self.interp_misses
            )?;
        } else {
            writeln!(
                f,
                "interp-cache {} hits / {} misses ({:.1}% hit)",
                self.interp_hits,
                self.interp_misses,
                self.interp_hit_rate() * 100.0
            )?;
        }
        writeln!(
            f,
            "faults: retries {} (backoff {} ticks)  degraded {}  breaker trips {} / skips {}",
            self.retries,
            self.retry_backoff_ticks,
            self.degraded,
            self.breaker_trips,
            self.breaker_skips
        )?;
        writeln!(
            f,
            "worker deaths {}  crashed requests {}",
            self.worker_deaths, self.crashed_requests
        )?;
        writeln!(
            f,
            "recovery: readmitted {} / refused {}  sessions recovered {}  turns replayed {} (journal {}, divergence {})",
            self.readmitted,
            self.readmit_refused,
            self.sessions_recovered,
            self.turns_replayed,
            self.journal_turns,
            self.replay_divergence
        )?;
        write!(f, "per-worker {:?}", self.per_worker)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_copies_counters() {
        let m = ServeMetrics::new(2, false);
        m.submitted.fetch_add(3, Ordering::Relaxed);
        m.interp_hits.fetch_add(1, Ordering::Relaxed);
        m.interp_misses.fetch_add(1, Ordering::Relaxed);
        m.per_worker[1].fetch_add(2, Ordering::Relaxed);
        m.observe_depth(5);
        m.observe_depth(3);
        let s = m.snapshot();
        assert_eq!(s.submitted, 3);
        assert_eq!(s.per_worker, vec![0, 2]);
        assert_eq!(s.max_queue_depth, 5);
        assert!((s.interp_hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn rates_default_to_zero() {
        let s = ServeMetrics::new(1, false).snapshot();
        assert_eq!(s.interp_hit_rate(), 0.0);
        assert_eq!(s.shed_rate(), 0.0);
    }

    #[test]
    fn display_mentions_every_section() {
        let text = ServeMetrics::new(2, false).snapshot().to_string();
        for needle in [
            "submitted",
            "shed",
            "overload:",
            "interp-cache",
            "faults:",
            "worker deaths",
            "recovery:",
            "per-worker",
        ] {
            assert!(text.contains(needle), "missing {needle} in {text}");
        }
    }

    #[test]
    fn export_into_registry_mirrors_every_counter() {
        let m = ServeMetrics::new(2, false);
        m.submitted.fetch_add(9, Ordering::Relaxed);
        m.retries.fetch_add(3, Ordering::Relaxed);
        m.per_worker[1].fetch_add(4, Ordering::Relaxed);
        let registry = nlidb_obs::MetricsRegistry::new();
        m.snapshot().export_into(&registry);
        let report = registry.report();
        assert_eq!(report.counter("serve.submitted"), Some(9));
        assert_eq!(report.counter("serve.retries"), Some(3));
        assert_eq!(report.counter("serve.readmitted"), Some(0));
        assert_eq!(report.counter("serve.turns_replayed"), Some(0));
        assert_eq!(report.counter("serve.per_worker.0"), Some(0));
        assert_eq!(report.counter("serve.per_worker.1"), Some(4));
        // Re-export overwrites rather than accumulates.
        m.snapshot().export_into(&registry);
        assert_eq!(registry.report().counter("serve.submitted"), Some(9));
    }

    #[test]
    fn scoped_metrics_update_both_scopes_in_lockstep() {
        let global = ServeMetrics::new(2, false);
        let a = ServeMetrics::new(2, false);
        let b = ServeMetrics::new(2, false);
        let sa = ScopedMetrics {
            global: &global,
            tenant: &a,
        };
        let sb = ScopedMetrics {
            global: &global,
            tenant: &b,
        };
        sa.add(|m| &m.answered, 3);
        sb.add(|m| &m.answered, 2);
        sa.add(|m| &m.quota_refused, 1);
        sa.observe_depth(5);
        sb.observe_depth(2);
        sa.per_worker(1);
        assert_eq!(global.snapshot().answered, 5);
        assert_eq!(a.snapshot().answered, 3);
        assert_eq!(b.snapshot().answered, 2);
        assert_eq!(a.snapshot().quota_refused, 1);
        assert_eq!(b.snapshot().quota_refused, 0);
        assert_eq!(global.snapshot().max_queue_depth, 5);
        assert_eq!(b.snapshot().max_queue_depth, 2);
        assert_eq!(global.snapshot().per_worker, vec![0, 1]);
        assert_eq!(a.snapshot().per_worker, vec![0, 1]);
    }

    #[test]
    fn labelled_export_mirrors_plain_export_byte_for_byte() {
        let m = ServeMetrics::new(2, false);
        m.submitted.fetch_add(9, Ordering::Relaxed);
        m.quota_refused.fetch_add(2, Ordering::Relaxed);
        m.per_worker[0].fetch_add(4, Ordering::Relaxed);
        let snap = m.snapshot();

        let plain = nlidb_obs::MetricsRegistry::new();
        snap.export_into(&plain);
        let labelled = nlidb_obs::MetricsRegistry::new();
        snap.export_labelled_into(&labelled, "retail");

        // Same counters, same values — only the prefix differs, and
        // per-worker rows are global-only.
        let plain_text = plain.report().export_text();
        let labelled_text = labelled.report().export_text();
        let rebuilt: String = plain_text
            .lines()
            .filter(|l| !l.starts_with("counter serve.per_worker."))
            .map(|l| {
                format!(
                    "counter serve.tenant.retail.{}\n",
                    l.trim_start_matches("counter serve.")
                )
            })
            .collect();
        assert_eq!(labelled_text, rebuilt);
        assert!(labelled_text.contains("serve.tenant.retail.quota_refused 2"));
        assert!(!labelled_text.contains("per_worker"));
        // Re-export overwrites rather than accumulates.
        snap.export_labelled_into(&labelled, "retail");
        assert_eq!(labelled.report().export_text(), labelled_text);
    }

    #[test]
    fn labelled_export_order_is_independent_of_insertion_order() {
        // The perf-drift gate byte-compares the registry's export, so
        // tenant scopes must render sorted by name no matter which
        // tenant exported first (or how the snapshots interleave with
        // global export).
        let snap_a = {
            let m = ServeMetrics::new(1, false);
            m.answered.fetch_add(3, Ordering::Relaxed);
            m.snapshot()
        };
        let snap_b = {
            let m = ServeMetrics::new(1, false);
            m.refused.fetch_add(1, Ordering::Relaxed);
            m.snapshot()
        };
        let forward = nlidb_obs::MetricsRegistry::new();
        snap_a.export_into(&forward);
        snap_a.export_labelled_into(&forward, "alpha");
        snap_b.export_labelled_into(&forward, "zed");
        let backward = nlidb_obs::MetricsRegistry::new();
        snap_b.export_labelled_into(&backward, "zed");
        snap_a.export_labelled_into(&backward, "alpha");
        snap_a.export_into(&backward);
        let text = forward.report().export_text();
        assert_eq!(text, backward.report().export_text());
        // Scope blocks land in sorted order: global serve.* rows
        // between the alphabetically-smaller and -larger tenants.
        let alpha = text.find("serve.tenant.alpha.answered 3").unwrap();
        let global = text.find("counter serve.answered 3").unwrap();
        let zed = text.find("serve.tenant.zed.refused 1").unwrap();
        assert!(global < alpha && alpha < zed);
    }

    #[test]
    fn disabled_cache_is_distinguishable_from_cold() {
        let off = ServeMetrics::new(1, true);
        off.interp_misses.fetch_add(4, Ordering::Relaxed);
        let s = off.snapshot();
        assert!(s.cache_disabled);
        assert_eq!(s.interp_misses, 4, "lookups are still counted");
        assert!(s.to_string().contains("interp-cache off"));
        let cold = ServeMetrics::new(1, false).snapshot();
        assert!(!cold.cache_disabled);
        assert!(cold.to_string().contains("0.0% hit"));
    }
}
