//! Deterministic retry budgets and per-interpreter circuit breakers.
//!
//! Both mechanisms are expressed in *logical* units so they compose
//! with the manual clock: a retry's backoff is accounted as ticks in a
//! metric (never slept), and a breaker's cooldown is counted in
//! requests it turns away (never in elapsed time). Because each worker
//! owns its breakers and the request→worker mapping is deterministic,
//! the whole failure-handling state machine replays identically run
//! over run.

/// Retry budget for transient faults.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Retries allowed after the first attempt (0 disables retrying).
    pub max_retries: u32,
    /// Backoff for the `n`-th retry is `backoff_base << n` ticks,
    /// accounted in `retry_backoff_ticks` — logical time only.
    pub backoff_base: u64,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            max_retries: 2,
            backoff_base: 1,
        }
    }
}

impl RetryPolicy {
    /// Backoff charged for retry number `attempt` (0-based): an
    /// exponential `base << attempt`, saturating.
    pub fn backoff(&self, attempt: u32) -> u64 {
        self.backoff_base
            .saturating_mul(1u64.checked_shl(attempt).unwrap_or(u64::MAX))
    }
}

/// Trip/cooldown thresholds for a [`CircuitBreaker`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BreakerPolicy {
    /// Consecutive infrastructure failures that open the circuit (≥ 1).
    pub threshold: u32,
    /// Requests turned away while open before a half-open probe.
    pub cooldown: u32,
}

impl Default for BreakerPolicy {
    fn default() -> BreakerPolicy {
        BreakerPolicy {
            threshold: 3,
            cooldown: 8,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum BreakerState {
    Closed,
    /// Turning requests away; `remaining` more skips until a probe.
    Open {
        remaining: u32,
    },
    /// One probe request is being allowed through.
    HalfOpen,
}

/// A per-(worker, interpreter-family) circuit breaker.
///
/// Counts *infrastructure* failures only — a semantic refusal means
/// the family is healthy and resets the streak. After `threshold`
/// consecutive failures the circuit opens: the next `cooldown`
/// requests skip this family outright (falling further down the
/// ladder), then one probe is allowed through; its outcome decides
/// between closing and re-opening.
#[derive(Debug, Clone)]
pub struct CircuitBreaker {
    policy: BreakerPolicy,
    state: BreakerState,
    consecutive_failures: u32,
    trips: u64,
}

impl CircuitBreaker {
    /// A closed breaker under `policy`.
    pub fn new(policy: BreakerPolicy) -> CircuitBreaker {
        CircuitBreaker {
            policy: BreakerPolicy {
                threshold: policy.threshold.max(1),
                ..policy
            },
            state: BreakerState::Closed,
            consecutive_failures: 0,
            trips: 0,
        }
    }

    /// Whether the next request may try this family. `false` counts
    /// down the open cooldown; when it reaches zero the breaker moves
    /// to half-open and the following call allows a probe.
    pub fn allow(&mut self) -> bool {
        match self.state {
            BreakerState::Closed | BreakerState::HalfOpen => true,
            BreakerState::Open { remaining } => {
                if remaining <= 1 {
                    self.state = BreakerState::HalfOpen;
                } else {
                    self.state = BreakerState::Open {
                        remaining: remaining - 1,
                    };
                }
                false
            }
        }
    }

    /// Record a healthy outcome (an answer *or* a semantic refusal).
    pub fn on_success(&mut self) {
        self.state = BreakerState::Closed;
        self.consecutive_failures = 0;
    }

    /// Record an infrastructure failure. Returns `true` when this
    /// failure tripped the circuit open.
    pub fn on_failure(&mut self) -> bool {
        match self.state {
            BreakerState::HalfOpen => {
                self.open();
                true
            }
            BreakerState::Closed => {
                self.consecutive_failures += 1;
                if self.consecutive_failures >= self.policy.threshold {
                    self.open();
                    true
                } else {
                    false
                }
            }
            // Failures reported while open (e.g. from an attempt that
            // started before the trip) don't re-trip.
            BreakerState::Open { .. } => false,
        }
    }

    fn open(&mut self) {
        self.state = BreakerState::Open {
            remaining: self.policy.cooldown.max(1),
        };
        self.consecutive_failures = 0;
        self.trips += 1;
    }

    /// Times the circuit has opened.
    pub fn trips(&self) -> u64 {
        self.trips
    }

    /// Whether the breaker is currently turning requests away.
    pub fn is_open(&self) -> bool {
        matches!(self.state, BreakerState::Open { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_is_exponential_and_saturating() {
        let p = RetryPolicy {
            max_retries: 3,
            backoff_base: 2,
        };
        assert_eq!(p.backoff(0), 2);
        assert_eq!(p.backoff(1), 4);
        assert_eq!(p.backoff(2), 8);
        assert_eq!(p.backoff(200), u64::MAX, "saturates, never wraps");
    }

    #[test]
    fn breaker_trips_after_threshold_consecutive_failures() {
        let mut b = CircuitBreaker::new(BreakerPolicy {
            threshold: 3,
            cooldown: 2,
        });
        assert!(!b.on_failure());
        assert!(!b.on_failure());
        assert!(b.allow(), "still closed below threshold");
        assert!(b.on_failure(), "third consecutive failure trips");
        assert!(b.is_open());
        assert_eq!(b.trips(), 1);
    }

    #[test]
    fn success_resets_the_streak() {
        let mut b = CircuitBreaker::new(BreakerPolicy {
            threshold: 2,
            cooldown: 2,
        });
        b.on_failure();
        b.on_success();
        assert!(!b.on_failure(), "streak restarted from zero");
        assert!(!b.is_open());
    }

    #[test]
    fn cooldown_counts_requests_then_probes() {
        let mut b = CircuitBreaker::new(BreakerPolicy {
            threshold: 1,
            cooldown: 2,
        });
        assert!(b.on_failure());
        assert!(!b.allow(), "skip 1");
        assert!(!b.allow(), "skip 2 — moves to half-open");
        assert!(b.allow(), "probe allowed");
        b.on_success();
        assert!(b.allow(), "probe success closes the circuit");
        assert_eq!(b.trips(), 1);
    }

    #[test]
    fn failed_probe_reopens() {
        let mut b = CircuitBreaker::new(BreakerPolicy {
            threshold: 1,
            cooldown: 1,
        });
        assert!(b.on_failure());
        assert!(!b.allow());
        assert!(b.allow(), "probe");
        assert!(b.on_failure(), "failed probe re-trips");
        assert!(b.is_open());
        assert_eq!(b.trips(), 2);
    }
}
