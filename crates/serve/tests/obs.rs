//! The observability layer end to end: a traced server exports a
//! byte-identical JSONL trace stream run over run, tracing never
//! perturbs dispositions, the serving counters round-trip into the
//! obs registry, and every piece of robustness machinery — retries,
//! breaker trips, degradation rungs, worker panics, dead-worker
//! refusals, admission rejects — leaves attributable span evidence.

use std::sync::Arc;

use nlidb_benchdata::{
    derive_slots, request_stream, retail_database, FaultKind, FaultPlan, FaultRates, RequestSpec,
};
use nlidb_core::pipeline::NliPipeline;
use nlidb_serve::{
    fault_plan_hook, run_closed_loop, silence_worker_panics, Clock, ManualClock, MetricsSnapshot,
    ServeObs, Server, ServerConfig,
};

fn pipeline() -> Arc<NliPipeline> {
    let db = retail_database(7);
    Arc::new(NliPipeline::standard(&db))
}

fn config(workers: usize) -> ServerConfig {
    ServerConfig {
        workers,
        queue_capacity: 256,
        ..ServerConfig::default()
    }
}

/// Replay the standard seeded mixed stream on a traced server; return
/// (signatures, final metrics, the obs handles).
fn traced_run(
    workers: usize,
    n: usize,
    plan: FaultPlan,
) -> (Vec<String>, MetricsSnapshot, ServeObs) {
    let db = retail_database(7);
    let slots = derive_slots(&db);
    let p = Arc::new(NliPipeline::standard(&db));
    let stream = request_stream(&slots, 42, n, 0.25);
    let clock = Arc::new(ManualClock::new());
    let obs = ServeObs::new(n + 8);
    let mut server = Server::start_observed(
        p,
        config(workers),
        clock.clone() as Arc<dyn Clock>,
        Some(fault_plan_hook(plan)),
        Some(obs.clone()),
    );
    let report = run_closed_loop(&mut server, &clock, &stream, 16);
    assert_eq!(report.completions.len(), n, "every request completes");
    (report.signatures(), server.shutdown(), obs)
}

fn mixed_plan(n: u64) -> FaultPlan {
    let rates = FaultRates {
        transient: 0.3,
        fatal: 0.05,
        ..FaultRates::default()
    };
    FaultPlan::seeded(42, n, &rates)
}

#[test]
fn traced_replays_export_byte_identical_jsonl() {
    let (sigs_a, m_a, obs_a) = traced_run(2, 60, mixed_plan(60));
    let (sigs_b, m_b, obs_b) = traced_run(2, 60, mixed_plan(60));
    assert_eq!(sigs_a, sigs_b, "semantic stream replays identically");
    assert_eq!(m_a, m_b, "metrics replay identically");
    let jsonl_a = obs_a.sink.export_jsonl();
    let jsonl_b = obs_b.sink.export_jsonl();
    assert!(!jsonl_a.is_empty(), "traces were actually recorded");
    assert_eq!(jsonl_a, jsonl_b, "trace export must be byte-identical");
    assert_eq!(obs_a.sink.len(), 60, "one trace per request");
    // The registry report (per-stage histograms) replays too.
    assert_eq!(
        obs_a.registry.report().to_string(),
        obs_b.registry.report().to_string()
    );
}

#[test]
fn tracing_never_perturbs_the_answer_stream() {
    let (traced_sigs, traced_m, _obs) = traced_run(2, 60, mixed_plan(60));
    // Same stream, same plan, no obs attached.
    let db = retail_database(7);
    let slots = derive_slots(&db);
    let p = Arc::new(NliPipeline::standard(&db));
    let stream = request_stream(&slots, 42, 60, 0.25);
    let clock = Arc::new(ManualClock::new());
    let mut server = Server::start_with_hook(
        p,
        config(2),
        clock.clone() as Arc<dyn Clock>,
        Some(fault_plan_hook(mixed_plan(60))),
    );
    let report = run_closed_loop(&mut server, &clock, &stream, 16);
    let untraced_m = server.shutdown();
    assert_eq!(
        report.signatures(),
        traced_sigs,
        "observed and unobserved servers must answer identically"
    );
    assert_eq!(untraced_m, traced_m, "and count identically");
}

#[test]
fn snapshot_counters_round_trip_into_the_registry() {
    let (_sigs, m, obs) = traced_run(2, 60, mixed_plan(60));
    m.export_into(&obs.registry);
    let report = obs.registry.report();
    assert_eq!(report.counter("serve.submitted"), Some(m.submitted));
    assert_eq!(report.counter("serve.answered"), Some(m.answered));
    assert_eq!(report.counter("serve.retries"), Some(m.retries));
    assert_eq!(report.counter("serve.degraded"), Some(m.degraded));
    assert_eq!(report.counter("serve.breaker_trips"), Some(m.breaker_trips));
    // Per-stage cost histograms exist alongside the counters.
    let request = report
        .histogram("span.request")
        .expect("request-span histogram registered");
    assert_eq!(request.count, 60, "one root span cost per request");
}

#[test]
fn fault_evidence_is_attributed_to_spans() {
    // A regime that exercises every robustness path: seeded transients
    // (retries + backoff) plus a pinned fatal window deep enough to
    // trip the rung-0 breaker (threshold 3) and force degradations.
    // Faults are only consulted on cache misses, so the fatal window
    // must land on *fresh* requests — discovered by a clean pass.
    let (_clean_sigs, _clean_m, clean_obs) = traced_run(2, 120, FaultPlan::none());
    let fresh: Vec<u64> = clean_obs
        .sink
        .traces()
        .iter()
        .filter(|t| {
            t.spans_named("cache")
                .next()
                .is_some_and(|s| s.attr("outcome") == Some("miss"))
        })
        .map(|t| t.id)
        .collect();
    assert!(fresh.len() >= 12, "enough cache misses to pin faults on");
    let mut plan = FaultPlan::seeded(
        42,
        120,
        &FaultRates {
            transient: 0.3,
            fatal: 0.0,
            ..FaultRates::default()
        },
    );
    for id in &fresh[..12] {
        plan = plan.with(*id, FaultKind::Fatal { depth: 1 });
    }
    let (_sigs, m, obs) = traced_run(2, 120, plan);
    assert!(m.retries > 0 && m.breaker_trips > 0 && m.degraded > 0);

    let traces = obs.sink.traces();
    let mut retries = 0u64;
    let mut backoff = 0u64;
    let mut trips = 0u64;
    let mut skips = 0u64;
    let mut degraded_roots = 0u64;
    let mut degraded_rungs = 0u64;
    for t in &traces {
        let root = t.root().expect("every trace has a root span");
        assert_eq!(root.name, "request");
        assert!(
            root.attr("outcome").is_some(),
            "every root is dispositioned"
        );
        if root.attr("outcome") == Some("degraded") {
            degraded_roots += 1;
        }
        for s in t.spans.iter() {
            if let Some(r) = s.attr("retries") {
                retries += r.parse::<u64>().expect("retries attr is a count");
            }
            if let Some(b) = s.attr("backoff") {
                backoff += b.parse::<u64>().expect("backoff attr is ticks");
            }
            match s.attr("breaker") {
                Some("tripped") => trips += 1,
                Some("open") => skips += 1,
                _ => {}
            }
        }
        for rung in t.spans_named("rung") {
            assert!(
                rung.attr("outcome").is_some(),
                "every rung is dispositioned"
            );
            if rung.attr("outcome") == Some("degraded") {
                degraded_rungs += 1;
            }
        }
    }
    assert_eq!(retries, m.retries, "every retry is attributed to a span");
    assert_eq!(backoff, m.retry_backoff_ticks, "and its backoff with it");
    assert_eq!(trips, m.breaker_trips, "every breaker trip is attributed");
    assert_eq!(skips, m.breaker_skips, "every breaker skip is attributed");
    assert_eq!(
        degraded_roots, m.degraded,
        "every degradation is attributed"
    );
    assert_eq!(
        degraded_rungs, m.degraded,
        "each degraded request shows the rung that served it"
    );
}

#[test]
fn worker_death_leaves_bounce_evidence_in_traces() {
    // One worker, panic pinned on request 1: the corpse records no
    // trace for the jobs it bounces (one trace per request, owned by
    // whoever finishes it) — with no live worker left, the submitter's
    // terminal re-admission refusals are that owner.
    silence_worker_panics();
    let plan = FaultPlan::none().with(1, FaultKind::WorkerPanic);
    let p = pipeline();
    let clock = Arc::new(ManualClock::new());
    let obs = ServeObs::new(16);
    let mut server = Server::start_observed(
        p,
        ServerConfig {
            workers: 1,
            interp_cache: 0,
            ..ServerConfig::default()
        },
        clock.clone() as Arc<dyn Clock>,
        Some(fault_plan_hook(plan)),
        Some(obs.clone()),
    );
    for _ in 0..4 {
        server.submit(&RequestSpec::single("how many customers are there"));
    }
    let done = server.drain();
    assert_eq!(done.len(), 4);
    server.shutdown();
    let traces = obs.sink.traces();
    assert_eq!(traces.len(), 4, "every request still yields one trace");
    let root_attr = |i: usize, key: &str| traces[i].root().and_then(|r| r.attr(key));
    assert_eq!(root_attr(0, "outcome"), Some("answered"));
    for i in 1..4 {
        assert_eq!(root_attr(i, "outcome"), Some("refused"), "request {i}");
        assert_eq!(
            root_attr(i, "redeliveries"),
            Some("1"),
            "the bounce is attributed"
        );
        assert_eq!(
            root_attr(i, "bounced_from"),
            Some("0"),
            "and so is the dead worker it came off"
        );
    }
}

#[test]
fn admission_rejects_are_traced() {
    let p = pipeline();
    let clock = Arc::new(ManualClock::new());
    let obs = ServeObs::new(64);
    let mut server = Server::start_observed(
        p,
        ServerConfig {
            workers: 1,
            queue_capacity: 2,
            ..ServerConfig::default()
        },
        clock.clone() as Arc<dyn Clock>,
        None,
        Some(obs.clone()),
    );
    // Overfill the single worker's queue: admissions beyond capacity
    // shed at submit time, each leaving a two-span reject trace.
    let mut shed = 0u64;
    for _ in 0..6 {
        let admission = server.submit(&RequestSpec::single("how many customers are there"));
        if matches!(admission, nlidb_serve::Admission::Shed { .. }) {
            shed += 1;
        }
    }
    assert!(shed > 0, "the tiny queue must actually shed");
    server.drain();
    let m = server.shutdown();
    assert_eq!(m.shed_full, shed);
    let shed_traces: Vec<_> = obs
        .sink
        .traces()
        .into_iter()
        .filter(|t| t.root().and_then(|r| r.attr("outcome")) == Some("shed"))
        .collect();
    assert_eq!(shed_traces.len(), shed as usize, "one trace per shed");
    for t in &shed_traces {
        let adm = t
            .spans_named("admission")
            .next()
            .expect("reject traces carry the admission span");
        assert_eq!(adm.attr("outcome"), Some("shed"));
        assert!(adm.attr("depth").is_some(), "queue depth recorded");
    }
}
