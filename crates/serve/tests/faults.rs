//! The serving robustness layer, end to end: seeded fault injection,
//! retry transparency, graceful degradation, circuit breaking, worker
//! death recovery — and the serve-layer regression fixes (Drop
//! joins the pool, the schema fingerprint covers relationships,
//! disabled-cache metrics stay meaningful). Everything here replays
//! bit-identically: faults are a pure function of (request id, rung,
//! attempt). Crash *recovery* — session replay, re-admission to live
//! workers — has its own suite in `tests/recovery.rs`; this file keeps
//! the no-spare-worker edge, where recovery has nowhere to go.

use std::sync::Arc;

use nlidb_benchdata::{
    derive_slots, request_stream, retail_database, FaultKind, FaultPlan, FaultRates, RequestSpec,
};
use nlidb_core::pipeline::{NliPipeline, SchemaContext};
use nlidb_serve::{
    fault_plan_hook, run_closed_loop, silence_worker_panics, Clock, Disposition, ManualClock,
    MetricsSnapshot, Server, ServerConfig,
};

fn pipeline() -> Arc<NliPipeline> {
    let db = retail_database(7);
    Arc::new(NliPipeline::standard(&db))
}

fn config(workers: usize) -> ServerConfig {
    ServerConfig {
        workers,
        queue_capacity: 256,
        ..ServerConfig::default()
    }
}

/// Replay a seeded mixed stream under `plan`; return (signatures,
/// final metrics).
fn faulted_run(
    workers: usize,
    n: usize,
    session_share: f64,
    plan: FaultPlan,
) -> (Vec<String>, MetricsSnapshot) {
    let db = retail_database(7);
    let slots = derive_slots(&db);
    let p = Arc::new(NliPipeline::standard(&db));
    let stream = request_stream(&slots, 42, n, session_share);
    let clock = Arc::new(ManualClock::new());
    let mut server = Server::start_with_hook(
        p,
        config(workers),
        clock.clone() as Arc<dyn Clock>,
        Some(fault_plan_hook(plan)),
    );
    let report = run_closed_loop(&mut server, &clock, &stream, 16);
    assert_eq!(report.completions.len(), n, "every request completes");
    (report.signatures(), server.shutdown())
}

#[test]
fn transient_faults_within_retry_budget_are_invisible() {
    // Transient-only schedule; every drawn fault recovers within the
    // default retry budget (max failures 2 == max retries 2).
    let rates = FaultRates {
        transient: 0.4,
        fatal: 0.0,
        ..FaultRates::default()
    };
    let plan = FaultPlan::seeded(42, 80, &rates);
    assert!(!plan.is_empty(), "schedule must actually fault something");
    let (clean_sigs, clean_m) = faulted_run(2, 80, 0.25, FaultPlan::none());
    let (faulted_sigs, faulted_m) = faulted_run(2, 80, 0.25, plan);
    assert_eq!(
        clean_sigs, faulted_sigs,
        "absorbed transients must leave the answer stream byte-identical"
    );
    assert_eq!(clean_m.retries, 0);
    assert!(faulted_m.retries > 0, "retries must actually have happened");
    assert!(
        faulted_m.retry_backoff_ticks >= faulted_m.retries,
        "backoff accounted"
    );
    assert_eq!(faulted_m.degraded, 0, "nothing should have degraded");
    assert_eq!(faulted_m.answered, clean_m.answered);
    assert_eq!(faulted_m.refused, clean_m.refused);
}

#[test]
fn fatal_fault_degrades_down_the_ladder_and_is_marked() {
    let question = "how many customers are there";
    let p = pipeline();
    let clock = Arc::new(ManualClock::new());
    let plan = FaultPlan::none().with(0, FaultKind::Fatal { depth: 1 });
    let mut server = Server::start_with_hook(
        Arc::clone(&p),
        config(1),
        clock.clone() as Arc<dyn Clock>,
        Some(fault_plan_hook(plan)),
    );
    server.submit(&RequestSpec::single(question)); // id 0: hybrid is down
    server.submit(&RequestSpec::single(question)); // id 1: healthy
    let done = server.drain();
    match &done[0].disposition {
        Disposition::Degraded {
            served_by, rows, ..
        } => {
            assert_eq!(*served_by, "entity", "first rung below hybrid");
            assert!(!rows.is_empty());
        }
        other => panic!("expected a degraded answer, got {other:?}"),
    }
    assert!(
        done[0].signature().contains("degraded[entity]"),
        "signature carries the degradation marker: {}",
        done[0].signature()
    );
    // The healthy request computes fresh: degraded answers are never
    // written to the interpretation cache.
    match &done[1].disposition {
        Disposition::Answered { from_cache, .. } => {
            assert!(!from_cache, "degraded answers must not seed the cache")
        }
        other => panic!("expected a full-fidelity answer, got {other:?}"),
    }
    let m = server.shutdown();
    assert_eq!(m.degraded, 1);
    assert_eq!(m.answered, 1);
}

#[test]
fn ladder_exhaustion_refuses_deterministically() {
    let plan = FaultPlan::none().with(0, FaultKind::Fatal { depth: 4 });
    let p = pipeline();
    let clock = Arc::new(ManualClock::new());
    let mut server = Server::start_with_hook(
        p,
        config(1),
        clock.clone() as Arc<dyn Clock>,
        Some(fault_plan_hook(plan)),
    );
    server.submit(&RequestSpec::single("how many customers are there"));
    let done = server.drain();
    match &done[0].disposition {
        Disposition::Refused { reason } => {
            assert!(
                reason.contains("no interpreter family available"),
                "unexpected reason: {reason}"
            );
        }
        other => panic!("expected refusal, got {other:?}"),
    }
    let m = server.shutdown();
    assert_eq!((m.refused, m.degraded), (1, 0));
}

#[test]
fn circuit_breaker_trips_and_sheds_load_off_a_failing_family() {
    // Three consecutive hybrid-fatal requests trip the rung-0 breaker
    // (default threshold 3); the *healthy* fourth request then skips
    // hybrid outright and degrades — that's the breaker doing its job.
    let mut plan = FaultPlan::none();
    for id in 0..3 {
        plan = plan.with(id, FaultKind::Fatal { depth: 1 });
    }
    let p = pipeline();
    let clock = Arc::new(ManualClock::new());
    let mut server = Server::start_with_hook(
        p,
        config(1),
        clock.clone() as Arc<dyn Clock>,
        Some(fault_plan_hook(plan)),
    );
    for _ in 0..5 {
        server.submit(&RequestSpec::single("how many customers are there"));
    }
    let done = server.drain();
    let degraded = done
        .iter()
        .filter(|c| matches!(c.disposition, Disposition::Degraded { .. }))
        .count();
    assert_eq!(degraded, 5, "faulted and breaker-skipped all degrade");
    let m = server.shutdown();
    assert_eq!(m.breaker_trips, 1, "one open transition");
    assert_eq!(m.breaker_skips, 2, "requests 3 and 4 skipped the open rung");
}

#[test]
fn worker_panic_with_no_spare_worker_refuses_cleanly() {
    silence_worker_panics();
    let plan = FaultPlan::none().with(1, FaultKind::WorkerPanic);
    let p = pipeline();
    let clock = Arc::new(ManualClock::new());
    // Cache off: a cache hit never consults the hook (a replayed
    // answer touches no backend), and this test wants every request to
    // reach the fault schedule. One worker: recovery has nowhere to
    // re-admit to, so every bounce must surface as a clean refusal —
    // never a hang, never a lost completion.
    let mut server = Server::start_with_hook(
        p,
        ServerConfig {
            workers: 1,
            interp_cache: 0,
            ..ServerConfig::default()
        },
        clock.clone() as Arc<dyn Clock>,
        Some(fault_plan_hook(plan)),
    );
    for _ in 0..4 {
        server.submit(&RequestSpec::single("how many customers are there"));
    }
    let done = server.drain(); // must not hang
    assert_eq!(done.len(), 4, "every admitted request completes");
    assert!(
        matches!(done[0].disposition, Disposition::Answered { .. }),
        "request before the panic is unaffected"
    );
    for c in &done[1..] {
        match &c.disposition {
            Disposition::Refused { reason } => assert!(
                reason.contains("no live workers"),
                "bounced work with nowhere to go refuses: {reason}"
            ),
            other => panic!("bounced requests must refuse, got {other:?}"),
        }
    }
    // The router never offers the corpse new work: with the whole pool
    // dead, admission itself refuses.
    let adm = server.submit(&RequestSpec::single("how many customers are there"));
    assert!(matches!(adm, nlidb_serve::Admission::Refused { .. }));
    let more = server.drain();
    assert!(matches!(more[0].disposition, Disposition::Refused { .. }));
    let m = server.shutdown(); // must not panic
    assert_eq!(m.worker_deaths, 1);
    assert_eq!(m.crashed_requests, 3, "panicked + 2 queued behind it");
    assert_eq!(m.readmitted, 0, "no live worker to re-admit to");
    assert_eq!(m.readmit_refused, 3);
}

#[test]
fn faulted_runs_replay_bit_identically() {
    silence_worker_panics();
    let plan = || {
        FaultPlan::seeded(42, 60, &FaultRates::default())
            .with(17, FaultKind::WorkerPanic)
            .with(23, FaultKind::Fatal { depth: 2 })
    };
    let a = faulted_run(2, 60, 0.25, plan());
    let b = faulted_run(2, 60, 0.25, plan());
    assert_eq!(a.0, b.0, "signature streams must match");
    assert_eq!(a.1, b.1, "metrics snapshots must match");
    assert!(a.1.worker_deaths >= 1);
}

#[test]
fn drop_joins_worker_threads() {
    // The hook closure lives inside the shared state every worker
    // holds; once every worker thread has been joined, this sentinel's
    // only owner is the test again.
    let sentinel = Arc::new(());
    let witness = Arc::clone(&sentinel);
    let p = pipeline();
    let clock = Arc::new(ManualClock::new());
    let mut server = Server::start_with_hook(
        p,
        config(3),
        clock.clone() as Arc<dyn Clock>,
        Some(Box::new(move |_| {
            let _ = &witness;
            None
        })),
    );
    server.submit(&RequestSpec::single("how many customers are there"));
    server.drain();
    assert!(Arc::strong_count(&sentinel) > 1, "workers hold the hook");
    drop(server); // no shutdown(): the destructor must join the pool
    assert_eq!(
        Arc::strong_count(&sentinel),
        1,
        "dropping the server must join every worker thread"
    );
}

#[test]
fn fingerprint_covers_relationships() {
    let db = retail_database(7);
    let clock = Arc::new(ManualClock::new());
    let base_ctx = SchemaContext::build(&db);
    assert!(
        !base_ctx.ontology.object_properties.is_empty(),
        "retail schema must have relationships for this test to mean anything"
    );
    let fp = |ctx: SchemaContext| {
        let p = Arc::new(NliPipeline::with_context(&db, ctx));
        let server = Server::start(p, config(1), Arc::clone(&clock) as Arc<dyn Clock>);
        let fp = server.fingerprint();
        server.shutdown();
        fp
    };
    let baseline = fp(SchemaContext::build(&db));
    assert_eq!(
        baseline,
        fp(SchemaContext::build(&db)),
        "fingerprint is deterministic"
    );
    // Same concepts and columns, different join structure: must not
    // share cache keys.
    let mut relabeled = SchemaContext::build(&db);
    relabeled.ontology.object_properties[0].label = "renamed relationship".to_string();
    assert_ne!(baseline, fp(relabeled), "relationship label is hashed");
    let mut dropped = SchemaContext::build(&db);
    dropped.ontology.object_properties.pop();
    assert_ne!(baseline, fp(dropped), "relationship presence is hashed");
    let mut rewired = SchemaContext::build(&db);
    let rel = &mut rewired.ontology.object_properties[0];
    std::mem::swap(&mut rel.from_column, &mut rel.to_column);
    assert_ne!(baseline, fp(rewired), "relationship endpoints are hashed");
}

#[test]
fn disabled_cache_metrics_stay_meaningful() {
    let p = pipeline();
    let clock = Arc::new(ManualClock::new());
    let mut server = Server::start(
        p,
        ServerConfig {
            workers: 1,
            interp_cache: 0,
            ..ServerConfig::default()
        },
        clock.clone() as Arc<dyn Clock>,
    );
    for _ in 0..3 {
        server.submit(&RequestSpec::single("how many customers are there"));
    }
    server.drain();
    let m = server.shutdown();
    assert!(m.cache_disabled, "snapshot must flag the disabled cache");
    assert_eq!(m.interp_hits, 0);
    assert_eq!(
        m.interp_misses, 3,
        "lookups are counted even with the cache off"
    );
    assert!(m.to_string().contains("interp-cache off"));
}
