//! Multi-tenant isolation end to end: one [`TenantServer`] runtime,
//! many databases, zero leakage. Caches, journals, quotas, and metrics
//! are all keyed by schema fingerprint; these tests pin the isolation
//! properties E17 builds on — fingerprint distinctness, cache
//! non-leakage, deterministic quotas, lockstep metrics scopes, and
//! single-tenant byte-compatibility.

use std::sync::Arc;

use nlidb_benchdata::{all_domains, retail_database, RequestSpec, DOMAIN_NAMES};
use nlidb_core::pipeline::NliPipeline;
use nlidb_obs::MetricsRegistry;
use nlidb_ontology::JoinPathCache;
use nlidb_serve::{
    run_closed_loop_tenants, schema_fingerprint_of, tenant_pipeline, Clock, Disposition,
    ManualClock, MetricsSnapshot, Server, ServerConfig, TenantPolicy, TenantRegistry, TenantServer,
};

fn config(workers: usize) -> ServerConfig {
    ServerConfig {
        workers,
        queue_capacity: 256,
        ..ServerConfig::default()
    }
}

/// Register the first `n` benchdata domains as tenants over one shared
/// join-path cache, all under `policy`.
fn registry_of(n: usize, policy: TenantPolicy) -> (TenantRegistry, Vec<u64>) {
    let cache = Arc::new(JoinPathCache::new(256));
    let mut registry = TenantRegistry::new();
    let mut fps = Vec::with_capacity(n);
    for (i, db) in all_domains(42).into_iter().take(n).enumerate() {
        let (fp, pipeline) = tenant_pipeline(&db, &cache);
        registry.register(DOMAIN_NAMES[i], pipeline, policy.clone());
        fps.push(fp);
    }
    (registry, fps)
}

/// Satellite: collision hygiene. Every pair of benchdata domains must
/// fingerprint differently — a collision would silently merge two
/// tenants' caches and journals, and `TenantRegistry::register` would
/// panic on it.
#[test]
fn schema_fingerprints_are_pairwise_distinct_across_domains() {
    let fps: Vec<u64> = all_domains(42)
        .iter()
        .map(|db| {
            let p = NliPipeline::standard(db);
            schema_fingerprint_of(&p.context().ontology)
        })
        .collect();
    for i in 0..fps.len() {
        for j in (i + 1)..fps.len() {
            assert_ne!(
                fps[i], fps[j],
                "{} and {} collide on {:016x}",
                DOMAIN_NAMES[i], DOMAIN_NAMES[j], fps[i]
            );
        }
    }
    // And the fingerprint is seed-independent: same schema, different
    // data, same identity.
    let a = NliPipeline::standard(&retail_database(7));
    let b = NliPipeline::standard(&retail_database(900));
    assert_eq!(
        schema_fingerprint_of(&a.context().ontology),
        schema_fingerprint_of(&b.context().ontology)
    );
}

/// The interpretation cache never leaks across tenants: tenant A
/// warming a question must not turn tenant B's identical question into
/// a hit — B has a different schema, so a leaked entry would be a
/// wrong answer, not a fast one.
#[test]
fn interpretation_cache_is_tenant_scoped() {
    let (registry, fps) = registry_of(2, TenantPolicy::default());
    let clock = Arc::new(ManualClock::new());
    let mut server = TenantServer::start(&registry, config(2), clock as Arc<dyn Clock>);
    let q = RequestSpec::single("how many customers are there");
    server.submit(fps[0], &q); // retail: miss
    server.drain();
    server.submit(fps[0], &q); // retail again: hit
    server.drain();
    server.submit(fps[1], &q); // hr, same words: MUST miss
    server.drain();
    let retail = server.tenant_metrics(fps[0]).unwrap();
    assert_eq!((retail.interp_misses, retail.interp_hits), (1, 1));
    let hr = server.tenant_metrics(fps[1]).unwrap();
    assert_eq!(
        hr.interp_misses, 1,
        "hr's probe must not see retail's entry"
    );
    assert_eq!(hr.interp_hits, 0);
    let global = server.shutdown();
    assert_eq!((global.interp_misses, global.interp_hits), (2, 1));
}

/// Admission quotas are per-tenant, deterministic, and invisible to
/// the other tenants: exhausting one tenant's budget refuses exactly
/// its overflow with `quota_refused`, while a co-resident tenant's
/// traffic is untouched.
#[test]
fn admission_budget_refuses_deterministically_per_tenant() {
    let run = || {
        let cache = Arc::new(JoinPathCache::new(256));
        let mut registry = TenantRegistry::new();
        let (fp_a, p_a) = tenant_pipeline(&retail_database(7), &cache);
        let domains = all_domains(42);
        let (fp_b, p_b) = tenant_pipeline(&domains[1], &cache);
        registry.register(
            "retail",
            p_a,
            TenantPolicy {
                admission_budget: Some(2),
                ..TenantPolicy::default()
            },
        );
        registry.register("hr", p_b, TenantPolicy::default());
        let clock = Arc::new(ManualClock::new());
        let mut server = TenantServer::start(&registry, config(2), Arc::clone(&clock) as _);
        let stream: Vec<(u64, RequestSpec)> = (0..4)
            .flat_map(|i| {
                [
                    (fp_a, RequestSpec::single(format!("show order {i}"))),
                    (fp_b, RequestSpec::single("show all employees")),
                ]
            })
            .collect();
        let report = run_closed_loop_tenants(&mut server, &clock, &stream, 4);
        let a = server.tenant_metrics(fp_a).unwrap();
        let b = server.tenant_metrics(fp_b).unwrap();
        (report.signatures(), a, b, server.shutdown())
    };
    let (sigs, a, b, global) = run();
    // Retail offered 4, budget 2: exactly the last two are refused.
    assert_eq!(a.submitted, 4);
    assert_eq!(a.admitted, 2);
    assert_eq!(a.quota_refused, 2);
    assert_eq!(a.shed_full, 0, "quota refusals are not sheds");
    let quota_refusals = sigs
        .iter()
        .filter(|s| s.contains("tenant admission budget exhausted"))
        .count();
    assert_eq!(quota_refusals, 2);
    // The co-resident tenant never notices.
    assert_eq!(b.submitted, 4);
    assert_eq!(b.admitted, 4);
    assert_eq!(b.quota_refused, 0);
    assert_eq!(global.quota_refused, 2);
    // And the whole episode replays byte-identically.
    let (sigs2, a2, b2, global2) = run();
    assert_eq!(sigs, sigs2);
    assert_eq!((a, b, global), (a2, b2, global2));
}

/// An unregistered fingerprint is refused deterministically, in the
/// global scope only — no tenant's books are charged for traffic that
/// belongs to nobody.
#[test]
fn unknown_fingerprints_are_refused_without_tenant_attribution() {
    let (registry, fps) = registry_of(1, TenantPolicy::default());
    let clock = Arc::new(ManualClock::new());
    let mut server = TenantServer::start(&registry, config(1), clock as Arc<dyn Clock>);
    let bogus = fps[0] ^ 0xdead_beef;
    assert_eq!(server.route(bogus, &RequestSpec::single("q")), None);
    server.submit(bogus, &RequestSpec::single("q"));
    let done = server.drain();
    assert_eq!(done.len(), 1);
    match &done[0].disposition {
        Disposition::Refused { reason } => {
            assert!(reason.contains("unknown tenant fingerprint"), "{reason}")
        }
        other => panic!("expected a refusal, got {other:?}"),
    }
    let tenant = server.tenant_metrics(fps[0]).unwrap();
    assert_eq!(tenant.submitted, 0, "nobody's books are charged");
    let global = server.shutdown();
    assert_eq!((global.submitted, global.refused), (1, 1));
}

/// A rung-ceiling policy caps one tenant's ladder without touching its
/// neighbours: the capped tenant is served by a weaker family (pattern
/// answers carry different SQL shapes than hybrid ones only sometimes,
/// so assert through the policy's one observable guarantee — the run
/// is deterministic and the capped tenant still answers).
#[test]
fn rung_ceiling_is_per_tenant() {
    use nlidb_core::interpretation::InterpreterKind;
    let cache = Arc::new(JoinPathCache::new(256));
    let mut registry = TenantRegistry::new();
    let (fp_a, p_a) = tenant_pipeline(&retail_database(7), &cache);
    let (fp_b, p_b) = tenant_pipeline(&all_domains(42)[1], &cache);
    registry.register(
        "retail-keyword",
        p_a,
        TenantPolicy {
            rung_ceiling: InterpreterKind::Keyword,
            ..TenantPolicy::default()
        },
    );
    registry.register("hr", p_b, TenantPolicy::default());
    let clock = Arc::new(ManualClock::new());
    let mut server = TenantServer::start(&registry, config(2), clock as Arc<dyn Clock>);
    // An aggregation question: beyond the keyword family's ceiling.
    let q = RequestSpec::single("how many customers are there");
    server.submit(fp_a, &q);
    server.submit(fp_b, &RequestSpec::single("how many employees are there"));
    let done = server.drain();
    assert_eq!(done.len(), 2);
    // The capped tenant's answer must come from the keyword family —
    // which cannot aggregate — so whatever it returns, it is not the
    // hybrid COUNT the uncapped pipeline produces.
    let uncapped = {
        let clock = Arc::new(ManualClock::new());
        let mut s = Server::start(
            Arc::new(NliPipeline::standard(&retail_database(7))),
            config(1),
            clock as Arc<dyn Clock>,
        );
        s.submit(&q);
        let d = s.drain();
        s.shutdown();
        d[0].signature()
    };
    assert_ne!(
        done[0].signature(),
        uncapped,
        "the rung ceiling visibly changed the capped tenant's answer"
    );
    server.shutdown();
}

/// A cost ceiling caps one tenant's plans without touching its
/// neighbours: the capped tenant's question is refused *before
/// execution* with `cost_refused`, while the co-resident tenant's
/// identical traffic answers normally.
#[test]
fn cost_ceiling_is_per_tenant() {
    let cache = Arc::new(JoinPathCache::new(256));
    let mut registry = TenantRegistry::new();
    let (fp_a, p_a) = tenant_pipeline(&retail_database(7), &cache);
    let (fp_b, p_b) = tenant_pipeline(&all_domains(42)[1], &cache);
    registry.register(
        "retail-capped",
        p_a,
        TenantPolicy {
            cost_ceiling: Some(0),
            ..TenantPolicy::default()
        },
    );
    registry.register("hr", p_b, TenantPolicy::default());
    let clock = Arc::new(ManualClock::new());
    let mut server = TenantServer::start(&registry, config(2), clock as Arc<dyn Clock>);
    server.submit(fp_a, &RequestSpec::single("how many customers are there"));
    server.submit(fp_b, &RequestSpec::single("how many employees are there"));
    let done = server.drain();
    assert_eq!(done.len(), 2);
    match &done[0].disposition {
        Disposition::Refused { reason } => {
            assert!(reason.contains("plan cost"), "{reason}")
        }
        other => panic!("expected a cost refusal, got {other:?}"),
    }
    assert!(
        matches!(done[1].disposition, Disposition::Answered { .. }),
        "the uncapped co-tenant answers normally"
    );
    assert!(done[1].plan_cost.is_some());
    let a = server.tenant_metrics(fp_a).unwrap();
    assert_eq!((a.cost_refused, a.answered), (1, 0));
    let b = server.tenant_metrics(fp_b).unwrap();
    assert_eq!((b.cost_refused, b.answered), (0, 1));
    let global = server.shutdown();
    assert_eq!(global.cost_refused, 1);
}

/// Single-tenant lockstep: a plain [`Server`] is a one-tenant registry
/// under the hood, and its global and tenant-scope counters must agree
/// exactly (the per-tenant breakdown costs nothing and invents
/// nothing).
#[test]
fn single_tenant_global_and_tenant_scopes_agree() {
    let (registry, fps) = registry_of(1, TenantPolicy::default());
    let clock = Arc::new(ManualClock::new());
    let mut server = TenantServer::start(&registry, config(2), clock as Arc<dyn Clock>);
    for i in 0..6 {
        server.submit(
            fps[0],
            &RequestSpec::single(format!("show order {}", i % 3)),
        );
    }
    for _ in 0..2 {
        server.submit(
            fps[0],
            &RequestSpec {
                question: "show customers in Austin".into(),
                session: Some(3),
                deadline: None,
            },
        );
    }
    server.drain();
    let tenant = server.tenant_metrics(fps[0]).unwrap();
    let global = server.shutdown();
    assert_eq!(tenant, global);
}

/// Multi-tenant bookkeeping closes: every global counter is the sum of
/// its per-tenant scopes (no unknown-tenant traffic here), and
/// [`TenantServer::export_metrics`] publishes both the `serve.*`
/// aggregate and a `serve.tenant.<name>.*` breakdown.
#[test]
fn tenant_scopes_sum_to_the_global_scope_and_export_labelled() {
    let (registry, fps) = registry_of(3, TenantPolicy::default());
    let clock = Arc::new(ManualClock::new());
    let mut server = TenantServer::start(&registry, config(2), Arc::clone(&clock) as _);
    let stream: Vec<(u64, RequestSpec)> = fps
        .iter()
        .flat_map(|&fp| (0..5).map(move |i| (fp, RequestSpec::single(format!("show {i}")))))
        .collect();
    run_closed_loop_tenants(&mut server, &clock, &stream, 4);
    let per: Vec<MetricsSnapshot> = fps
        .iter()
        .map(|&fp| server.tenant_metrics(fp).unwrap())
        .collect();
    let global = server.metrics();
    let sum = |f: fn(&MetricsSnapshot) -> u64| per.iter().map(f).sum::<u64>();
    assert_eq!(global.submitted, sum(|m| m.submitted));
    assert_eq!(global.admitted, sum(|m| m.admitted));
    assert_eq!(global.answered, sum(|m| m.answered));
    assert_eq!(global.refused, sum(|m| m.refused));
    assert_eq!(global.interp_misses, sum(|m| m.interp_misses));
    assert_eq!(global.interp_hits, sum(|m| m.interp_hits));
    // Exported breakdown: aggregate plus one labelled family per tenant.
    let reg = MetricsRegistry::new();
    server.export_metrics(&reg);
    let text = reg.report().export_text();
    assert!(text.contains(&format!("counter serve.submitted {}\n", global.submitted)));
    for (i, m) in per.iter().enumerate() {
        let line = format!(
            "counter serve.tenant.{}.submitted {}\n",
            DOMAIN_NAMES[i], m.submitted
        );
        assert!(text.contains(&line), "missing {line:?}");
    }
    server.shutdown();
}
