//! Crash recovery end to end: a worker dies mid-conversation and no
//! dialogue state dies with it. The write-ahead session journal plus
//! bounce/re-admission turn a panic into (deterministic) rerouting —
//! the recovered stream answers exactly like a run that never crashed.
//! The no-spare-worker edge (recovery with nowhere to go) lives in
//! `tests/faults.rs`.

use std::sync::Arc;
use std::time::Duration;

use nlidb_benchdata::{
    derive_slots, request_stream, retail_database, session_turn_ids, sessions_with_min_turns,
    FaultKind, FaultPlan, RequestSpec,
};
use nlidb_core::pipeline::NliPipeline;
use nlidb_serve::{
    fault_plan_hook, run_closed_loop, silence_worker_panics, Clock, Disposition, ManualClock,
    MetricsSnapshot, RetryPolicy, ServeObs, Server, ServerConfig,
};

fn pipeline() -> Arc<NliPipeline> {
    let db = retail_database(7);
    Arc::new(NliPipeline::standard(&db))
}

fn config(workers: usize) -> ServerConfig {
    ServerConfig {
        workers,
        queue_capacity: 256,
        ..ServerConfig::default()
    }
}

/// Three turns whose later answers depend on earlier state — if replay
/// lost anything, "what about Boston" and "how many of those" would
/// answer differently.
const TURNS: [&str; 3] = [
    "show customers in Austin",
    "what about Boston",
    "how many of those are there",
];

fn turn(session: u64, utterance: &str) -> RequestSpec {
    RequestSpec {
        question: utterance.to_string(),
        session: Some(session),
        deadline: None,
    }
}

/// Run the three-turn conversation on a 2-worker server under `plan`
/// (panic on id 1 = the second turn), with optional tracing.
fn three_turn_run(
    plan: FaultPlan,
    obs: Option<ServeObs>,
) -> (Vec<nlidb_serve::Completion>, MetricsSnapshot, Vec<usize>) {
    silence_worker_panics();
    let clock = Arc::new(ManualClock::new());
    let mut server = Server::start_observed(
        pipeline(),
        config(2),
        clock.clone() as Arc<dyn Clock>,
        Some(fault_plan_hook(plan)),
        obs,
    );
    for u in TURNS {
        server.submit(&turn(0, u));
    }
    let done = server.drain();
    let journal_lens = server
        .journal()
        .sessions()
        .iter()
        .map(|&s| server.journal().turn_count(s))
        .collect();
    (done, server.shutdown(), journal_lens)
}

#[test]
fn crashed_workers_sessions_recover_by_journal_replay() {
    // Baseline: the same conversation on a server that never crashes.
    let (clean, clean_m, _) = three_turn_run(FaultPlan::none(), None);
    // Crash: session 0 is affine to worker 0; the panic lands on its
    // second turn, killing worker 0 with one committed turn in the
    // journal and one more turn still queued behind the panic.
    let plan = FaultPlan::none().with(1, FaultKind::WorkerPanic);
    let (done, m, journal_lens) = three_turn_run(plan, None);
    assert_eq!(done.len(), 3, "every admitted turn completes");
    assert!(
        done.iter()
            .all(|c| matches!(c.disposition, Disposition::SessionReply { .. })),
        "zero session-loss refusals"
    );
    // The recovered answers are the never-crashed answers.
    let sigs: Vec<String> = done.iter().map(|c| c.signature()).collect();
    let clean_sigs: Vec<String> = clean.iter().map(|c| c.signature()).collect();
    assert_eq!(sigs, clean_sigs, "recovery must not change a single answer");
    // Placement shows the remap: turn 0 on the original worker, the
    // bounced turns on the survivor.
    assert_eq!(done[0].worker, Some(0));
    assert_eq!(
        done[1].worker,
        Some(1),
        "bounced turn re-served by the survivor"
    );
    assert_eq!(done[2].worker, Some(1));
    // Recovery accounting.
    assert_eq!(m.worker_deaths, 1);
    assert_eq!(
        m.crashed_requests, 2,
        "the panicked turn + the one queued behind"
    );
    assert_eq!(m.readmitted, 2);
    assert_eq!(m.readmit_refused, 0);
    assert_eq!(m.refused, 0);
    assert_eq!(m.sessions_recovered, 1);
    assert_eq!(
        m.turns_replayed, 1,
        "one committed turn replayed on the survivor"
    );
    assert_eq!(
        m.replay_divergence, 0,
        "replay reproduced the journaled digests"
    );
    assert_eq!(
        m.session_turns, clean_m.session_turns,
        "replayed turns are rebuild work, not served turns"
    );
    // The journal holds the whole committed conversation exactly once.
    assert_eq!(journal_lens, vec![3]);
    assert_eq!(m.journal_turns, 3);
}

#[test]
fn recovery_leaves_trace_evidence() {
    let obs = ServeObs::new(16);
    let plan = FaultPlan::none().with(1, FaultKind::WorkerPanic);
    let (_done, m, _) = three_turn_run(plan, Some(obs.clone()));
    let traces = obs.sink.traces();
    assert_eq!(traces.len(), 3, "one trace per request, crash or no crash");
    let by_id = |id: u64| traces.iter().find(|t| t.id == id).expect("trace exists");
    // The untouched first turn carries no recovery evidence.
    let t0 = by_id(0);
    assert_eq!(t0.root().unwrap().attr("redeliveries"), None);
    assert_eq!(t0.spans_named("replay").count(), 0);
    // The panicked turn's trace is owned by the worker that finally
    // served it: root attrs show the bounce, a `replay` span shows the
    // rebuild.
    let t1 = by_id(1);
    let root = t1.root().unwrap();
    assert_eq!(root.attr("worker"), Some("1"));
    assert_eq!(root.attr("redeliveries"), Some("1"));
    assert_eq!(root.attr("bounced_from"), Some("0"));
    let replay = t1
        .spans_named("replay")
        .next()
        .expect("replay span recorded");
    assert_eq!(replay.attr("session"), Some("0"));
    assert_eq!(replay.attr("turns_replayed"), Some("1"));
    assert_eq!(replay.attr("remap_target"), Some("1"));
    assert_eq!(replay.attr("divergence"), Some("0"));
    // The turn behind it was redelivered too, but found the session
    // already rebuilt — no second replay.
    let t2 = by_id(2);
    assert_eq!(t2.root().unwrap().attr("redeliveries"), Some("1"));
    assert_eq!(t2.spans_named("replay").count(), 0);
    // Span evidence reconciles with the counters, E14-style.
    let replayed: u64 = traces.iter().map(|t| t.attr_sum("turns_replayed")).sum();
    assert_eq!(replayed, m.turns_replayed);
    let redelivered: u64 = traces.iter().map(|t| t.attr_sum("redeliveries")).sum();
    assert_eq!(redelivered, m.readmitted);
}

#[test]
fn dead_worker_is_never_offered_new_work() {
    silence_worker_panics();
    let clock = Arc::new(ManualClock::new());
    let plan = FaultPlan::none().with(1, FaultKind::WorkerPanic);
    let mut server = Server::start_with_hook(
        pipeline(),
        config(2),
        clock.clone() as Arc<dyn Clock>,
        Some(fault_plan_hook(plan)),
    );
    for u in TURNS {
        server.submit(&turn(0, u));
    }
    server.drain(); // reveals the death of worker 0
                    // New work whose content- or session-hash lands on the corpse is
                    // rerouted at admission; nothing is refused, nothing hangs.
    server.submit(&turn(2, "show orders")); // session 2 % 2 == worker 0
    server.submit(&RequestSpec::single("how many customers are there"));
    server.submit(&RequestSpec::single("how many customers are there"));
    let done = server.drain();
    assert_eq!(done.len(), 3);
    for c in &done {
        assert_eq!(c.worker, Some(1), "only the survivor serves new work");
        assert!(
            !matches!(c.disposition, Disposition::Refused { .. }),
            "rerouted work is served, not refused: {:?}",
            c.disposition
        );
    }
    let m = server.shutdown();
    assert_eq!(m.worker_deaths, 1);
    assert_eq!(m.readmit_refused, 0);
}

#[test]
fn stream_recovery_matches_a_never_crashed_run() {
    // The acceptance regime: a seeded mixed stream loses a worker on
    // the middle turn of a multi-turn conversation. Previously this
    // surfaced as refusals for the crashed turn and everything queued
    // behind it; now the stream must be answer-identical to a clean run.
    silence_worker_panics();
    let db = retail_database(7);
    let slots = derive_slots(&db);
    let stream = request_stream(&slots, 42, 80, 0.25);
    let victims = sessions_with_min_turns(&stream, 3);
    assert!(
        !victims.is_empty(),
        "stream must hold a 3-turn conversation"
    );
    let mid_turn = session_turn_ids(&stream, victims[0])[1];
    let run = |plan: FaultPlan| {
        let p = Arc::new(NliPipeline::standard(&db));
        let clock = Arc::new(ManualClock::new());
        let mut server = Server::start_with_hook(
            p,
            config(2),
            clock.clone() as Arc<dyn Clock>,
            Some(fault_plan_hook(plan)),
        );
        let report = run_closed_loop(&mut server, &clock, &stream, 16);
        (report, server.shutdown())
    };
    let (clean, clean_m) = run(FaultPlan::none());
    let plan = || FaultPlan::none().with(mid_turn, FaultKind::WorkerPanic);
    let (crashed, m) = run(plan());
    assert_eq!(crashed.completions.len(), 80);
    // Exactly-once delivery: every admitted id appears once.
    let ids: Vec<u64> = crashed.completions.iter().map(|c| c.id).collect();
    let mut deduped = ids.clone();
    deduped.dedup();
    assert_eq!(ids.len(), deduped.len(), "no double delivery");
    assert_eq!(
        crashed.signatures(),
        clean.signatures(),
        "the crashed run answers exactly like the clean run"
    );
    assert_eq!(m.refused, clean_m.refused, "zero session-loss refusals");
    assert!(m.worker_deaths >= 1 && m.sessions_recovered >= 1);
    assert!(m.turns_replayed >= 1);
    assert_eq!(m.replay_divergence, 0);
    // And the whole recovery replays bit-identically.
    let (crashed_b, m_b) = run(plan());
    assert_eq!(crashed.signatures(), crashed_b.signatures());
    assert_eq!(m, m_b);
}

#[test]
fn redelivery_budget_bounds_worker_chasing() {
    // Two workers die in the same drain round; the job bounced off the
    // first chases into the second corpse and — with a 1-retry budget —
    // is refused while a live worker still exists, proving the budget
    // (not worker exhaustion) is what stopped it.
    silence_worker_panics();
    let clock = Arc::new(ManualClock::new());
    let plan = FaultPlan::none()
        .with(0, FaultKind::WorkerPanic) // session 0's first turn kills worker 0
        .with(1, FaultKind::WorkerPanic); // session 1's first turn kills worker 1
    let mut server = Server::start_with_hook(
        pipeline(),
        ServerConfig {
            workers: 3,
            retry: RetryPolicy {
                max_retries: 1,
                ..RetryPolicy::default()
            },
            ..config(3)
        },
        clock.clone() as Arc<dyn Clock>,
        Some(fault_plan_hook(plan)),
    );
    server.submit(&turn(0, "show customers in Austin"));
    server.submit(&turn(1, "show orders"));
    let done = server.drain();
    assert_eq!(done.len(), 2);
    // id 0: bounced off worker 0, readmitted to worker 1, bounced off
    // its corpse too — second bounce exceeds the budget of 1.
    match &done[0].disposition {
        Disposition::Refused { reason } => assert!(
            reason.contains("redelivery budget exhausted after 2 bounces"),
            "unexpected reason: {reason}"
        ),
        other => panic!("expected a budget refusal, got {other:?}"),
    }
    // id 1: bounced off worker 1 once, served by the survivor.
    assert!(matches!(
        done[1].disposition,
        Disposition::SessionReply { .. }
    ));
    assert_eq!(done[1].worker, Some(2));
    let m = server.shutdown();
    assert_eq!(m.worker_deaths, 2);
    assert_eq!(m.readmitted, 2, "each job got one redelivery");
    assert_eq!(m.readmit_refused, 1, "then the budget cut the chase");
    // done[1] being served proves worker 2 outlived the episode: the
    // refusal was the budget, not pool exhaustion.
}

#[test]
fn readmission_rechecks_deadlines_against_the_clock() {
    // A deadline that was satisfiable at admission may be hopeless by
    // the time its worker dies. Re-admission re-checks it against the
    // manual clock instead of queueing doomed work on a survivor.
    silence_worker_panics();
    let clock = Arc::new(ManualClock::new());
    let plan = FaultPlan::none().with(0, FaultKind::WorkerPanic);
    let mut server = Server::start_with_hook(
        pipeline(),
        config(2),
        clock.clone() as Arc<dyn Clock>,
        Some(fault_plan_hook(plan)),
    );
    for u in &TURNS[..2] {
        server.submit(&RequestSpec {
            question: u.to_string(),
            session: Some(0),
            deadline: Some(10), // loose at tick 0 (projected ≤ 2)
        });
    }
    clock.advance(50); // the crash is discovered far past the deadline
    let done = server.drain();
    assert_eq!(done.len(), 2);
    for c in &done {
        assert!(
            matches!(c.disposition, Disposition::DeadlineExceeded),
            "doomed re-admissions are shed: {:?}",
            c.disposition
        );
    }
    let m = server.shutdown();
    assert_eq!(m.worker_deaths, 1);
    assert_eq!(m.readmitted, 0);
    assert_eq!(m.readmit_refused, 2);
    assert_eq!(m.shed_deadline, 2);
}

#[test]
fn shutdown_concurrent_with_worker_panic_neither_hangs_nor_leaks() {
    // The race the drain rounds must survive: `shutdown()` lands while
    // the panic is still in flight. The corpse bounces its queue into a
    // channel nobody will drain; nothing may hang, double-deliver, or
    // poison the join.
    silence_worker_panics();
    let clock = Arc::new(ManualClock::new());
    let plan = FaultPlan::none().with(1, FaultKind::WorkerPanic);
    let mut server = Server::start_with_hook(
        pipeline(),
        config(2),
        clock.clone() as Arc<dyn Clock>,
        Some(fault_plan_hook(plan)),
    );
    for u in TURNS {
        server.submit(&turn(0, u));
    }
    // No drain: shutdown races the worker processing (and panicking on)
    // the queue. A watchdog bounds the whole experiment — a hang is a
    // failure, not a stuck CI job. (Wall-clock is fine in tests; the
    // library itself never reads it.)
    let (tx, rx) = std::sync::mpsc::channel();
    std::thread::spawn(move || {
        let m = server.shutdown();
        let _ = tx.send(m);
    });
    let m = rx
        .recv_timeout(Duration::from_secs(30))
        .expect("shutdown must not hang on a panicking worker");
    assert_eq!(m.worker_deaths, 1);
    assert!(
        m.crashed_requests >= 1,
        "the bounce path ran during shutdown"
    );
}

#[test]
fn two_tenants_on_one_dead_worker_both_recover_without_leakage() {
    // Journal namespacing under crash: one worker serves conversations
    // for TWO tenants; it dies mid-stream; both tenants' sessions must
    // be rebuilt from their own journals with zero divergence and zero
    // cross-tenant traffic. Routing math pins both sessions to worker
    // 0 of 2: tenant 0 carries salt 0, so session 4 → worker 0;
    // tenant 1's salt (the odd golden-ratio constant) flips the low
    // bit, so session 7 → worker 0 too.
    use nlidb_benchdata::all_domains;
    use nlidb_ontology::JoinPathCache;
    use nlidb_serve::{TenantPolicy, TenantRegistry, TenantServer};

    silence_worker_panics();
    const HR_TURNS: [&str; 3] = [
        "show all employees",
        "how many employees are there",
        "show all departments",
    ];
    let run = |plan: FaultPlan| {
        let cache = Arc::new(JoinPathCache::new(256));
        let mut registry = TenantRegistry::new();
        let (fp_retail, p_retail) = nlidb_serve::tenant_pipeline(&retail_database(7), &cache);
        let (fp_hr, p_hr) = nlidb_serve::tenant_pipeline(&all_domains(42)[1], &cache);
        registry.register("retail", p_retail, TenantPolicy::default());
        registry.register("hr", p_hr, TenantPolicy::default());
        let clock = Arc::new(ManualClock::new());
        let mut server = TenantServer::start_with_hook(
            &registry,
            config(2),
            clock as Arc<dyn Clock>,
            Some(fault_plan_hook(plan)),
        );
        // Interleaved: ids 0,2,4 are retail session 4; ids 1,3,5 are
        // hr session 7. Both route to worker 0.
        for i in 0..3 {
            assert_eq!(server.route(fp_retail, &turn(4, TURNS[i])), Some(0));
            assert_eq!(server.route(fp_hr, &turn(7, HR_TURNS[i])), Some(0));
            server.submit(fp_retail, &turn(4, TURNS[i]));
            server.submit(fp_hr, &turn(7, HR_TURNS[i]));
        }
        let done = server.drain();
        let retail_m = server.tenant_metrics(fp_retail).unwrap();
        let hr_m = server.tenant_metrics(fp_hr).unwrap();
        let retail_j: Vec<(u64, usize)> = {
            let j = server.journal(fp_retail).unwrap();
            j.sessions().iter().map(|&s| (s, j.turn_count(s))).collect()
        };
        let hr_j: Vec<(u64, usize)> = {
            let j = server.journal(fp_hr).unwrap();
            j.sessions().iter().map(|&s| (s, j.turn_count(s))).collect()
        };
        let sigs: Vec<String> = done.iter().map(|c| c.signature()).collect();
        (sigs, retail_m, hr_m, retail_j, hr_j, server.shutdown())
    };
    let (clean_sigs, ..) = run(FaultPlan::none());
    // id 2 = retail's second turn: the panic kills worker 0 with one
    // committed turn in EACH tenant's journal and ids 3..5 queued
    // behind the corpse.
    let plan = FaultPlan::none().with(2, FaultKind::WorkerPanic);
    let (sigs, retail_m, hr_m, retail_j, hr_j, m) = run(plan);
    assert_eq!(
        sigs, clean_sigs,
        "both tenants answer exactly like the never-crashed run"
    );
    // Both tenants' sessions were rebuilt, each from its own journal.
    assert_eq!(m.worker_deaths, 1);
    assert_eq!(m.sessions_recovered, 2, "one session per tenant");
    assert_eq!(m.replay_divergence, 0);
    assert_eq!(retail_m.sessions_recovered, 1);
    assert_eq!(hr_m.sessions_recovered, 1);
    assert_eq!(retail_m.worker_deaths + hr_m.worker_deaths, 1);
    assert_eq!(retail_m.replay_divergence, 0);
    assert_eq!(hr_m.replay_divergence, 0);
    // Journals are fully namespaced: each holds exactly its own
    // conversation, session ids never cross tenants.
    assert_eq!(retail_j, vec![(4, 3)]);
    assert_eq!(hr_j, vec![(7, 3)]);
    assert_eq!(retail_m.journal_turns, 3);
    assert_eq!(hr_m.journal_turns, 3);
    assert_eq!(m.journal_turns, 6);
}

#[test]
fn approved_audits_survive_crash_recovery_with_identical_digests() {
    // Approved mode under crash: a worker dies on a standalone question
    // whose top candidate is cost-vetoed (the approval rescues a
    // cheaper reading). The bounced request re-runs the whole
    // Ask → Plan → Approve pass on the survivor, and the audit trail
    // must re-prove the same decision — same approved SQL, same
    // journaled rejections, same provenance digest — as a run that
    // never crashed.
    use nlidb_core::InterpreterKind;
    use nlidb_engine::{explain, ColumnType, Database, TableSchema, Value};
    use nlidb_ontology::JoinPathCache;
    use nlidb_serve::{TenantPolicy, TenantRegistry, TenantServer};

    // The shared-city clinic: "show visits in Austin" reads two ways
    // (via patients or via doctors), and the 500-row doctor side prices
    // the readings apart (the cost model vectorizes at 64-row
    // granularity).
    fn clinic() -> Database {
        let mut db = Database::new("clinic");
        db.create_table(
            TableSchema::new("patients")
                .column("id", ColumnType::Int)
                .column("city", ColumnType::Text)
                .primary_key("id"),
        )
        .unwrap();
        db.create_table(
            TableSchema::new("doctors")
                .column("id", ColumnType::Int)
                .column("city", ColumnType::Text)
                .primary_key("id"),
        )
        .unwrap();
        db.create_table(
            TableSchema::new("visits")
                .column("id", ColumnType::Int)
                .column("patient_id", ColumnType::Int)
                .column("doctor_id", ColumnType::Int)
                .primary_key("id")
                .foreign_key("patient_id", "patients", "id")
                .foreign_key("doctor_id", "doctors", "id"),
        )
        .unwrap();
        for i in 0..2i64 {
            db.insert("patients", vec![Value::Int(i), Value::from("Austin")])
                .unwrap();
        }
        for i in 0..500i64 {
            db.insert("doctors", vec![Value::Int(i), Value::from("Austin")])
                .unwrap();
        }
        for i in 0..4i64 {
            db.insert(
                "visits",
                vec![Value::Int(i), Value::Int(i % 2), Value::Int(i % 500)],
            )
            .unwrap();
        }
        db
    }

    silence_worker_panics();
    const QUESTIONS: [&str; 3] = [
        "show visits in Austin",
        "show all patients",
        "how many patients are there",
    ];
    let run = |plan: FaultPlan| {
        let cache = Arc::new(JoinPathCache::new(256));
        let (fp, p) = nlidb_serve::tenant_pipeline(&clinic(), &cache);
        // Veto the expensive reading but admit the cheaper one.
        let cands = p.candidates(QUESTIONS[0], InterpreterKind::Entity);
        let costs: Vec<u64> = cands
            .iter()
            .map(|c| explain(p.database(), &c.sql).est_cost)
            .collect();
        let ceiling = costs.iter().skip(1).min().copied().unwrap();
        assert!(costs[0] > ceiling, "top candidate must be the pricey one");
        let mut registry = TenantRegistry::new();
        registry.register(
            "clinic",
            p,
            TenantPolicy {
                rung_ceiling: InterpreterKind::Entity,
                cost_ceiling: Some(ceiling),
                ..TenantPolicy::default()
            },
        );
        let clock = Arc::new(ManualClock::new());
        let mut server = TenantServer::start_with_hook(
            &registry,
            ServerConfig {
                approved_mode: true,
                ..config(2)
            },
            clock as Arc<dyn Clock>,
            Some(fault_plan_hook(plan)),
        );
        for q in QUESTIONS {
            server.submit(fp, &RequestSpec::single(q));
        }
        let done = server.drain();
        let sigs: Vec<String> = done.iter().map(|c| c.signature()).collect();
        let audits: Vec<(u64, Vec<nlidb_serve::AuditRecord>)> = {
            let j = server.journal(fp).unwrap();
            j.audited_requests()
                .into_iter()
                .map(|id| (id, j.audits(id)))
                .collect()
        };
        (sigs, audits, server.shutdown())
    };
    let (clean_sigs, clean_audits, clean_m) = run(FaultPlan::none());
    // Every question answers and is audited exactly once in the clean
    // run; the rescued question journals its cost rejection.
    assert_eq!(clean_audits.len(), 3);
    assert!(clean_audits.iter().all(|(_, a)| a.len() == 1));
    let rescued = &clean_audits[0].1[0];
    assert_eq!(rescued.question, QUESTIONS[0]);
    assert!(rescued.chosen_rank > 0, "a cheaper reading won");
    assert!(
        rescued
            .rejections
            .iter()
            .any(|r| r.contains("cost_exceeded")),
        "the vetoed reading's rejection is journaled: {:?}",
        rescued.rejections
    );
    assert_ne!(rescued.provenance_digest, 0);
    assert!(clean_m.candidates_rejected >= 1);
    // Crash on the rescued question itself: the corpse dies before its
    // approval commits, the survivor re-runs it from scratch.
    let plan = FaultPlan::none().with(0, FaultKind::WorkerPanic);
    let (sigs, audits, m) = run(plan);
    assert_eq!(sigs, clean_sigs, "recovery must not change an answer");
    assert_eq!(
        audits, clean_audits,
        "the recovered approval re-proves the same candidate: same SQL, \
         same rejections, same provenance digest"
    );
    assert_eq!(m.worker_deaths, 1);
    assert!(m.readmitted >= 1);
    assert_eq!(m.candidates_rejected, clean_m.candidates_rejected);
}

#[test]
fn panic_racing_drain_delivers_every_outcome_exactly_once() {
    // Drain invoked immediately after submitting a panicking workload —
    // the recovery rounds run concurrently with the panic itself, and
    // must still hand back exactly one outcome per admitted id.
    silence_worker_panics();
    for trial in 0..3u64 {
        let clock = Arc::new(ManualClock::new());
        let plan = FaultPlan::none().with(trial, FaultKind::WorkerPanic);
        let mut server = Server::start_with_hook(
            pipeline(),
            config(2),
            clock.clone() as Arc<dyn Clock>,
            Some(fault_plan_hook(plan)),
        );
        for u in TURNS {
            server.submit(&turn(0, u));
        }
        for u in TURNS {
            server.submit(&turn(1, u));
        }
        let done = server.drain();
        let ids: Vec<u64> = done.iter().map(|c| c.id).collect();
        assert_eq!(
            ids,
            vec![0, 1, 2, 3, 4, 5],
            "trial {trial}: exactly once, in order"
        );
        assert!(
            done.iter()
                .all(|c| matches!(c.disposition, Disposition::SessionReply { .. })),
            "trial {trial}: both conversations fully served"
        );
        let m = server.shutdown();
        assert_eq!(m.worker_deaths, 1, "trial {trial}");
    }
}
