//! Property tests for the serving LRU cache: the capacity bound holds
//! under arbitrary operation sequences, get-after-put is coherent, and
//! the slab never leaks slots.

use nlidb_serve::LruCache;
use proptest::prelude::*;
use std::collections::HashMap;

proptest! {
    /// Whatever the operation mix, `len() ≤ capacity` and every `get`
    /// agrees with a shadow model that tracks the *live* key set.
    #[test]
    fn capacity_invariant_and_model_agreement(
        capacity in 1usize..9,
        ops in proptest::collection::vec((0u8..16, 0u32..64), 0..200),
    ) {
        let mut cache: LruCache<u8, u32> = LruCache::new(capacity);
        // Shadow model: the values currently stored, ignoring recency.
        let mut model: HashMap<u8, u32> = HashMap::new();
        for (key, value) in ops {
            if value % 3 == 0 {
                // get: a hit must return exactly the model's value; a
                // miss must be a key the model also lacks *or* one the
                // cache evicted (model is pruned on eviction below, so
                // they agree exactly).
                let got = cache.get(&key).copied();
                prop_assert_eq!(got, model.get(&key).copied());
            } else {
                let evicted = cache.put(key, value);
                model.insert(key, value);
                if let Some((ek, _)) = evicted {
                    prop_assert!(ek != key, "never evicts the key just inserted");
                    model.remove(&ek);
                }
            }
            prop_assert!(cache.len() <= capacity, "len {} > capacity {}", cache.len(), capacity);
            prop_assert_eq!(cache.len(), model.len());
        }
    }

    /// A key written and immediately read always returns the written
    /// value, at any capacity ≥ 1.
    #[test]
    fn get_after_put_always_hits(
        capacity in 1usize..6,
        warm in proptest::collection::vec((0u8..32, 0u32..1000), 0..40),
        key in 0u8..32,
        value in 0u32..1000,
    ) {
        let mut cache: LruCache<u8, u32> = LruCache::new(capacity);
        for (k, v) in warm {
            cache.put(k, v);
        }
        cache.put(key, value);
        prop_assert_eq!(cache.get(&key), Some(&value));
    }

    /// Updating a key that is already present in a cache at full
    /// capacity is a value overwrite, never an eviction: no resident
    /// key is displaced and nothing is returned as evicted.
    #[test]
    fn put_existing_key_at_capacity_never_evicts(
        capacity in 1usize..8,
        target in 0usize..8,
        new_value in 1000u32..2000,
    ) {
        let target = target % capacity;
        let mut cache: LruCache<usize, u32> = LruCache::new(capacity);
        for k in 0..capacity {
            cache.put(k, k as u32);
        }
        prop_assert_eq!(cache.len(), capacity, "cache is full");
        let evicted = cache.put(target, new_value);
        prop_assert!(evicted.is_none(), "overwrite must not evict: {evicted:?}");
        prop_assert_eq!(cache.len(), capacity);
        prop_assert_eq!(cache.get(&target), Some(&new_value));
        for k in 0..capacity {
            prop_assert!(cache.peek(&k).is_some(), "key {k} was displaced");
        }
    }

    /// Recency order: filling a cache to capacity and touching one key
    /// protects it from the next eviction.
    #[test]
    fn touched_key_survives_next_eviction(
        capacity in 2usize..6,
        touch in 0usize..6,
    ) {
        let touch = touch % capacity;
        let mut cache: LruCache<usize, usize> = LruCache::new(capacity);
        for k in 0..capacity {
            cache.put(k, k);
        }
        cache.get(&touch);
        cache.put(capacity, capacity); // forces one eviction
        prop_assert!(cache.peek(&touch).is_some(), "recently touched key evicted");
    }
}
