//! Serving equivalence: the semantic outcome stream of a concurrent
//! server must be identical to a serial one — same seeded workload,
//! 1 worker vs N workers, caches hot or disabled, join-path cache on
//! or off. This is the tentpole invariant experiment E12 reports; the
//! test here is the fast gate.

use std::sync::Arc;

use nlidb_benchdata::{derive_slots, request_stream, retail_database};
use nlidb_core::pipeline::{NliPipeline, SchemaContext};
use nlidb_ontology::JoinPathCache;
use nlidb_serve::{run_closed_loop, Clock, ManualClock, Server, ServerConfig};

/// Run one workload through a fresh server and return the signature
/// stream plus (interp hits, interp misses).
fn serve_once(
    workers: usize,
    interp_cache: usize,
    join_cache: bool,
    n: usize,
    session_share: f64,
) -> (Vec<String>, u64, u64) {
    let db = retail_database(7);
    let slots = derive_slots(&db);
    let mut ctx = SchemaContext::build(&db);
    if join_cache {
        ctx.graph = ctx
            .graph
            .clone()
            .with_cache(Arc::new(JoinPathCache::new(64)));
    }
    let pipeline = Arc::new(NliPipeline::with_context(&db, ctx));
    let stream = request_stream(&slots, 42, n, session_share);
    let clock = Arc::new(ManualClock::new());
    let mut server = Server::start(
        pipeline,
        ServerConfig {
            workers,
            queue_capacity: n, // no shedding: equivalence runs admit everything
            interp_cache,
            service_estimate: 1,
            ..ServerConfig::default()
        },
        clock.clone() as Arc<dyn Clock>,
    );
    let report = run_closed_loop(&mut server, &clock, &stream, 16);
    let m = server.shutdown();
    assert_eq!(report.completions.len(), n, "every request completes");
    (report.signatures(), m.interp_hits, m.interp_misses)
}

#[test]
fn concurrent_equals_serial_across_worker_counts() {
    let (serial, _, _) = serve_once(1, 128, true, 80, 0.25);
    for workers in [2, 4] {
        let (concurrent, _, _) = serve_once(workers, 128, true, 80, 0.25);
        assert_eq!(
            serial, concurrent,
            "{workers}-worker run diverged from serial"
        );
    }
}

#[test]
fn caches_do_not_change_answers() {
    let (cached, hits, _) = serve_once(2, 128, true, 80, 0.0);
    let (uncached, no_hits, no_misses) = serve_once(2, 0, false, 80, 0.0);
    assert!(hits > 0, "hot workload must actually hit the cache");
    assert_eq!(no_hits, 0, "disabled cache can never hit");
    assert_eq!(
        no_misses, 80,
        "lookups are counted even with the cache disabled"
    );
    assert_eq!(cached, uncached, "cache changed a visible answer");
}

#[test]
fn repeated_runs_are_bitwise_reproducible() {
    let a = serve_once(4, 64, true, 60, 0.3);
    let b = serve_once(4, 64, true, 60, 0.3);
    assert_eq!(a, b, "same seed, same everything");
}
