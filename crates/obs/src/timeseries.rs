//! Windowed time series over logical ticks.
//!
//! Everything else in this crate is *cumulative*: a [`Counter`] or
//! [`SketchHistogram`](crate::SketchHistogram) answers "what happened
//! since boot", never "what is happening now". This module adds the
//! time dimension without giving up determinism or bounded memory:
//!
//! * Time is the same logical tick the rest of the workspace uses —
//!   a [`WindowedCounter`] is fed `(tick, n)` pairs and maps each tick
//!   into a fixed-width window `tick / width`. No wall clock exists.
//! * Retention is a bounded ring of the most recent `capacity`
//!   windows. Counts that rotate out of the ring are folded into an
//!   `evicted` total, so the reconciliation invariant
//!   `sum(retained windows) + evicted == total` holds *exactly* at all
//!   times — experiment E21 asserts it against the serving counters.
//! * Rendering is canonical: [`WindowedScope::render_text`] and
//!   [`WindowedScope::render_jsonl`] emit series in sorted name order
//!   over one shared window range, so two identical runs render
//!   byte-identical window matrices.
//!
//! All arithmetic is saturating integer math (rates are reported in
//! milli-units per tick) — no floats feed any rendered byte.

use std::collections::BTreeMap;

use crate::metrics::{sketch_bucket, sketch_percentile_of, SKETCH_BUCKETS};

/// A counter bucketed into fixed-width logical-tick windows, retained
/// in a bounded ring.
///
/// Observations older than the retained range (possible only if the
/// caller feeds ticks out of order across more than `capacity`
/// windows) are folded straight into the evicted total so nothing is
/// ever silently dropped.
#[derive(Debug, Clone)]
pub struct WindowedCounter {
    width: u64,
    /// Ring slot for window `w` is `w % capacity`; only windows in
    /// `(head - capacity, head]` are live.
    ring: Vec<u64>,
    /// Newest window index that has been observed (valid once
    /// `initialized`).
    head: u64,
    initialized: bool,
    evicted: u64,
    total: u64,
}

impl WindowedCounter {
    /// A new series with `width` ticks per window retaining the most
    /// recent `capacity` windows. Panics if either is zero.
    pub fn new(width: u64, capacity: usize) -> WindowedCounter {
        assert!(width > 0, "window width must be positive");
        assert!(capacity > 0, "window capacity must be positive");
        WindowedCounter {
            width,
            ring: vec![0; capacity],
            head: 0,
            initialized: false,
            evicted: 0,
            total: 0,
        }
    }

    /// Ticks per window.
    pub fn width(&self) -> u64 {
        self.width
    }

    /// Number of windows the ring retains.
    pub fn capacity(&self) -> usize {
        self.ring.len()
    }

    /// The window index `tick` falls into.
    pub fn window_of(&self, tick: u64) -> u64 {
        tick / self.width
    }

    /// Record `n` events at `tick` (saturating).
    pub fn record(&mut self, tick: u64, n: u64) {
        let w = self.window_of(tick);
        self.advance_to(w);
        self.total = self.total.saturating_add(n);
        let oldest = self.oldest();
        if w < oldest {
            // Out-of-order past the ring: account it, don't drop it.
            self.evicted = self.evicted.saturating_add(n);
        } else {
            let slot = (w % self.ring.len() as u64) as usize;
            self.ring[slot] = self.ring[slot].saturating_add(n);
        }
    }

    /// Advance the ring so `window` is retained (no-op if it is not
    /// newer than the head). Windows rotating out fold into `evicted`.
    pub fn advance_to(&mut self, window: u64) {
        if !self.initialized {
            self.head = window;
            self.initialized = true;
            return;
        }
        if window <= self.head {
            return;
        }
        let cap = self.ring.len() as u64;
        let steps = window - self.head;
        if steps >= cap {
            // Every retained window rotates out.
            for slot in &mut self.ring {
                self.evicted = self.evicted.saturating_add(*slot);
                *slot = 0;
            }
        } else {
            for w in (self.head + 1)..=window {
                let slot = (w % cap) as usize;
                self.evicted = self.evicted.saturating_add(self.ring[slot]);
                self.ring[slot] = 0;
            }
        }
        self.head = window;
    }

    /// Oldest retained window index (0 before any observation).
    pub fn oldest(&self) -> u64 {
        if !self.initialized {
            return 0;
        }
        let span = self.ring.len() as u64 - 1;
        self.head.saturating_sub(span)
    }

    /// Newest retained window index (0 before any observation).
    pub fn head(&self) -> u64 {
        if self.initialized {
            self.head
        } else {
            0
        }
    }

    /// Whether any observation has been recorded.
    pub fn is_empty(&self) -> bool {
        !self.initialized
    }

    /// The count recorded in `window`, 0 outside the retained range.
    pub fn delta(&self, window: u64) -> u64 {
        if !self.initialized || window > self.head || window < self.oldest() {
            return 0;
        }
        self.ring[(window % self.ring.len() as u64) as usize]
    }

    /// Sum of the counts recorded over the last `k` retained windows
    /// ending at the head (fewer if the series is younger than `k`).
    pub fn sum_last(&self, k: u64) -> u64 {
        if !self.initialized || k == 0 {
            return 0;
        }
        let from = self.head.saturating_sub(k - 1).max(self.oldest());
        (from..=self.head).map(|w| self.delta(w)).sum()
    }

    /// Events per tick in `window`, in milli-units
    /// (`delta * 1000 / width`, integer).
    pub fn rate_milli(&self, window: u64) -> u64 {
        self.delta(window).saturating_mul(1000) / self.width
    }

    /// Lifetime total (saturating), including evicted windows.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Total folded out of the ring by eviction.
    pub fn evicted(&self) -> u64 {
        self.evicted
    }

    /// Sum over the retained ring. By construction
    /// `retained_sum() + evicted() == total()` exactly (modulo
    /// saturation at `u64::MAX`).
    pub fn retained_sum(&self) -> u64 {
        let mut sum = 0u64;
        for &slot in &self.ring {
            sum = sum.saturating_add(slot);
        }
        sum
    }

    /// Retained `(window, count)` pairs, oldest first.
    pub fn windows(&self) -> Vec<(u64, u64)> {
        if !self.initialized {
            return Vec::new();
        }
        (self.oldest()..=self.head)
            .map(|w| (w, self.delta(w)))
            .collect()
    }

    /// Fold `other` into `self`, window by window. Panics if the
    /// widths differ (the series would not share a time base).
    /// Windows of `other` older than the merged ring fold into
    /// `evicted`, so reconciliation still holds after a merge.
    pub fn merge(&mut self, other: &WindowedCounter) {
        assert_eq!(self.width, other.width, "windowed merge: width mismatch");
        self.evicted = self.evicted.saturating_add(other.evicted);
        // `record` re-adds to total, so splice totals manually: the
        // retained windows are replayed below, evicted already folded.
        for (w, n) in other.windows() {
            if n == 0 {
                continue;
            }
            self.advance_to(w);
            if w < self.oldest() {
                self.evicted = self.evicted.saturating_add(n);
            } else {
                let slot = (w % self.ring.len() as u64) as usize;
                self.ring[slot] = self.ring[slot].saturating_add(n);
            }
        }
        self.total = self.total.saturating_add(other.total);
    }
}

/// Per-window sketch cells: the plain-integer core of a
/// [`SketchHistogram`](crate::SketchHistogram) (no atomics — a
/// windowed series is owned by one writer).
#[derive(Debug, Clone)]
struct SketchCells {
    buckets: [u64; SKETCH_BUCKETS],
    count: u64,
    sum: u64,
}

impl SketchCells {
    fn new() -> SketchCells {
        SketchCells {
            buckets: [0; SKETCH_BUCKETS],
            count: 0,
            sum: 0,
        }
    }

    fn observe(&mut self, value: u64) {
        self.buckets[sketch_bucket(value)] = self.buckets[sketch_bucket(value)].saturating_add(1);
        self.count = self.count.saturating_add(1);
        self.sum = self.sum.saturating_add(value);
    }

    fn fold_into(&self, other: &mut SketchCells) {
        for (mine, theirs) in other.buckets.iter_mut().zip(&self.buckets) {
            *mine = mine.saturating_add(*theirs);
        }
        other.count = other.count.saturating_add(self.count);
        other.sum = other.sum.saturating_add(self.sum);
    }

    fn clear(&mut self) {
        self.buckets = [0; SKETCH_BUCKETS];
        self.count = 0;
        self.sum = 0;
    }
}

/// A sketch histogram bucketed into fixed-width logical-tick windows:
/// per-window log₂ value buckets in a bounded ring, with windows that
/// rotate out folded into an evicted sketch so lifetime count/sum
/// reconcile exactly.
#[derive(Debug, Clone)]
pub struct WindowedHistogram {
    width: u64,
    ring: Vec<SketchCells>,
    head: u64,
    initialized: bool,
    evicted: SketchCells,
}

impl WindowedHistogram {
    /// A new series with `width` ticks per window retaining the most
    /// recent `capacity` windows. Panics if either is zero.
    pub fn new(width: u64, capacity: usize) -> WindowedHistogram {
        assert!(width > 0, "window width must be positive");
        assert!(capacity > 0, "window capacity must be positive");
        WindowedHistogram {
            width,
            ring: vec![SketchCells::new(); capacity],
            head: 0,
            initialized: false,
            evicted: SketchCells::new(),
        }
    }

    /// Ticks per window.
    pub fn width(&self) -> u64 {
        self.width
    }

    /// The window index `tick` falls into.
    pub fn window_of(&self, tick: u64) -> u64 {
        tick / self.width
    }

    /// Record one observation of `value` at `tick`.
    pub fn record(&mut self, tick: u64, value: u64) {
        let w = self.window_of(tick);
        self.advance_to(w);
        if w < self.oldest() {
            self.evicted.observe(value);
        } else {
            let slot = (w % self.ring.len() as u64) as usize;
            self.ring[slot].observe(value);
        }
    }

    fn advance_to(&mut self, window: u64) {
        if !self.initialized {
            self.head = window;
            self.initialized = true;
            return;
        }
        if window <= self.head {
            return;
        }
        let cap = self.ring.len() as u64;
        let steps = window - self.head;
        if steps >= cap {
            for slot in &mut self.ring {
                slot.fold_into(&mut self.evicted);
                slot.clear();
            }
        } else {
            for w in (self.head + 1)..=window {
                let slot = (w % cap) as usize;
                self.ring[slot].fold_into(&mut self.evicted);
                self.ring[slot].clear();
            }
        }
        self.head = window;
    }

    /// Oldest retained window index (0 before any observation).
    pub fn oldest(&self) -> u64 {
        if !self.initialized {
            return 0;
        }
        self.head.saturating_sub(self.ring.len() as u64 - 1)
    }

    /// Newest retained window index (0 before any observation).
    pub fn head(&self) -> u64 {
        if self.initialized {
            self.head
        } else {
            0
        }
    }

    /// Whether any observation has been recorded.
    pub fn is_empty(&self) -> bool {
        !self.initialized
    }

    fn cells(&self, window: u64) -> Option<&SketchCells> {
        if !self.initialized || window > self.head || window < self.oldest() {
            return None;
        }
        Some(&self.ring[(window % self.ring.len() as u64) as usize])
    }

    /// Observation count in `window` (0 outside the retained range).
    pub fn count_in(&self, window: u64) -> u64 {
        self.cells(window).map_or(0, |c| c.count)
    }

    /// Saturating value sum in `window` (0 outside the retained range).
    pub fn sum_in(&self, window: u64) -> u64 {
        self.cells(window).map_or(0, |c| c.sum)
    }

    /// Bucket-resolution nearest-rank percentile within `window`
    /// (upper bound of the matched log₂ bucket, like
    /// [`SketchHistogram::percentile`](crate::SketchHistogram::percentile)).
    /// `None` when the window holds no observations.
    pub fn percentile_in(&self, window: u64, p: f64) -> Option<u64> {
        self.cells(window)
            .and_then(|c| sketch_percentile_of(&c.buckets, p))
    }

    /// Percentile over the last `k` retained windows ending at the
    /// head, folding their buckets together.
    pub fn percentile_last(&self, k: u64, p: f64) -> Option<u64> {
        if !self.initialized || k == 0 {
            return None;
        }
        let from = self.head.saturating_sub(k - 1).max(self.oldest());
        let mut folded = SketchCells::new();
        for w in from..=self.head {
            if let Some(c) = self.cells(w) {
                c.fold_into(&mut folded);
            }
        }
        sketch_percentile_of(&folded.buckets, p)
    }

    /// Lifetime observation count, including evicted windows.
    pub fn total_count(&self) -> u64 {
        self.retained_count().saturating_add(self.evicted.count)
    }

    /// Lifetime saturating value sum, including evicted windows.
    pub fn total_sum(&self) -> u64 {
        let mut sum = self.evicted.sum;
        for c in &self.ring {
            sum = sum.saturating_add(c.sum);
        }
        sum
    }

    /// Observation count folded out of the ring by eviction.
    pub fn evicted_count(&self) -> u64 {
        self.evicted.count
    }

    /// Observation count over the retained ring.
    pub fn retained_count(&self) -> u64 {
        let mut count = 0u64;
        for c in &self.ring {
            count = count.saturating_add(c.count);
        }
        count
    }

    /// Fold `other` into `self`, window by window (panics on width
    /// mismatch). Like the counter merge, nothing is dropped: windows
    /// older than the merged ring fold into the evicted sketch.
    pub fn merge(&mut self, other: &WindowedHistogram) {
        assert_eq!(self.width, other.width, "windowed merge: width mismatch");
        other.evicted.fold_into(&mut self.evicted);
        if !other.initialized {
            return;
        }
        for w in other.oldest()..=other.head {
            let Some(theirs) = other.cells(w) else {
                continue;
            };
            if theirs.count == 0 && theirs.sum == 0 {
                continue;
            }
            self.advance_to(w);
            if w < self.oldest() {
                theirs.fold_into(&mut self.evicted);
            } else {
                let slot = (w % self.ring.len() as u64) as usize;
                let cloned = theirs.clone();
                cloned.fold_into(&mut self.ring[slot]);
            }
        }
    }
}

/// A named family of windowed series sharing one width and ring
/// capacity, with canonical byte-reproducible renderings of the
/// resulting window matrix.
#[derive(Debug, Clone)]
pub struct WindowedScope {
    width: u64,
    capacity: usize,
    counters: BTreeMap<String, WindowedCounter>,
    histograms: BTreeMap<String, WindowedHistogram>,
}

impl WindowedScope {
    /// A new scope whose series use `width`-tick windows and retain
    /// `capacity` of them. Panics if either is zero.
    pub fn new(width: u64, capacity: usize) -> WindowedScope {
        assert!(width > 0, "window width must be positive");
        assert!(capacity > 0, "window capacity must be positive");
        WindowedScope {
            width,
            capacity,
            counters: BTreeMap::new(),
            histograms: BTreeMap::new(),
        }
    }

    /// Ticks per window.
    pub fn width(&self) -> u64 {
        self.width
    }

    /// The window index `tick` falls into.
    pub fn window_of(&self, tick: u64) -> u64 {
        tick / self.width
    }

    /// The counter series named `name`, created empty on first use.
    pub fn counter(&mut self, name: &str) -> &mut WindowedCounter {
        let (width, capacity) = (self.width, self.capacity);
        self.counters
            .entry(name.to_string())
            .or_insert_with(|| WindowedCounter::new(width, capacity))
    }

    /// The histogram series named `name`, created empty on first use.
    pub fn histogram(&mut self, name: &str) -> &mut WindowedHistogram {
        let (width, capacity) = (self.width, self.capacity);
        self.histograms
            .entry(name.to_string())
            .or_insert_with(|| WindowedHistogram::new(width, capacity))
    }

    /// The counter series named `name`, if it exists.
    pub fn counter_ref(&self, name: &str) -> Option<&WindowedCounter> {
        self.counters.get(name)
    }

    /// The histogram series named `name`, if it exists.
    pub fn histogram_ref(&self, name: &str) -> Option<&WindowedHistogram> {
        self.histograms.get(name)
    }

    /// Counter series names, sorted.
    pub fn counter_names(&self) -> Vec<&str> {
        self.counters.keys().map(String::as_str).collect()
    }

    /// Shared retained window range across every non-empty series:
    /// `(oldest, newest)`, or `None` if nothing has been observed.
    pub fn window_range(&self) -> Option<(u64, u64)> {
        let mut range: Option<(u64, u64)> = None;
        let spans = self
            .counters
            .values()
            .filter(|c| !c.is_empty())
            .map(|c| (c.oldest(), c.head()))
            .chain(
                self.histograms
                    .values()
                    .filter(|h| !h.is_empty())
                    .map(|h| (h.oldest(), h.head())),
            );
        for (lo, hi) in spans {
            range = Some(match range {
                None => (lo, hi),
                Some((a, b)) => (a.min(lo), b.max(hi)),
            });
        }
        range
    }

    /// Canonical text rendering of the window matrix: a header line,
    /// then one line per series in sorted name order (counters first),
    /// every series printed over the same shared window range. Window
    /// deltas outside a series' retained ring print as 0.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        let Some((from, to)) = self.window_range() else {
            out.push_str(&format!("windows width={} (empty)\n", self.width));
            return out;
        };
        out.push_str(&format!(
            "windows width={} from=w{} to=w{}\n",
            self.width, from, to
        ));
        for (name, series) in &self.counters {
            out.push_str(&format!("counter {name} |"));
            for w in from..=to {
                out.push_str(&format!(" {}", series.delta(w)));
            }
            out.push_str(&format!(
                " | total={} evicted={}\n",
                series.total(),
                series.evicted()
            ));
        }
        for (name, series) in &self.histograms {
            out.push_str(&format!("histogram {name}.count |"));
            for w in from..=to {
                out.push_str(&format!(" {}", series.count_in(w)));
            }
            out.push_str(&format!(
                " | total={} evicted={}\n",
                series.total_count(),
                series.evicted_count()
            ));
            out.push_str(&format!("histogram {name}.p99 |"));
            for w in from..=to {
                out.push_str(&format!(" {}", series.percentile_in(w, 99.0).unwrap_or(0)));
            }
            out.push('\n');
        }
        out
    }

    /// Canonical JSONL rendering: one line per series, sorted name
    /// order (counters first), deltas over the shared window range.
    pub fn render_jsonl(&self) -> String {
        let mut out = String::new();
        let Some((from, to)) = self.window_range() else {
            return out;
        };
        for (name, series) in &self.counters {
            let deltas: Vec<String> = (from..=to).map(|w| series.delta(w).to_string()).collect();
            out.push_str(&format!(
                "{{\"series\":\"{}\",\"kind\":\"counter\",\"width\":{},\"base\":{},\"deltas\":[{}],\"total\":{},\"evicted\":{}}}\n",
                escape(name),
                self.width,
                from,
                deltas.join(","),
                series.total(),
                series.evicted()
            ));
        }
        for (name, series) in &self.histograms {
            let counts: Vec<String> = (from..=to)
                .map(|w| series.count_in(w).to_string())
                .collect();
            let p99s: Vec<String> = (from..=to)
                .map(|w| series.percentile_in(w, 99.0).unwrap_or(0).to_string())
                .collect();
            out.push_str(&format!(
                "{{\"series\":\"{}\",\"kind\":\"histogram\",\"width\":{},\"base\":{},\"counts\":[{}],\"p99\":[{}],\"total\":{},\"evicted\":{}}}\n",
                escape(name),
                self.width,
                from,
                counts.join(","),
                p99s.join(","),
                series.total_count(),
                series.evicted_count()
            ));
        }
        out
    }

    /// Fold `other` into `self`, series by series (panics on width
    /// mismatch). Series missing on either side are created.
    pub fn merge(&mut self, other: &WindowedScope) {
        assert_eq!(self.width, other.width, "scope merge: width mismatch");
        for (name, series) in &other.counters {
            self.counter(name).merge(series);
        }
        for (name, series) in &other.histograms {
            self.histogram(name).merge(series);
        }
    }
}

/// Minimal JSON string escaping for series names (which are
/// identifier-like in practice; this keeps the rendering total).
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_windows_and_deltas() {
        let mut c = WindowedCounter::new(4, 8);
        c.record(0, 2); // w0
        c.record(3, 1); // w0
        c.record(4, 5); // w1
        c.record(11, 7); // w2
        assert_eq!(c.delta(0), 3);
        assert_eq!(c.delta(1), 5);
        assert_eq!(c.delta(2), 7);
        assert_eq!(c.delta(3), 0);
        assert_eq!(c.total(), 15);
        assert_eq!(c.evicted(), 0);
        assert_eq!(c.retained_sum(), 15);
        assert_eq!(c.rate_milli(1), 1250);
        assert_eq!(c.sum_last(2), 12);
        assert_eq!(c.windows(), vec![(0, 3), (1, 5), (2, 7)]);
    }

    #[test]
    fn counter_eviction_reconciles_exactly() {
        let mut c = WindowedCounter::new(2, 4);
        for tick in 0..40 {
            c.record(tick, tick + 1);
        }
        let expected_total: u64 = (1..=40).sum();
        assert_eq!(c.total(), expected_total);
        assert_eq!(c.retained_sum() + c.evicted(), c.total());
        assert_eq!(c.oldest(), c.head() - 3);
        // A jump far past the ring rotates everything out.
        c.record(1000, 1);
        assert_eq!(c.retained_sum(), 1);
        assert_eq!(c.retained_sum() + c.evicted(), c.total());
    }

    #[test]
    fn counter_out_of_order_past_ring_goes_to_evicted() {
        let mut c = WindowedCounter::new(1, 4);
        c.record(100, 1);
        c.record(3, 9); // far older than the retained range
        assert_eq!(c.delta(3), 0);
        assert_eq!(c.evicted(), 9);
        assert_eq!(c.total(), 10);
        assert_eq!(c.retained_sum() + c.evicted(), c.total());
    }

    #[test]
    fn counter_merge_reconciles() {
        let mut a = WindowedCounter::new(4, 8);
        let mut b = WindowedCounter::new(4, 8);
        a.record(0, 1);
        a.record(9, 2);
        b.record(5, 10);
        b.record(30, 4);
        let (ta, tb) = (a.total(), b.total());
        a.merge(&b);
        assert_eq!(a.total(), ta + tb);
        assert_eq!(a.retained_sum() + a.evicted(), a.total());
        assert_eq!(a.delta(1), 10); // b's window-1 burst
        assert_eq!(a.delta(2), 2); // a's tick-9 observation
        assert_eq!(a.delta(7), 4);
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn counter_merge_width_mismatch_panics() {
        let mut a = WindowedCounter::new(4, 8);
        let b = WindowedCounter::new(2, 8);
        a.merge(&b);
    }

    #[test]
    fn histogram_percentiles_per_window() {
        let mut h = WindowedHistogram::new(4, 8);
        for v in [1u64, 2, 3, 200] {
            h.record(0, v);
        }
        h.record(5, 1000);
        assert_eq!(h.count_in(0), 4);
        assert_eq!(h.sum_in(0), 206);
        // p50 of {1,2,3,200}: rank 2 → value 2 → bucket top 3.
        assert_eq!(h.percentile_in(0, 50.0), Some(3));
        assert_eq!(h.percentile_in(1, 99.0), Some(1023));
        assert_eq!(h.percentile_in(2, 99.0), None);
        assert_eq!(h.percentile_last(2, 100.0), Some(1023));
        assert_eq!(h.total_count(), 5);
        assert_eq!(h.total_sum(), 1206);
    }

    #[test]
    fn histogram_eviction_and_merge_reconcile() {
        let mut h = WindowedHistogram::new(1, 4);
        for tick in 0..32 {
            h.record(tick, 7);
        }
        assert_eq!(h.total_count(), 32);
        assert_eq!(h.retained_count(), 4);
        assert_eq!(h.evicted_count(), 28);
        assert_eq!(h.total_sum(), 32 * 7);

        let mut other = WindowedHistogram::new(1, 4);
        other.record(31, 9);
        other.record(2, 1); // lands in evicted on merge (too old)
        h.merge(&other);
        assert_eq!(h.total_count(), 34);
        assert_eq!(h.retained_count() + h.evicted_count(), 34);
    }

    #[test]
    fn scope_renders_canonically_regardless_of_insertion_order() {
        let render = |names: &[&str]| {
            let mut scope = WindowedScope::new(4, 8);
            for name in names {
                scope.counter(name);
            }
            scope.counter("b").record(0, 1);
            scope.counter("a").record(5, 2);
            scope.histogram("lat").record(5, 9);
            scope.render_text()
        };
        let forward = render(&["a", "b"]);
        let reverse = render(&["b", "a"]);
        assert_eq!(forward, reverse);
        assert!(forward.starts_with("windows width=4 from=w0 to=w1\n"));
        let lines: Vec<&str> = forward.lines().collect();
        assert_eq!(lines[1], "counter a | 0 2 | total=2 evicted=0");
        assert_eq!(lines[2], "counter b | 1 0 | total=1 evicted=0");
        assert_eq!(lines[3], "histogram lat.count | 0 1 | total=1 evicted=0");
        assert_eq!(lines[4], "histogram lat.p99 | 0 15");
    }

    #[test]
    fn scope_jsonl_is_line_per_series() {
        let mut scope = WindowedScope::new(2, 4);
        scope.counter("x").record(0, 3);
        scope.histogram("y").record(2, 5);
        let jsonl = scope.render_jsonl();
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(
            lines[0],
            "{\"series\":\"x\",\"kind\":\"counter\",\"width\":2,\"base\":0,\"deltas\":[3,0],\"total\":3,\"evicted\":0}"
        );
        assert_eq!(
            lines[1],
            "{\"series\":\"y\",\"kind\":\"histogram\",\"width\":2,\"base\":0,\"counts\":[0,1],\"p99\":[0,7],\"total\":1,\"evicted\":0}"
        );
    }

    #[test]
    fn empty_scope_renders_empty_marker() {
        let scope = WindowedScope::new(4, 8);
        assert_eq!(scope.render_text(), "windows width=4 (empty)\n");
        assert_eq!(scope.render_jsonl(), "");
    }

    #[test]
    fn scope_merge_folds_series() {
        let mut a = WindowedScope::new(4, 8);
        let mut b = WindowedScope::new(4, 8);
        a.counter("req").record(0, 1);
        b.counter("req").record(0, 2);
        b.counter("other").record(4, 3);
        b.histogram("lat").record(0, 100);
        a.merge(&b);
        assert_eq!(a.counter_ref("req").unwrap().delta(0), 3);
        assert_eq!(a.counter_ref("other").unwrap().delta(1), 3);
        assert_eq!(a.histogram_ref("lat").unwrap().total_count(), 1);
    }
}
