//! Seeded fixed-capacity reservoir sampling for exact-percentile spot
//! checks of the bounded-memory [`SketchHistogram`](crate::SketchHistogram).
//!
//! The sketch trades resolution for O(1) memory: its percentiles are
//! bucket upper bounds, guaranteed to be at least the true value and
//! less than 2× it (for values ≥ 1). That bound is documented but was
//! never *checked* against an exact reference at soak scale — exact
//! [`Histogram`](crate::Histogram)s clamp at their cap, so they cannot
//! serve as the reference for wide-range streams. A
//! [`ReservoirSampler`] closes that gap: Vitter's Algorithm R over a
//! seeded SplitMix64 stream keeps a uniform fixed-size sample (exact
//! while the stream fits, unbiased once it doesn't), deterministic for
//! a given seed like every other sampler in this workspace. The crate
//! stays dependency-free: the three-line SplitMix64 generator is
//! inlined rather than pulled from the compat `rand` crate.

/// SplitMix64 step — the same mixer the workspace's compat `rand`
/// uses for seeding, inlined so `obs` keeps zero dependencies.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A seeded uniform reservoir of at most `capacity` values
/// (Algorithm R). While `seen() <= capacity` the reservoir holds the
/// entire stream, so percentile queries are *exact*; past that each
/// seen value is retained with probability `capacity / seen`.
#[derive(Debug, Clone)]
pub struct ReservoirSampler {
    capacity: usize,
    seen: u64,
    state: u64,
    values: Vec<u64>,
}

impl ReservoirSampler {
    /// An empty reservoir with the given capacity and seed. Panics if
    /// `capacity` is zero.
    pub fn new(capacity: usize, seed: u64) -> ReservoirSampler {
        assert!(capacity > 0, "reservoir capacity must be positive");
        ReservoirSampler {
            capacity,
            seen: 0,
            state: seed,
            values: Vec::new(),
        }
    }

    /// Offer one value to the reservoir.
    pub fn observe(&mut self, value: u64) {
        self.seen += 1;
        if self.values.len() < self.capacity {
            self.values.push(value);
            return;
        }
        // Uniform index in [0, seen) via the multiply-shift trick —
        // no rejection loop, deterministic cost per observation.
        let r = splitmix64(&mut self.state);
        let j = ((r as u128 * self.seen as u128) >> 64) as u64;
        if (j as usize) < self.capacity {
            self.values[j as usize] = value;
        }
    }

    /// Values offered so far.
    pub fn seen(&self) -> u64 {
        self.seen
    }

    /// Values currently held (`min(seen, capacity)`).
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the reservoir has seen nothing.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Whether the reservoir still holds the *entire* stream (its
    /// percentiles are exact, not sampled).
    pub fn is_exact(&self) -> bool {
        self.seen as usize <= self.capacity
    }

    /// Nearest-rank percentile over the held sample (`p` in 0–100,
    /// the same convention as the histograms). `None` when empty.
    pub fn percentile(&self, p: f64) -> Option<u64> {
        if self.values.is_empty() {
            return None;
        }
        let mut sorted = self.values.clone();
        sorted.sort_unstable();
        let n = sorted.len() as u64;
        let p = p.clamp(0.0, 100.0);
        let rank = ((p / 100.0 * n as f64).ceil() as u64).max(1);
        Some(sorted[(rank - 1) as usize])
    }

    /// The held sample, unsorted, in reservoir order.
    pub fn values(&self) -> &[u64] {
        &self.values
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::SketchHistogram;

    #[test]
    fn exact_until_capacity() {
        let mut r = ReservoirSampler::new(8, 42);
        for v in [5u64, 1, 9, 3] {
            r.observe(v);
        }
        assert!(r.is_exact());
        assert_eq!(r.len(), 4);
        assert_eq!(r.percentile(0.0), Some(1));
        assert_eq!(r.percentile(50.0), Some(3));
        assert_eq!(r.percentile(100.0), Some(9));
    }

    #[test]
    fn deterministic_for_a_seed_and_uniformish_past_capacity() {
        let fill = |seed: u64| {
            let mut r = ReservoirSampler::new(64, seed);
            for v in 0..10_000u64 {
                r.observe(v);
            }
            r.values().to_vec()
        };
        assert_eq!(fill(7), fill(7));
        assert_ne!(fill(7), fill(8));
        let sample = fill(7);
        assert_eq!(sample.len(), 64);
        // A uniform sample of 0..10000 should straddle the midpoint.
        assert!(sample.iter().any(|&v| v < 5000));
        assert!(sample.iter().any(|&v| v >= 5000));
    }

    #[test]
    fn empty_reservoir_has_no_percentile() {
        let r = ReservoirSampler::new(4, 0);
        assert!(r.is_empty());
        assert_eq!(r.percentile(50.0), None);
    }

    /// The satellite claim: at 10⁵ samples of a wide-range seeded
    /// stream, the sketch percentile sits within its documented bound
    /// — at least the exact percentile, and below 2× it — using a
    /// full-stream reservoir as the exact reference.
    #[test]
    fn sketch_percentile_within_2x_of_reservoir_exact() {
        const N: usize = 100_000;
        for seed in [42u64, 7, 1234] {
            let mut reservoir = ReservoirSampler::new(N, seed);
            let sketch = SketchHistogram::new();
            let mut state = seed;
            for _ in 0..N {
                let r = splitmix64(&mut state);
                // Wide-range positive values: a log-uniform-ish spread
                // over 1..2^40, the regime log₂ buckets are built for.
                let shift = (r >> 58) % 40; // 0..40
                let value = 1 + ((r & 0xffff_ffff) >> (32u64.saturating_sub(shift).min(31)));
                reservoir.observe(value);
                sketch.observe(value);
            }
            assert!(reservoir.is_exact(), "reservoir must hold the full stream");
            for p in [50.0, 90.0, 95.0, 99.0, 99.9] {
                let exact = reservoir.percentile(p).unwrap();
                let sketched = sketch.percentile(p).unwrap();
                assert!(
                    sketched >= exact,
                    "seed {seed} p{p}: sketch {sketched} < exact {exact}"
                );
                assert!(
                    sketched < exact.saturating_mul(2),
                    "seed {seed} p{p}: sketch {sketched} ≥ 2× exact {exact}"
                );
            }
        }
    }
}
