//! Analyze exported trace corpora from the command line.
//!
//! ```text
//! tracetool profile  <trace.jsonl>            # per-stage self/inherited/critical-path profile
//! tracetool critical <trace.jsonl>            # the critical path of every trace
//! tracetool tail     <trace.jsonl> [--p N]    # tail attribution at the Nth percentile (default 95)
//! tracetool chrome   <trace.jsonl>            # Chrome Trace Event JSON (load in about://tracing)
//! tracetool folded   <trace.jsonl>            # folded stacks (pipe to a flamegraph renderer)
//! tracetool diff     <base.jsonl> <other.jsonl>  # per-stage overhead of other over base
//! tracetool metrics  <trace.jsonl>            # canonical span.* histogram export
//! ```
//!
//! Input files are the byte-reproducible JSONL written by
//! `TraceSink::export_jsonl` (see `examples/profiling.rs` for the
//! producing side). Every output is deterministic: same corpus in,
//! same bytes out. Bad arguments and malformed input fail fast with
//! one-line errors, like the `experiments` binary.

use std::env;
use std::process::exit;

use nlidb_obs::profile::self_costs;
use nlidb_obs::{
    chrome_trace_json, critical_path, critical_path_cost, folded_stacks, parse_jsonl,
    tail_attribution, MetricsRegistry, Profile, ProfileDiff, Trace,
};

fn usage() -> ! {
    eprintln!(
        "usage: tracetool <profile|critical|tail|chrome|folded|metrics> <trace.jsonl>\n\
         \x20      tracetool tail <trace.jsonl> [--p <percentile>]\n\
         \x20      tracetool diff <base.jsonl> <other.jsonl>"
    );
    exit(2);
}

fn load(path: &str) -> Vec<Trace> {
    let text = match std::fs::read_to_string(path) {
        Ok(text) => text,
        Err(e) => {
            eprintln!("tracetool: cannot read {path}: {e}");
            exit(2);
        }
    };
    match parse_jsonl(&text) {
        Ok(traces) => traces,
        Err(e) => {
            eprintln!("tracetool: {path} is not a trace export: {e}");
            exit(2);
        }
    }
}

fn main() {
    let args: Vec<String> = env::args().skip(1).collect();
    let Some(command) = args.first() else { usage() };
    match (command.as_str(), &args[1..]) {
        ("profile", [path]) => {
            print!("{}", Profile::from_traces(&load(path)).export_text());
        }
        ("critical", [path]) => {
            for trace in load(path) {
                let selfs = self_costs(&trace);
                let chain: Vec<String> = critical_path(&trace)
                    .iter()
                    .map(|&i| format!("{}[{}]", trace.spans[i].name, selfs[i]))
                    .collect();
                println!(
                    "trace {} cost={} critical={} path={}",
                    trace.id,
                    trace.root().map(|r| r.cost()).unwrap_or(0),
                    critical_path_cost(&trace),
                    chain.join(";")
                );
            }
        }
        ("tail", [path, rest @ ..]) => {
            let percentile = match rest {
                [] => 95.0,
                [flag, value] if flag == "--p" => match value.parse::<f64>() {
                    Ok(p) if (0.0..=100.0).contains(&p) => p,
                    _ => {
                        eprintln!("--p wants a percentile in [0, 100], got {value:?}");
                        usage();
                    }
                },
                _ => usage(),
            };
            match tail_attribution(&load(path), percentile) {
                Some(tail) => print!("{}", tail.export_text()),
                None => println!("tail: corpus has no rooted traces"),
            }
        }
        ("chrome", [path]) => println!("{}", chrome_trace_json(&load(path))),
        ("folded", [path]) => print!("{}", folded_stacks(&load(path))),
        ("diff", [base, other]) => {
            let base = Profile::from_traces(&load(base));
            let other = Profile::from_traces(&load(other));
            print!("{}", ProfileDiff::between(&base, &other).export_text());
        }
        ("metrics", [path]) => {
            let registry = MetricsRegistry::new();
            for trace in load(path) {
                registry.observe_trace(&trace);
            }
            print!("{}", registry.report().export_text());
        }
        _ => usage(),
    }
}
