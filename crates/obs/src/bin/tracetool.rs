//! Analyze exported trace corpora from the command line.
//!
//! ```text
//! tracetool profile  <trace.jsonl>            # per-stage self/inherited/critical-path profile
//! tracetool critical <trace.jsonl>            # the critical path of every trace
//! tracetool tail     <trace.jsonl> [--p N]    # tail attribution at the Nth percentile (default 95)
//! tracetool chrome   <trace.jsonl>            # Chrome Trace Event JSON (load in about://tracing)
//! tracetool folded   <trace.jsonl>            # folded stacks (pipe to a flamegraph renderer)
//! tracetool diff     <base.jsonl> <other.jsonl>  # per-stage overhead of other over base
//! tracetool metrics  <trace.jsonl>            # canonical span.* histogram export
//! tracetool timeline <trace.jsonl> [--width W]   # windowed request matrix over coarse ticks
//! tracetool health   <trace.jsonl>            # SLO health-event log carried in the corpus
//! ```
//!
//! Input files are the byte-reproducible JSONL written by
//! `TraceSink::export_jsonl` (see `examples/profiling.rs` for the
//! producing side). Every output is deterministic: same corpus in,
//! same bytes out. Bad arguments and malformed input fail fast with
//! one-line errors, like the `experiments` binary.

use std::env;
use std::process::exit;

use nlidb_obs::profile::self_costs;
use nlidb_obs::{
    chrome_trace_json, critical_path, critical_path_cost, folded_stacks, parse_jsonl,
    tail_attribution, MetricsRegistry, Profile, ProfileDiff, Trace, WindowedScope,
};

fn usage() -> ! {
    eprintln!(
        "usage: tracetool <profile|critical|tail|chrome|folded|metrics|timeline|health> <trace.jsonl>\n\
         \x20      tracetool tail <trace.jsonl> [--p <percentile>]\n\
         \x20      tracetool timeline <trace.jsonl> [--width <ticks>]\n\
         \x20      tracetool diff <base.jsonl> <other.jsonl>\n\
         subcommands: profile critical tail chrome folded diff metrics timeline health"
    );
    exit(2);
}

fn load(path: &str) -> Vec<Trace> {
    let text = match std::fs::read_to_string(path) {
        Ok(text) => text,
        Err(e) => {
            eprintln!("tracetool: cannot read {path}: {e}");
            exit(2);
        }
    };
    match parse_jsonl(&text) {
        Ok(traces) => traces,
        Err(e) => {
            eprintln!("tracetool: {path} is not a trace export: {e}");
            exit(2);
        }
    }
}

fn main() {
    let args: Vec<String> = env::args().skip(1).collect();
    let Some(command) = args.first() else { usage() };
    match (command.as_str(), &args[1..]) {
        ("profile", [path]) => {
            print!("{}", Profile::from_traces(&load(path)).export_text());
        }
        ("critical", [path]) => {
            for trace in load(path) {
                let selfs = self_costs(&trace);
                let chain: Vec<String> = critical_path(&trace)
                    .iter()
                    .map(|&i| format!("{}[{}]", trace.spans[i].name, selfs[i]))
                    .collect();
                println!(
                    "trace {} cost={} critical={} path={}",
                    trace.id,
                    trace.root().map(|r| r.cost()).unwrap_or(0),
                    critical_path_cost(&trace),
                    chain.join(";")
                );
            }
        }
        ("tail", [path, rest @ ..]) => {
            let percentile = match rest {
                [] => 95.0,
                [flag, value] if flag == "--p" => match value.parse::<f64>() {
                    Ok(p) if (0.0..=100.0).contains(&p) => p,
                    _ => {
                        eprintln!("--p wants a percentile in [0, 100], got {value:?}");
                        usage();
                    }
                },
                _ => usage(),
            };
            match tail_attribution(&load(path), percentile) {
                Some(tail) => print!("{}", tail.export_text()),
                None => println!("tail: corpus has no rooted traces"),
            }
        }
        ("chrome", [path]) => println!("{}", chrome_trace_json(&load(path))),
        ("folded", [path]) => print!("{}", folded_stacks(&load(path))),
        ("diff", [base, other]) => {
            let base = Profile::from_traces(&load(base));
            let other = Profile::from_traces(&load(other));
            print!("{}", ProfileDiff::between(&base, &other).export_text());
        }
        ("metrics", [path]) => {
            let registry = MetricsRegistry::new();
            for trace in load(path) {
                registry.observe_trace(&trace);
            }
            print!("{}", registry.report().export_text());
        }
        ("timeline", [path, rest @ ..]) => {
            let width = match rest {
                [] => 8,
                [flag, value] if flag == "--width" => match value.parse::<u64>() {
                    Ok(w) if w > 0 => w,
                    _ => {
                        eprintln!("--width wants a positive tick count, got {value:?}");
                        usage();
                    }
                },
                _ => usage(),
            };
            print!("{}", timeline(&load(path), width));
        }
        ("health", [path]) => {
            let lines = health_log(&load(path));
            if lines.is_empty() {
                println!("health: corpus has no health events");
            } else {
                print!("{lines}");
            }
        }
        _ => usage(),
    }
}

/// Re-bucket a request corpus into a windowed matrix over the coarse
/// tick axis: one counter series per root outcome, plus a sojourn
/// histogram (root `tick_close - tick_open`). Health-event traces are
/// excluded — `tracetool health` renders those.
fn timeline(traces: &[Trace], width: u64) -> String {
    // Size the ring to the whole corpus: offline analysis wants the
    // full matrix, not a recent-windows view.
    let last = traces
        .iter()
        .filter_map(|t| t.root())
        .map(|r| r.tick_close / width)
        .max()
        .unwrap_or(0);
    let mut scope = WindowedScope::new(width, last as usize + 1);
    for trace in traces {
        let Some(root) = trace.root() else { continue };
        if root.name == "health" {
            continue;
        }
        let outcome = root.attr("outcome").unwrap_or("unknown");
        scope.counter(outcome).record(root.tick_open, 1);
        scope.histogram("sojourn").record(
            root.tick_open,
            root.tick_close.saturating_sub(root.tick_open),
        );
    }
    scope.render_text()
}

/// Reconstruct the canonical health-event log from the `health` root
/// spans a serving run pushed into its sink, in trace-id order (the
/// sink exports id-sorted, and health ids are emission-ordered).
fn health_log(traces: &[Trace]) -> String {
    let mut out = String::new();
    for trace in traces {
        let Some(root) = trace.root() else { continue };
        if root.name != "health" {
            continue;
        }
        let get = |key: &str| root.attr(key).unwrap_or("?").to_string();
        out.push_str(&format!(
            "health seq={} objective={} event={} window=w{} tick={} short_burn={} ({}/{}) long_burn={} ({}/{})\n",
            get("seq"),
            get("objective"),
            get("event"),
            get("window"),
            root.tick_open,
            get("short_burn_milli"),
            get("short_bad"),
            get("short_total"),
            get("long_burn_milli"),
            get("long_bad"),
            get("long_total"),
        ));
    }
    out
}
