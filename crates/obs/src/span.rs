//! Deterministic span trees.
//!
//! A [`TraceBuilder`] records what one request did as a tree of named
//! spans. Two time axes stamp every span, neither of them wall-clock:
//!
//! * **Coarse ticks** read from the injected [`Clock`] — the driver's
//!   logical time (the load generator advances one tick per batch).
//!   They place a span *in the run* but cannot measure work inside a
//!   batch, where the clock stands still.
//! * **Trace ticks** — a per-trace monotonic sequence number, bumped
//!   once per recorded open/close event. A span's *cost* is its close
//!   sequence minus its open sequence: the number of trace events that
//!   happened inside it, a deterministic proxy for traced work that is
//!   bit-identical run over run.
//!
//! The builder tolerates any open/close interleaving without ever
//! producing an unbalanced tree: closing a span first closes every
//! still-open descendant, closing a closed span is a no-op, and
//! [`TraceBuilder::finish`] closes whatever is left. Those are the
//! invariants the property tests pin down — every interleaving yields
//! strictly increasing sequence numbers and strictly nested spans.

use std::sync::Arc;

use crate::clock::Clock;

/// Handle to a span inside one [`TraceBuilder`] (valid only for the
/// builder that returned it).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanId(usize);

/// One finished span of a [`Trace`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Span {
    /// Stage name (e.g. `"tokenize"`, `"rung"`).
    pub name: String,
    /// Index of the parent span in [`Trace::spans`], `None` for roots.
    pub parent: Option<usize>,
    /// Trace tick at open (strictly increasing across all events).
    pub seq_open: u64,
    /// Trace tick at close (> `seq_open`).
    pub seq_close: u64,
    /// Coarse clock tick at open.
    pub tick_open: u64,
    /// Coarse clock tick at close.
    pub tick_close: u64,
    /// Key/value annotations, in recording order.
    pub attrs: Vec<(String, String)>,
}

impl Span {
    /// Span cost in trace ticks: events recorded between open and
    /// close. An empty span costs 1 (its own close event); a span
    /// containing other spans costs more. Deterministic by
    /// construction.
    pub fn cost(&self) -> u64 {
        self.seq_close - self.seq_open
    }

    /// The first value recorded for `key`, if any.
    pub fn attr(&self, key: &str) -> Option<&str> {
        self.attrs
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }
}

/// One finished trace: the span tree for a single traced unit of work
/// (one request, one question), in span-open order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Trace {
    /// Trace id (the serving layer uses the request id).
    pub id: u64,
    /// Spans in open order; parents always precede children.
    pub spans: Vec<Span>,
}

impl Trace {
    /// The first root span (almost always the only one).
    pub fn root(&self) -> Option<&Span> {
        self.spans.iter().find(|s| s.parent.is_none())
    }

    /// All spans with the given name, in open order.
    pub fn spans_named<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a Span> {
        self.spans.iter().filter(move |s| s.name == name)
    }

    /// Sum of `key` parsed as `u64` over every span that carries it
    /// (first value per span; unparsable values count 0). The
    /// reconciliation primitive for trace/metric cross-checks: E14/E15
    /// sum an attribute (retries, turns replayed) across a sink and
    /// assert it equals the corresponding counter.
    pub fn attr_sum(&self, key: &str) -> u64 {
        self.spans
            .iter()
            .filter_map(|s| s.attr(key))
            .filter_map(|v| v.parse::<u64>().ok())
            .sum()
    }

    /// Render as one deterministic JSON object (single line, no
    /// whitespace): `{"trace":N,"spans":[...]}`. Attribute order is
    /// recording order; field order is fixed; escaping is minimal
    /// JSON string escaping. Byte-identical for identical traces.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(64 + self.spans.len() * 96);
        out.push_str("{\"trace\":");
        out.push_str(&self.id.to_string());
        out.push_str(",\"spans\":[");
        for (i, s) in self.spans.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"name\":");
            push_json_str(&mut out, &s.name);
            out.push_str(",\"parent\":");
            match s.parent {
                Some(p) => out.push_str(&p.to_string()),
                None => out.push_str("null"),
            }
            out.push_str(",\"seq\":[");
            out.push_str(&s.seq_open.to_string());
            out.push(',');
            out.push_str(&s.seq_close.to_string());
            out.push_str("],\"tick\":[");
            out.push_str(&s.tick_open.to_string());
            out.push(',');
            out.push_str(&s.tick_close.to_string());
            out.push_str("],\"attrs\":{");
            for (j, (k, v)) in s.attrs.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                push_json_str(&mut out, k);
                out.push(':');
                push_json_str(&mut out, v);
            }
            out.push_str("}}");
        }
        out.push_str("]}");
        out
    }
}

/// Append `s` as a JSON string literal (quotes included).
pub(crate) fn push_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// In-progress span record.
#[derive(Debug)]
struct OpenSpan {
    name: String,
    parent: Option<usize>,
    seq_open: u64,
    tick_open: u64,
    seq_close: Option<u64>,
    tick_close: u64,
    attrs: Vec<(String, String)>,
}

/// Records one trace. Single-owner (one builder per traced request);
/// the clock it stamps coarse ticks from is injected at construction.
pub struct TraceBuilder {
    id: u64,
    clock: Arc<dyn Clock>,
    next_seq: u64,
    spans: Vec<OpenSpan>,
    /// Indices of currently-open spans, outermost first.
    stack: Vec<usize>,
}

impl TraceBuilder {
    /// A builder for trace `id`, stamping coarse ticks from `clock`.
    pub fn new(id: u64, clock: Arc<dyn Clock>) -> TraceBuilder {
        TraceBuilder {
            id,
            clock,
            next_seq: 0,
            spans: Vec::new(),
            stack: Vec::new(),
        }
    }

    /// The trace id.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Number of spans recorded so far (open or closed).
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// True when no span has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// The innermost currently-open span, if any.
    pub fn current(&self) -> Option<SpanId> {
        self.stack.last().copied().map(SpanId)
    }

    fn bump(&mut self) -> u64 {
        self.next_seq += 1;
        self.next_seq
    }

    /// Open a child of the current span (or a root), stamped at the
    /// clock's current tick.
    pub fn open(&mut self, name: &str) -> SpanId {
        let tick = self.clock.now();
        self.open_at(name, tick)
    }

    /// [`TraceBuilder::open`], with an explicit coarse tick — for
    /// events whose logical time was recorded earlier than the tracer
    /// runs (e.g. a request's admission tick, carried in its job
    /// envelope).
    pub fn open_at(&mut self, name: &str, tick: u64) -> SpanId {
        let seq = self.bump();
        let idx = self.spans.len();
        self.spans.push(OpenSpan {
            name: name.to_string(),
            parent: self.stack.last().copied(),
            seq_open: seq,
            tick_open: tick,
            seq_close: None,
            tick_close: tick,
            attrs: Vec::new(),
        });
        self.stack.push(idx);
        SpanId(idx)
    }

    /// Attach a key/value annotation to `span`. Allowed at any time
    /// (even after the span closed); order is preserved.
    pub fn annotate(&mut self, span: SpanId, key: &str, value: impl Into<String>) {
        self.spans[span.0]
            .attrs
            .push((key.to_string(), value.into()));
    }

    /// Close `span`, stamped at the clock's current tick. Any
    /// descendants still open are closed first (in innermost-out
    /// order); closing an already-closed span is a no-op.
    pub fn close(&mut self, span: SpanId) {
        let tick = self.clock.now();
        self.close_at(span, tick);
    }

    /// [`TraceBuilder::close`], with an explicit coarse tick.
    pub fn close_at(&mut self, span: SpanId, tick: u64) {
        let Some(pos) = self.stack.iter().position(|&i| i == span.0) else {
            return; // already closed
        };
        while self.stack.len() > pos {
            let idx = self.stack.pop().expect("stack non-empty");
            let seq = self.bump();
            let rec = &mut self.spans[idx];
            rec.seq_close = Some(seq);
            rec.tick_close = tick;
        }
    }

    /// Close every still-open span and freeze the trace.
    pub fn finish(mut self) -> Trace {
        let tick = self.clock.now();
        while let Some(idx) = self.stack.pop() {
            let seq = self.bump();
            let rec = &mut self.spans[idx];
            rec.seq_close = Some(seq);
            rec.tick_close = tick;
        }
        Trace {
            id: self.id,
            spans: self
                .spans
                .into_iter()
                .map(|s| Span {
                    name: s.name,
                    parent: s.parent,
                    seq_open: s.seq_open,
                    seq_close: s.seq_close.expect("all spans closed by finish"),
                    tick_open: s.tick_open,
                    tick_close: s.tick_close,
                    attrs: s.attrs,
                })
                .collect(),
        }
    }
}

impl std::fmt::Debug for TraceBuilder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceBuilder")
            .field("id", &self.id)
            .field("spans", &self.spans.len())
            .field("open", &self.stack.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::ManualClock;

    fn builder() -> (TraceBuilder, Arc<ManualClock>) {
        let clock = Arc::new(ManualClock::new());
        (TraceBuilder::new(7, clock.clone() as Arc<dyn Clock>), clock)
    }

    #[test]
    fn nested_spans_record_both_time_axes() {
        let (mut tb, clock) = builder();
        let root = tb.open("request");
        clock.advance(2);
        let child = tb.open("stage");
        tb.annotate(child, "family", "hybrid");
        tb.close(child);
        clock.advance(1);
        tb.close(root);
        let t = tb.finish();
        assert_eq!(t.id, 7);
        assert_eq!(t.spans.len(), 2);
        let (r, c) = (&t.spans[0], &t.spans[1]);
        assert_eq!((r.parent, c.parent), (None, Some(0)));
        assert_eq!((r.seq_open, r.seq_close), (1, 4));
        assert_eq!((c.seq_open, c.seq_close), (2, 3));
        assert_eq!((r.tick_open, r.tick_close), (0, 3));
        assert_eq!((c.tick_open, c.tick_close), (2, 2));
        assert_eq!(r.cost(), 3);
        assert_eq!(c.cost(), 1);
        assert_eq!(c.attr("family"), Some("hybrid"));
        assert_eq!(t.root().map(|s| s.name.as_str()), Some("request"));
    }

    #[test]
    fn closing_an_outer_span_closes_its_children() {
        let (mut tb, _) = builder();
        let a = tb.open("a");
        let _b = tb.open("b");
        let _c = tb.open("c");
        tb.close(a); // seals c, then b, then a
        assert_eq!(tb.current(), None);
        let t = tb.finish();
        let seqs: Vec<(u64, u64)> = t.spans.iter().map(|s| (s.seq_open, s.seq_close)).collect();
        assert_eq!(seqs, vec![(1, 6), (2, 5), (3, 4)], "innermost closes first");
    }

    #[test]
    fn double_close_is_a_noop_and_finish_seals_the_rest() {
        let (mut tb, _) = builder();
        let a = tb.open("a");
        let b = tb.open("b");
        tb.close(b);
        tb.close(b); // no-op: no extra event
        let _late = tb.open("late"); // reparents under the still-open a
        let t = tb.finish(); // closes late, then a
        assert_eq!(t.spans[1].seq_close, 3);
        assert_eq!(t.spans[2].parent, Some(a.0));
        assert_eq!(t.spans[0].seq_close, 6);
        let _ = b;
    }

    #[test]
    fn attr_sum_totals_parsable_values_across_spans() {
        let (mut tb, _) = builder();
        let root = tb.open("request");
        tb.annotate(root, "retries", "2");
        let a = tb.open("rung");
        tb.annotate(a, "retries", "3");
        tb.annotate(a, "retries", "99"); // only the first value counts
        tb.close(a);
        let b = tb.open("rung");
        tb.annotate(b, "retries", "not-a-number");
        tb.annotate(b, "outcome", "degraded");
        tb.close(b);
        tb.close(root);
        let t = tb.finish();
        assert_eq!(t.attr_sum("retries"), 5);
        assert_eq!(t.attr_sum("outcome"), 0, "non-numeric values count 0");
        assert_eq!(t.attr_sum("absent"), 0);
    }

    #[test]
    fn json_is_stable_and_escaped() {
        let (mut tb, _) = builder();
        let s = tb.open("q");
        tb.annotate(s, "sql", "SELECT \"x\"\n\tFROM t\\u");
        tb.close(s);
        let json = tb.finish().to_json();
        assert_eq!(
            json,
            "{\"trace\":7,\"spans\":[{\"name\":\"q\",\"parent\":null,\"seq\":[1,2],\
             \"tick\":[0,0],\"attrs\":{\"sql\":\"SELECT \\\"x\\\"\\n\\tFROM t\\\\u\"}}]}"
        );
    }

    #[test]
    fn control_chars_escape_as_unicode() {
        let mut out = String::new();
        push_json_str(&mut out, "a\u{1}b");
        assert_eq!(out, "\"a\\u0001b\"");
    }
}
