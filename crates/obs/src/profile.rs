//! Trace-corpus profiling: per-stage cost attribution, critical
//! paths, tail attribution, and clean-vs-faulted diffing.
//!
//! PR 3's traces record *what happened*; this module answers *where
//! the cost went*. All of it runs on the same logical-tick cost model
//! the spans are stamped with, so every number here is a pure
//! function of the seeded request stream — which is what makes the
//! perf-drift gate sound: two runs at the same seed must agree
//! byte-for-byte, and any drift is a semantic change in the pipeline,
//! never scheduler noise.
//!
//! Cost accounting. A span's *cost* ([`Span::cost`]) counts every
//! trace event inside it, which includes the events of its children.
//! Its **self cost** subtracts the children's costs, leaving the
//! events the span accounts for directly (its own close, plus one
//! open event per direct child). The two views partition exactly:
//! within one root's subtree, self costs sum to the root's cost —
//! the invariant the profile property tests pin down.
//!
//! The **critical path** of a trace is the root-to-leaf chain built
//! by descending into the costliest child at every step (ties break
//! toward the earlier-opened child, keeping the path deterministic).
//! Its cost is the sum of *self* costs along the chain — the
//! exclusive work of the hot spine, never double-counting a nested
//! descendant — so it is bounded by the root's cost, with the gap
//! being work that happened off the spine.

use std::collections::BTreeMap;

use crate::span::{Span, Trace};

/// Direct-children index lists for every span of `trace`, in span
/// order. Parents always precede children in a recorded trace, so one
/// forward pass suffices.
pub fn children_of(trace: &Trace) -> Vec<Vec<usize>> {
    let mut children: Vec<Vec<usize>> = vec![Vec::new(); trace.spans.len()];
    for (idx, span) in trace.spans.iter().enumerate() {
        if let Some(p) = span.parent {
            children[p].push(idx);
        }
    }
    children
}

/// Self cost per span of `trace`: [`Span::cost`] minus the costs of
/// its direct children — the trace events the span accounts for
/// itself. Always ≥ 1 (every span owns at least its close event).
pub fn self_costs(trace: &Trace) -> Vec<u64> {
    let mut selfs: Vec<u64> = trace.spans.iter().map(Span::cost).collect();
    for span in &trace.spans {
        if let Some(p) = span.parent {
            selfs[p] = selfs[p].saturating_sub(span.cost());
        }
    }
    selfs
}

/// The critical path of `trace` as span indices, root first: starting
/// from the first root, descend into the direct child with the
/// largest cost until a leaf (ties break toward the earlier-opened
/// child). Empty only for an empty trace.
pub fn critical_path(trace: &Trace) -> Vec<usize> {
    let Some(root) = trace.spans.iter().position(|s| s.parent.is_none()) else {
        return Vec::new();
    };
    let children = children_of(trace);
    let mut path = vec![root];
    let mut at = root;
    loop {
        let next = children[at]
            .iter()
            .copied()
            // max_by_key keeps the *last* maximum; children are in
            // open order, so compare (cost, Reverse(index)) to keep
            // the earliest-opened child on ties.
            .max_by_key(|&c| (trace.spans[c].cost(), std::cmp::Reverse(c)));
        match next {
            Some(c) => {
                path.push(c);
                at = c;
            }
            None => return path,
        }
    }
}

/// Critical-path cost of `trace`: the sum of *self* costs along
/// [`critical_path`]. Bounded by the root span's cost.
pub fn critical_path_cost(trace: &Trace) -> u64 {
    let selfs = self_costs(trace);
    critical_path(trace).iter().map(|&i| selfs[i]).sum()
}

/// Aggregate cost attribution for every span name seen in a corpus.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StageProfile {
    /// Span name (e.g. `"rung"`, `"tokenize"`).
    pub name: String,
    /// Spans with this name across the corpus.
    pub spans: u64,
    /// Sum of span costs (inclusive of children).
    pub total_cost: u64,
    /// Sum of self costs (exclusive of children).
    pub self_cost: u64,
    /// Largest single span cost seen.
    pub max_cost: u64,
    /// Spans of this name that sat on a trace's critical path.
    pub crit_spans: u64,
    /// Sum of self costs of those critical-path spans.
    pub crit_self_cost: u64,
}

impl StageProfile {
    /// Cost inherited from children: `total_cost − self_cost`.
    pub fn inherited_cost(&self) -> u64 {
        self.total_cost - self.self_cost
    }
}

/// A per-stage profile of a trace corpus. Stages are name-ordered, so
/// two profiles over the same corpus compare (and render) identically
/// regardless of trace arrival order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Profile {
    /// Traces aggregated.
    pub traces: u64,
    /// Sum of root-span costs (one or more roots per trace).
    pub root_cost: u64,
    /// Sum of critical-path costs across traces.
    pub crit_cost: u64,
    /// Per-stage attribution, ascending by name.
    pub stages: Vec<StageProfile>,
}

impl Profile {
    /// Aggregate a corpus. Traces may arrive in any order; the
    /// profile depends only on their contents.
    pub fn from_traces(traces: &[Trace]) -> Profile {
        let mut stages: BTreeMap<String, StageProfile> = BTreeMap::new();
        let mut root_cost = 0u64;
        let mut crit_cost = 0u64;
        for trace in traces {
            let selfs = self_costs(trace);
            let path = critical_path(trace);
            for (idx, span) in trace.spans.iter().enumerate() {
                let e = stages
                    .entry(span.name.clone())
                    .or_insert_with(|| StageProfile {
                        name: span.name.clone(),
                        spans: 0,
                        total_cost: 0,
                        self_cost: 0,
                        max_cost: 0,
                        crit_spans: 0,
                        crit_self_cost: 0,
                    });
                e.spans += 1;
                e.total_cost += span.cost();
                e.self_cost += selfs[idx];
                e.max_cost = e.max_cost.max(span.cost());
                if path.contains(&idx) {
                    e.crit_spans += 1;
                    e.crit_self_cost += selfs[idx];
                }
            }
            root_cost += trace
                .spans
                .iter()
                .filter(|s| s.parent.is_none())
                .map(Span::cost)
                .sum::<u64>();
            crit_cost += path.iter().map(|&i| selfs[i]).sum::<u64>();
        }
        Profile {
            traces: traces.len() as u64,
            root_cost,
            crit_cost,
            stages: stages.into_values().collect(),
        }
    }

    /// The stage named `name`, if present.
    pub fn stage(&self, name: &str) -> Option<&StageProfile> {
        self.stages.iter().find(|s| s.name == name)
    }

    /// The canonical machine-diffable rendering: a header line, then
    /// one fixed-format line per stage in name order, trailing
    /// newline everywhere. Byte-identical for equal profiles — the
    /// artifact the perf-drift gate compares.
    pub fn export_text(&self) -> String {
        let mut out = format!(
            "profile traces={} root_cost={} crit_cost={}\n",
            self.traces, self.root_cost, self.crit_cost
        );
        for s in &self.stages {
            out.push_str(&format!(
                "stage {} spans={} total={} self={} inherited={} max={} crit_spans={} crit_self={}\n",
                s.name,
                s.spans,
                s.total_cost,
                s.self_cost,
                s.inherited_cost(),
                s.max_cost,
                s.crit_spans,
                s.crit_self_cost
            ));
        }
        out
    }
}

/// Which stage dominates the expensive tail of a corpus, and how the
/// tail splits by fallback rung and interpreter family.
#[derive(Debug, Clone, PartialEq)]
pub struct TailAttribution {
    /// The percentile that defined the tail (e.g. 95.0).
    pub percentile: f64,
    /// Root cost at that percentile (nearest-rank over root costs).
    pub threshold: u64,
    /// Traces whose root cost is ≥ the threshold.
    pub tail_traces: u64,
    /// Stage → number of tail traces where that stage carries the
    /// largest summed self cost (ties break toward the
    /// lexicographically smaller name). Name-ordered.
    pub dominant: Vec<(String, u64)>,
    /// `"rung R / family"` → tail-trace count, keyed by the last
    /// fallback rung the trace entered (`"no rung / <outcome>"` for
    /// traces that never opened one — cache hits, rejects). Key-ordered.
    pub split: Vec<(String, u64)>,
}

impl TailAttribution {
    /// Canonical rendering, fixed format, name-ordered.
    pub fn export_text(&self) -> String {
        let mut out = format!(
            "tail p{:.0} threshold={} traces={}\n",
            self.percentile, self.threshold, self.tail_traces
        );
        for (name, n) in &self.dominant {
            out.push_str(&format!("dominant {name} traces={n}\n"));
        }
        for (key, n) in &self.split {
            out.push_str(&format!("split {key} traces={n}\n"));
        }
        out
    }
}

/// Attribute the cost tail of a corpus: which traces sit at or above
/// the `percentile`-th root cost, which stage dominates each of them,
/// and how they split by rung and interpreter family. `None` for an
/// empty corpus or a corpus of empty traces.
pub fn tail_attribution(traces: &[Trace], percentile: f64) -> Option<TailAttribution> {
    let mut root_costs: Vec<u64> = traces
        .iter()
        .filter_map(|t| t.root().map(Span::cost))
        .collect();
    if root_costs.is_empty() {
        return None;
    }
    root_costs.sort_unstable();
    let p = percentile.clamp(0.0, 100.0);
    let rank = ((p / 100.0 * root_costs.len() as f64).ceil() as usize).max(1);
    let threshold = root_costs[rank - 1];

    let mut dominant: BTreeMap<String, u64> = BTreeMap::new();
    let mut split: BTreeMap<String, u64> = BTreeMap::new();
    let mut tail_traces = 0u64;
    for trace in traces {
        let Some(root) = trace.root() else { continue };
        if root.cost() < threshold {
            continue;
        }
        tail_traces += 1;
        // Dominant stage: largest summed self cost within this trace;
        // BTreeMap iteration breaks ties toward the smaller name.
        let selfs = self_costs(trace);
        let mut per_stage: BTreeMap<&str, u64> = BTreeMap::new();
        for (idx, span) in trace.spans.iter().enumerate() {
            *per_stage.entry(span.name.as_str()).or_default() += selfs[idx];
        }
        if let Some((name, _)) =
            per_stage
                .iter()
                .fold(None::<(&str, u64)>, |best, (&name, &cost)| match best {
                    Some((_, c)) if c >= cost => best,
                    _ => Some((name, cost)),
                })
        {
            *dominant.entry(name.to_string()).or_default() += 1;
        }
        // Rung/interpreter split: the last rung span the trace entered
        // is the one that produced (or refused) the answer.
        let key = match trace.spans_named("rung").last() {
            Some(rung) => format!(
                "rung {} / {}",
                rung.attr("rung").unwrap_or("?"),
                rung.attr("family").unwrap_or("?")
            ),
            None => format!("no rung / {}", root.attr("outcome").unwrap_or("?")),
        };
        *split.entry(key).or_default() += 1;
    }
    Some(TailAttribution {
        percentile: p,
        threshold,
        tail_traces,
        dominant: dominant.into_iter().collect(),
        split: split.into_iter().collect(),
    })
}

/// One bucket of an annotation-keyed cost breakdown: every matching
/// span whose `attr` equals `value` contributes here.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AttrBucket {
    /// The annotation value the bucket aggregates (e.g. a plan shape).
    pub value: String,
    /// Matching spans across the corpus.
    pub spans: u64,
    /// Sum of span costs (inclusive of children).
    pub total_cost: u64,
}

impl AttrBucket {
    /// Canonical one-line rendering, fixed format.
    pub fn export_line(&self) -> String {
        format!(
            "attr {} spans={} total={}\n",
            self.value, self.spans, self.total_cost
        )
    }
}

/// Aggregate span cost by an annotation value: every span named
/// `span_name` carrying attribute `attr` adds its cost to the bucket
/// of that attribute's value. Spans of that name *without* the
/// attribute land in a `"?"` bucket, so the buckets always partition
/// the name's spans. Buckets are value-ordered — like [`Profile`],
/// the result is a pure function of the trace set, which is what lets
/// the perf-drift gate byte-compare cost-by-plan-shape sections.
pub fn attr_cost_breakdown(traces: &[Trace], span_name: &str, attr: &str) -> Vec<AttrBucket> {
    let mut buckets: BTreeMap<String, AttrBucket> = BTreeMap::new();
    for trace in traces {
        for span in trace.spans_named(span_name) {
            let value = span.attr(attr).unwrap_or("?");
            let e = buckets
                .entry(value.to_string())
                .or_insert_with(|| AttrBucket {
                    value: value.to_string(),
                    spans: 0,
                    total_cost: 0,
                });
            e.spans += 1;
            e.total_cost += span.cost();
        }
    }
    buckets.into_values().collect()
}

/// One stage's delta between two profiles (a stage absent from a side
/// contributes zeros there).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StageDelta {
    /// Span name.
    pub name: String,
    /// (spans, total cost) in the base profile.
    pub base: (u64, u64),
    /// (spans, total cost) in the other profile.
    pub other: (u64, u64),
}

impl StageDelta {
    /// Signed cost delta, other − base.
    pub fn cost_delta(&self) -> i64 {
        self.other.1 as i64 - self.base.1 as i64
    }

    /// True when the stage appears only in the other profile — under
    /// a clean-vs-faulted diff, a stage the faults introduced
    /// (retry-carrying rungs, `replay`, fault-annotated spans).
    pub fn only_in_other(&self) -> bool {
        self.base.0 == 0 && self.other.0 > 0
    }
}

/// A per-stage diff of two profiles, isolating what one regime spends
/// that the other does not (for clean-vs-faulted: retry, degradation,
/// and replay overhead).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProfileDiff {
    /// Union of stage names, ascending; zeros where a side lacks the
    /// stage.
    pub stages: Vec<StageDelta>,
}

impl ProfileDiff {
    /// Diff `other` against `base` (deltas read other − base).
    pub fn between(base: &Profile, other: &Profile) -> ProfileDiff {
        let mut names: Vec<&str> = base
            .stages
            .iter()
            .chain(&other.stages)
            .map(|s| s.name.as_str())
            .collect();
        names.sort_unstable();
        names.dedup();
        let side = |p: &Profile, name: &str| {
            p.stage(name)
                .map(|s| (s.spans, s.total_cost))
                .unwrap_or((0, 0))
        };
        ProfileDiff {
            stages: names
                .into_iter()
                .map(|name| StageDelta {
                    name: name.to_string(),
                    base: side(base, name),
                    other: side(other, name),
                })
                .collect(),
        }
    }

    /// Total signed cost overhead of `other` over `base`.
    pub fn overhead(&self) -> i64 {
        self.stages.iter().map(StageDelta::cost_delta).sum()
    }

    /// Canonical rendering: one fixed-format line per stage in name
    /// order; stages present on only one side are marked.
    pub fn export_text(&self) -> String {
        let mut out = format!("diff overhead={:+}\n", self.overhead());
        for d in &self.stages {
            let marker = if d.only_in_other() {
                " [only other]"
            } else if d.other.0 == 0 && d.base.0 > 0 {
                " [only base]"
            } else {
                ""
            };
            out.push_str(&format!(
                "stage {} base_spans={} base_cost={} other_spans={} other_cost={} delta={:+}{}\n",
                d.name,
                d.base.0,
                d.base.1,
                d.other.0,
                d.other.1,
                d.cost_delta(),
                marker
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::{Clock, ManualClock};
    use crate::span::TraceBuilder;
    use std::sync::Arc;

    fn builder(id: u64) -> TraceBuilder {
        TraceBuilder::new(id, Arc::new(ManualClock::new()) as Arc<dyn Clock>)
    }

    /// root ── a ── a1, a2 ; b. Costs: a1 = a2 = 1, a = 5, b = 1,
    /// root = 9. Selfs: root = 3, a = 3, b = 1, a1 = a2 = 1.
    fn sample(id: u64) -> Trace {
        let mut tb = builder(id);
        let root = tb.open("request");
        let a = tb.open("rung");
        let a1 = tb.open("interpret");
        tb.close(a1);
        let a2 = tb.open("execute");
        tb.close(a2);
        tb.close(a);
        let b = tb.open("cache");
        tb.close(b);
        tb.close(root);
        tb.finish()
    }

    #[test]
    fn self_costs_partition_the_root_cost() {
        let t = sample(1);
        let selfs = self_costs(&t);
        assert_eq!(t.spans[0].cost(), 9);
        assert_eq!(selfs, vec![3, 3, 1, 1, 1]);
        assert_eq!(selfs.iter().sum::<u64>(), t.spans[0].cost());
    }

    #[test]
    fn critical_path_descends_into_the_costliest_child() {
        let t = sample(1);
        // root → rung (cost 5 beats cache's 1) → interpret (tie with
        // execute at cost 1 → earlier-opened wins).
        assert_eq!(critical_path(&t), vec![0, 1, 2]);
        assert_eq!(critical_path_cost(&t), 3 + 3 + 1);
        assert!(critical_path_cost(&t) <= t.spans[0].cost());
    }

    #[test]
    fn empty_trace_has_an_empty_path() {
        let t = builder(0).finish();
        assert!(critical_path(&t).is_empty());
        assert_eq!(critical_path_cost(&t), 0);
        let p = Profile::from_traces(&[t]);
        assert_eq!((p.traces, p.root_cost, p.crit_cost), (1, 0, 0));
        assert!(p.stages.is_empty());
        assert!(tail_attribution(&[], 95.0).is_none());
    }

    #[test]
    fn profile_aggregates_name_ordered_and_order_insensitively() {
        let (a, b) = (sample(1), sample(2));
        let p = Profile::from_traces(&[a.clone(), b.clone()]);
        let q = Profile::from_traces(&[b, a]);
        assert_eq!(p, q, "profile is a function of the trace set");
        assert_eq!(p.traces, 2);
        assert_eq!(p.root_cost, 18);
        assert_eq!(p.crit_cost, 14);
        let names: Vec<&str> = p.stages.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(
            names,
            vec!["cache", "execute", "interpret", "request", "rung"]
        );
        let rung = p.stage("rung").unwrap();
        assert_eq!((rung.spans, rung.total_cost, rung.self_cost), (2, 10, 6));
        assert_eq!(rung.inherited_cost(), 4);
        assert_eq!((rung.crit_spans, rung.crit_self_cost), (2, 6));
        let cache = p.stage("cache").unwrap();
        assert_eq!((cache.crit_spans, cache.crit_self_cost), (0, 0));
        assert_eq!(p.export_text(), q.export_text());
        assert!(p
            .export_text()
            .starts_with("profile traces=2 root_cost=18 crit_cost=14\n"));
    }

    #[test]
    fn tail_attribution_reads_rung_and_family_attrs() {
        // Two cheap traces and one expensive one carrying a rung.
        let mut tb = builder(3);
        let root = tb.open("request");
        tb.annotate(root, "outcome", "answered");
        for _ in 0..3 {
            let r = tb.open("rung");
            tb.annotate(r, "rung", "1");
            tb.annotate(r, "family", "entity");
            tb.close(r);
        }
        tb.close(root);
        let expensive = tb.finish();
        let mut tb = builder(4);
        let root = tb.open("request");
        tb.annotate(root, "outcome", "cache_hit");
        tb.close(root);
        let cheap = tb.finish();
        let corpus = vec![cheap.clone(), expensive, cheap];
        let tail = tail_attribution(&corpus, 95.0).unwrap();
        assert_eq!(tail.threshold, 7, "p95 of {{1, 1, 7}}");
        assert_eq!(tail.tail_traces, 1);
        assert_eq!(tail.dominant, vec![("request".to_string(), 1)]);
        assert_eq!(tail.split, vec![("rung 1 / entity".to_string(), 1)]);
        // p0 covers everything, including the rung-less traces.
        let all = tail_attribution(&corpus, 0.0).unwrap();
        assert_eq!(all.tail_traces, 3);
        assert_eq!(
            all.split,
            vec![
                ("no rung / cache_hit".to_string(), 2),
                ("rung 1 / entity".to_string(), 1)
            ]
        );
        assert!(all
            .export_text()
            .contains("split no rung / cache_hit traces=2\n"));
    }

    #[test]
    fn attr_breakdown_partitions_cost_by_annotation() {
        let mut tb = builder(7);
        let root = tb.open("request");
        for shape in ["q-scan", "q-join1-agg", "q-scan"] {
            let e = tb.open("execute");
            tb.annotate(e, "plan_shape", shape);
            tb.close(e);
        }
        let bare = tb.open("execute");
        tb.close(bare);
        tb.close(root);
        let t = tb.finish();
        let buckets = attr_cost_breakdown(std::slice::from_ref(&t), "execute", "plan_shape");
        let keys: Vec<&str> = buckets.iter().map(|b| b.value.as_str()).collect();
        assert_eq!(keys, vec!["?", "q-join1-agg", "q-scan"], "value-ordered");
        let scan = &buckets[2];
        assert_eq!((scan.spans, scan.total_cost), (2, 2));
        assert_eq!(buckets[0].spans, 1, "annotation-less spans bucket as ?");
        let total: u64 = buckets.iter().map(|b| b.total_cost).sum();
        let direct: u64 = t.spans_named("execute").map(Span::cost).sum();
        assert_eq!(total, direct, "buckets partition the stage's cost");
        assert_eq!(scan.export_line(), "attr q-scan spans=2 total=2\n");
        // A pure function of the trace set, like Profile.
        assert_eq!(buckets, attr_cost_breakdown(&[t], "execute", "plan_shape"));
    }

    #[test]
    fn diff_isolates_stages_only_one_side_has() {
        let clean = Profile::from_traces(&[sample(1)]);
        let mut tb = builder(2);
        let root = tb.open("request");
        let r = tb.open("replay");
        tb.close(r);
        tb.close(root);
        let faulted = Profile::from_traces(&[sample(1), tb.finish()]);
        let diff = ProfileDiff::between(&clean, &faulted);
        let replay = diff.stages.iter().find(|d| d.name == "replay").unwrap();
        assert!(replay.only_in_other());
        assert_eq!(replay.other, (1, 1));
        let cache = diff.stages.iter().find(|d| d.name == "cache").unwrap();
        assert!(!cache.only_in_other());
        assert_eq!(cache.cost_delta(), 0);
        assert_eq!(diff.overhead(), 3 + 1, "extra root (3) + replay (1)");
        assert!(diff.export_text().contains("[only other]"));
    }
}
