//! Injectable logical time.
//!
//! The workspace invariant — no wall-clock in library code — is
//! anchored here: every tick any layer ever sees comes from a [`Clock`]
//! the *caller* owns. Deadline decisions in the serving runtime and
//! coarse span timestamps in the tracer both read the same injected
//! clock, so every observable timestamp is a pure function of the
//! drive sequence, not of scheduler timing. (The serving crate
//! re-exports these types; they moved here so the tracer below it in
//! the dependency order can stamp spans with the same time source.)

use std::sync::atomic::{AtomicU64, Ordering};

/// A monotonic tick source. Ticks are dimensionless; the driver
/// decides what one tick means (the load generator advances one tick
/// per submitted batch).
pub trait Clock: Send + Sync {
    /// Current tick.
    fn now(&self) -> u64;
}

/// A clock that moves only when told to.
#[derive(Debug, Default)]
pub struct ManualClock {
    ticks: AtomicU64,
}

impl ManualClock {
    /// A clock starting at tick 0.
    pub fn new() -> ManualClock {
        ManualClock::default()
    }

    /// A clock starting at `start`.
    pub fn starting_at(start: u64) -> ManualClock {
        ManualClock {
            ticks: AtomicU64::new(start),
        }
    }

    /// Advance by `delta` ticks, returning the new time. Saturates at
    /// `u64::MAX` instead of wrapping: monotonicity is an invariant
    /// other layers assert on (deadline admission, span timestamps), so
    /// the clock refuses to go backwards even at the representable
    /// boundary.
    pub fn advance(&self, delta: u64) -> u64 {
        let prev = self
            .ticks
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |t| {
                Some(t.saturating_add(delta))
            })
            .expect("update closure never rejects");
        prev.saturating_add(delta)
    }

    /// Jump to an absolute tick (must not move backwards in normal
    /// use; not enforced, since tests rewind freely).
    pub fn set(&self, ticks: u64) {
        self.ticks.store(ticks, Ordering::Relaxed);
    }
}

impl Clock for ManualClock {
    fn now(&self) -> u64 {
        self.ticks.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manual_clock_moves_only_on_advance() {
        let c = ManualClock::new();
        assert_eq!(c.now(), 0);
        assert_eq!(c.advance(5), 5);
        assert_eq!(c.now(), 5);
        c.set(100);
        assert_eq!(c.now(), 100);
    }

    #[test]
    fn starting_at_offsets() {
        let c = ManualClock::starting_at(7);
        assert_eq!(c.now(), 7);
    }

    #[test]
    fn advance_saturates_instead_of_wrapping() {
        let c = ManualClock::starting_at(u64::MAX - 3);
        assert_eq!(c.advance(2), u64::MAX - 1, "below the boundary: exact");
        assert_eq!(c.advance(10), u64::MAX, "over the boundary: clamps");
        assert_eq!(c.now(), u64::MAX, "never wrapped past zero");
        assert_eq!(c.advance(1), u64::MAX, "pinned at the ceiling");
        assert_eq!(c.advance(u64::MAX), u64::MAX, "even by the full range");
    }
}
