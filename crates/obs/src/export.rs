//! Deterministic trace-corpus exporters: Chrome Trace Event JSON and
//! folded stacks for flamegraphs.
//!
//! Both formats are byte-reproducible under the same contract as the
//! sink's JSONL: traces are emitted ascending by id and every span
//! field is logical (trace-tick sequence numbers, never wall-clock),
//! so two runs of the same seeded stream export identical bytes. The
//! Chrome format loads into `about://tracing` / Perfetto; the folded
//! format feeds `flamegraph.pl` (or any folded-stack renderer)
//! directly.

use std::collections::BTreeMap;

use crate::profile::self_costs;
use crate::span::{push_json_str, Trace};

/// Render a corpus as Chrome Trace Event JSON (one complete-phase
/// `"ph":"X"` event per span). The trace id becomes the `pid`, so
/// each request renders as its own process row; `ts`/`dur` are trace
/// ticks (the span's open sequence number and cost). Attributes
/// become `args`, first value per key. Traces are emitted ascending
/// by id regardless of input order.
pub fn chrome_trace_json(traces: &[Trace]) -> String {
    let mut order: Vec<usize> = (0..traces.len()).collect();
    order.sort_by_key(|&i| traces[i].id);
    let mut out = String::from("{\"traceEvents\":[");
    let mut first = true;
    for idx in order {
        let trace = &traces[idx];
        for span in &trace.spans {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str("{\"name\":");
            push_json_str(&mut out, &span.name);
            out.push_str(",\"ph\":\"X\",\"ts\":");
            out.push_str(&span.seq_open.to_string());
            out.push_str(",\"dur\":");
            out.push_str(&span.cost().to_string());
            out.push_str(",\"pid\":");
            out.push_str(&trace.id.to_string());
            out.push_str(",\"tid\":0,\"args\":{");
            let mut seen: Vec<&str> = Vec::new();
            for (k, v) in &span.attrs {
                if seen.contains(&k.as_str()) {
                    continue; // first value per key, like Span::attr
                }
                if !seen.is_empty() {
                    out.push(',');
                }
                seen.push(k);
                push_json_str(&mut out, k);
                out.push(':');
                push_json_str(&mut out, v);
            }
            out.push_str("}}");
        }
    }
    out.push_str("]}");
    out
}

/// Render a corpus as folded stacks: one `root;child;…;leaf count`
/// line per distinct stack, where `count` is the summed *self* cost
/// of every span with that stack across the corpus. Lines are sorted
/// by stack string; trailing newline after every line. Feed straight
/// into a flamegraph renderer.
pub fn folded_stacks(traces: &[Trace]) -> String {
    let mut folded: BTreeMap<String, u64> = BTreeMap::new();
    for trace in traces {
        let selfs = self_costs(trace);
        // Build each span's stack by extending its parent's (parents
        // precede children in a recorded trace).
        let mut stacks: Vec<String> = Vec::with_capacity(trace.spans.len());
        for (idx, span) in trace.spans.iter().enumerate() {
            let stack = match span.parent {
                Some(p) => format!("{};{}", stacks[p], span.name),
                None => span.name.clone(),
            };
            *folded.entry(stack.clone()).or_default() += selfs[idx];
            stacks.push(stack);
        }
    }
    let mut out = String::new();
    for (stack, count) in folded {
        out.push_str(&format!("{stack} {count}\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::{Clock, ManualClock};
    use crate::span::TraceBuilder;
    use std::sync::Arc;

    fn sample(id: u64) -> Trace {
        let clock = Arc::new(ManualClock::new());
        let mut tb = TraceBuilder::new(id, clock as Arc<dyn Clock>);
        let root = tb.open("request");
        tb.annotate(root, "outcome", "answered");
        tb.annotate(root, "outcome", "shadowed"); // dup key: dropped in args
        let inner = tb.open("rung");
        tb.close(inner);
        tb.close(root);
        tb.finish()
    }

    #[test]
    fn chrome_events_are_id_ordered_and_stable() {
        let json = chrome_trace_json(&[sample(7), sample(3)]);
        assert_eq!(
            json,
            "{\"traceEvents\":[\
             {\"name\":\"request\",\"ph\":\"X\",\"ts\":1,\"dur\":3,\"pid\":3,\"tid\":0,\
             \"args\":{\"outcome\":\"answered\"}},\
             {\"name\":\"rung\",\"ph\":\"X\",\"ts\":2,\"dur\":1,\"pid\":3,\"tid\":0,\"args\":{}},\
             {\"name\":\"request\",\"ph\":\"X\",\"ts\":1,\"dur\":3,\"pid\":7,\"tid\":0,\
             \"args\":{\"outcome\":\"answered\"}},\
             {\"name\":\"rung\",\"ph\":\"X\",\"ts\":2,\"dur\":1,\"pid\":7,\"tid\":0,\"args\":{}}\
             ]}"
        );
        // Input order never shows in the output.
        assert_eq!(json, chrome_trace_json(&[sample(3), sample(7)]));
    }

    #[test]
    fn empty_corpus_exports_are_trivial() {
        assert_eq!(chrome_trace_json(&[]), "{\"traceEvents\":[]}");
        assert_eq!(folded_stacks(&[]), "");
    }

    #[test]
    fn folded_stacks_sum_self_costs_across_the_corpus() {
        let folded = folded_stacks(&[sample(1), sample(2)]);
        // Per trace: request self = 2 (rung open + own close), rung
        // self = 1; two traces double both.
        assert_eq!(folded, "request 4\nrequest;rung 2\n");
        assert_eq!(folded, folded_stacks(&[sample(2), sample(1)]));
    }
}
