//! Deterministic SLO tracking: error-budget burn rates over windowed
//! series, with replayable fire/clear health events.
//!
//! The model is the multi-window burn-rate discipline of production
//! SRE practice, transplanted onto logical ticks so that alerting is
//! as reproducible as everything else in this workspace:
//!
//! * An objective is a target *good share* in milli-units (e.g. 990 =
//!   99.0% of requests good). Its error budget is `1000 - target`.
//! * The **burn rate** over a span of windows is the observed error
//!   share divided by the budget, reported ×1000 in integer milli
//!   math: `burn_milli = (bad·10⁶ / total) / (1000 − target)`.
//!   Burn 1000 means the budget is being spent exactly at the
//!   sustainable rate; 2000 means twice as fast.
//! * An objective **fires** when the burn over *both* a short and a
//!   long window span sits at or above the policy threshold — the
//!   short span makes the signal responsive, the long span makes it
//!   ignore single-window blips. It **clears** when the short-span
//!   burn falls back below the threshold (the long span is the
//!   memory; requiring it to drain before clearing would hold alerts
//!   long after recovery).
//! * Evaluation happens at explicit ticks the caller chooses (the
//!   serving layer evaluates at each drain), so the event log is a
//!   pure function of the fed stream — run twice, byte-identical.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::Arc;

use crate::clock::ManualClock;
use crate::span::{Trace, TraceBuilder};
use crate::timeseries::WindowedCounter;

/// Trace ids at and above this base are health events, not requests
/// (serving request ids are small sequential integers; this keeps the
/// two id spaces disjoint in a shared sink).
pub const HEALTH_TRACE_BASE: u64 = 1 << 48;

/// What an [`SloPolicy`] counts as good vs. bad.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SloKind {
    /// Good = the request was served (not refused/shed/expired).
    Availability,
    /// Good = the served request's sojourn sat at or below the
    /// threshold (in ticks).
    Latency {
        /// Inclusive sojourn-tick bound for a "good" request.
        threshold_ticks: u64,
    },
}

impl SloKind {
    /// Canonical lowercase label (`availability` / `latency`).
    pub fn label(&self) -> &'static str {
        match self {
            SloKind::Availability => "availability",
            SloKind::Latency { .. } => "latency",
        }
    }
}

/// One service-level objective: a good-share target plus the window
/// spans and burn threshold that decide when it fires.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SloPolicy {
    /// Objective name (unique within an engine; used in renderings
    /// and metrics keys).
    pub objective: String,
    /// What good/bad means — informational here (the *feeder*
    /// classifies observations); carried so renderings are
    /// self-describing.
    pub kind: SloKind,
    /// Target good share in milli-units, clamped to ≤ 999 so the
    /// error budget `1000 - target` is never zero.
    pub target_milli: u64,
    /// Short span length in windows (responsiveness), ≥ 1.
    pub short_windows: u64,
    /// Long span length in windows (memory), ≥ `short_windows`.
    pub long_windows: u64,
    /// Fire when both spans' burn (milli) reaches this value; 1000 =
    /// burning the budget exactly at the sustainable rate.
    pub fire_burn_milli: u64,
}

impl SloPolicy {
    /// The error budget in milli-units: `1000 - target` (≥ 1).
    pub fn budget_milli(&self) -> u64 {
        1000 - self.target_milli.min(999)
    }
}

/// Did the objective start or stop violating its burn threshold?
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HealthEventKind {
    /// Burn crossed the threshold on both spans.
    Fired,
    /// Short-span burn fell back below the threshold.
    Cleared,
}

impl HealthEventKind {
    /// Canonical lowercase label (`fired` / `cleared`).
    pub fn label(&self) -> &'static str {
        match self {
            HealthEventKind::Fired => "fired",
            HealthEventKind::Cleared => "cleared",
        }
    }
}

/// One fire/clear transition, with the window evidence that caused it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HealthEvent {
    /// Position in the engine's event log (0-based, dense).
    pub seq: u64,
    /// Objective name from the policy.
    pub objective: String,
    /// Fired or cleared.
    pub kind: HealthEventKind,
    /// Window index the evaluation tick fell into.
    pub window: u64,
    /// Tick the engine was evaluated at.
    pub tick: u64,
    /// Burn (milli) over the short span at evaluation.
    pub short_burn_milli: u64,
    /// Burn (milli) over the long span at evaluation.
    pub long_burn_milli: u64,
    /// Bad / total counts over the short span.
    pub short_counts: (u64, u64),
    /// Bad / total counts over the long span.
    pub long_counts: (u64, u64),
}

impl HealthEvent {
    /// Canonical one-line rendering (what
    /// [`SloEngine::render_events`] concatenates).
    pub fn render(&self) -> String {
        format!(
            "health seq={} objective={} event={} window=w{} tick={} short_burn={} ({}/{}) long_burn={} ({}/{})",
            self.seq,
            self.objective,
            self.kind.label(),
            self.window,
            self.tick,
            self.short_burn_milli,
            self.short_counts.0,
            self.short_counts.1,
            self.long_burn_milli,
            self.long_counts.0,
            self.long_counts.1,
        )
    }

    /// Build a single-span trace carrying this event's evidence, for
    /// pushing into a [`TraceSink`](crate::TraceSink) alongside
    /// request traces. `trace_id` should come from
    /// [`HEALTH_TRACE_BASE`] plus an emission counter so health ids
    /// never collide with request ids.
    pub fn to_trace(&self, trace_id: u64) -> Trace {
        let clock = Arc::new(ManualClock::starting_at(self.tick));
        let mut tb = TraceBuilder::new(trace_id, clock);
        let root = tb.open("health");
        tb.annotate(root, "objective", &self.objective);
        tb.annotate(root, "event", self.kind.label());
        tb.annotate(root, "window", self.window.to_string());
        tb.annotate(root, "seq", self.seq.to_string());
        tb.annotate(root, "short_burn_milli", self.short_burn_milli.to_string());
        tb.annotate(root, "long_burn_milli", self.long_burn_milli.to_string());
        tb.annotate(root, "short_bad", self.short_counts.0.to_string());
        tb.annotate(root, "short_total", self.short_counts.1.to_string());
        tb.annotate(root, "long_bad", self.long_counts.0.to_string());
        tb.annotate(root, "long_total", self.long_counts.1.to_string());
        tb.close(root);
        tb.finish()
    }
}

/// Per-objective feed state: good/bad windowed counters plus the
/// current firing latch.
#[derive(Debug, Clone)]
struct ObjectiveState {
    policy: SloPolicy,
    good: WindowedCounter,
    bad: WindowedCounter,
    firing: bool,
}

/// Burn evidence over one span of windows.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BurnSample {
    /// Burn rate ×1000 (0 when the span saw no traffic).
    pub burn_milli: u64,
    /// Bad observations in the span.
    pub bad: u64,
    /// Total observations in the span.
    pub total: u64,
}

/// A deterministic multi-objective SLO engine over windowed good/bad
/// counters. Feed with [`SloEngine::record`], evaluate at explicit
/// ticks with [`SloEngine::evaluate`]; the accumulated event log and
/// its rendering are pure functions of those calls.
#[derive(Debug, Clone)]
pub struct SloEngine {
    width: u64,
    capacity: usize,
    objectives: BTreeMap<String, ObjectiveState>,
    events: Vec<HealthEvent>,
}

impl SloEngine {
    /// An engine whose objectives bucket observations into
    /// `width`-tick windows, retaining `capacity` windows per series.
    /// Panics if either is zero.
    pub fn new(width: u64, capacity: usize) -> SloEngine {
        assert!(width > 0, "window width must be positive");
        assert!(capacity > 0, "window capacity must be positive");
        SloEngine {
            width,
            capacity,
            objectives: BTreeMap::new(),
            events: Vec::new(),
        }
    }

    /// Register an objective (replacing any previous one of the same
    /// name). Normalizes `short_windows`/`long_windows` to ≥ 1 and
    /// long ≥ short; panics if `long_windows` exceeds the ring
    /// capacity (the span would silently read evicted windows).
    pub fn add_objective(&mut self, policy: SloPolicy) {
        let mut policy = policy;
        policy.short_windows = policy.short_windows.max(1);
        policy.long_windows = policy.long_windows.max(policy.short_windows);
        assert!(
            policy.long_windows <= self.capacity as u64,
            "long span exceeds ring capacity"
        );
        let state = ObjectiveState {
            good: WindowedCounter::new(self.width, self.capacity),
            bad: WindowedCounter::new(self.width, self.capacity),
            firing: false,
            policy,
        };
        self.objectives
            .insert(state.policy.objective.clone(), state);
    }

    /// Registered policies, in objective-name order.
    pub fn policies(&self) -> Vec<&SloPolicy> {
        self.objectives.values().map(|s| &s.policy).collect()
    }

    /// Record `good`/`bad` observations for `objective` at `tick`.
    /// Unknown objectives are ignored (the feeder may classify more
    /// outcomes than the engine tracks).
    pub fn record(&mut self, objective: &str, tick: u64, good: u64, bad: u64) {
        if let Some(state) = self.objectives.get_mut(objective) {
            if good > 0 {
                state.good.record(tick, good);
            }
            if bad > 0 {
                state.bad.record(tick, bad);
            }
        }
    }

    fn burn_of(state: &ObjectiveState, span: u64) -> BurnSample {
        let bad = state.bad.sum_last(span);
        let good = state.good.sum_last(span);
        let total = good.saturating_add(bad);
        if total == 0 {
            return BurnSample {
                burn_milli: 0,
                bad: 0,
                total: 0,
            };
        }
        let error_milli = bad.saturating_mul(1000) / total;
        BurnSample {
            burn_milli: error_milli.saturating_mul(1000) / state.policy.budget_milli(),
            bad,
            total,
        }
    }

    /// Burn over the last `span` windows of `objective` (None for an
    /// unknown objective).
    pub fn burn(&self, objective: &str, span: u64) -> Option<BurnSample> {
        self.objectives
            .get(objective)
            .map(|s| SloEngine::burn_of(s, span))
    }

    /// Burn over the policy's short span.
    pub fn short_burn_milli(&self, objective: &str) -> Option<u64> {
        self.objectives
            .get(objective)
            .map(|s| SloEngine::burn_of(s, s.policy.short_windows).burn_milli)
    }

    /// The maximum short-span burn across all objectives (0 with no
    /// objectives) — the overload controller's early-warning signal.
    pub fn max_short_burn_milli(&self) -> u64 {
        self.objectives
            .values()
            .map(|s| SloEngine::burn_of(s, s.policy.short_windows).burn_milli)
            .max()
            .unwrap_or(0)
    }

    /// Whether `objective` is currently firing.
    pub fn is_firing(&self, objective: &str) -> bool {
        self.objectives.get(objective).is_some_and(|s| s.firing)
    }

    /// Align every series to the window containing `tick`, then apply
    /// the fire/clear rules per objective (in name order). Returns the
    /// events emitted by this evaluation; they are also appended to
    /// the engine's log.
    pub fn evaluate(&mut self, tick: u64) -> Vec<HealthEvent> {
        let window = tick / self.width;
        let mut emitted = Vec::new();
        let base_seq = self.events.len() as u64;
        for state in self.objectives.values_mut() {
            // Roll both series forward so quiet windows read as zero
            // traffic rather than staying pinned at the last burst.
            state.good.advance_to(window);
            state.bad.advance_to(window);
            let short = SloEngine::burn_of(state, state.policy.short_windows);
            let long = SloEngine::burn_of(state, state.policy.long_windows);
            let threshold = state.policy.fire_burn_milli;
            let next = if state.firing {
                short.burn_milli >= threshold
            } else {
                short.burn_milli >= threshold && long.burn_milli >= threshold
            };
            if next != state.firing {
                state.firing = next;
                let event = HealthEvent {
                    seq: base_seq + emitted.len() as u64,
                    objective: state.policy.objective.clone(),
                    kind: if next {
                        HealthEventKind::Fired
                    } else {
                        HealthEventKind::Cleared
                    },
                    window,
                    tick,
                    short_burn_milli: short.burn_milli,
                    long_burn_milli: long.burn_milli,
                    short_counts: (short.bad, short.total),
                    long_counts: (long.bad, long.total),
                };
                emitted.push(event);
            }
        }
        self.events.extend(emitted.iter().cloned());
        emitted
    }

    /// The full event log, in emission order.
    pub fn events(&self) -> &[HealthEvent] {
        &self.events
    }

    /// Canonical text rendering of the event log, one line per event
    /// (empty string for an empty log).
    pub fn render_events(&self) -> String {
        let mut out = String::new();
        for event in &self.events {
            let _ = writeln!(out, "{}", event.render());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn availability(target: u64, short: u64, long: u64, fire: u64) -> SloPolicy {
        SloPolicy {
            objective: "availability".to_string(),
            kind: SloKind::Availability,
            target_milli: target,
            short_windows: short,
            long_windows: long,
            fire_burn_milli: fire,
        }
    }

    #[test]
    fn budget_never_zero() {
        let p = availability(1000, 1, 1, 1000);
        assert_eq!(p.budget_milli(), 1);
        assert_eq!(availability(990, 1, 1, 1000).budget_milli(), 10);
    }

    #[test]
    fn burn_math_in_milli() {
        let mut e = SloEngine::new(4, 16);
        e.add_objective(availability(990, 2, 8, 2000));
        // 90 good, 10 bad in window 0: error = 100‰, budget = 10‰,
        // burn = 10× = 10000 milli.
        e.record("availability", 0, 90, 10);
        let b = e.burn("availability", 2).unwrap();
        assert_eq!(
            b,
            BurnSample {
                burn_milli: 10_000,
                bad: 10,
                total: 100
            }
        );
        // No traffic → burn 0, not a division by zero.
        assert_eq!(e.burn("missing", 2), None,);
        let empty = SloEngine::new(4, 16);
        assert_eq!(empty.max_short_burn_milli(), 0);
    }

    #[test]
    fn fires_on_both_spans_and_clears_on_short() {
        let mut e = SloEngine::new(1, 16);
        e.add_objective(availability(990, 2, 4, 2000));
        // Window 0: all good. Long and short burns are 0.
        e.record("availability", 0, 50, 0);
        assert!(e.evaluate(0).is_empty());
        // Window 1: heavy errors → both spans hot → fires.
        e.record("availability", 1, 10, 40);
        let events = e.evaluate(1);
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].kind, HealthEventKind::Fired);
        assert!(e.is_firing("availability"));
        // Re-evaluating while still hot emits nothing (latched).
        assert!(e.evaluate(1).is_empty());
        // Two quiet windows later the short span drains → clears,
        // even though the long span still remembers the burst.
        e.record("availability", 2, 50, 0);
        e.record("availability", 3, 50, 0);
        let events = e.evaluate(3);
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].kind, HealthEventKind::Cleared);
        assert!(!e.is_firing("availability"));
        assert_eq!(e.events().len(), 2);
    }

    #[test]
    fn single_window_blip_does_not_fire() {
        let mut e = SloEngine::new(1, 16);
        e.add_objective(availability(990, 1, 8, 2000));
        // Seven good windows, then one bad one: short burn is hot but
        // the long span dilutes it below threshold.
        for w in 0..7 {
            e.record("availability", w, 100, 0);
            assert!(e.evaluate(w).is_empty());
        }
        e.record("availability", 7, 99, 1);
        // error over 8 windows = 1/800 → 1‰ → burn 100 < 2000.
        assert!(e.evaluate(7).is_empty());
        assert!(!e.is_firing("availability"));
    }

    #[test]
    fn quiet_windows_decay_the_burn() {
        let mut e = SloEngine::new(1, 16);
        e.add_objective(availability(990, 2, 2, 1000));
        e.record("availability", 0, 0, 10);
        let events = e.evaluate(0);
        assert_eq!(events.len(), 1);
        // Nothing recorded afterwards: evaluating three windows later
        // must advance the rings and clear.
        let events = e.evaluate(3);
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].kind, HealthEventKind::Cleared);
        assert_eq!(events[0].short_counts, (0, 0));
    }

    #[test]
    fn event_render_and_trace_are_canonical() {
        let event = HealthEvent {
            seq: 3,
            objective: "latency".to_string(),
            kind: HealthEventKind::Fired,
            window: 12,
            tick: 99,
            short_burn_milli: 2500,
            long_burn_milli: 2100,
            short_counts: (5, 40),
            long_counts: (11, 160),
        };
        assert_eq!(
            event.render(),
            "health seq=3 objective=latency event=fired window=w12 tick=99 \
             short_burn=2500 (5/40) long_burn=2100 (11/160)"
        );
        let trace = event.to_trace(HEALTH_TRACE_BASE + 3);
        assert_eq!(trace.id, HEALTH_TRACE_BASE + 3);
        let root = trace.root().unwrap();
        assert_eq!(root.name, "health");
        assert_eq!(root.attr("objective"), Some("latency"));
        assert_eq!(root.attr("event"), Some("fired"));
        assert_eq!(root.attr("short_burn_milli"), Some("2500"));
        assert_eq!(root.tick_open, 99);
        // Rendering twice is byte-identical.
        assert_eq!(
            trace.to_json(),
            event.to_trace(HEALTH_TRACE_BASE + 3).to_json()
        );
    }

    #[test]
    fn evaluation_replays_byte_identically() {
        let run = || {
            let mut e = SloEngine::new(2, 16);
            e.add_objective(availability(990, 2, 6, 2000));
            e.add_objective(SloPolicy {
                objective: "latency".to_string(),
                kind: SloKind::Latency { threshold_ticks: 4 },
                target_milli: 950,
                short_windows: 2,
                long_windows: 6,
                fire_burn_milli: 2000,
            });
            for tick in 0..40u64 {
                let bad = u64::from(tick % 7 == 0);
                e.record("availability", tick, 3, bad);
                e.record("latency", tick, 2, bad * 2);
                if tick % 4 == 3 {
                    e.evaluate(tick);
                }
            }
            e.render_events()
        };
        let a = run();
        assert_eq!(a, run());
    }
}
