//! A bounded, order-insensitive collector for finished traces.
//!
//! Worker threads finish traces in whatever interleaving the scheduler
//! produces; a deterministic exporter cannot depend on that order. The
//! sink therefore keys traces by id and makes every observable
//! behavior a function of the *set* of pushed traces only: retention
//! keeps the `capacity` largest ids (trace ids are submission order,
//! so largest = newest — a ring buffer over logical time), and JSONL
//! export walks ids ascending. Two runs that push the same traces
//! export byte-identical JSONL no matter how their threads raced.
//!
//! For soak-scale runs the sink additionally supports a deterministic
//! *sampling* policy ([`TraceSink::with_sampling`]): only traces whose
//! id is a multiple of `every` are admitted at all; the rest are
//! counted in [`TraceSink::sampled_out`] and never stored. Because the
//! keep/discard decision is a pure function of the id — not of
//! arrival order, sink occupancy, or randomness — a sampled sink is
//! exactly as reproducible as an unsampled one, and `every = 1` (the
//! [`TraceSink::new`] default) is byte-for-byte the old behavior.

use std::collections::BTreeMap;
use std::sync::Mutex;

use crate::span::Trace;

/// Bounded trace store; see the module docs for the determinism model.
#[derive(Debug)]
pub struct TraceSink {
    capacity: usize,
    every: u64,
    inner: Mutex<Inner>,
}

#[derive(Debug, Default)]
struct Inner {
    traces: BTreeMap<u64, Trace>,
    dropped: u64,
    sampled_out: u64,
}

impl TraceSink {
    /// A sink retaining at most `capacity` traces (at least 1),
    /// admitting every trace.
    pub fn new(capacity: usize) -> TraceSink {
        TraceSink::with_sampling(capacity, 1)
    }

    /// A sink that admits only traces whose id is a multiple of
    /// `every` (at least 1; `every = 1` admits everything). Discarded
    /// traces are counted, never stored — the memory cost of a soak
    /// run's tracing is `capacity` traces regardless of stream length.
    pub fn with_sampling(capacity: usize, every: u64) -> TraceSink {
        TraceSink {
            capacity: capacity.max(1),
            every: every.max(1),
            inner: Mutex::new(Inner::default()),
        }
    }

    /// Insert a finished trace. Traces sampled out by the `every`
    /// policy are discarded immediately; otherwise, when full, the
    /// smallest id in the sink (oldest request, possibly the incoming
    /// one) is evicted.
    pub fn push(&self, trace: Trace) {
        let mut inner = self.inner.lock().expect("sink lock");
        if !trace.id.is_multiple_of(self.every) {
            inner.sampled_out += 1;
            return;
        }
        inner.traces.insert(trace.id, trace);
        while inner.traces.len() > self.capacity {
            let oldest = *inner.traces.keys().next().expect("non-empty");
            inner.traces.remove(&oldest);
            inner.dropped += 1;
        }
    }

    /// Number of retained traces.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("sink lock").traces.len()
    }

    /// True when nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Traces evicted so far.
    pub fn dropped(&self) -> u64 {
        self.inner.lock().expect("sink lock").dropped
    }

    /// Traces discarded by the sampling policy (never stored at all —
    /// distinct from `dropped`, which counts capacity evictions of
    /// admitted traces).
    pub fn sampled_out(&self) -> u64 {
        self.inner.lock().expect("sink lock").sampled_out
    }

    /// All retained traces, ascending by id.
    pub fn traces(&self) -> Vec<Trace> {
        self.inner
            .lock()
            .expect("sink lock")
            .traces
            .values()
            .cloned()
            .collect()
    }

    /// One JSON object per line, ascending by trace id, trailing
    /// newline after every line. Byte-identical across runs that
    /// retained the same traces.
    pub fn export_jsonl(&self) -> String {
        let inner = self.inner.lock().expect("sink lock");
        let mut out = String::new();
        for trace in inner.traces.values() {
            out.push_str(&trace.to_json());
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::{Clock, ManualClock};
    use crate::span::TraceBuilder;
    use std::sync::Arc;

    fn trace(id: u64) -> Trace {
        let clock = Arc::new(ManualClock::new());
        let mut tb = TraceBuilder::new(id, clock as Arc<dyn Clock>);
        let s = tb.open("request");
        tb.close(s);
        tb.finish()
    }

    #[test]
    fn retains_the_largest_ids_regardless_of_arrival_order() {
        for order in [vec![0, 1, 2, 3], vec![3, 1, 0, 2], vec![2, 3, 0, 1]] {
            let sink = TraceSink::new(2);
            for id in order {
                sink.push(trace(id));
            }
            let kept: Vec<u64> = sink.traces().iter().map(|t| t.id).collect();
            assert_eq!(kept, vec![2, 3]);
            assert_eq!(sink.dropped(), 2);
        }
    }

    #[test]
    fn export_is_ascending_and_newline_terminated() {
        let sink = TraceSink::new(8);
        sink.push(trace(5));
        sink.push(trace(1));
        let jsonl = sink.export_jsonl();
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("{\"trace\":1,"));
        assert!(lines[1].starts_with("{\"trace\":5,"));
        assert!(jsonl.ends_with('\n'));
        assert!(!sink.is_empty());
        assert_eq!(sink.len(), 2);
    }

    #[test]
    fn smallest_id_into_a_full_sink_is_evicted_immediately() {
        // The documented edge case: when the incoming trace has the
        // smallest id in a full sink, it is itself the eviction victim
        // — inserted, then dropped in the same push — and counts
        // toward `dropped` like any other eviction.
        let sink = TraceSink::new(2);
        sink.push(trace(10));
        sink.push(trace(20));
        assert_eq!(sink.dropped(), 0);
        sink.push(trace(5)); // smaller than everything retained
        let kept: Vec<u64> = sink.traces().iter().map(|t| t.id).collect();
        assert_eq!(
            kept,
            vec![10, 20],
            "the incoming trace never displaces a larger id"
        );
        assert_eq!(sink.dropped(), 1, "the immediate eviction is counted");
        // And the export is exactly as if the push never happened.
        let before = sink.export_jsonl();
        sink.push(trace(1));
        assert_eq!(sink.export_jsonl(), before);
        assert_eq!(sink.dropped(), 2);
    }

    #[test]
    fn zero_capacity_still_retains_one() {
        let sink = TraceSink::new(0);
        sink.push(trace(9));
        assert_eq!(sink.len(), 1);
    }

    #[test]
    fn sampling_keeps_exactly_the_multiples_of_every() {
        let sink = TraceSink::with_sampling(100, 4);
        for id in 0..20 {
            sink.push(trace(id));
        }
        let kept: Vec<u64> = sink.traces().iter().map(|t| t.id).collect();
        assert_eq!(kept, vec![0, 4, 8, 12, 16]);
        assert_eq!(sink.sampled_out(), 15);
        assert_eq!(sink.dropped(), 0, "sampled-out traces are not evictions");
    }

    #[test]
    fn sampling_is_order_insensitive_like_retention() {
        let ascending = TraceSink::with_sampling(2, 3);
        let shuffled = TraceSink::with_sampling(2, 3);
        for id in 0..12 {
            ascending.push(trace(id));
        }
        for id in [7, 0, 11, 3, 9, 1, 6, 4, 10, 2, 8, 5] {
            shuffled.push(trace(id));
        }
        assert_eq!(ascending.export_jsonl(), shuffled.export_jsonl());
        assert_eq!(ascending.sampled_out(), shuffled.sampled_out());
        assert_eq!(ascending.dropped(), shuffled.dropped());
    }

    #[test]
    fn every_one_is_the_unsampled_sink() {
        let plain = TraceSink::new(3);
        let sampled = TraceSink::with_sampling(3, 1);
        for id in 0..10 {
            plain.push(trace(id));
            sampled.push(trace(id));
        }
        assert_eq!(plain.export_jsonl(), sampled.export_jsonl());
        assert_eq!(sampled.sampled_out(), 0);
        // every = 0 is clamped to 1, not "discard everything".
        let clamped = TraceSink::with_sampling(3, 0);
        clamped.push(trace(1));
        assert_eq!(clamped.len(), 1);
    }
}
