//! A bounded, order-insensitive collector for finished traces.
//!
//! Worker threads finish traces in whatever interleaving the scheduler
//! produces; a deterministic exporter cannot depend on that order. The
//! sink therefore keys traces by id and makes every observable
//! behavior a function of the *set* of pushed traces only: retention
//! keeps the `capacity` largest ids (trace ids are submission order,
//! so largest = newest — a ring buffer over logical time), and JSONL
//! export walks ids ascending. Two runs that push the same traces
//! export byte-identical JSONL no matter how their threads raced.

use std::collections::BTreeMap;
use std::sync::Mutex;

use crate::span::Trace;

/// Bounded trace store; see the module docs for the determinism model.
#[derive(Debug)]
pub struct TraceSink {
    capacity: usize,
    inner: Mutex<Inner>,
}

#[derive(Debug, Default)]
struct Inner {
    traces: BTreeMap<u64, Trace>,
    dropped: u64,
}

impl TraceSink {
    /// A sink retaining at most `capacity` traces (at least 1).
    pub fn new(capacity: usize) -> TraceSink {
        TraceSink {
            capacity: capacity.max(1),
            inner: Mutex::new(Inner::default()),
        }
    }

    /// Insert a finished trace. When full, the smallest id in the sink
    /// (oldest request, possibly the incoming one) is evicted.
    pub fn push(&self, trace: Trace) {
        let mut inner = self.inner.lock().expect("sink lock");
        inner.traces.insert(trace.id, trace);
        while inner.traces.len() > self.capacity {
            let oldest = *inner.traces.keys().next().expect("non-empty");
            inner.traces.remove(&oldest);
            inner.dropped += 1;
        }
    }

    /// Number of retained traces.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("sink lock").traces.len()
    }

    /// True when nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Traces evicted so far.
    pub fn dropped(&self) -> u64 {
        self.inner.lock().expect("sink lock").dropped
    }

    /// All retained traces, ascending by id.
    pub fn traces(&self) -> Vec<Trace> {
        self.inner
            .lock()
            .expect("sink lock")
            .traces
            .values()
            .cloned()
            .collect()
    }

    /// One JSON object per line, ascending by trace id, trailing
    /// newline after every line. Byte-identical across runs that
    /// retained the same traces.
    pub fn export_jsonl(&self) -> String {
        let inner = self.inner.lock().expect("sink lock");
        let mut out = String::new();
        for trace in inner.traces.values() {
            out.push_str(&trace.to_json());
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::{Clock, ManualClock};
    use crate::span::TraceBuilder;
    use std::sync::Arc;

    fn trace(id: u64) -> Trace {
        let clock = Arc::new(ManualClock::new());
        let mut tb = TraceBuilder::new(id, clock as Arc<dyn Clock>);
        let s = tb.open("request");
        tb.close(s);
        tb.finish()
    }

    #[test]
    fn retains_the_largest_ids_regardless_of_arrival_order() {
        for order in [vec![0, 1, 2, 3], vec![3, 1, 0, 2], vec![2, 3, 0, 1]] {
            let sink = TraceSink::new(2);
            for id in order {
                sink.push(trace(id));
            }
            let kept: Vec<u64> = sink.traces().iter().map(|t| t.id).collect();
            assert_eq!(kept, vec![2, 3]);
            assert_eq!(sink.dropped(), 2);
        }
    }

    #[test]
    fn export_is_ascending_and_newline_terminated() {
        let sink = TraceSink::new(8);
        sink.push(trace(5));
        sink.push(trace(1));
        let jsonl = sink.export_jsonl();
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("{\"trace\":1,"));
        assert!(lines[1].starts_with("{\"trace\":5,"));
        assert!(jsonl.ends_with('\n'));
        assert!(!sink.is_empty());
        assert_eq!(sink.len(), 2);
    }

    #[test]
    fn smallest_id_into_a_full_sink_is_evicted_immediately() {
        // The documented edge case: when the incoming trace has the
        // smallest id in a full sink, it is itself the eviction victim
        // — inserted, then dropped in the same push — and counts
        // toward `dropped` like any other eviction.
        let sink = TraceSink::new(2);
        sink.push(trace(10));
        sink.push(trace(20));
        assert_eq!(sink.dropped(), 0);
        sink.push(trace(5)); // smaller than everything retained
        let kept: Vec<u64> = sink.traces().iter().map(|t| t.id).collect();
        assert_eq!(
            kept,
            vec![10, 20],
            "the incoming trace never displaces a larger id"
        );
        assert_eq!(sink.dropped(), 1, "the immediate eviction is counted");
        // And the export is exactly as if the push never happened.
        let before = sink.export_jsonl();
        sink.push(trace(1));
        assert_eq!(sink.export_jsonl(), before);
        assert_eq!(sink.dropped(), 2);
    }

    #[test]
    fn zero_capacity_still_retains_one() {
        let sink = TraceSink::new(0);
        sink.push(trace(9));
        assert_eq!(sink.len(), 1);
    }
}
