//! Re-import traces from the sink's JSONL export.
//!
//! [`crate::TraceSink::export_jsonl`] writes one *canonical* JSON
//! object per trace: fixed field order, minimal escaping, no
//! whitespace. That makes the reader a strict single-pass parser for
//! exactly that shape rather than a general JSON library — `tracetool`
//! reads files written by the exporter (or by another deterministic
//! run of it), and anything else is an error worth surfacing, not
//! accommodating. Round-tripping is a tested invariant:
//! `parse_trace(t.to_json()) == t` for every recordable trace.

use crate::span::{Span, Trace};

/// A parse failure: what was expected, at which byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Human-readable description of the violated expectation.
    pub message: String,
    /// Byte offset into the input line where parsing stopped.
    pub offset: usize,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl std::error::Error for ParseError {}

struct Cursor<'a> {
    input: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn err<T>(&self, message: impl Into<String>) -> Result<T, ParseError> {
        Err(ParseError {
            message: message.into(),
            offset: self.pos,
        })
    }

    fn expect(&mut self, literal: &str) -> Result<(), ParseError> {
        if self.input[self.pos..].starts_with(literal.as_bytes()) {
            self.pos += literal.len();
            Ok(())
        } else {
            self.err(format!("expected {literal:?}"))
        }
    }

    fn peek(&self) -> Option<u8> {
        self.input.get(self.pos).copied()
    }

    fn u64(&mut self) -> Result<u64, ParseError> {
        let start = self.pos;
        while self.peek().is_some_and(|b| b.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.pos == start {
            return self.err("expected a digit");
        }
        std::str::from_utf8(&self.input[start..self.pos])
            .expect("digits are ASCII")
            .parse()
            .or_else(|_| self.err("integer overflows u64"))
    }

    /// A JSON string literal, unescaping exactly what the exporter
    /// escapes (plus the `\/`, `\b`, `\f` standard escapes, for
    /// hand-written inputs).
    fn string(&mut self) -> Result<String, ParseError> {
        self.expect("\"")?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return self.err("unterminated string"),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or(ParseError {
                        message: "unterminated escape".into(),
                        offset: self.pos,
                    })?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .input
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok());
                            let Some(code) = hex else {
                                return self.err("expected 4 hex digits after \\u");
                            };
                            let Some(c) = char::from_u32(code) else {
                                return self.err("\\u escape is not a scalar value");
                            };
                            self.pos += 4;
                            out.push(c);
                        }
                        _ => return self.err("unknown escape"),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (the input is a &str
                    // upstream, so boundaries are sound).
                    let rest =
                        std::str::from_utf8(&self.input[self.pos..]).map_err(|_| ParseError {
                            message: "invalid UTF-8".into(),
                            offset: self.pos,
                        })?;
                    let c = rest.chars().next().expect("peeked non-empty");
                    self.pos += c.len_utf8();
                    out.push(c);
                }
            }
        }
    }
}

/// Parse one exported trace line (the output of
/// [`crate::Trace::to_json`]). Beyond shape, two structural facts the
/// profiler relies on are validated: every parent index refers to an
/// *earlier* span, and every span closes after it opens.
pub fn parse_trace(line: &str) -> Result<Trace, ParseError> {
    let mut c = Cursor {
        input: line.as_bytes(),
        pos: 0,
    };
    c.expect("{\"trace\":")?;
    let id = c.u64()?;
    c.expect(",\"spans\":[")?;
    let mut spans = Vec::new();
    if c.peek() == Some(b']') {
        c.pos += 1;
    } else {
        loop {
            c.expect("{\"name\":")?;
            let name = c.string()?;
            c.expect(",\"parent\":")?;
            let parent = if c.peek() == Some(b'n') {
                c.expect("null")?;
                None
            } else {
                let p = c.u64()? as usize;
                if p >= spans.len() {
                    return c.err(format!("parent {p} does not precede span {}", spans.len()));
                }
                Some(p)
            };
            c.expect(",\"seq\":[")?;
            let seq_open = c.u64()?;
            c.expect(",")?;
            let seq_close = c.u64()?;
            if seq_close <= seq_open {
                return c.err("span closes at or before its open");
            }
            c.expect("],\"tick\":[")?;
            let tick_open = c.u64()?;
            c.expect(",")?;
            let tick_close = c.u64()?;
            c.expect("],\"attrs\":{")?;
            let mut attrs = Vec::new();
            if c.peek() == Some(b'}') {
                c.pos += 1;
            } else {
                loop {
                    let key = c.string()?;
                    c.expect(":")?;
                    let value = c.string()?;
                    attrs.push((key, value));
                    match c.peek() {
                        Some(b',') => c.pos += 1,
                        Some(b'}') => {
                            c.pos += 1;
                            break;
                        }
                        _ => return c.err("expected ',' or '}' in attrs"),
                    }
                }
            }
            c.expect("}")?;
            spans.push(Span {
                name,
                parent,
                seq_open,
                seq_close,
                tick_open,
                tick_close,
                attrs,
            });
            match c.peek() {
                Some(b',') => c.pos += 1,
                Some(b']') => {
                    c.pos += 1;
                    break;
                }
                _ => return c.err("expected ',' or ']' in spans"),
            }
        }
    }
    c.expect("}")?;
    if c.pos != c.input.len() {
        return c.err("trailing bytes after trace object");
    }
    Ok(Trace { id, spans })
}

/// Parse a whole JSONL export (one trace per line; blank lines are
/// rejected — the exporter never writes them). Errors carry the
/// 1-based line number.
pub fn parse_jsonl(text: &str) -> Result<Vec<Trace>, ParseError> {
    text.lines()
        .enumerate()
        .map(|(i, line)| {
            parse_trace(line).map_err(|e| ParseError {
                message: format!("line {}: {}", i + 1, e.message),
                offset: e.offset,
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::{Clock, ManualClock};
    use crate::sink::TraceSink;
    use crate::span::TraceBuilder;
    use std::sync::Arc;

    fn sample(id: u64) -> Trace {
        let clock = Arc::new(ManualClock::new());
        let mut tb = TraceBuilder::new(id, clock.clone() as Arc<dyn Clock>);
        let root = tb.open("request");
        tb.annotate(root, "sql", "SELECT \"x\"\n\tFROM t\\u");
        clock.advance(2);
        let inner = tb.open("rung");
        tb.annotate(inner, "family", "entity");
        tb.close(inner);
        tb.close(root);
        tb.finish()
    }

    #[test]
    fn round_trips_the_exporters_output() {
        let t = sample(7);
        assert_eq!(parse_trace(&t.to_json()).unwrap(), t);
        let empty = TraceBuilder::new(0, Arc::new(ManualClock::new()) as Arc<dyn Clock>).finish();
        assert_eq!(parse_trace(&empty.to_json()).unwrap(), empty);
    }

    #[test]
    fn round_trips_a_whole_sink_export() {
        let sink = TraceSink::new(8);
        sink.push(sample(5));
        sink.push(sample(1));
        let parsed = parse_jsonl(&sink.export_jsonl()).unwrap();
        assert_eq!(parsed, sink.traces());
    }

    #[test]
    fn rejects_malformed_lines_with_positions() {
        let e = parse_trace("{\"trace\":x}").unwrap_err();
        assert!(e.message.contains("digit"), "{e}");
        assert_eq!(e.offset, 9);
        let cases = [
            "",
            "{\"trace\":1,\"spans\":[]}extra",
            // Forward parent reference.
            "{\"trace\":1,\"spans\":[{\"name\":\"a\",\"parent\":0,\"seq\":[1,2],\
             \"tick\":[0,0],\"attrs\":{}}]}",
            // Close before open.
            "{\"trace\":1,\"spans\":[{\"name\":\"a\",\"parent\":null,\"seq\":[2,2],\
             \"tick\":[0,0],\"attrs\":{}}]}",
            "{\"trace\":1,\"spans\":[{\"name\":\"a\"}]}",
        ];
        for case in cases {
            assert!(parse_trace(case).is_err(), "{case:?} must not parse");
        }
        let e = parse_jsonl("{\"trace\":1,\"spans\":[]}\n\nnope").unwrap_err();
        assert!(e.message.starts_with("line 2:"), "{e}");
    }

    #[test]
    fn unescapes_all_escape_forms() {
        let t = parse_trace(
            "{\"trace\":3,\"spans\":[{\"name\":\"a\\u0041\\/\\b\\f\",\"parent\":null,\
             \"seq\":[1,2],\"tick\":[0,0],\"attrs\":{}}]}",
        )
        .unwrap();
        assert_eq!(t.spans[0].name, "aA/\u{8}\u{c}");
    }
}
