//! Named counters and histograms over logical values: an exact
//! per-value kind and a bounded-memory sketch kind.
//!
//! [`Histogram`] is not the approximating kind production metrics
//! stacks use: the values it observes are small logical quantities
//! (trace ticks, queue depths, retry counts), so one bucket per value
//! up to a cap is affordable and makes every percentile query *exact*
//! (nearest-rank). Observations above the cap saturate into the top
//! bucket and are counted, so saturation is visible, never silent.
//!
//! [`SketchHistogram`] is the soak-scale complement: 65 fixed log₂
//! buckets cover the whole `u64` range in constant memory, every
//! observation lands in a bucket (nothing is ever clamped), and two
//! sketches merge by bucket-wise addition — the shape a 10⁵–10⁶
//! request open-loop run folds its latencies into. The price is
//! resolution: percentile queries return the matched bucket's upper
//! bound, an overestimate of strictly less than 2×. The exact
//! histogram stays the default everywhere E12–E19 render committed
//! tables; the sketch is opt-in for drivers that would otherwise
//! outgrow the cap (see the clamp-cap test pinning the difference).

use std::collections::BTreeMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::span::Trace;

/// A monotonic named counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A counter at zero.
    pub fn new() -> Counter {
        Counter::default()
    }

    /// Add `delta`, saturating at `u64::MAX`. Counters are lifetime
    /// totals — a soak run that actually reached the top of the range
    /// must read as "pegged", never wrap back toward zero and
    /// masquerade as a quiet counter.
    pub fn add(&self, delta: u64) {
        let _ = self
            .0
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
                Some(v.saturating_add(delta))
            });
    }

    /// Add one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Overwrite the value — for exporting an externally-maintained
    /// counter (e.g. a serving-metrics snapshot) into a registry.
    pub fn store(&self, value: u64) {
        self.0.store(value, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// An exact histogram over `u64` values in `[0, cap]`; observations
/// above `cap` clamp into the top bucket (and are counted as clamped).
#[derive(Debug)]
pub struct Histogram {
    buckets: Vec<AtomicU64>,
    sum: AtomicU64,
    clamped: AtomicU64,
}

impl Histogram {
    /// A histogram with one bucket per value in `[0, cap]`.
    pub fn with_cap(cap: u64) -> Histogram {
        Histogram {
            buckets: (0..=cap).map(|_| AtomicU64::new(0)).collect(),
            sum: AtomicU64::new(0),
            clamped: AtomicU64::new(0),
        }
    }

    /// Record one observation (clamped to the cap).
    ///
    /// Clamping is the exact histogram's deliberate memory bound: the
    /// recorded value, the `sum`, and every percentile above the cap
    /// all saturate at `cap`, with the excess visible only through
    /// [`Histogram::clamped`]. A [`SketchHistogram`] never clamps —
    /// the same observation lands in a log₂ bucket whose upper bound
    /// may overestimate it, but its count, full-range position, and
    /// (saturating) raw sum survive. Drivers whose values can exceed
    /// any affordable cap (open-loop soak latencies) should fold into
    /// the sketch; everything E12–E19 renders stays on the exact kind.
    pub fn observe(&self, value: u64) {
        let cap = (self.buckets.len() - 1) as u64;
        let v = if value > cap {
            self.clamped.fetch_add(1, Ordering::Relaxed);
            cap
        } else {
            value
        };
        self.buckets[v as usize].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).sum()
    }

    /// Sum of recorded (post-clamp) values.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Observations that exceeded the cap and were clamped.
    pub fn clamped(&self) -> u64 {
        self.clamped.load(Ordering::Relaxed)
    }

    /// Exact nearest-rank percentile of the recorded values: the
    /// smallest value whose cumulative count reaches `ceil(p/100 × n)`
    /// (rank 1 at `p = 0`, so `percentile(0)` is the minimum and
    /// `percentile(100)` the maximum). `None` when empty.
    pub fn percentile(&self, p: f64) -> Option<u64> {
        percentile_of(&self.bucket_snapshot(), p)
    }

    /// One relaxed read of every bucket, index = value.
    fn bucket_snapshot(&self) -> Vec<u64> {
        self.buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect()
    }

    /// Freeze into a plain summary. Count, sum, and every percentile
    /// are all derived from *one* bucket snapshot, so the summary is
    /// internally consistent even while other threads are observing
    /// (separate passes could pair a fresh count with stale
    /// percentiles). `clamped` is read before the snapshot, so it can
    /// only under-count relative to the buckets, never invent clamps
    /// the top bucket has not seen.
    pub fn summary(&self) -> HistogramSummary {
        let clamped = self.clamped();
        let buckets = self.bucket_snapshot();
        let count: u64 = buckets.iter().sum();
        let sum: u64 = buckets.iter().enumerate().map(|(v, c)| v as u64 * c).sum();
        HistogramSummary {
            count,
            sum,
            clamped,
            min: percentile_of(&buckets, 0.0).unwrap_or(0),
            max: percentile_of(&buckets, 100.0).unwrap_or(0),
            p50: percentile_of(&buckets, 50.0).unwrap_or(0),
            p95: percentile_of(&buckets, 95.0).unwrap_or(0),
            p99: percentile_of(&buckets, 99.0).unwrap_or(0),
        }
    }
}

/// Nearest-rank percentile over a frozen bucket array (index = value).
fn percentile_of(buckets: &[u64], p: f64) -> Option<u64> {
    let n: u64 = buckets.iter().sum();
    if n == 0 {
        return None;
    }
    let p = p.clamp(0.0, 100.0);
    let rank = ((p / 100.0 * n as f64).ceil() as u64).max(1);
    let mut cumulative = 0u64;
    for (v, &b) in buckets.iter().enumerate() {
        cumulative += b;
        if cumulative >= rank {
            return Some(v as u64);
        }
    }
    None // unreachable: cumulative reaches n
}

/// Plain-value view of one histogram (all zeros when `count == 0`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramSummary {
    /// Observations recorded.
    pub count: u64,
    /// Sum of recorded (post-clamp) values.
    pub sum: u64,
    /// Observations clamped into the top bucket.
    pub clamped: u64,
    /// Smallest recorded value.
    pub min: u64,
    /// Largest recorded value.
    pub max: u64,
    /// Exact 50th percentile.
    pub p50: u64,
    /// Exact 95th percentile.
    pub p95: u64,
    /// Exact 99th percentile.
    pub p99: u64,
}

/// Number of buckets in a [`SketchHistogram`]: bucket 0 holds the
/// value 0, bucket `k ≥ 1` holds values in `[2^(k-1), 2^k - 1]`, so 65
/// buckets cover all of `u64` with no clamping.
pub const SKETCH_BUCKETS: usize = 65;

/// A bounded-memory, mergeable log₂-bucketed histogram over `u64`.
///
/// The soak-scale counterpart of [`Histogram`] (see the module docs
/// for the trade): 65 fixed buckets, every observation recorded,
/// nothing clamped, constant memory whatever the value range.
/// Percentiles are *bucket-resolution*: nearest-rank over the bucket
/// counts, reported as the matched bucket's inclusive upper bound —
/// an overestimate of the true percentile by strictly less than 2×
/// (exact for 0, 1, and 2). `sum` accumulates the *raw* observed
/// values, saturating at `u64::MAX` rather than wrapping.
///
/// Two sketches with identical bucket layout (always — the layout is
/// fixed) merge by bucket-wise addition, so per-shard sketches can be
/// folded into one fleet-wide distribution without storing a single
/// observation.
#[derive(Debug)]
pub struct SketchHistogram {
    buckets: Vec<AtomicU64>,
    sum: AtomicU64,
}

impl Default for SketchHistogram {
    fn default() -> SketchHistogram {
        SketchHistogram::new()
    }
}

/// Bucket index of `value`: 0 for 0, else `1 + floor(log2 value)`.
pub(crate) fn sketch_bucket(value: u64) -> usize {
    match value {
        0 => 0,
        v => 64 - v.leading_zeros() as usize,
    }
}

/// Inclusive upper bound of sketch bucket `index` (its reported
/// representative value): 0 for bucket 0, else `2^index - 1`.
pub(crate) fn sketch_bucket_top(index: usize) -> u64 {
    match index {
        0 => 0,
        64 => u64::MAX,
        k => (1u64 << k) - 1,
    }
}

impl SketchHistogram {
    /// An empty sketch.
    pub fn new() -> SketchHistogram {
        SketchHistogram {
            buckets: (0..SKETCH_BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            sum: AtomicU64::new(0),
        }
    }

    /// Record one observation. Never clamps; the raw value is added to
    /// `sum` (saturating), the count lands in the value's log₂ bucket.
    pub fn observe(&self, value: u64) {
        self.buckets[sketch_bucket(value)].fetch_add(1, Ordering::Relaxed);
        let _ = self
            .sum
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |s| {
                Some(s.saturating_add(value))
            });
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).sum()
    }

    /// Saturating sum of the raw observed values (pre-bucketing — the
    /// sketch's sum is exact where the exact histogram's is clamped).
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Bucket-resolution nearest-rank percentile: the upper bound of
    /// the bucket holding the nearest-rank observation. `None` when
    /// empty.
    pub fn percentile(&self, p: f64) -> Option<u64> {
        let buckets = self.bucket_snapshot();
        sketch_percentile_of(&buckets, p)
    }

    /// Fold `other` into `self`, bucket by bucket (sum saturates).
    /// Merging is exact: the merged sketch is byte-identical to one
    /// that observed both input streams directly.
    pub fn merge(&self, other: &SketchHistogram) {
        for (mine, theirs) in self.buckets.iter().zip(&other.buckets) {
            mine.fetch_add(theirs.load(Ordering::Relaxed), Ordering::Relaxed);
        }
        let _ = self
            .sum
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |s| {
                Some(s.saturating_add(other.sum()))
            });
    }

    /// One relaxed read of every bucket.
    fn bucket_snapshot(&self) -> Vec<u64> {
        self.buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect()
    }

    /// Freeze into a [`HistogramSummary`] (one bucket snapshot, so the
    /// summary is internally consistent under concurrent observers,
    /// like the exact histogram's). `clamped` is always 0 — a sketch
    /// never clamps — and min/max/percentiles are bucket upper bounds.
    pub fn summary(&self) -> HistogramSummary {
        let buckets = self.bucket_snapshot();
        let count: u64 = buckets.iter().sum();
        HistogramSummary {
            count,
            sum: self.sum(),
            clamped: 0,
            min: sketch_percentile_of(&buckets, 0.0).unwrap_or(0),
            max: sketch_percentile_of(&buckets, 100.0).unwrap_or(0),
            p50: sketch_percentile_of(&buckets, 50.0).unwrap_or(0),
            p95: sketch_percentile_of(&buckets, 95.0).unwrap_or(0),
            p99: sketch_percentile_of(&buckets, 99.0).unwrap_or(0),
        }
    }
}

/// Nearest-rank percentile over frozen sketch buckets, reported as the
/// matched bucket's upper bound.
pub(crate) fn sketch_percentile_of(buckets: &[u64], p: f64) -> Option<u64> {
    let n: u64 = buckets.iter().sum();
    if n == 0 {
        return None;
    }
    let p = p.clamp(0.0, 100.0);
    let rank = ((p / 100.0 * n as f64).ceil() as u64).max(1);
    let mut cumulative = 0u64;
    for (k, &b) in buckets.iter().enumerate() {
        cumulative += b;
        if cumulative >= rank {
            return Some(sketch_bucket_top(k));
        }
    }
    None // unreachable: cumulative reaches n
}

/// Default histogram cap for registries: trace-tick costs and queue
/// depths in this workspace sit far below it.
pub const DEFAULT_HISTOGRAM_CAP: u64 = 1024;

/// A registry of named counters and histograms. Get-or-create by name;
/// snapshots iterate in name order, so reports are deterministic
/// regardless of which thread registered what first.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    counters: Mutex<BTreeMap<String, Arc<Counter>>>,
    histograms: Mutex<BTreeMap<String, Arc<Histogram>>>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// The counter named `name`, created at zero on first use.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut map = self.counters.lock().expect("counter map lock");
        Arc::clone(
            map.entry(name.to_string())
                .or_insert_with(|| Arc::new(Counter::new())),
        )
    }

    /// The histogram named `name`, created with
    /// [`DEFAULT_HISTOGRAM_CAP`] on first use.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        self.histogram_with_cap(name, DEFAULT_HISTOGRAM_CAP)
    }

    /// The histogram named `name`, created with `cap` on first use
    /// (an existing histogram keeps its original cap).
    pub fn histogram_with_cap(&self, name: &str, cap: u64) -> Arc<Histogram> {
        let mut map = self.histograms.lock().expect("histogram map lock");
        Arc::clone(
            map.entry(name.to_string())
                .or_insert_with(|| Arc::new(Histogram::with_cap(cap))),
        )
    }

    /// Record every span of `trace` into the `span.<name>` histogram
    /// (observing the span's cost in trace ticks). This is how the
    /// serving layer turns finished traces into the per-stage cost
    /// distributions E14 tabulates.
    pub fn observe_trace(&self, trace: &Trace) {
        for span in &trace.spans {
            self.histogram(&format!("span.{}", span.name))
                .observe(span.cost());
        }
    }

    /// Freeze every metric into a sorted, comparable report.
    pub fn report(&self) -> MetricsReport {
        let counters = self
            .counters
            .lock()
            .expect("counter map lock")
            .iter()
            .map(|(k, v)| (k.clone(), v.get()))
            .collect();
        let histograms = self
            .histograms
            .lock()
            .expect("histogram map lock")
            .iter()
            .map(|(k, v)| (k.clone(), v.summary()))
            .collect();
        MetricsReport {
            counters,
            histograms,
        }
    }
}

/// Frozen registry contents, sorted by name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetricsReport {
    /// `(name, value)` for every counter.
    pub counters: Vec<(String, u64)>,
    /// `(name, summary)` for every histogram.
    pub histograms: Vec<(String, HistogramSummary)>,
}

impl MetricsReport {
    /// The counter named `name`, if registered.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| *v)
    }

    /// The histogram summary named `name`, if registered.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSummary> {
        self.histograms
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v)
    }

    /// The canonical machine-diffable rendering: one line per metric,
    /// name-ordered (the report is already sorted), every field in a
    /// fixed order with fixed formatting, trailing newline per line.
    /// The perf-drift gate and `tracetool metrics` both emit this, so
    /// a baseline written by one is byte-comparable against the other.
    pub fn export_text(&self) -> String {
        let mut out = String::new();
        for (name, value) in &self.counters {
            out.push_str(&format!("counter {name} {value}\n"));
        }
        for (name, s) in &self.histograms {
            out.push_str(&format!(
                "histogram {name} count={} sum={} clamped={} min={} max={} p50={} p95={} p99={}\n",
                s.count, s.sum, s.clamped, s.min, s.max, s.p50, s.p95, s.p99
            ));
        }
        out
    }
}

impl fmt::Display for MetricsReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "counters:")?;
        for (name, value) in &self.counters {
            writeln!(f, "  {name} = {value}")?;
        }
        writeln!(f, "histograms (count p50/p95/max sum):")?;
        for (name, s) in &self.histograms {
            writeln!(
                f,
                "  {name} = {} {}/{}/{} {}",
                s.count, s.p50, s.p95, s.max, s.sum
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_counts() {
        let c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        c.store(2);
        assert_eq!(c.get(), 2);
    }

    #[test]
    fn empty_histogram_has_no_percentiles() {
        let h = Histogram::with_cap(8);
        assert_eq!(h.count(), 0);
        assert_eq!(h.percentile(50.0), None);
        let s = h.summary();
        assert_eq!((s.count, s.min, s.max, s.p50), (0, 0, 0, 0));
    }

    #[test]
    fn single_observation_is_every_percentile() {
        let h = Histogram::with_cap(8);
        h.observe(5);
        for p in [0.0, 1.0, 50.0, 99.0, 100.0] {
            assert_eq!(h.percentile(p), Some(5), "p{p}");
        }
        assert_eq!(h.sum(), 5);
    }

    #[test]
    fn percentiles_are_exact_at_boundaries() {
        let h = Histogram::with_cap(16);
        for v in [1, 2, 3, 4] {
            h.observe(v);
        }
        // Nearest-rank over {1,2,3,4}: rank = ceil(p/100 × 4).
        assert_eq!(h.percentile(0.0), Some(1), "rank 1 (minimum)");
        assert_eq!(h.percentile(25.0), Some(1), "rank 1");
        assert_eq!(h.percentile(25.1), Some(2), "rank 2 starts just above");
        assert_eq!(h.percentile(50.0), Some(2), "rank 2");
        assert_eq!(h.percentile(75.0), Some(3), "rank 3");
        assert_eq!(h.percentile(75.1), Some(4), "rank 4 starts just above");
        assert_eq!(h.percentile(100.0), Some(4), "rank 4 (maximum)");
        assert_eq!(h.percentile(200.0), Some(4), "clamped to 100");
        assert_eq!(h.percentile(-5.0), Some(1), "clamped to 0");
    }

    #[test]
    fn saturation_clamps_into_the_top_bucket_visibly() {
        let h = Histogram::with_cap(4);
        h.observe(3);
        h.observe(4);
        h.observe(100);
        h.observe(u64::MAX);
        assert_eq!(h.count(), 4);
        assert_eq!(h.clamped(), 2);
        assert_eq!(h.percentile(100.0), Some(4), "clamped values sit at cap");
        assert_eq!(h.sum(), 3 + 4 + 4 + 4, "sum records post-clamp values");
    }

    #[test]
    fn registry_reports_sorted_by_name() {
        let r = MetricsRegistry::new();
        r.counter("z.last").add(1);
        r.counter("a.first").add(2);
        r.histogram("m.mid").observe(3);
        let report = r.report();
        assert_eq!(
            report.counters,
            vec![("a.first".to_string(), 2), ("z.last".to_string(), 1)]
        );
        assert_eq!(report.counter("a.first"), Some(2));
        assert_eq!(report.histogram("m.mid").unwrap().count, 1);
        assert_eq!(report.histogram("absent"), None);
        // Same name returns the same instance.
        r.counter("a.first").add(1);
        assert_eq!(r.report().counter("a.first"), Some(3));
    }

    #[test]
    fn summary_is_internally_consistent_under_concurrent_observes() {
        // Every observation is the same value, so any self-consistent
        // summary must satisfy sum == value × count and pin every
        // percentile to the value. The pre-fix summary read count,
        // sum, and each percentile in separate passes over the live
        // buckets, so a concurrent observe could land between passes
        // and tear them apart (e.g. sum > 0 with stale percentiles).
        use std::sync::atomic::AtomicBool;
        const VALUE: u64 = 3;
        let h = Arc::new(Histogram::with_cap(8));
        let stop = Arc::new(AtomicBool::new(false));
        let writer = {
            let (h, stop) = (Arc::clone(&h), Arc::clone(&stop));
            std::thread::spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    h.observe(VALUE);
                }
            })
        };
        for _ in 0..10_000 {
            let s = h.summary();
            assert_eq!(s.sum, VALUE * s.count, "sum and count from one snapshot");
            if s.count > 0 {
                assert_eq!((s.min, s.p50, s.p95, s.p99, s.max), (3, 3, 3, 3, 3));
            }
            assert_eq!(s.clamped, 0);
        }
        stop.store(true, Ordering::Relaxed);
        writer.join().expect("writer thread");
    }

    #[test]
    fn counter_add_saturates_instead_of_wrapping() {
        // A soak run that genuinely pegged a counter must read as
        // "pegged" forever, not wrap into a small, plausible-looking
        // number.
        let c = Counter::new();
        c.store(u64::MAX - 3);
        c.add(2);
        assert_eq!(c.get(), u64::MAX - 1);
        c.add(10);
        assert_eq!(c.get(), u64::MAX, "saturates at the top");
        c.add(1);
        assert_eq!(c.get(), u64::MAX, "and stays there");
        c.inc();
        assert_eq!(c.get(), u64::MAX, "inc is add(1)");
    }

    #[test]
    fn sketch_buckets_values_by_log2() {
        assert_eq!(sketch_bucket(0), 0);
        assert_eq!(sketch_bucket(1), 1);
        assert_eq!(sketch_bucket(2), 2);
        assert_eq!(sketch_bucket(3), 2);
        assert_eq!(sketch_bucket(4), 3);
        assert_eq!(sketch_bucket(1023), 10);
        assert_eq!(sketch_bucket(1024), 11);
        assert_eq!(sketch_bucket(u64::MAX), 64);
        assert_eq!(sketch_bucket_top(0), 0);
        assert_eq!(sketch_bucket_top(1), 1);
        assert_eq!(sketch_bucket_top(2), 3);
        assert_eq!(sketch_bucket_top(64), u64::MAX);
        // Round trip: every value sits at or below its bucket's top,
        // and strictly above the previous bucket's top.
        for v in [0u64, 1, 2, 5, 100, 1 << 20, u64::MAX - 1, u64::MAX] {
            let k = sketch_bucket(v);
            assert!(v <= sketch_bucket_top(k));
            if k > 0 {
                assert!(v > sketch_bucket_top(k - 1));
            }
        }
    }

    #[test]
    fn sketch_percentile_overestimates_by_less_than_two_x() {
        let s = SketchHistogram::new();
        let values = [1u64, 3, 7, 9, 20, 150, 151, 1000, 40_000, 1 << 33];
        for &v in &values {
            s.observe(v);
        }
        assert_eq!(s.count(), values.len() as u64);
        assert_eq!(s.sum(), values.iter().sum::<u64>());
        for p in [0.0, 10.0, 50.0, 90.0, 95.0, 99.0, 100.0] {
            // Nearest-rank exact percentile over the sorted values.
            let rank = ((p / 100.0 * values.len() as f64).ceil() as usize).max(1);
            let exact = values[rank - 1];
            let sketched = s.percentile(p).unwrap();
            assert!(sketched >= exact, "p{p}: {sketched} >= {exact}");
            assert!(
                sketched < exact.saturating_mul(2).max(1),
                "p{p}: {sketched} < 2×{exact}"
            );
        }
    }

    #[test]
    fn sketch_never_clamps_where_the_exact_histogram_does() {
        // The documented trade: the exact histogram clamps visibly at
        // its cap; the sketch records the same stream with no clamping
        // and a bucket-resolution (≤ 2×) tail instead.
        let exact = Histogram::with_cap(4);
        let sketch = SketchHistogram::new();
        for v in [3u64, 4, 100, u64::MAX] {
            exact.observe(v);
            sketch.observe(v);
        }
        assert_eq!(exact.clamped(), 2);
        assert_eq!(exact.percentile(100.0), Some(4), "tail truncated at cap");
        assert_eq!(exact.sum(), 3 + 4 + 4 + 4, "sum is post-clamp");
        assert_eq!(sketch.summary().clamped, 0, "a sketch never clamps");
        assert_eq!(sketch.percentile(100.0), Some(u64::MAX), "tail survives");
        assert_eq!(sketch.sum(), u64::MAX, "raw sum, saturating");
    }

    #[test]
    fn sketch_merge_equals_observing_both_streams() {
        let a = SketchHistogram::new();
        let b = SketchHistogram::new();
        let both = SketchHistogram::new();
        for v in [0u64, 1, 5, 5, 900] {
            a.observe(v);
            both.observe(v);
        }
        for v in [2u64, 5, 1 << 40] {
            b.observe(v);
            both.observe(v);
        }
        a.merge(&b);
        assert_eq!(a.count(), both.count());
        assert_eq!(a.sum(), both.sum());
        assert_eq!(a.summary(), both.summary());
        for p in [0.0, 25.0, 50.0, 75.0, 99.0, 100.0] {
            assert_eq!(a.percentile(p), both.percentile(p), "p{p}");
        }
    }

    #[test]
    fn empty_sketch_has_no_percentiles_and_zero_summary() {
        let s = SketchHistogram::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.percentile(50.0), None);
        let sum = s.summary();
        assert_eq!(
            (sum.count, sum.sum, sum.min, sum.max, sum.p50),
            (0, 0, 0, 0, 0)
        );
    }

    #[test]
    fn export_text_is_canonical_bytes() {
        let r = MetricsRegistry::new();
        r.counter("serve.answered").add(7);
        r.counter("serve.retries").add(2);
        let h = r.histogram_with_cap("span.request", 8);
        h.observe(1);
        h.observe(3);
        h.observe(100); // clamps to 8
        assert_eq!(
            r.report().export_text(),
            "counter serve.answered 7\n\
             counter serve.retries 2\n\
             histogram span.request count=3 sum=12 clamped=1 min=1 max=8 p50=3 p95=8 p99=8\n"
        );
        // Registration order never leaks into the rendering.
        let r2 = MetricsRegistry::new();
        let h2 = r2.histogram_with_cap("span.request", 8);
        h2.observe(100);
        h2.observe(3);
        h2.observe(1);
        r2.counter("serve.retries").add(2);
        r2.counter("serve.answered").add(7);
        assert_eq!(r2.report().export_text(), r.report().export_text());
    }

    #[test]
    fn sketch_percentile_edge_cases_pinned() {
        // p=0.0 and p=1.0 both resolve to rank 1 (nearest-rank takes
        // max(ceil(p/100·n), 1)): the smallest observation's bucket
        // top, not zero and not a panic.
        let s = SketchHistogram::new();
        for v in [6u64, 6, 6, 900] {
            s.observe(v);
        }
        assert_eq!(s.percentile(0.0), Some(7), "p0 = min bucket top");
        assert_eq!(s.percentile(1.0), Some(7), "p1 rank-clamps to rank 1");
        assert_eq!(s.percentile(100.0), Some(1023), "p100 = max bucket top");
        // Out-of-range p clamps rather than extrapolating.
        assert_eq!(s.percentile(-5.0), s.percentile(0.0));
        assert_eq!(s.percentile(250.0), s.percentile(100.0));

        // Single-bucket stream: every percentile is that bucket's top.
        let single = SketchHistogram::new();
        for _ in 0..50 {
            single.observe(5); // bucket 3, top 7
        }
        for p in [0.0, 1.0, 50.0, 99.0, 100.0] {
            assert_eq!(single.percentile(p), Some(7), "p{p}");
        }
        // Zero-only stream: bucket 0's top is exactly 0.
        let zeros = SketchHistogram::new();
        zeros.observe(0);
        assert_eq!(zeros.percentile(100.0), Some(0));

        // Post-merge percentiles keep the edge behavior: merging an
        // empty sketch changes nothing, and p0/p100 of a merged
        // sketch span both input streams.
        let merged = SketchHistogram::new();
        merged.merge(&SketchHistogram::new());
        assert_eq!(merged.percentile(50.0), None, "empty ∪ empty = empty");
        merged.merge(&s);
        merged.merge(&single);
        assert_eq!(merged.percentile(0.0), Some(7));
        assert_eq!(merged.percentile(100.0), Some(1023));
        assert_eq!(merged.count(), 54);
    }

    #[test]
    fn sketch_merge_is_commutative() {
        let fill = |values: &[u64]| {
            let s = SketchHistogram::new();
            for &v in values {
                s.observe(v);
            }
            s
        };
        let xs = [0u64, 1, 7, 7, 300, 1 << 50];
        let ys = [2u64, 9, 1024, u64::MAX];
        let ab = fill(&xs);
        ab.merge(&fill(&ys));
        let ba = fill(&ys);
        ba.merge(&fill(&xs));
        assert_eq!(ab.summary(), ba.summary());
        for p in [0.0, 1.0, 50.0, 95.0, 100.0] {
            assert_eq!(ab.percentile(p), ba.percentile(p), "p{p}");
        }
    }

    #[test]
    fn export_text_sorts_across_scopes_whatever_the_insertion_order() {
        // The perf-drift gate byte-compares export_text output, so
        // scope and key ordering must be a pure function of the name
        // set — never of which thread or code path registered first.
        let names = [
            "serve.tenant.retail.answered",
            "health.fired",
            "serve.answered",
            "a.first",
            "serve.tenant.hr.answered",
            "health.cleared",
        ];
        let render = |order: &[&str]| {
            let r = MetricsRegistry::new();
            for name in order {
                r.counter(name).add(1);
            }
            r.histogram("span.request").observe(3);
            r.report().export_text()
        };
        let mut reversed = names;
        reversed.reverse();
        let mut rotated = names;
        rotated.rotate_left(3);
        let baseline = render(&names);
        assert_eq!(baseline, render(&reversed));
        assert_eq!(baseline, render(&rotated));
        let counter_lines: Vec<&str> = baseline
            .lines()
            .filter(|l| l.starts_with("counter "))
            .collect();
        let mut sorted = counter_lines.clone();
        sorted.sort_unstable();
        assert_eq!(counter_lines, sorted, "counters render name-sorted");
    }

    #[test]
    fn observe_trace_fills_per_stage_histograms() {
        use crate::clock::ManualClock;
        use crate::span::TraceBuilder;
        let r = MetricsRegistry::new();
        let clock = Arc::new(ManualClock::new());
        let mut tb = TraceBuilder::new(0, clock as Arc<dyn crate::clock::Clock>);
        let root = tb.open("request");
        let inner = tb.open("stage");
        tb.close(inner);
        tb.close(root);
        r.observe_trace(&tb.finish());
        let report = r.report();
        assert_eq!(report.histogram("span.request").unwrap().p50, 3);
        assert_eq!(report.histogram("span.stage").unwrap().p50, 1);
    }
}
