//! Named counters and exact-percentile histograms over logical values.
//!
//! Histograms here are not the approximating kind production metrics
//! stacks use: the values they observe are small logical quantities
//! (trace ticks, queue depths, retry counts), so one bucket per value
//! up to a cap is affordable and makes every percentile query *exact*
//! (nearest-rank). Observations above the cap saturate into the top
//! bucket and are counted, so saturation is visible, never silent.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::span::Trace;

/// A monotonic named counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A counter at zero.
    pub fn new() -> Counter {
        Counter::default()
    }

    /// Add `delta`.
    pub fn add(&self, delta: u64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// Add one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Overwrite the value — for exporting an externally-maintained
    /// counter (e.g. a serving-metrics snapshot) into a registry.
    pub fn store(&self, value: u64) {
        self.0.store(value, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// An exact histogram over `u64` values in `[0, cap]`; observations
/// above `cap` clamp into the top bucket (and are counted as clamped).
#[derive(Debug)]
pub struct Histogram {
    buckets: Vec<AtomicU64>,
    sum: AtomicU64,
    clamped: AtomicU64,
}

impl Histogram {
    /// A histogram with one bucket per value in `[0, cap]`.
    pub fn with_cap(cap: u64) -> Histogram {
        Histogram {
            buckets: (0..=cap).map(|_| AtomicU64::new(0)).collect(),
            sum: AtomicU64::new(0),
            clamped: AtomicU64::new(0),
        }
    }

    /// Record one observation (clamped to the cap).
    pub fn observe(&self, value: u64) {
        let cap = (self.buckets.len() - 1) as u64;
        let v = if value > cap {
            self.clamped.fetch_add(1, Ordering::Relaxed);
            cap
        } else {
            value
        };
        self.buckets[v as usize].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).sum()
    }

    /// Sum of recorded (post-clamp) values.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Observations that exceeded the cap and were clamped.
    pub fn clamped(&self) -> u64 {
        self.clamped.load(Ordering::Relaxed)
    }

    /// Exact nearest-rank percentile of the recorded values: the
    /// smallest value whose cumulative count reaches `ceil(p/100 × n)`
    /// (rank 1 at `p = 0`, so `percentile(0)` is the minimum and
    /// `percentile(100)` the maximum). `None` when empty.
    pub fn percentile(&self, p: f64) -> Option<u64> {
        percentile_of(&self.bucket_snapshot(), p)
    }

    /// One relaxed read of every bucket, index = value.
    fn bucket_snapshot(&self) -> Vec<u64> {
        self.buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect()
    }

    /// Freeze into a plain summary. Count, sum, and every percentile
    /// are all derived from *one* bucket snapshot, so the summary is
    /// internally consistent even while other threads are observing
    /// (separate passes could pair a fresh count with stale
    /// percentiles). `clamped` is read before the snapshot, so it can
    /// only under-count relative to the buckets, never invent clamps
    /// the top bucket has not seen.
    pub fn summary(&self) -> HistogramSummary {
        let clamped = self.clamped();
        let buckets = self.bucket_snapshot();
        let count: u64 = buckets.iter().sum();
        let sum: u64 = buckets.iter().enumerate().map(|(v, c)| v as u64 * c).sum();
        HistogramSummary {
            count,
            sum,
            clamped,
            min: percentile_of(&buckets, 0.0).unwrap_or(0),
            max: percentile_of(&buckets, 100.0).unwrap_or(0),
            p50: percentile_of(&buckets, 50.0).unwrap_or(0),
            p95: percentile_of(&buckets, 95.0).unwrap_or(0),
            p99: percentile_of(&buckets, 99.0).unwrap_or(0),
        }
    }
}

/// Nearest-rank percentile over a frozen bucket array (index = value).
fn percentile_of(buckets: &[u64], p: f64) -> Option<u64> {
    let n: u64 = buckets.iter().sum();
    if n == 0 {
        return None;
    }
    let p = p.clamp(0.0, 100.0);
    let rank = ((p / 100.0 * n as f64).ceil() as u64).max(1);
    let mut cumulative = 0u64;
    for (v, &b) in buckets.iter().enumerate() {
        cumulative += b;
        if cumulative >= rank {
            return Some(v as u64);
        }
    }
    None // unreachable: cumulative reaches n
}

/// Plain-value view of one histogram (all zeros when `count == 0`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramSummary {
    /// Observations recorded.
    pub count: u64,
    /// Sum of recorded (post-clamp) values.
    pub sum: u64,
    /// Observations clamped into the top bucket.
    pub clamped: u64,
    /// Smallest recorded value.
    pub min: u64,
    /// Largest recorded value.
    pub max: u64,
    /// Exact 50th percentile.
    pub p50: u64,
    /// Exact 95th percentile.
    pub p95: u64,
    /// Exact 99th percentile.
    pub p99: u64,
}

/// Default histogram cap for registries: trace-tick costs and queue
/// depths in this workspace sit far below it.
pub const DEFAULT_HISTOGRAM_CAP: u64 = 1024;

/// A registry of named counters and histograms. Get-or-create by name;
/// snapshots iterate in name order, so reports are deterministic
/// regardless of which thread registered what first.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    counters: Mutex<BTreeMap<String, Arc<Counter>>>,
    histograms: Mutex<BTreeMap<String, Arc<Histogram>>>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// The counter named `name`, created at zero on first use.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut map = self.counters.lock().expect("counter map lock");
        Arc::clone(
            map.entry(name.to_string())
                .or_insert_with(|| Arc::new(Counter::new())),
        )
    }

    /// The histogram named `name`, created with
    /// [`DEFAULT_HISTOGRAM_CAP`] on first use.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        self.histogram_with_cap(name, DEFAULT_HISTOGRAM_CAP)
    }

    /// The histogram named `name`, created with `cap` on first use
    /// (an existing histogram keeps its original cap).
    pub fn histogram_with_cap(&self, name: &str, cap: u64) -> Arc<Histogram> {
        let mut map = self.histograms.lock().expect("histogram map lock");
        Arc::clone(
            map.entry(name.to_string())
                .or_insert_with(|| Arc::new(Histogram::with_cap(cap))),
        )
    }

    /// Record every span of `trace` into the `span.<name>` histogram
    /// (observing the span's cost in trace ticks). This is how the
    /// serving layer turns finished traces into the per-stage cost
    /// distributions E14 tabulates.
    pub fn observe_trace(&self, trace: &Trace) {
        for span in &trace.spans {
            self.histogram(&format!("span.{}", span.name))
                .observe(span.cost());
        }
    }

    /// Freeze every metric into a sorted, comparable report.
    pub fn report(&self) -> MetricsReport {
        let counters = self
            .counters
            .lock()
            .expect("counter map lock")
            .iter()
            .map(|(k, v)| (k.clone(), v.get()))
            .collect();
        let histograms = self
            .histograms
            .lock()
            .expect("histogram map lock")
            .iter()
            .map(|(k, v)| (k.clone(), v.summary()))
            .collect();
        MetricsReport {
            counters,
            histograms,
        }
    }
}

/// Frozen registry contents, sorted by name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetricsReport {
    /// `(name, value)` for every counter.
    pub counters: Vec<(String, u64)>,
    /// `(name, summary)` for every histogram.
    pub histograms: Vec<(String, HistogramSummary)>,
}

impl MetricsReport {
    /// The counter named `name`, if registered.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| *v)
    }

    /// The histogram summary named `name`, if registered.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSummary> {
        self.histograms
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v)
    }

    /// The canonical machine-diffable rendering: one line per metric,
    /// name-ordered (the report is already sorted), every field in a
    /// fixed order with fixed formatting, trailing newline per line.
    /// The perf-drift gate and `tracetool metrics` both emit this, so
    /// a baseline written by one is byte-comparable against the other.
    pub fn export_text(&self) -> String {
        let mut out = String::new();
        for (name, value) in &self.counters {
            out.push_str(&format!("counter {name} {value}\n"));
        }
        for (name, s) in &self.histograms {
            out.push_str(&format!(
                "histogram {name} count={} sum={} clamped={} min={} max={} p50={} p95={} p99={}\n",
                s.count, s.sum, s.clamped, s.min, s.max, s.p50, s.p95, s.p99
            ));
        }
        out
    }
}

impl fmt::Display for MetricsReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "counters:")?;
        for (name, value) in &self.counters {
            writeln!(f, "  {name} = {value}")?;
        }
        writeln!(f, "histograms (count p50/p95/max sum):")?;
        for (name, s) in &self.histograms {
            writeln!(
                f,
                "  {name} = {} {}/{}/{} {}",
                s.count, s.p50, s.p95, s.max, s.sum
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_counts() {
        let c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        c.store(2);
        assert_eq!(c.get(), 2);
    }

    #[test]
    fn empty_histogram_has_no_percentiles() {
        let h = Histogram::with_cap(8);
        assert_eq!(h.count(), 0);
        assert_eq!(h.percentile(50.0), None);
        let s = h.summary();
        assert_eq!((s.count, s.min, s.max, s.p50), (0, 0, 0, 0));
    }

    #[test]
    fn single_observation_is_every_percentile() {
        let h = Histogram::with_cap(8);
        h.observe(5);
        for p in [0.0, 1.0, 50.0, 99.0, 100.0] {
            assert_eq!(h.percentile(p), Some(5), "p{p}");
        }
        assert_eq!(h.sum(), 5);
    }

    #[test]
    fn percentiles_are_exact_at_boundaries() {
        let h = Histogram::with_cap(16);
        for v in [1, 2, 3, 4] {
            h.observe(v);
        }
        // Nearest-rank over {1,2,3,4}: rank = ceil(p/100 × 4).
        assert_eq!(h.percentile(0.0), Some(1), "rank 1 (minimum)");
        assert_eq!(h.percentile(25.0), Some(1), "rank 1");
        assert_eq!(h.percentile(25.1), Some(2), "rank 2 starts just above");
        assert_eq!(h.percentile(50.0), Some(2), "rank 2");
        assert_eq!(h.percentile(75.0), Some(3), "rank 3");
        assert_eq!(h.percentile(75.1), Some(4), "rank 4 starts just above");
        assert_eq!(h.percentile(100.0), Some(4), "rank 4 (maximum)");
        assert_eq!(h.percentile(200.0), Some(4), "clamped to 100");
        assert_eq!(h.percentile(-5.0), Some(1), "clamped to 0");
    }

    #[test]
    fn saturation_clamps_into_the_top_bucket_visibly() {
        let h = Histogram::with_cap(4);
        h.observe(3);
        h.observe(4);
        h.observe(100);
        h.observe(u64::MAX);
        assert_eq!(h.count(), 4);
        assert_eq!(h.clamped(), 2);
        assert_eq!(h.percentile(100.0), Some(4), "clamped values sit at cap");
        assert_eq!(h.sum(), 3 + 4 + 4 + 4, "sum records post-clamp values");
    }

    #[test]
    fn registry_reports_sorted_by_name() {
        let r = MetricsRegistry::new();
        r.counter("z.last").add(1);
        r.counter("a.first").add(2);
        r.histogram("m.mid").observe(3);
        let report = r.report();
        assert_eq!(
            report.counters,
            vec![("a.first".to_string(), 2), ("z.last".to_string(), 1)]
        );
        assert_eq!(report.counter("a.first"), Some(2));
        assert_eq!(report.histogram("m.mid").unwrap().count, 1);
        assert_eq!(report.histogram("absent"), None);
        // Same name returns the same instance.
        r.counter("a.first").add(1);
        assert_eq!(r.report().counter("a.first"), Some(3));
    }

    #[test]
    fn summary_is_internally_consistent_under_concurrent_observes() {
        // Every observation is the same value, so any self-consistent
        // summary must satisfy sum == value × count and pin every
        // percentile to the value. The pre-fix summary read count,
        // sum, and each percentile in separate passes over the live
        // buckets, so a concurrent observe could land between passes
        // and tear them apart (e.g. sum > 0 with stale percentiles).
        use std::sync::atomic::AtomicBool;
        const VALUE: u64 = 3;
        let h = Arc::new(Histogram::with_cap(8));
        let stop = Arc::new(AtomicBool::new(false));
        let writer = {
            let (h, stop) = (Arc::clone(&h), Arc::clone(&stop));
            std::thread::spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    h.observe(VALUE);
                }
            })
        };
        for _ in 0..10_000 {
            let s = h.summary();
            assert_eq!(s.sum, VALUE * s.count, "sum and count from one snapshot");
            if s.count > 0 {
                assert_eq!((s.min, s.p50, s.p95, s.p99, s.max), (3, 3, 3, 3, 3));
            }
            assert_eq!(s.clamped, 0);
        }
        stop.store(true, Ordering::Relaxed);
        writer.join().expect("writer thread");
    }

    #[test]
    fn export_text_is_canonical_bytes() {
        let r = MetricsRegistry::new();
        r.counter("serve.answered").add(7);
        r.counter("serve.retries").add(2);
        let h = r.histogram_with_cap("span.request", 8);
        h.observe(1);
        h.observe(3);
        h.observe(100); // clamps to 8
        assert_eq!(
            r.report().export_text(),
            "counter serve.answered 7\n\
             counter serve.retries 2\n\
             histogram span.request count=3 sum=12 clamped=1 min=1 max=8 p50=3 p95=8 p99=8\n"
        );
        // Registration order never leaks into the rendering.
        let r2 = MetricsRegistry::new();
        let h2 = r2.histogram_with_cap("span.request", 8);
        h2.observe(100);
        h2.observe(3);
        h2.observe(1);
        r2.counter("serve.retries").add(2);
        r2.counter("serve.answered").add(7);
        assert_eq!(r2.report().export_text(), r.report().export_text());
    }

    #[test]
    fn observe_trace_fills_per_stage_histograms() {
        use crate::clock::ManualClock;
        use crate::span::TraceBuilder;
        let r = MetricsRegistry::new();
        let clock = Arc::new(ManualClock::new());
        let mut tb = TraceBuilder::new(0, clock as Arc<dyn crate::clock::Clock>);
        let root = tb.open("request");
        let inner = tb.open("stage");
        tb.close(inner);
        tb.close(root);
        r.observe_trace(&tb.finish());
        let report = r.report();
        assert_eq!(report.histogram("span.request").unwrap().p50, 3);
        assert_eq!(report.histogram("span.stage").unwrap().p50, 1);
    }
}
