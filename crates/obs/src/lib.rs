#![warn(missing_docs)]
#![forbid(unsafe_code)]

//! # nlidb-obs — deterministic tracing and metrics
//!
//! The survey's qualitative claims are about *why* an interpretation
//! succeeded or failed: entity-based readings are interpretable and
//! precise, learned ones are opaque but paraphrase-robust, and
//! comparative evaluations (Affolter et al.) classify systems by the
//! pipeline stage each test question dies in. Aggregate counters cannot
//! answer that question; per-query traces can. This crate is the
//! observability substrate the rest of the workspace records that
//! evidence into — built so that observing a run never makes it less
//! reproducible:
//!
//! * [`clock`] — injectable logical time. The [`Clock`] trait and
//!   [`ManualClock`] live here (the serving crate re-exports them);
//!   no wall-clock exists anywhere in this crate.
//! * [`span`] — a [`TraceBuilder`] records a tree of named spans. Every
//!   open/close event is stamped with a coarse tick read from the
//!   injected clock *and* a per-trace monotonic sequence number (the
//!   trace's own logical tick: one per recorded event). Span cost is
//!   measured in those trace ticks, so it is bit-identical run over
//!   run — never a duration sampled from a real timer.
//! * [`metrics`] — a [`MetricsRegistry`] of named [`Counter`]s and
//!   [`Histogram`]s over logical values, with *exact* percentile
//!   queries (one bucket per value up to a cap, saturating above it),
//!   plus the bounded-memory [`SketchHistogram`] (65 fixed log₂
//!   buckets, mergeable, never clamps) for soak-scale latency folds.
//! * [`sink`] — a bounded [`TraceSink`] collecting finished traces from
//!   concurrent workers. Retention and JSONL export depend only on the
//!   set of trace ids pushed, never on arrival interleaving, so two
//!   runs of the same seeded stream export byte-identical JSONL —
//!   experiment E14's claim. [`TraceSink::with_sampling`] adds a
//!   deterministic id-modulus sampling policy so soak runs keep span
//!   memory constant without losing reproducibility.
//! * [`profile`] — the analysis layer over a trace corpus: per-stage
//!   self vs. inherited cost, critical-path extraction, tail
//!   attribution (which stage dominates the p95/p99 root cost, split
//!   by rung and interpreter), and clean-vs-faulted diffing. E16's
//!   substrate, and what the perf-drift gate compares byte-exactly.
//! * [`export`] — deterministic Chrome Trace Event JSON (for
//!   `about://tracing`) and folded-stack text (for flamegraphs).
//! * [`jsonl`] — strict re-import of the sink's JSONL export, so the
//!   `tracetool` binary can profile a corpus written by an earlier
//!   run.
//! * [`timeseries`] — the time dimension: [`WindowedCounter`] /
//!   [`WindowedHistogram`] bucket observations into fixed-width
//!   logical-tick windows in a bounded ring (evicted windows fold
//!   into totals, so window sums reconcile exactly with cumulative
//!   counters), and a [`WindowedScope`] renders the resulting window
//!   matrix canonically — E21's substrate.
//! * [`slo`] — the deterministic [`SloEngine`]: per-objective
//!   error-budget burn rates over short+long window pairs, firing and
//!   clearing [`HealthEvent`]s that replay byte-identically and
//!   travel as ordinary traces (root span `health`) in the sink.
//! * [`reservoir`] — a seeded fixed-capacity [`ReservoirSampler`]
//!   giving exact-percentile spot checks of the sketch's documented
//!   2× bucket-resolution bound.

pub mod clock;
pub mod export;
pub mod jsonl;
pub mod metrics;
pub mod profile;
pub mod reservoir;
pub mod sink;
pub mod slo;
pub mod span;
pub mod timeseries;

pub use clock::{Clock, ManualClock};
pub use export::{chrome_trace_json, folded_stacks};
pub use jsonl::{parse_jsonl, parse_trace, ParseError};
pub use metrics::{
    Counter, Histogram, HistogramSummary, MetricsRegistry, MetricsReport, SketchHistogram,
    SKETCH_BUCKETS,
};
pub use profile::{
    attr_cost_breakdown, critical_path, critical_path_cost, tail_attribution, AttrBucket, Profile,
    ProfileDiff, StageDelta, StageProfile, TailAttribution,
};
pub use reservoir::ReservoirSampler;
pub use sink::TraceSink;
pub use slo::{
    BurnSample, HealthEvent, HealthEventKind, SloEngine, SloKind, SloPolicy, HEALTH_TRACE_BASE,
};
pub use span::{Span, SpanId, Trace, TraceBuilder};
pub use timeseries::{WindowedCounter, WindowedHistogram, WindowedScope};
