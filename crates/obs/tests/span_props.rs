//! Property tests for the span recorder: *any* interleaving of opens,
//! closes (targeted at arbitrary spans, including already-closed
//! ones), and annotations must yield a balanced tree with strictly
//! increasing sequence numbers.

use std::sync::Arc;

use nlidb_obs::{Clock, ManualClock, SpanId, Trace, TraceBuilder};
use proptest::prelude::*;

/// Replay an op list against a builder. Ops: 0 = open, 1 = close a
/// pseudo-random prior span, 2 = annotate a prior span, 3 = advance
/// the clock.
fn replay(ops: &[(u8, u8)]) -> Trace {
    let clock = Arc::new(ManualClock::new());
    let mut tb = TraceBuilder::new(42, clock.clone() as Arc<dyn Clock>);
    let mut ids: Vec<SpanId> = Vec::new();
    for &(op, pick) in ops {
        match op % 4 {
            0 => ids.push(tb.open(&format!("s{}", ids.len() % 5))),
            1 if !ids.is_empty() => {
                let target = ids[pick as usize % ids.len()];
                tb.close(target);
            }
            2 if !ids.is_empty() => {
                let target = ids[pick as usize % ids.len()];
                tb.annotate(target, "k", pick.to_string());
            }
            3 => {
                clock.advance(u64::from(pick) % 3);
            }
            _ => {}
        }
    }
    tb.finish()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn any_interleaving_yields_a_balanced_strictly_sequenced_tree(
        ops in proptest::collection::vec((0u8..8, 0u8..64), 0..120),
    ) {
        let trace = replay(&ops);

        // Every span is balanced: it closed, after it opened.
        let mut events: Vec<u64> = Vec::new();
        for s in &trace.spans {
            prop_assert!(s.seq_open < s.seq_close, "{s:?}");
            prop_assert!(s.tick_open <= s.tick_close, "coarse time is monotonic");
            events.push(s.seq_open);
            events.push(s.seq_close);
        }

        // Sequence numbers are strictly increasing: 1..=2n, no gaps,
        // no duplicates — exactly one per open/close event.
        events.sort_unstable();
        let expected: Vec<u64> = (1..=2 * trace.spans.len() as u64).collect();
        prop_assert_eq!(events, expected);

        // The tree is strictly nested: a child opens after its parent
        // opens and closes before its parent closes, and parents
        // precede children in recorded order.
        for (idx, s) in trace.spans.iter().enumerate() {
            if let Some(p) = s.parent {
                prop_assert!(p < idx, "parents precede children");
                let parent = &trace.spans[p];
                prop_assert!(parent.seq_open < s.seq_open);
                prop_assert!(s.seq_close < parent.seq_close);
            }
        }
    }

    #[test]
    fn replay_is_deterministic(
        ops in proptest::collection::vec((0u8..8, 0u8..64), 0..80),
    ) {
        let a = replay(&ops);
        let b = replay(&ops);
        prop_assert_eq!(&a, &b);
        prop_assert_eq!(a.to_json(), b.to_json());
    }
}
