//! Smoke tests for the `tracetool` binary's command-line surface:
//! bad invocations exit non-zero with a usage string naming every
//! subcommand, malformed corpora fail fast with a one-line error, and
//! the new `timeline`/`health` subcommands render deterministically
//! from a real export.

use std::path::PathBuf;
use std::process::{Command, Output};
use std::sync::Arc;

use nlidb_obs::slo::{HealthEvent, HealthEventKind, HEALTH_TRACE_BASE};
use nlidb_obs::{Clock, ManualClock, TraceBuilder, TraceSink};

fn tracetool(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_tracetool"))
        .args(args)
        .output()
        .expect("spawn tracetool")
}

fn temp_file(name: &str, contents: &str) -> PathBuf {
    let path = std::env::temp_dir().join(format!("tracetool-smoke-{}-{name}", std::process::id()));
    std::fs::write(&path, contents).expect("write temp corpus");
    path
}

/// A tiny but real corpus: two request traces (one shed) and one
/// health event, exported through the same sink the server uses.
fn corpus() -> String {
    let sink = TraceSink::new(8);
    for (id, outcome, tick) in [(1u64, "answered", 2u64), (2, "shed", 9)] {
        let clock = Arc::new(ManualClock::starting_at(tick));
        let mut tb = TraceBuilder::new(id, clock as Arc<dyn Clock>);
        let root = tb.open("request");
        tb.annotate(root, "outcome", outcome);
        let inner = tb.open("admission");
        tb.close(inner);
        tb.close(root);
        sink.push(tb.finish());
    }
    let event = HealthEvent {
        seq: 0,
        objective: "availability".to_string(),
        kind: HealthEventKind::Fired,
        window: 1,
        tick: 9,
        short_burn_milli: 2500,
        long_burn_milli: 2100,
        short_counts: (1, 2),
        long_counts: (1, 2),
    };
    sink.push(event.to_trace(HEALTH_TRACE_BASE));
    sink.export_jsonl()
}

fn assert_usage(out: &Output) {
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("usage: tracetool"), "got: {stderr}");
    for sub in [
        "profile", "critical", "tail", "chrome", "folded", "diff", "metrics", "timeline", "health",
    ] {
        assert!(stderr.contains(sub), "usage must list {sub}; got: {stderr}");
    }
}

#[test]
fn no_arguments_prints_usage_and_exits_nonzero() {
    assert_usage(&tracetool(&[]));
}

#[test]
fn unknown_subcommand_prints_usage_and_exits_nonzero() {
    assert_usage(&tracetool(&["frobnicate", "x.jsonl"]));
}

#[test]
fn wrong_arity_prints_usage() {
    assert_usage(&tracetool(&["profile"]));
    assert_usage(&tracetool(&["diff", "only-one.jsonl"]));
}

#[test]
fn unreadable_path_fails_with_one_line_error() {
    let out = tracetool(&["profile", "/nonexistent/trace.jsonl"]);
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("cannot read"), "got: {stderr}");
}

#[test]
fn malformed_corpus_fails_with_one_line_error() {
    let path = temp_file("malformed.jsonl", "this is not a trace export\n");
    let out = tracetool(&["timeline", path.to_str().unwrap()]);
    let _ = std::fs::remove_file(&path);
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("is not a trace export"), "got: {stderr}");
}

#[test]
fn timeline_renders_window_matrix_deterministically() {
    let path = temp_file("timeline.jsonl", &corpus());
    let out = tracetool(&["timeline", path.to_str().unwrap(), "--width", "4"]);
    let again = tracetool(&["timeline", path.to_str().unwrap(), "--width", "4"]);
    let _ = std::fs::remove_file(&path);
    assert_eq!(out.status.code(), Some(0));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(stdout, String::from_utf8_lossy(&again.stdout));
    assert!(
        stdout.starts_with("windows width=4 from=w0 to=w2\n"),
        "got: {stdout}"
    );
    assert!(stdout.contains("counter answered | 1 0 0 | total=1 evicted=0"));
    assert!(stdout.contains("counter shed | 0 0 1 | total=1 evicted=0"));
    assert!(stdout.contains("histogram sojourn.count | 1 0 1 | total=2 evicted=0"));
    // The health trace must not leak into the request matrix.
    assert!(!stdout.contains("health"), "got: {stdout}");

    let bad = tracetool(&["timeline", "x.jsonl", "--width", "0"]);
    assert_usage(&bad);
}

#[test]
fn health_renders_event_log_from_corpus() {
    let path = temp_file("health.jsonl", &corpus());
    let out = tracetool(&["health", path.to_str().unwrap()]);
    let _ = std::fs::remove_file(&path);
    assert_eq!(out.status.code(), Some(0));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(
        stdout,
        "health seq=0 objective=availability event=fired window=w1 tick=9 \
         short_burn=2500 (1/2) long_burn=2100 (1/2)\n"
    );
}

#[test]
fn health_on_eventless_corpus_says_so() {
    let sink = TraceSink::new(2);
    let clock = Arc::new(ManualClock::new());
    let mut tb = TraceBuilder::new(1, clock as Arc<dyn Clock>);
    let root = tb.open("request");
    tb.close(root);
    sink.push(tb.finish());
    let path = temp_file("no-health.jsonl", &sink.export_jsonl());
    let out = tracetool(&["health", path.to_str().unwrap()]);
    let _ = std::fs::remove_file(&path);
    assert_eq!(out.status.code(), Some(0));
    assert_eq!(
        String::from_utf8_lossy(&out.stdout),
        "health: corpus has no health events\n"
    );
}
