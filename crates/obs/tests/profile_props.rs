//! Property tests for the profiler: over *arbitrary* balanced span
//! trees (any interleaving the recorder tolerates), the cost
//! accounting must hold exactly — self costs partition each root's
//! cost, the critical path is a root-anchored chain whose cost is the
//! sum of the self costs along it and never exceeds the root's cost,
//! and every analysis artifact (profile, exports, re-import) is a
//! deterministic function of the trace set.

use std::sync::Arc;

use nlidb_obs::profile::{children_of, self_costs};
use nlidb_obs::{
    chrome_trace_json, critical_path, critical_path_cost, folded_stacks, parse_jsonl, Clock,
    ManualClock, Profile, Span, SpanId, Trace, TraceBuilder, TraceSink,
};
use proptest::prelude::*;

/// Replay an op list against a builder (the span_props generator):
/// 0 = open, 1 = close a pseudo-random prior span, 2 = annotate one,
/// 3 = advance the clock.
fn replay(id: u64, ops: &[(u8, u8)]) -> Trace {
    let clock = Arc::new(ManualClock::new());
    let mut tb = TraceBuilder::new(id, clock.clone() as Arc<dyn Clock>);
    let mut ids: Vec<SpanId> = Vec::new();
    for &(op, pick) in ops {
        match op % 4 {
            0 => ids.push(tb.open(&format!("s{}", ids.len() % 5))),
            1 if !ids.is_empty() => tb.close(ids[pick as usize % ids.len()]),
            2 if !ids.is_empty() => tb.annotate(ids[pick as usize % ids.len()], "k", "1"),
            3 => {
                clock.advance(u64::from(pick) % 3);
            }
            _ => {}
        }
    }
    tb.finish()
}

/// Sum of self costs over the subtree rooted at `root`.
fn subtree_self_sum(trace: &Trace, selfs: &[u64], root: usize) -> u64 {
    let children = children_of(trace);
    let mut total = 0;
    let mut stack = vec![root];
    while let Some(i) = stack.pop() {
        total += selfs[i];
        stack.extend(&children[i]);
    }
    total
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn self_costs_partition_each_roots_cost(
        ops in proptest::collection::vec((0u8..8, 0u8..64), 0..120),
    ) {
        let trace = replay(9, &ops);
        let selfs = self_costs(&trace);
        for (i, span) in trace.spans.iter().enumerate() {
            prop_assert!(selfs[i] >= 1, "every span owns at least its close event");
            if span.parent.is_none() {
                prop_assert_eq!(
                    subtree_self_sum(&trace, &selfs, i),
                    span.cost(),
                    "self costs must sum to the root's cost"
                );
            }
        }
        // Corpus-level view of the same partition: folded-stack counts
        // total exactly the root costs.
        let folded_total: u64 = folded_stacks(std::slice::from_ref(&trace))
            .lines()
            .map(|l| l.rsplit(' ').next().unwrap().parse::<u64>().unwrap())
            .sum();
        let root_total: u64 = trace
            .spans
            .iter()
            .filter(|s| s.parent.is_none())
            .map(Span::cost)
            .sum();
        prop_assert_eq!(folded_total, root_total);
    }

    #[test]
    fn critical_path_is_a_chain_costed_by_its_self_costs(
        ops in proptest::collection::vec((0u8..8, 0u8..64), 0..120),
    ) {
        let trace = replay(9, &ops);
        let path = critical_path(&trace);
        let selfs = self_costs(&trace);
        if trace.spans.is_empty() {
            prop_assert!(path.is_empty());
        } else {
            // Anchored at the first root, each step a child of the last.
            let root = path[0];
            prop_assert!(trace.spans[root].parent.is_none());
            for w in path.windows(2) {
                prop_assert_eq!(trace.spans[w[1]].parent, Some(w[0]));
            }
            // Ends at a leaf.
            let last = *path.last().unwrap();
            prop_assert!(!trace.spans.iter().any(|s| s.parent == Some(last)));
            // Cost = sum of self costs along the path, bounded by the root.
            let along: u64 = path.iter().map(|&i| selfs[i]).sum();
            prop_assert_eq!(critical_path_cost(&trace), along);
            prop_assert!(along <= trace.spans[root].cost());
            prop_assert!(along >= 1, "a non-empty path costs at least the root's close");
        }
    }

    #[test]
    fn analysis_artifacts_are_deterministic_and_round_trip(
        ops in proptest::collection::vec((0u8..8, 0u8..64), 0..80),
        more in proptest::collection::vec((0u8..8, 0u8..64), 0..80),
    ) {
        let corpus = vec![replay(1, &ops), replay(2, &more)];
        let reversed: Vec<Trace> = corpus.iter().rev().cloned().collect();
        // Profile and exports depend on the trace set, not its order.
        prop_assert_eq!(
            Profile::from_traces(&corpus).export_text(),
            Profile::from_traces(&reversed).export_text()
        );
        prop_assert_eq!(chrome_trace_json(&corpus), chrome_trace_json(&reversed));
        prop_assert_eq!(folded_stacks(&corpus), folded_stacks(&reversed));
        // The JSONL export re-imports to exactly the retained traces.
        let sink = TraceSink::new(8);
        for t in &corpus {
            sink.push(t.clone());
        }
        prop_assert_eq!(parse_jsonl(&sink.export_jsonl()).unwrap(), sink.traces());
    }
}
