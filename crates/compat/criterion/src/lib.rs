#![warn(missing_docs)]
#![forbid(unsafe_code)]

//! # criterion (offline compatibility stand-in)
//!
//! The registry is unreachable in this build environment, so the real
//! `criterion` crate cannot be fetched. This crate implements the API
//! subset the workspace's benches use — [`Criterion`], benchmark
//! groups, [`BenchmarkId`], [`Throughput`], the [`criterion_group!`] /
//! [`criterion_main!`] macros, and `Bencher::iter` — over a plain
//! [`std::time::Instant`] harness.
//!
//! Reporting is intentionally simple: per benchmark it prints the
//! median, mean, and min of the per-iteration time across samples
//! (and elements/second when a throughput is set). There are no
//! statistical regressions, plots, or saved baselines.

use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

/// Target measurement time per benchmark (split across samples).
const MEASURE_BUDGET: Duration = Duration::from_millis(600);
/// Warm-up budget per benchmark.
const WARMUP_BUDGET: Duration = Duration::from_millis(120);

/// Set when the binary runs under `cargo test` (which passes `--test`):
/// each benchmark then executes exactly once, as a smoke test.
static QUICK_MODE: AtomicBool = AtomicBool::new(false);

/// Inspect CLI arguments; called by [`criterion_main!`]. Unknown flags
/// (e.g. cargo's `--bench`) are ignored.
pub fn init_from_args() {
    if std::env::args().any(|a| a == "--test") {
        QUICK_MODE.store(true, Ordering::Relaxed);
    }
}

/// A benchmark identifier: `function/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Id with a function name and a parameter rendering.
    pub fn new(function: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{function}/{parameter}"),
        }
    }

    /// Id carrying only a parameter rendering.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Work-per-iteration declaration, for derived rates.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Iteration processes this many logical elements.
    Elements(u64),
    /// Iteration processes this many bytes.
    Bytes(u64),
}

/// The top-level harness handle.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            measurement_time: MEASURE_BUDGET,
        }
    }
}

impl Criterion {
    /// Number of samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Total measurement budget per benchmark.
    pub fn measurement_time(mut self, t: Duration) -> Self {
        self.measurement_time = t;
        self
    }

    /// Open a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\n== group: {name} ==");
        BenchmarkGroup {
            name,
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
            throughput: None,
            _criterion: self,
        }
    }

    /// Run a standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Into<BenchmarkId>, f: F) {
        run_benchmark(
            &id.into().id,
            self.sample_size,
            self.measurement_time,
            None,
            f,
        );
    }
}

/// A group of related benchmarks sharing settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    measurement_time: Duration,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Number of samples per benchmark in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Total measurement budget per benchmark in this group.
    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.measurement_time = t;
        self
    }

    /// Declare the work performed by one iteration.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Run a benchmark in this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: F,
    ) -> &mut Self {
        let id = format!("{}/{}", self.name, id.into().id);
        run_benchmark(
            &id,
            self.sample_size,
            self.measurement_time,
            self.throughput,
            f,
        );
        self
    }

    /// Run a benchmark that borrows an input.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        self.bench_function(id, |b| f(b, input))
    }

    /// Finish the group (prints nothing extra; provided for API parity).
    pub fn finish(self) {}
}

/// Passed to the measured closure; call [`Bencher::iter`].
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `routine`, running it `self.iters` times back to back.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn time_once<F: FnMut(&mut Bencher)>(f: &mut F, iters: u64) -> Duration {
    let mut b = Bencher {
        iters,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    b.elapsed
}

fn run_benchmark<F: FnMut(&mut Bencher)>(
    id: &str,
    sample_size: usize,
    measurement_time: Duration,
    throughput: Option<Throughput>,
    mut f: F,
) {
    if QUICK_MODE.load(Ordering::Relaxed) {
        let t = time_once(&mut f, 1);
        println!(
            "{id:<48} smoke-tested once in {}",
            human_time(t.as_secs_f64())
        );
        return;
    }
    // Warm up and estimate the per-iteration cost.
    let warmup_start = Instant::now();
    let mut probe_iters = 1u64;
    let mut per_iter = Duration::from_nanos(1);
    while warmup_start.elapsed() < WARMUP_BUDGET {
        let t = time_once(&mut f, probe_iters);
        per_iter = (t / probe_iters.max(1) as u32).max(Duration::from_nanos(1));
        if t < Duration::from_millis(2) {
            probe_iters = probe_iters.saturating_mul(2);
        }
    }
    // Split the measurement budget into `sample_size` samples.
    let per_sample = measurement_time / sample_size as u32;
    let iters = (per_sample.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 1 << 24) as u64;
    let mut samples: Vec<f64> = (0..sample_size)
        .map(|_| time_once(&mut f, iters).as_secs_f64() / iters as f64)
        .collect();
    samples.sort_by(|a, b| a.partial_cmp(b).expect("sample times are finite"));
    let median = samples[samples.len() / 2];
    let mean = samples.iter().sum::<f64>() / samples.len() as f64;
    let min = samples[0];
    let rate = throughput.map(|t| match t {
        Throughput::Elements(n) => format!("  {:>12}/s", human_rate(n as f64 / median)),
        Throughput::Bytes(n) => format!("  {:>10}B/s", human_rate(n as f64 / median)),
    });
    println!(
        "{id:<48} median {:>10}  mean {:>10}  min {:>10}  ({} samples x {} iters){}",
        human_time(median),
        human_time(mean),
        human_time(min),
        sample_size,
        iters,
        rate.unwrap_or_default(),
    );
}

fn human_time(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:.1} ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:.2} µs", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.2} ms", secs * 1e3)
    } else {
        format!("{secs:.2} s")
    }
}

fn human_rate(per_sec: f64) -> String {
    if per_sec >= 1e6 {
        format!("{:.2}M", per_sec / 1e6)
    } else if per_sec >= 1e3 {
        format!("{:.1}k", per_sec / 1e3)
    } else {
        format!("{per_sec:.1}")
    }
}

/// Hint the optimizer not to fold the value away (re-export of the
/// std implementation for API parity with upstream criterion).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Define a benchmark group entry point.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Define the bench binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $crate::init_from_args();
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion::default()
            .sample_size(3)
            .measurement_time(Duration::from_millis(6));
        let mut count = 0u64;
        c.bench_function("smoke", |b| b.iter(|| count += 1));
        assert!(count > 0, "routine must actually run");
    }

    #[test]
    fn group_api_chains() {
        let mut c = Criterion::default()
            .sample_size(2)
            .measurement_time(Duration::from_millis(4));
        let mut group = c.benchmark_group("g");
        group.sample_size(2).throughput(Throughput::Elements(10));
        group.bench_with_input(BenchmarkId::new("f", 1), &3u64, |b, &x| b.iter(|| x * 2));
        group.bench_function("plain", |b| b.iter(|| 1 + 1));
        group.finish();
    }

    #[test]
    fn humanized_units() {
        assert!(human_time(3.2e-9).ends_with("ns"));
        assert!(human_time(3.2e-6).ends_with("µs"));
        assert!(human_time(3.2e-3).ends_with("ms"));
        assert!(human_time(2.0).ends_with('s'));
        assert_eq!(human_rate(2_500_000.0), "2.50M");
        assert_eq!(human_rate(2_500.0), "2.5k");
    }
}
