#![warn(missing_docs)]
#![forbid(unsafe_code)]

//! # proptest (offline compatibility stand-in)
//!
//! The registry is unreachable in this build environment, so the real
//! `proptest` crate cannot be fetched. This crate implements the API
//! subset the workspace's property tests use: the [`proptest!`] macro,
//! the [`Strategy`] trait with `prop_map` / `prop_filter` /
//! `prop_recursive` / `boxed`, [`prop_oneof!`], regex-literal string
//! strategies (a character-class subset), integer-range strategies,
//! tuple strategies, and the `prop::{collection, option, sample, bool}`
//! modules.
//!
//! Differences from upstream, by design:
//!
//! * **No shrinking.** A failing case panics with the generated inputs
//!   in the message; re-running is deterministic (cases are seeded from
//!   the test name), so failures reproduce exactly.
//! * **Regex strategies** support only sequences of character classes
//!   with optional `{m}` / `{m,n}` repetition — which covers every
//!   pattern in this repository.

use std::fmt::Debug;
use std::rc::Rc;

use rand::{Rng, SeedableRng};

/// The generator type threaded through all strategies.
pub type TestRng = rand::rngs::StdRng;

/// Runner configuration (subset: case count).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A value generator: the core abstraction.
pub trait Strategy {
    /// The generated type.
    type Value: Debug;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<O: Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Keep only values satisfying `pred` (regenerating on rejection).
    fn prop_filter<F: Fn(&Self::Value) -> bool>(
        self,
        reason: impl Into<String>,
        pred: F,
    ) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter {
            inner: self,
            reason: reason.into(),
            pred,
        }
    }

    /// Recursive strategy: `self` is the leaf; `branch` builds one level
    /// of nesting from a strategy for the level below. `depth` bounds
    /// the nesting level; the size hints are accepted for API
    /// compatibility and ignored.
    fn prop_recursive<S2, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        branch: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        S2: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S2,
    {
        let leaf = self.boxed();
        let mut current = leaf.clone();
        for _ in 0..depth {
            let level = branch(current).boxed();
            current = Union::new(vec![leaf.clone(), level]).boxed();
        }
        current
    }

    /// Type-erase into a clonable, shareable strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }
}

/// Object-safe generation, used behind [`BoxedStrategy`].
trait DynStrategy<T> {
    fn generate_dyn(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// A type-erased, reference-counted strategy.
pub struct BoxedStrategy<T>(Rc<dyn DynStrategy<T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T: Debug> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate_dyn(rng)
    }

    fn boxed(self) -> BoxedStrategy<T> {
        self
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O: Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    reason: String,
    pred: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..10_000 {
            let v = self.inner.generate(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter rejected 10000 consecutive values: {}",
            self.reason
        );
    }
}

/// Uniform choice among same-typed strategies; what [`prop_oneof!`]
/// builds.
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Choose uniformly among `arms` (must be non-empty).
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "Union of zero strategies");
        Union { arms }
    }
}

impl<T: Debug> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.gen_range(0..self.arms.len());
        self.arms[i].generate(rng)
    }
}

/// A constant strategy.
#[derive(Debug, Clone)]
pub struct Just<T: Clone + Debug>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical whole-domain strategy (subset of upstream's
/// `Arbitrary`).
pub trait Arbitrary: Debug + Sized {
    /// Generate an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.gen_bool(0.5)
    }
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.gen_range(<$t>::MIN..=<$t>::MAX)
            }
        }
    )*};
}

arbitrary_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize);

/// Strategy for the whole domain of `T`.
pub struct Any<T>(std::marker::PhantomData<T>);

/// The whole-domain strategy for `T` — `any::<bool>()` etc.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

int_range_strategy!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);
tuple_strategy!(A, B, C, D, E, F, G);
tuple_strategy!(A, B, C, D, E, F, G, H);
tuple_strategy!(A, B, C, D, E, F, G, H, I);
tuple_strategy!(A, B, C, D, E, F, G, H, I, J);
tuple_strategy!(A, B, C, D, E, F, G, H, I, J, K);
tuple_strategy!(A, B, C, D, E, F, G, H, I, J, K, L);

// ---------------------------------------------------------------------
// Regex-literal string strategies.
// ---------------------------------------------------------------------

/// One `[class]{m,n}` atom of a pattern.
#[derive(Debug, Clone)]
struct RegexAtom {
    chars: Vec<char>,
    min: usize,
    max: usize,
}

fn parse_class(pattern: &[char], mut i: usize) -> (Vec<char>, usize) {
    let mut chars = Vec::new();
    while i < pattern.len() && pattern[i] != ']' {
        let c = pattern[i];
        if i + 2 < pattern.len() && pattern[i + 1] == '-' && pattern[i + 2] != ']' {
            let hi = pattern[i + 2];
            assert!(c <= hi, "descending regex class range {c}-{hi}");
            for x in c..=hi {
                chars.push(x);
            }
            i += 3;
        } else {
            chars.push(c);
            i += 1;
        }
    }
    assert!(
        i < pattern.len(),
        "unterminated character class in regex strategy"
    );
    (chars, i + 1) // skip ']'
}

fn parse_repetition(pattern: &[char], i: usize) -> (usize, usize, usize) {
    if i < pattern.len() && pattern[i] == '{' {
        let close = pattern[i..]
            .iter()
            .position(|&c| c == '}')
            .expect("unterminated {m,n} in regex strategy")
            + i;
        let body: String = pattern[i + 1..close].iter().collect();
        let (min, max) = match body.split_once(',') {
            Some((lo, hi)) => (
                lo.parse().expect("bad {m,n} lower bound"),
                hi.parse().expect("bad {m,n} upper bound"),
            ),
            None => {
                let n = body.parse().expect("bad {m} count");
                (n, n)
            }
        };
        (min, max, close + 1)
    } else {
        (1, 1, i)
    }
}

fn parse_regex(pattern: &str) -> Vec<RegexAtom> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut atoms = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let (set, next) = match chars[i] {
            '[' => parse_class(&chars, i + 1),
            '\\' => {
                assert!(i + 1 < chars.len(), "trailing backslash in regex strategy");
                (vec![chars[i + 1]], i + 2)
            }
            c => {
                assert!(
                    !"(){}|*+?.^$".contains(c),
                    "unsupported regex construct {c:?} in strategy pattern {pattern:?}"
                );
                (vec![c], i + 1)
            }
        };
        let (min, max, next) = parse_repetition(&chars, next);
        assert!(min <= max, "descending repetition in {pattern:?}");
        atoms.push(RegexAtom {
            chars: set,
            min,
            max,
        });
        i = next;
    }
    atoms
}

impl Strategy for &'static str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        let mut out = String::new();
        for atom in parse_regex(self) {
            let n = rng.gen_range(atom.min..=atom.max);
            for _ in 0..n {
                out.push(atom.chars[rng.gen_range(0..atom.chars.len())]);
            }
        }
        out
    }
}

// ---------------------------------------------------------------------
// prop::{collection, option, sample, bool}
// ---------------------------------------------------------------------

/// Collection strategies.
pub mod collection {
    use super::*;

    /// Size specification for [`vec`].
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        min: usize,
        max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange {
                min: r.start,
                max: r.end - 1,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                min: *r.start(),
                max: *r.end(),
            }
        }
    }

    /// Strategy producing `Vec`s of `element` with a length in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = rng.gen_range(self.size.min..=self.size.max);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Option strategies.
pub mod option {
    use super::*;

    /// `Some` three times out of four, `None` otherwise.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    /// See [`of`].
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.gen_bool(0.75) {
                Some(self.inner.generate(rng))
            } else {
                None
            }
        }
    }
}

/// Sampling strategies.
pub mod sample {
    use super::*;

    /// Uniform choice from a fixed pool.
    pub fn select<T: Clone + Debug>(pool: Vec<T>) -> Select<T> {
        assert!(!pool.is_empty(), "select from empty pool");
        Select { pool }
    }

    /// See [`select`].
    pub struct Select<T> {
        pool: Vec<T>,
    }

    impl<T: Clone + Debug> Strategy for Select<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            self.pool[rng.gen_range(0..self.pool.len())].clone()
        }
    }
}

/// Boolean strategies.
pub mod bool {
    use super::*;

    /// `true` with probability `p`.
    pub fn weighted(p: f64) -> Weighted {
        Weighted { p }
    }

    /// See [`weighted`].
    pub struct Weighted {
        p: f64,
    }

    impl Strategy for Weighted {
        type Value = core::primitive::bool;

        fn generate(&self, rng: &mut TestRng) -> core::primitive::bool {
            rng.gen_bool(self.p)
        }
    }
}

/// The `prop::` namespace as the prelude exposes it.
pub mod prop {
    pub use crate::bool;
    pub use crate::collection;
    pub use crate::option;
    pub use crate::sample;
}

/// Everything the property tests import.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_oneof, proptest, Arbitrary, BoxedStrategy,
        Just, ProptestConfig, Strategy, Union,
    };
}

/// Seed a per-test generator from the test's name (FNV-1a), so every
/// property is deterministic and independent of test ordering.
pub fn rng_for_test(name: &str) -> TestRng {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    TestRng::seed_from_u64(h)
}

/// Assert inside a property; panics with the formatted message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            panic!("property assertion failed: {}", stringify!($cond));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            panic!(
                "property assertion failed: {}: {}",
                stringify!($cond),
                format!($($fmt)+)
            );
        }
    };
}

/// Assert equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            panic!("property assertion failed: left != right\n  left: {l:?}\n right: {r:?}");
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            panic!(
                "property assertion failed: left != right\n  left: {l:?}\n right: {r:?}\n  {}",
                format!($($fmt)+)
            );
        }
    }};
}

/// Uniform choice among strategy expressions of one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strat)),+])
    };
}

/// Define property tests: each case draws its arguments from the given
/// strategies and runs the body; any panic fails the test with the
/// case's inputs reproduced in the message.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! { $crate::ProptestConfig::default(); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    ($cfg:expr; $( $(#[$meta:meta])* fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::rng_for_test(concat!(module_path!(), "::", stringify!($name)));
                let strategy = ($($strat,)+);
                for __case in 0..config.cases {
                    let ($($arg,)+) = $crate::Strategy::generate(&strategy, &mut rng);
                    $body
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn regex_strategy_shapes() {
        let mut rng = crate::rng_for_test("regex");
        for _ in 0..200 {
            let s = Strategy::generate(&"[a-c]{2,4}", &mut rng);
            assert!((2..=4).contains(&s.len()), "{s:?}");
            assert!(s.chars().all(|c| ('a'..='c').contains(&c)), "{s:?}");
            let t = Strategy::generate(&"[a-z][a-z0-9_]{0,8}", &mut rng);
            assert!(!t.is_empty() && t.len() <= 9);
            assert!(t.chars().next().unwrap().is_ascii_lowercase());
            let u = Strategy::generate(&"[ -~]{0,6}", &mut rng);
            assert!(u.bytes().all(|b| (0x20..=0x7e).contains(&b)));
        }
    }

    #[test]
    fn oneof_and_map_and_filter() {
        let mut rng = crate::rng_for_test("oneof");
        let strat = prop_oneof![(0i64..10).prop_map(|v| v * 2), Just(1i64),]
            .prop_filter("odd-or-small", |v| *v != 4);
        let mut saw_one = false;
        for _ in 0..300 {
            let v = Strategy::generate(&strat, &mut rng);
            assert!(v != 4);
            assert!(v == 1 || (v % 2 == 0 && (0..20).contains(&v)));
            saw_one |= v == 1;
        }
        assert!(saw_one);
    }

    #[test]
    fn recursive_strategy_terminates() {
        #[derive(Debug, Clone)]
        enum Tree {
            Leaf(i64),
            Node(Vec<Tree>),
        }
        fn depth(t: &Tree) -> usize {
            match t {
                Tree::Leaf(_) => 0,
                Tree::Node(kids) => 1 + kids.iter().map(depth).max().unwrap_or(0),
            }
        }
        let strat = (0i64..5)
            .prop_map(Tree::Leaf)
            .prop_recursive(3, 16, 4, |inner| {
                crate::collection::vec(inner, 1..3).prop_map(Tree::Node)
            });
        let mut rng = crate::rng_for_test("recursive");
        for _ in 0..200 {
            let t = Strategy::generate(&strat, &mut rng);
            assert!(depth(&t) <= 3, "{t:?}");
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn macro_draws_all_args(a in 0u32..10, b in any::<bool>(), s in "[a-b]{1,3}") {
            prop_assert!(a < 10);
            prop_assert!(b || !b);
            prop_assert!(!s.is_empty() && s.len() <= 3, "bad len {}", s.len());
            prop_assert_eq!(s.clone(), s);
        }
    }

    #[test]
    fn option_and_sample_and_weighted() {
        let mut rng = crate::rng_for_test("misc");
        let opt = crate::option::of(0i64..3);
        let mut nones = 0;
        for _ in 0..400 {
            if Strategy::generate(&opt, &mut rng).is_none() {
                nones += 1;
            }
        }
        assert!(nones > 40 && nones < 200, "{nones}");
        let sel = crate::sample::select(vec!["x", "y"]);
        for _ in 0..50 {
            let v = Strategy::generate(&sel, &mut rng);
            assert!(v == "x" || v == "y");
        }
        let w = crate::bool::weighted(0.9);
        let trues = (0..400)
            .filter(|_| Strategy::generate(&w, &mut rng))
            .count();
        assert!(trues > 300);
    }
}
