#![warn(missing_docs)]
#![forbid(unsafe_code)]

//! # rand (offline compatibility stand-in)
//!
//! This workspace builds in an environment with no registry access, so
//! the real `rand` crate cannot be fetched. This crate re-implements
//! the *exact API subset* the workspace uses — `StdRng`,
//! [`SeedableRng::seed_from_u64`], [`Rng::gen_range`],
//! [`Rng::gen_bool`], and [`seq::SliceRandom`] — on top of a
//! xoshiro256\*\* generator seeded through SplitMix64.
//!
//! Streams are deterministic for a given seed, on every platform, and
//! are *stable within this repository*: experiment tables and golden
//! tests are regenerated against these streams (they intentionally do
//! not match upstream `rand`'s ChaCha12-based `StdRng`).

/// A source of random `u64`s.
pub trait RngCore {
    /// Next raw 64-bit value.
    fn next_u64(&mut self) -> u64;

    /// Next raw 32-bit value (high bits of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of a generator from seed material.
pub trait SeedableRng: Sized {
    /// The full-entropy seed type.
    type Seed;

    /// Build from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Build from a `u64` by expanding it with SplitMix64 — the
    /// conventional seeding path everywhere in this workspace.
    fn seed_from_u64(state: u64) -> Self;
}

/// SplitMix64 step: the standard seed-expansion PRNG.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// The workspace's standard generator: xoshiro256\*\*.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StdRng {
    s: [u64; 4],
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

impl SeedableRng for StdRng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut s = [0u64; 4];
        for (i, word) in s.iter_mut().enumerate() {
            let mut bytes = [0u8; 8];
            bytes.copy_from_slice(&seed[i * 8..i * 8 + 8]);
            *word = u64::from_le_bytes(bytes);
        }
        // All-zero state is the one fixed point; nudge it.
        if s == [0, 0, 0, 0] {
            s = [0x9e37_79b9_7f4a_7c15, 1, 2, 3];
        }
        StdRng { s }
    }

    fn seed_from_u64(state: u64) -> Self {
        let mut sm = state;
        StdRng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }
}

/// A range understood by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw a uniform value in the range. Panics on empty ranges.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform `u64` in `[0, span)` by rejection sampling (no modulo bias).
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    if span.is_power_of_two() {
        return rng.next_u64() & (span - 1);
    }
    // Reject draws past the largest multiple of span below 2^64:
    // 2^64 mod span == ((u64::MAX % span) + 1) % span.
    let overhang = (u64::MAX % span + 1) % span;
    let zone = u64::MAX - overhang;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % span;
        }
    }
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range on empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                let off = uniform_below(rng, span);
                (self.start as i128 + off as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range on empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    // Whole-domain range: a raw draw is already uniform.
                    return rng.next_u64() as $t;
                }
                let off = uniform_below(rng, span as u64);
                (start as i128 + off as i128) as $t
            }
        }
    )*};
}

int_sample_range!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

/// `[0, 1)` double with 53 random bits.
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range on empty range");
        self.start + unit_f64(rng) * (self.end - self.start)
    }
}

impl SampleRange<f32> for core::ops::Range<f32> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "gen_range on empty range");
        self.start + (unit_f64(rng) as f32) * (self.end - self.start)
    }
}

/// Convenience methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform value in `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool p out of [0,1]");
        unit_f64(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    pub use crate::StdRng;
}

/// Sequence helpers, mirroring `rand::seq`.
pub mod seq {
    use crate::{Rng, RngCore};

    /// Slice shuffling and choosing.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly chosen element (`None` on empty slices).
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::seq::SliceRandom;
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let mut c = StdRng::seed_from_u64(43);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..2000 {
            let v = rng.gen_range(-20i64..20);
            assert!((-20..20).contains(&v));
            let u = rng.gen_range(0usize..3);
            assert!(u < 3);
            let w = rng.gen_range(1u32..=12);
            assert!((1..=12).contains(&w));
            let f = rng.gen_range(-0.5f64..0.5);
            assert!((-0.5..0.5).contains(&f));
        }
    }

    #[test]
    fn gen_range_covers_every_value() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut seen = [false; 5];
        for _ in 0..500 {
            seen[rng.gen_range(0..5usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "{hits}");
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut xs: Vec<u32> = (0..50).collect();
        xs.shuffle(&mut rng);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(xs, sorted, "shuffle of 50 elements should move something");
    }

    #[test]
    fn choose_is_uniformish() {
        let mut rng = StdRng::seed_from_u64(9);
        let xs = [1, 2, 3];
        let mut counts = [0usize; 3];
        for _ in 0..3000 {
            counts[*xs.choose(&mut rng).unwrap() as usize - 1] += 1;
        }
        assert!(counts.iter().all(|&c| c > 700), "{counts:?}");
        assert!(<[u32]>::choose(&[], &mut rng).is_none());
    }
}
