//! Ontology-driven bootstrap of conversation artifacts — the Quamar
//! et al. approach: "capturing patterns in the expected workload,
//! mapping these patterns against the domain ontology to generate
//! artifacts (i.e., intents, training examples, entities)".
//!
//! From a domain ontology this module generates, with zero manual
//! setup:
//! * one *intent* per workload pattern × concept (show / count /
//!   aggregate / filter / rank), each with template-expanded training
//!   examples enriched by lexicon synonyms,
//! * *entities* (value lists) from the database's categorical columns,
//! * a trainable [`IntentClassifier`] over those examples (E10).

use nlidb_core::pipeline::SchemaContext;
use nlidb_engine::{Database, Value};
use nlidb_ml::{Mlp, MlpConfig};
use nlidb_nlp::{porter_stem, tokenize, TokenKind};
use nlidb_ontology::PropertyRole;

/// One generated intent with its training examples.
#[derive(Debug, Clone)]
pub struct IntentArtifact {
    /// Intent name, e.g. `aggregate_order_amount`.
    pub name: String,
    /// Generated training utterances.
    pub examples: Vec<String>,
}

/// One generated entity (value list) for slot recognition.
#[derive(Debug, Clone)]
pub struct EntityArtifact {
    /// Entity name, e.g. `customer_city`.
    pub name: String,
    /// Known values.
    pub values: Vec<String>,
}

/// The full bootstrap output.
#[derive(Debug, Clone, Default)]
pub struct ConversationArtifacts {
    /// Generated intents.
    pub intents: Vec<IntentArtifact>,
    /// Generated entities.
    pub entities: Vec<EntityArtifact>,
}

impl ConversationArtifacts {
    /// Total number of generated training examples.
    pub fn example_count(&self) -> usize {
        self.intents.iter().map(|i| i.examples.len()).sum()
    }
}

/// Expand a template over a word and its lexicon synonyms.
fn expand(templates: &[&str], ctx: &SchemaContext, word: &str) -> Vec<String> {
    let mut variants = vec![word.to_string()];
    variants.extend(
        ctx.lexicon
            .synonyms_of(word)
            .iter()
            .take(2)
            .map(|s| s.to_string()),
    );
    let mut out = Vec::with_capacity(templates.len() * variants.len());
    for t in templates {
        for v in &variants {
            out.push(t.replace("{x}", v));
        }
    }
    out
}

/// Generate intents + entities from the ontology (and value lists from
/// the database).
pub fn bootstrap_from_ontology(db: &Database, ctx: &SchemaContext) -> ConversationArtifacts {
    let mut artifacts = ConversationArtifacts::default();
    for concept in &ctx.ontology.concepts {
        let c = &concept.label;
        artifacts.intents.push(IntentArtifact {
            name: format!("show_{c}"),
            examples: expand(
                &[
                    "show all {x}s",
                    "list the {x}s",
                    "display {x}s",
                    "give me every {x}",
                ],
                ctx,
                c,
            ),
        });
        artifacts.intents.push(IntentArtifact {
            name: format!("count_{c}"),
            examples: expand(
                &[
                    "how many {x}s are there",
                    "count the {x}s",
                    "number of {x}s",
                ],
                ctx,
                c,
            ),
        });
        for m in ctx.ontology.measures_of(c) {
            let label = &m.label;
            artifacts.intents.push(IntentArtifact {
                name: format!("aggregate_{c}_{}", m.column),
                examples: expand(
                    &[
                        "total {x}",
                        "sum of {x}",
                        "average {x}",
                        "what is the overall {x}",
                        "mean {x}",
                    ],
                    ctx,
                    label,
                ),
            });
            artifacts.intents.push(IntentArtifact {
                name: format!("rank_{c}_{}", m.column),
                examples: expand(
                    &["top {x}", "highest {x}", "largest {x}", "rank by {x}"],
                    ctx,
                    label,
                ),
            });
        }
        for p in ctx.ontology.properties_of(c) {
            if p.role == PropertyRole::Categorical {
                artifacts.intents.push(IntentArtifact {
                    name: format!("filter_{c}_{}", p.column),
                    examples: expand(
                        &[
                            "{x}s in",
                            "filter by {x}",
                            "only a certain {x}",
                            "restrict the {x}",
                        ],
                        ctx,
                        &p.label,
                    )
                    .into_iter()
                    .map(|e| e.replace("{x}s in", &format!("{c}s with some {}", p.label)))
                    .collect(),
                });
                // Entity from data values.
                if let Ok(table) = db.table(&concept.table) {
                    let values: Vec<String> = table
                        .distinct_values(&p.column)
                        .into_iter()
                        .filter_map(|v| match v {
                            Value::Str(s) => Some(s),
                            _ => None,
                        })
                        .collect();
                    if !values.is_empty() {
                        artifacts.entities.push(EntityArtifact {
                            name: format!("{c}_{}", p.column),
                            values,
                        });
                    }
                }
            }
        }
    }
    artifacts
}

/// A trainable intent classifier over bootstrap artifacts.
pub struct IntentClassifier {
    mlp: Mlp,
    labels: Vec<String>,
}

const IDIM: usize = 160;

fn features(utterance: &str) -> Vec<f64> {
    let mut v = vec![0.0; IDIM];
    let mut any = false;
    for t in tokenize(utterance) {
        if t.kind != TokenKind::Word {
            continue;
        }
        let stem = porter_stem(&t.norm);
        let mut h: u64 = 0xcbf29ce484222325;
        for b in stem.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        let sign = if (h >> 32) & 1 == 0 { 1.0 } else { -1.0 };
        v[h as usize % IDIM] += sign;
        any = true;
    }
    if any {
        let n = v.iter().map(|x| x * x).sum::<f64>().sqrt().max(1e-9);
        v.iter_mut().for_each(|x| *x /= n);
    }
    v
}

impl IntentClassifier {
    /// Train on bootstrap artifacts.
    pub fn train(artifacts: &ConversationArtifacts, seed: u64) -> IntentClassifier {
        let labels: Vec<String> = artifacts.intents.iter().map(|i| i.name.clone()).collect();
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for (li, intent) in artifacts.intents.iter().enumerate() {
            for e in &intent.examples {
                xs.push(features(e));
                ys.push(li);
            }
        }
        let cfg = MlpConfig {
            hidden: 48,
            epochs: 120,
            lr: 0.1,
            seed,
            l2: 1e-4,
        };
        let mut mlp = Mlp::new(IDIM, labels.len().max(2), &cfg);
        mlp.train(&xs, &ys, &cfg);
        IntentClassifier { mlp, labels }
    }

    /// Classify an utterance; returns (intent name, confidence).
    pub fn classify(&self, utterance: &str) -> (&str, f64) {
        let p = self.mlp.predict_proba(&features(utterance));
        let i = nlidb_ml::matrix::argmax(&p);
        (self.labels.get(i).map(String::as_str).unwrap_or(""), p[i])
    }

    /// Accuracy over labeled (utterance, intent) pairs.
    pub fn accuracy(&self, pairs: &[(String, String)]) -> f64 {
        if pairs.is_empty() {
            return 0.0;
        }
        let ok = pairs
            .iter()
            .filter(|(u, gold)| self.classify(u).0 == gold)
            .count();
        ok as f64 / pairs.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nlidb_engine::{ColumnType, TableSchema};

    fn setup() -> (Database, SchemaContext) {
        let mut db = Database::new("d");
        db.create_table(
            TableSchema::new("customers")
                .column("id", ColumnType::Int)
                .column("name", ColumnType::Text)
                .column("city", ColumnType::Text)
                .primary_key("id"),
        )
        .unwrap();
        db.create_table(
            TableSchema::new("orders")
                .column("id", ColumnType::Int)
                .column("customer_id", ColumnType::Int)
                .column("amount", ColumnType::Float)
                .primary_key("id")
                .foreign_key("customer_id", "customers", "id"),
        )
        .unwrap();
        for (id, n, c) in [(1, "Ada", "Austin"), (2, "Bob", "Boston")] {
            db.insert(
                "customers",
                vec![Value::Int(id), Value::from(n), Value::from(c)],
            )
            .unwrap();
        }
        let ctx = SchemaContext::build(&db);
        (db, ctx)
    }

    #[test]
    fn generates_intents_per_pattern() {
        let (db, ctx) = setup();
        let a = bootstrap_from_ontology(&db, &ctx);
        let names: Vec<&str> = a.intents.iter().map(|i| i.name.as_str()).collect();
        assert!(names.contains(&"show_customer"));
        assert!(names.contains(&"count_customer"));
        assert!(names.contains(&"show_order"));
        assert!(names.contains(&"aggregate_order_amount"));
        assert!(names.contains(&"rank_order_amount"));
        assert!(names.contains(&"filter_customer_city"));
        assert!(a.example_count() > 30, "rich training set expected");
    }

    #[test]
    fn entities_from_data_values() {
        let (db, ctx) = setup();
        let a = bootstrap_from_ontology(&db, &ctx);
        let city = a
            .entities
            .iter()
            .find(|e| e.name == "customer_city")
            .unwrap();
        assert!(city.values.contains(&"Austin".to_string()));
        assert!(city.values.contains(&"Boston".to_string()));
    }

    #[test]
    fn examples_include_synonyms() {
        let (db, ctx) = setup();
        let a = bootstrap_from_ontology(&db, &ctx);
        let show = a
            .intents
            .iter()
            .find(|i| i.name == "show_customer")
            .unwrap();
        // "client" is a lexicon synonym of "customer".
        assert!(
            show.examples.iter().any(|e| e.contains("client")),
            "{:?}",
            show.examples
        );
    }

    #[test]
    fn classifier_learns_generated_intents() {
        let (db, ctx) = setup();
        let a = bootstrap_from_ontology(&db, &ctx);
        let clf = IntentClassifier::train(&a, 5);
        let (intent, conf) = clf.classify("how many customers are there");
        assert_eq!(intent, "count_customer");
        assert!(conf > 0.3);
        let (intent, _) = clf.classify("show all the clients");
        assert_eq!(intent, "show_customer");
        let (intent, _) = clf.classify("total amount");
        assert_eq!(intent, "aggregate_order_amount");
    }

    #[test]
    fn accuracy_metric() {
        let (db, ctx) = setup();
        let a = bootstrap_from_ontology(&db, &ctx);
        let clf = IntentClassifier::train(&a, 5);
        let pairs = vec![
            (
                "count the customers".to_string(),
                "count_customer".to_string(),
            ),
            (
                "list the customers".to_string(),
                "show_customer".to_string(),
            ),
        ];
        assert!(clf.accuracy(&pairs) > 0.49);
        assert_eq!(clf.accuracy(&[]), 0.0);
    }
}
