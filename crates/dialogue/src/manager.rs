//! The three dialogue-management regimes of §5 as acceptance policies
//! over dialogue acts.
//!
//! All three share the same act detector and state editor; what
//! differs — exactly as the survey frames it — is *which user moves
//! each regime can accommodate*:
//!
//! * finite-state: a fixed script (query → narrow → aggregate →
//!   top-N); anything off-script is rejected;
//! * frame-based: any slot-filling move, in any order, including
//!   refilling a slot ("what about Boston"); structural moves (focus
//!   switch, filter removal) are rejected;
//! * agent-based: every act, user initiative included.

use crate::acts::DialogueAct;

/// Which §5 regime a session runs under.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ManagerKind {
    /// Finite-state script.
    FiniteState,
    /// Frame/slot filling.
    Frame,
    /// Agent-based (user can lead).
    Agent,
}

impl ManagerKind {
    /// Label for experiment tables.
    pub fn label(&self) -> &'static str {
        match self {
            ManagerKind::FiniteState => "finite-state",
            ManagerKind::Frame => "frame",
            ManagerKind::Agent => "agent",
        }
    }

    /// All regimes, in the survey's order of increasing flexibility.
    pub fn all() -> [ManagerKind; 3] {
        [
            ManagerKind::FiniteState,
            ManagerKind::Frame,
            ManagerKind::Agent,
        ]
    }

    /// The finite-state script: the stage each act belongs to. The
    /// script only moves forward.
    fn script_stage(act: &DialogueAct) -> Option<usize> {
        match act {
            DialogueAct::NewQuery => Some(0),
            DialogueAct::AddFilter => Some(1),
            DialogueAct::SetAggregation => Some(2),
            DialogueAct::SetTopN => Some(3),
            _ => None,
        }
    }

    /// Does this regime accept the act, given the turns so far?
    /// `stage` is the script position for the finite-state regime
    /// (updated by the caller on acceptance).
    pub fn accepts(&self, act: &DialogueAct, has_context: bool, stage: usize) -> bool {
        if matches!(act, DialogueAct::Unknown) {
            return false;
        }
        match self {
            ManagerKind::Agent => true,
            ManagerKind::Frame => !matches!(
                act,
                DialogueAct::RemoveFilters | DialogueAct::SwitchFocus { .. }
            ),
            ManagerKind::FiniteState => {
                let Some(act_stage) = Self::script_stage(act) else {
                    return false;
                };
                if !has_context {
                    return act_stage == 0;
                }
                // Strictly forward through the script (`stage` is the
                // lowest stage still allowed): no restarts, no
                // revisiting a completed stage.
                act_stage >= stage.max(1)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nlidb_core::linking::{LinkKind, LinkedMention};

    fn replace_act() -> DialogueAct {
        DialogueAct::ReplaceValue {
            mention: LinkedMention {
                start: 0,
                len: 1,
                text: "boston".into(),
                kind: LinkKind::Value {
                    concept: "customer".into(),
                    property: "city".into(),
                    value: "Boston".into(),
                },
                score: 1.0,
            },
        }
    }

    #[test]
    fn agent_accepts_everything_known() {
        let m = ManagerKind::Agent;
        assert!(m.accepts(&DialogueAct::NewQuery, false, 0));
        assert!(m.accepts(&DialogueAct::RemoveFilters, true, 0));
        assert!(m.accepts(
            &DialogueAct::SwitchFocus {
                concept: "order".into()
            },
            true,
            0
        ));
        assert!(m.accepts(&replace_act(), true, 0));
        assert!(!m.accepts(&DialogueAct::Unknown, true, 0));
    }

    #[test]
    fn frame_rejects_structural_moves() {
        let m = ManagerKind::Frame;
        assert!(m.accepts(&DialogueAct::NewQuery, false, 0));
        assert!(
            m.accepts(&replace_act(), true, 0),
            "slot refill is frame territory"
        );
        assert!(m.accepts(&DialogueAct::AddFilter, true, 0));
        assert!(m.accepts(&DialogueAct::SetAggregation, true, 0));
        assert!(!m.accepts(&DialogueAct::RemoveFilters, true, 0));
        assert!(!m.accepts(
            &DialogueAct::SwitchFocus {
                concept: "order".into()
            },
            true,
            0
        ));
    }

    #[test]
    fn finite_state_follows_script_only() {
        let m = ManagerKind::FiniteState;
        // Must start with a query.
        assert!(m.accepts(&DialogueAct::NewQuery, false, 0));
        assert!(!m.accepts(&DialogueAct::AddFilter, false, 0));
        // Forward moves allowed.
        assert!(m.accepts(&DialogueAct::AddFilter, true, 1));
        assert!(m.accepts(&DialogueAct::SetAggregation, true, 1));
        // Backward or off-script moves rejected.
        assert!(!m.accepts(&DialogueAct::AddFilter, true, 3));
        assert!(!m.accepts(&replace_act(), true, 1));
        assert!(!m.accepts(
            &DialogueAct::SetGroup {
                mention: match replace_act() {
                    DialogueAct::ReplaceValue { mention } => mention,
                    _ => unreachable!(),
                }
            },
            true,
            1
        ));
    }

    #[test]
    fn flexibility_is_ordered() {
        // Count accepted acts per regime over a fixed act inventory:
        // the survey's flexibility ladder must hold.
        let acts = [
            DialogueAct::NewQuery,
            DialogueAct::AddFilter,
            DialogueAct::SetAggregation,
            DialogueAct::SetTopN,
            DialogueAct::SetOrder,
            DialogueAct::RemoveFilters,
            DialogueAct::SwitchFocus {
                concept: "order".into(),
            },
            replace_act(),
        ];
        let count = |m: ManagerKind| acts.iter().filter(|a| m.accepts(a, true, 1)).count();
        let fsm = count(ManagerKind::FiniteState);
        let frame = count(ManagerKind::Frame);
        let agent = count(ManagerKind::Agent);
        assert!(fsm < frame, "{fsm} !< {frame}");
        assert!(frame < agent, "{frame} !< {agent}");
    }
}
