//! A multi-turn conversation session over a database.

use nlidb_core::pipeline::SchemaContext;
use nlidb_engine::{execute, Database, ResultSet};
use nlidb_sqlir::Query;

use crate::acts::{detect_act, DialogueAct};
use crate::manager::ManagerKind;
use crate::state::{fnv1a, DialogueState, TurnRecord};

/// The outcome of one turn.
#[derive(Debug, Clone)]
pub struct TurnResult {
    /// The detected act's label.
    pub act: &'static str,
    /// Whether the manager accepted and applied the act.
    pub accepted: bool,
    /// The SQL run after this turn (None when rejected / not ready).
    pub sql: Option<Query>,
    /// The result rows (None when rejected or execution failed).
    pub result: Option<ResultSet>,
    /// A user-facing response line.
    pub response: String,
}

impl TurnResult {
    /// A stable digest of the turn's visible outcome: act, acceptance,
    /// rendered SQL, and response line. `turn` is deterministic, so a
    /// replayed turn reproduces the digest of the original exactly;
    /// crash-recovery journals store it to detect divergence.
    pub fn digest(&self) -> u64 {
        let mut acc = String::new();
        acc.push_str(self.act);
        acc.push('\u{1f}');
        acc.push(if self.accepted { '+' } else { '-' });
        acc.push('\u{1f}');
        if let Some(sql) = &self.sql {
            acc.push_str(&sql.to_string());
        }
        acc.push('\u{1f}');
        acc.push_str(&self.response);
        fnv1a(acc.as_bytes())
    }
}

/// A running conversation: context + manager + database.
pub struct ConversationSession<'a> {
    db: &'a Database,
    ctx: &'a SchemaContext,
    manager: ManagerKind,
    state: DialogueState,
    script_stage: usize,
}

impl<'a> ConversationSession<'a> {
    /// Start a session under a management regime.
    pub fn new(db: &'a Database, ctx: &'a SchemaContext, manager: ManagerKind) -> Self {
        ConversationSession {
            db,
            ctx,
            manager,
            state: DialogueState::new(),
            script_stage: 0,
        }
    }

    /// Rebuild a session by exact replay of `utterances` — typically
    /// the journaled turns of a session whose worker crashed — against
    /// the same database and schema context. `turn` is a deterministic
    /// function of (db, ctx, manager, utterance sequence), so the
    /// rebuilt session is indistinguishable from the lost one: same
    /// state digest, same behavior on every subsequent turn. Each
    /// replayed turn's result is returned so callers can compare
    /// digests against what was journaled.
    pub fn replay<I, S>(
        db: &'a Database,
        ctx: &'a SchemaContext,
        manager: ManagerKind,
        utterances: I,
    ) -> (Self, Vec<TurnResult>)
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        let mut session = ConversationSession::new(db, ctx, manager);
        let results = utterances
            .into_iter()
            .map(|u| session.turn(u.as_ref()))
            .collect();
        (session, results)
    }

    /// The running state (read-only).
    pub fn state(&self) -> &DialogueState {
        &self.state
    }

    /// Digest of the current dialogue state (see [`DialogueState::digest`]).
    pub fn state_digest(&self) -> u64 {
        self.state.digest()
    }

    /// Which regime this session runs under.
    pub fn manager(&self) -> ManagerKind {
        self.manager
    }

    /// The next unfilled frame slot, in the frame's canonical order —
    /// what a frame-based system would prompt for.
    fn missing_slot(&self) -> Option<&'static str> {
        let oql = self.state.oql.as_ref()?;
        if oql.predicates.is_empty() {
            Some("filters")
        } else if oql.select.is_empty() {
            Some("summary (count, total, average)")
        } else if oql.group_by.is_empty() {
            Some("grouping")
        } else {
            None
        }
    }

    /// Process one user turn.
    pub fn turn(&mut self, utterance: &str) -> TurnResult {
        let act = detect_act(utterance, self.ctx, self.state.has_context());
        let label = act.label();
        let accepted = self
            .manager
            .accepts(&act, self.state.has_context(), self.script_stage);

        let applied = accepted && self.state.apply(&act, utterance, self.ctx);
        self.state.history.push(TurnRecord {
            utterance: utterance.to_string(),
            act_label: label,
            accepted: applied,
        });
        if !applied {
            let response = if accepted {
                "I could not relate that to the current question.".to_string()
            } else {
                match self.manager {
                    ManagerKind::FiniteState => {
                        "Please follow the steps: question, then filters, then summaries."
                            .to_string()
                    }
                    // Frame-based systems "keep track of what
                    // information is required and ask questions
                    // accordingly" (§5): name the missing/expected slot.
                    ManagerKind::Frame => match self.missing_slot() {
                        Some(slot) => {
                            format!("I cannot change that. You could refine the {slot} instead.")
                        }
                        None => "I cannot handle that kind of request.".to_string(),
                    },
                    ManagerKind::Agent => "I cannot handle that kind of request.".to_string(),
                }
            };
            return TurnResult {
                act: label,
                accepted: false,
                sql: None,
                result: None,
                response,
            };
        }
        if self.manager == ManagerKind::FiniteState {
            if let DialogueAct::NewQuery = act {
                self.script_stage = 1;
            } else {
                // Advance past the stage just used.
                self.script_stage = match act {
                    DialogueAct::AddFilter => 2,
                    DialogueAct::SetAggregation => 3,
                    DialogueAct::SetTopN => 4,
                    _ => self.script_stage,
                };
            }
        }

        // Lower + execute.
        let oql = self
            .state
            .oql
            .as_ref()
            .expect("applied act implies context");
        match oql.to_sql(&self.ctx.ontology, &self.ctx.graph) {
            Ok(sql) => match execute(self.db, &sql) {
                Ok(result) => {
                    let response = format!("{} row(s).", result.rows.len());
                    TurnResult {
                        act: label,
                        accepted: true,
                        sql: Some(sql),
                        result: Some(result),
                        response,
                    }
                }
                Err(e) => TurnResult {
                    act: label,
                    accepted: true,
                    sql: Some(sql),
                    result: None,
                    response: format!("execution failed: {e}"),
                },
            },
            Err(e) => TurnResult {
                act: label,
                accepted: true,
                sql: None,
                result: None,
                response: format!("could not build a query: {e}"),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nlidb_engine::{ColumnType, TableSchema, Value};

    fn db() -> Database {
        let mut db = Database::new("d");
        db.create_table(
            TableSchema::new("customers")
                .column("id", ColumnType::Int)
                .column("name", ColumnType::Text)
                .column("city", ColumnType::Text)
                .primary_key("id"),
        )
        .unwrap();
        db.create_table(
            TableSchema::new("orders")
                .column("id", ColumnType::Int)
                .column("customer_id", ColumnType::Int)
                .column("amount", ColumnType::Float)
                .primary_key("id")
                .foreign_key("customer_id", "customers", "id"),
        )
        .unwrap();
        for (id, n, c) in [
            (1, "Ada", "Austin"),
            (2, "Bob", "Boston"),
            (3, "Cy", "Austin"),
        ] {
            db.insert(
                "customers",
                vec![Value::Int(id), Value::from(n), Value::from(c)],
            )
            .unwrap();
        }
        for (id, cid, amt) in [(1, 1, 10.0), (2, 1, 90.0), (3, 2, 40.0)] {
            db.insert(
                "orders",
                vec![Value::Int(id), Value::Int(cid), Value::Float(amt)],
            )
            .unwrap();
        }
        db
    }

    #[test]
    fn agent_session_full_flow() {
        let db = db();
        let ctx = SchemaContext::build(&db);
        let mut s = ConversationSession::new(&db, &ctx, ManagerKind::Agent);
        let r = s.turn("show customers in Austin");
        assert!(r.accepted);
        assert_eq!(r.result.unwrap().rows.len(), 2);
        let r = s.turn("what about Boston");
        assert!(r.accepted, "{}", r.response);
        assert_eq!(r.result.unwrap().rows.len(), 1);
        let r = s.turn("how many of those are there");
        assert!(r.accepted);
        assert_eq!(r.result.unwrap().rows[0][0], Value::Int(1));
    }

    #[test]
    fn finite_state_rejects_off_script() {
        let db = db();
        let ctx = SchemaContext::build(&db);
        let mut s = ConversationSession::new(&db, &ctx, ManagerKind::FiniteState);
        assert!(s.turn("show customers in Austin").accepted);
        let r = s.turn("what about Boston");
        assert!(!r.accepted, "FSM must reject slot refills");
        assert!(r.response.contains("steps"));
        // Forward move still fine.
        assert!(s.turn("how many of those are there").accepted);
    }

    #[test]
    fn frame_accepts_refill_rejects_structure() {
        let db = db();
        let ctx = SchemaContext::build(&db);
        let mut s = ConversationSession::new(&db, &ctx, ManagerKind::Frame);
        assert!(s.turn("show customers in Austin").accepted);
        assert!(s.turn("what about Boston").accepted);
        assert!(!s.turn("remove the filters please").accepted);
    }

    #[test]
    fn frame_prompts_for_missing_slots() {
        let db = db();
        let ctx = SchemaContext::build(&db);
        let mut s = ConversationSession::new(&db, &ctx, ManagerKind::Frame);
        assert!(s.turn("show customers in Austin").accepted);
        // A structural move the frame rejects: it should redirect the
        // user toward fillable slots instead of a bare refusal.
        let r = s.turn("remove the filters please");
        assert!(!r.accepted);
        assert!(r.response.contains("refine the"), "{}", r.response);
    }

    #[test]
    fn history_recorded() {
        let db = db();
        let ctx = SchemaContext::build(&db);
        let mut s = ConversationSession::new(&db, &ctx, ManagerKind::Agent);
        s.turn("show customers in Austin");
        s.turn("zzzz nonsense zzzz");
        assert_eq!(s.state().history.len(), 2);
        assert!(s.state().history[0].accepted);
        assert!(!s.state().history[1].accepted);
    }

    #[test]
    fn replay_reproduces_state_and_turn_digests() {
        let db = db();
        let ctx = SchemaContext::build(&db);
        let turns = [
            "show customers in Austin",
            "zzzz nonsense zzzz",
            "what about Boston",
        ];
        let mut live = ConversationSession::new(&db, &ctx, ManagerKind::Agent);
        let live_digests: Vec<u64> = turns.iter().map(|t| live.turn(t).digest()).collect();

        let (replayed, results) = ConversationSession::replay(&db, &ctx, ManagerKind::Agent, turns);
        let replay_digests: Vec<u64> = results.iter().map(|r| r.digest()).collect();
        assert_eq!(live_digests, replay_digests);
        assert_eq!(live.state_digest(), replayed.state_digest());
    }

    #[test]
    fn replayed_session_continues_identically() {
        let db = db();
        let ctx = SchemaContext::build(&db);
        let prefix = ["show customers in Austin", "what about Boston"];
        let mut live = ConversationSession::new(&db, &ctx, ManagerKind::Agent);
        for t in prefix {
            live.turn(t);
        }
        let (mut replayed, _) = ConversationSession::replay(&db, &ctx, ManagerKind::Agent, prefix);
        let next = "how many of those are there";
        assert_eq!(live.turn(next).digest(), replayed.turn(next).digest());
        assert_eq!(live.state_digest(), replayed.state_digest());
    }

    #[test]
    fn state_digest_distinguishes_histories() {
        let db = db();
        let ctx = SchemaContext::build(&db);
        let mut a = ConversationSession::new(&db, &ctx, ManagerKind::Agent);
        let mut b = ConversationSession::new(&db, &ctx, ManagerKind::Agent);
        a.turn("show customers in Austin");
        b.turn("show customers in Boston");
        assert_ne!(a.state_digest(), b.state_digest());
    }

    #[test]
    fn rejected_first_turn_keeps_no_context() {
        let db = db();
        let ctx = SchemaContext::build(&db);
        let mut s = ConversationSession::new(&db, &ctx, ManagerKind::Agent);
        let r = s.turn("total gibberish");
        assert!(!r.accepted);
        assert!(!s.state().has_context());
    }
}
