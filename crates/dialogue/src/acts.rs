//! Dialogue-act detection: what does this turn *do* to the running
//! query?

use nlidb_core::linking::{link_mentions, LinkedMention};
use nlidb_core::pipeline::SchemaContext;
use nlidb_core::signals;
use nlidb_nlp::tokenize;

/// The acts a data-exploration turn can perform.
#[derive(Debug, Clone, PartialEq)]
pub enum DialogueAct {
    /// A full, self-contained question.
    NewQuery,
    /// Swap a filter value: "what about Boston".
    ReplaceValue {
        /// The linked replacement value mention.
        mention: LinkedMention,
    },
    /// Narrow the current result: "only those with amount over 50".
    AddFilter,
    /// Change the measure/aggregate: "what is the average amount".
    SetAggregation,
    /// Regroup: "break that down by city".
    SetGroup {
        /// The grouping property mention.
        mention: LinkedMention,
    },
    /// Keep only the top/bottom N: "just the top 5".
    SetTopN,
    /// Reorder the result: "sorted by amount".
    SetOrder,
    /// Widen back out: "remove the filters".
    RemoveFilters,
    /// Change the subject: "show their orders instead".
    SwitchFocus {
        /// The new focus concept.
        concept: String,
    },
    /// Nothing recognizable.
    Unknown,
}

impl DialogueAct {
    /// Stable label for experiment tables.
    pub fn label(&self) -> &'static str {
        match self {
            DialogueAct::NewQuery => "new_query",
            DialogueAct::ReplaceValue { .. } => "replace_value",
            DialogueAct::AddFilter => "add_filter",
            DialogueAct::SetAggregation => "set_aggregation",
            DialogueAct::SetGroup { .. } => "set_group",
            DialogueAct::SetTopN => "set_top_n",
            DialogueAct::SetOrder => "set_order",
            DialogueAct::RemoveFilters => "remove_filters",
            DialogueAct::SwitchFocus { .. } => "switch_focus",
            DialogueAct::Unknown => "unknown",
        }
    }
}

/// Classify one turn against the running context. `has_context` is
/// false on the first turn — everything then is a new query (or
/// unknown).
pub fn detect_act(utterance: &str, ctx: &SchemaContext, has_context: bool) -> DialogueAct {
    let tokens = tokenize(utterance);
    let norms: Vec<&str> = tokens.iter().map(|t| t.norm.as_str()).collect();
    let mentions = link_mentions(&tokens, ctx);

    if !has_context {
        return if mentions.is_empty() {
            DialogueAct::Unknown
        } else {
            DialogueAct::NewQuery
        };
    }

    let starts_with = |prefix: &[&str]| norms.starts_with(prefix);
    let contains = |w: &str| norms.contains(&w);

    // "remove/clear/drop the filter(s)" or "show everything again".
    if (contains("remove") || contains("clear") || contains("drop"))
        && (contains("filter") || contains("filters") || contains("condition"))
        || starts_with(&["show", "everything"])
    {
        return DialogueAct::RemoveFilters;
    }

    // "what about X" / "how about X" / "and for X".
    let deictic_head = starts_with(&["what", "about"])
        || starts_with(&["how", "about"])
        || starts_with(&["and", "for"])
        || starts_with(&["and", "in"])
        || starts_with(&["what", "if"])
        || starts_with(&["instead"]);
    if deictic_head {
        if let Some(m) = mentions.iter().find(|m| m.is_value()) {
            return DialogueAct::ReplaceValue { mention: m.clone() };
        }
        if let Some(m) = mentions.iter().find(|m| m.is_concept()) {
            return DialogueAct::SwitchFocus {
                concept: m.concept().to_string(),
            };
        }
        if let Some(m) = mentions.iter().find(|m| m.is_property()) {
            return DialogueAct::SetGroup { mention: m.clone() };
        }
        return DialogueAct::Unknown;
    }

    // Focus switch: "show their/the orders instead", "… instead".
    if contains("instead") {
        if let Some(m) = mentions.iter().find(|m| m.is_concept()) {
            return DialogueAct::SwitchFocus {
                concept: m.concept().to_string(),
            };
        }
    }

    // Grouping fragments: "break that down by X", "group by X", "per X".
    if (contains("break") && contains("down"))
        || starts_with(&["group"])
        || starts_with(&["split"])
        || starts_with(&["per"])
        || starts_with(&["by"])
    {
        if let Some(m) = mentions.iter().find(|m| m.is_property()) {
            return DialogueAct::SetGroup { mention: m.clone() };
        }
    }

    // Top-N fragments: short, anchored on a top cue.
    if let Some(_top) = signals::find_top_cue(&tokens) {
        let short = tokens.len() <= 6;
        if short && mentions.iter().all(|m| !m.is_concept()) {
            return DialogueAct::SetTopN;
        }
    }

    // Ordering fragments.
    if signals::find_order_cue(&tokens).is_some() && tokens.len() <= 6 {
        return DialogueAct::SetOrder;
    }

    // Aggregation fragments: "how many of those", "what is the average
    // amount", "total amount".
    if let Some(_cue) = signals::find_agg_cue(&tokens) {
        let anaphoric = contains("those") || contains("them") || contains("that");
        let no_new_concept = mentions.iter().all(|m| !m.is_concept());
        if anaphoric || (no_new_concept && tokens.len() <= 6) {
            return DialogueAct::SetAggregation;
        }
    }

    // Narrowing: "only …", "just …", or anaphora plus a comparison or
    // value mention.
    let narrowing_head =
        starts_with(&["only"]) || starts_with(&["just"]) || contains("those") || contains("them");
    if narrowing_head
        && (!signals::find_comparisons(&tokens).is_empty() || mentions.iter().any(|m| m.is_value()))
    {
        return DialogueAct::AddFilter;
    }

    // Bare comparison fragment: "with amount over 50".
    if !signals::find_comparisons(&tokens).is_empty()
        && mentions.iter().all(|m| !m.is_concept())
        && tokens.len() <= 7
    {
        return DialogueAct::AddFilter;
    }

    // Bare value fragment: "in Boston".
    if tokens.len() <= 3 {
        if let Some(m) = mentions.iter().find(|m| m.is_value()) {
            return DialogueAct::ReplaceValue { mention: m.clone() };
        }
    }

    if mentions.is_empty() {
        DialogueAct::Unknown
    } else {
        DialogueAct::NewQuery
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nlidb_engine::{ColumnType, Database, TableSchema, Value};

    fn ctx() -> SchemaContext {
        let mut db = Database::new("d");
        db.create_table(
            TableSchema::new("customers")
                .column("id", ColumnType::Int)
                .column("name", ColumnType::Text)
                .column("city", ColumnType::Text)
                .primary_key("id"),
        )
        .unwrap();
        db.create_table(
            TableSchema::new("orders")
                .column("id", ColumnType::Int)
                .column("customer_id", ColumnType::Int)
                .column("amount", ColumnType::Float)
                .primary_key("id")
                .foreign_key("customer_id", "customers", "id"),
        )
        .unwrap();
        for (id, n, c) in [(1, "Ada", "Austin"), (2, "Bob", "Boston")] {
            db.insert(
                "customers",
                vec![Value::Int(id), Value::from(n), Value::from(c)],
            )
            .unwrap();
        }
        SchemaContext::build(&db)
    }

    #[test]
    fn first_turn_is_new_query() {
        let ctx = ctx();
        assert_eq!(
            detect_act("show customers in Austin", &ctx, false),
            DialogueAct::NewQuery
        );
        assert_eq!(detect_act("blah blah", &ctx, false), DialogueAct::Unknown);
    }

    #[test]
    fn what_about_value_is_replace() {
        let ctx = ctx();
        match detect_act("what about Boston", &ctx, true) {
            DialogueAct::ReplaceValue { mention } => assert_eq!(mention.text, "boston"),
            other => panic!("got {other:?}"),
        }
    }

    #[test]
    fn what_about_concept_is_switch() {
        let ctx = ctx();
        match detect_act("what about orders", &ctx, true) {
            DialogueAct::SwitchFocus { concept } => assert_eq!(concept, "order"),
            other => panic!("got {other:?}"),
        }
    }

    #[test]
    fn only_with_comparison_is_add_filter() {
        let ctx = ctx();
        assert_eq!(
            detect_act("only those with amount over 50", &ctx, true),
            DialogueAct::AddFilter
        );
        assert_eq!(
            detect_act("with amount over 50", &ctx, true),
            DialogueAct::AddFilter
        );
    }

    #[test]
    fn how_many_of_those_is_aggregation() {
        let ctx = ctx();
        assert_eq!(
            detect_act("how many of those are there", &ctx, true),
            DialogueAct::SetAggregation
        );
    }

    #[test]
    fn break_down_by_is_group() {
        let ctx = ctx();
        match detect_act("break that down by city", &ctx, true) {
            DialogueAct::SetGroup { mention } => assert_eq!(mention.text, "city"),
            other => panic!("got {other:?}"),
        }
    }

    #[test]
    fn top_fragment_is_top_n() {
        let ctx = ctx();
        assert_eq!(
            detect_act("just the top 5", &ctx, true),
            DialogueAct::SetTopN
        );
    }

    #[test]
    fn remove_filters_detected() {
        let ctx = ctx();
        assert_eq!(
            detect_act("remove the filters please", &ctx, true),
            DialogueAct::RemoveFilters
        );
    }

    #[test]
    fn full_question_with_context_is_new_query() {
        let ctx = ctx();
        assert_eq!(
            detect_act("show all customers in Boston with their names", &ctx, true),
            DialogueAct::NewQuery
        );
    }

    #[test]
    fn labels_stable() {
        assert_eq!(DialogueAct::NewQuery.label(), "new_query");
        assert_eq!(DialogueAct::Unknown.label(), "unknown");
    }
}
