#![warn(missing_docs)]

//! # nlidb-dialogue — the conversational extension (§5)
//!
//! The survey defines a conversational interface by three components —
//! *intents*, *entities*, and *dialogue* — and contrasts three
//! dialogue-management regimes of increasing flexibility:
//!
//! * **finite-state** (rule/script-based): "simple to construct for
//!   tasks that are straightforward and well-structured, but …
//!   restricting user input to predetermined words and phrases";
//! * **frame-based**: "enable the user to provide more information
//!   than required … while the conversation system keeps track of what
//!   information is required";
//! * **agent-based**: "able to manage complex dialogues, where the
//!   user can initiate and lead the conversation".
//!
//! This crate implements all three over the same follow-up machinery
//! ([`acts`] + [`state`]) so experiment E5 can measure the flexibility
//! ladder directly, plus the ontology-driven bootstrap of Quamar et
//! al. ([`bootstrap`]): generating intents, training examples, and
//! entities straight from the domain ontology (E10).

pub mod acts;
pub mod bootstrap;
pub mod manager;
pub mod session;
pub mod state;

pub use acts::{detect_act, DialogueAct};
pub use bootstrap::{bootstrap_from_ontology, ConversationArtifacts, IntentClassifier};
pub use manager::ManagerKind;
pub use session::{ConversationSession, TurnResult};
pub use state::DialogueState;
