//! Conversation state: the running OQL query plus history, and the
//! act-application rules that edit it turn by turn.
//!
//! This is the "persist the context of conversation across multiple
//! turns" capability the survey highlights — implemented at the
//! ontology level (OQL), so an edit like "what about Boston" is a
//! predicate-value substitution rather than string surgery on SQL
//! (the same design argument as Zhang et al.'s edit-based generation,
//! transplanted to the entity-based representation).

use nlidb_core::entity::{build_oql, Capabilities};
use nlidb_core::linking::{LinkKind, LinkedMention};
use nlidb_core::oql::{Oql, OqlExpr, OqlOrder, OqlPredicate, PropRef};
use nlidb_core::pipeline::SchemaContext;
use nlidb_core::signals;
use nlidb_nlp::tokenize;
use nlidb_ontology::PropertyRole;
use nlidb_sqlir::ast::{AggFunc, Literal};

use crate::acts::DialogueAct;

/// FNV-1a over `bytes` — a fixed, seedless hash, so state digests are
/// stable across processes and runs.
pub(crate) fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// One recorded turn.
#[derive(Debug, Clone)]
pub struct TurnRecord {
    /// What the user said.
    pub utterance: String,
    /// The act it was classified as.
    pub act_label: &'static str,
    /// Whether the manager accepted it.
    pub accepted: bool,
}

/// The running conversation state.
#[derive(Debug, Clone, Default)]
pub struct DialogueState {
    /// The current ontology-level query, if a query is in progress.
    pub oql: Option<Oql>,
    /// Full turn history.
    pub history: Vec<TurnRecord>,
}

impl DialogueState {
    /// Fresh state.
    pub fn new() -> DialogueState {
        DialogueState::default()
    }

    /// Is a query context active?
    pub fn has_context(&self) -> bool {
        self.oql.is_some()
    }

    /// A stable digest of the conversation state: the running OQL plus
    /// every history record. Two sessions that processed the same turn
    /// sequence against the same schema context have equal digests —
    /// the divergence check replay-based crash recovery relies on.
    pub fn digest(&self) -> u64 {
        let mut acc = String::new();
        if let Some(oql) = &self.oql {
            acc.push_str(&format!("{oql:?}"));
        }
        acc.push('\u{1e}');
        for r in &self.history {
            acc.push_str(&r.utterance);
            acc.push('\u{1f}');
            acc.push_str(r.act_label);
            acc.push('\u{1f}');
            acc.push(if r.accepted { '+' } else { '-' });
            acc.push('\u{1e}');
        }
        fnv1a(acc.as_bytes())
    }

    /// Apply an accepted act to the state. Returns false when the act
    /// could not be applied (e.g. nothing to anchor a replacement on).
    pub fn apply(&mut self, act: &DialogueAct, utterance: &str, ctx: &SchemaContext) -> bool {
        match act {
            DialogueAct::NewQuery => match build_oql(utterance, ctx, Capabilities::full()) {
                Some(build) => {
                    self.oql = Some(build.oql);
                    true
                }
                None => false,
            },
            DialogueAct::ReplaceValue { mention } => self.replace_value(mention),
            DialogueAct::AddFilter => self.add_filter(utterance, ctx),
            DialogueAct::SetAggregation => self.set_aggregation(utterance, ctx),
            DialogueAct::SetGroup { mention } => self.set_group(mention),
            DialogueAct::SetTopN => self.set_top_n(utterance, ctx),
            DialogueAct::SetOrder => self.set_order(utterance, ctx),
            DialogueAct::RemoveFilters => match &mut self.oql {
                Some(oql) => {
                    oql.predicates.clear();
                    true
                }
                None => false,
            },
            DialogueAct::SwitchFocus { concept } => self.switch_focus(concept, ctx),
            DialogueAct::Unknown => false,
        }
    }

    fn replace_value(&mut self, mention: &LinkedMention) -> bool {
        let Some(oql) = &mut self.oql else {
            return false;
        };
        let LinkKind::Value {
            concept,
            property,
            value,
        } = &mention.kind
        else {
            return false;
        };
        // Prefer replacing a predicate on the same property; else the
        // first string-equality predicate.
        let mut same_prop: Option<usize> = None;
        let mut any_str_eq: Option<usize> = None;
        for (i, p) in oql.predicates.iter().enumerate() {
            if let OqlPredicate::Compare {
                prop,
                value: Literal::Str(_),
                ..
            } = p
            {
                if prop.concept == *concept && prop.property == *property {
                    same_prop = get_or(same_prop, i);
                }
                any_str_eq = get_or(any_str_eq, i);
            }
        }
        let target = same_prop.or(any_str_eq);
        match target {
            Some(i) => {
                oql.predicates[i] = OqlPredicate::Compare {
                    prop: PropRef::new(concept.clone(), property.clone()),
                    op: nlidb_sqlir::ast::BinOp::Eq,
                    value: Literal::Str(value.clone()),
                };
                true
            }
            None => {
                oql.predicates.push(OqlPredicate::Compare {
                    prop: PropRef::new(concept.clone(), property.clone()),
                    op: nlidb_sqlir::ast::BinOp::Eq,
                    value: Literal::Str(value.clone()),
                });
                true
            }
        }
    }

    fn add_filter(&mut self, utterance: &str, ctx: &SchemaContext) -> bool {
        let Some(oql) = &mut self.oql else {
            return false;
        };
        // Reuse the full builder on the fragment: its predicates merge
        // into the running query.
        if let Some(build) = build_oql(utterance, ctx, Capabilities::full()) {
            if !build.oql.predicates.is_empty() {
                oql.predicates.extend(build.oql.predicates);
                return true;
            }
        }
        // Fallback: bare comparisons against the focus's sole measure.
        let tokens = tokenize(utterance);
        let comps = signals::find_comparisons(&tokens);
        if comps.is_empty() {
            return false;
        }
        let measures = ctx.ontology.measures_of(&oql.focus);
        let Some(m) = measures.first() else {
            return false;
        };
        for c in &comps {
            oql.predicates.push(OqlPredicate::Compare {
                prop: PropRef::new(oql.focus.clone(), m.label.clone()),
                op: c.op,
                value: if c.value.fract() == 0.0 {
                    Literal::Int(c.value as i64)
                } else {
                    Literal::Float(c.value)
                },
            });
        }
        true
    }

    fn set_aggregation(&mut self, utterance: &str, ctx: &SchemaContext) -> bool {
        let Some(oql) = &mut self.oql else {
            return false;
        };
        let tokens = tokenize(utterance);
        let Some(cue) = signals::find_agg_cue(&tokens) else {
            return false;
        };
        // Aggregate target: a measure property mentioned in the
        // fragment, else the focus's sole measure, else COUNT(*).
        let mentions = nlidb_core::linking::link_mentions(&tokens, ctx);
        let measure = mentions
            .iter()
            .filter_map(|m| match &m.kind {
                LinkKind::Property { concept, property } => {
                    let p = PropRef::new(concept.clone(), property.clone());
                    let role = ctx.ontology.property(concept, property).map(|d| d.role);
                    (role == Some(PropertyRole::Measure)).then_some(p)
                }
                _ => None,
            })
            .next()
            .or_else(|| {
                let m = ctx.ontology.measures_of(&oql.focus);
                (m.len() == 1).then(|| PropRef::new(oql.focus.clone(), m[0].label.clone()))
            });
        let agg = match (cue.func, &measure) {
            (AggFunc::Count, _) => OqlExpr::Agg(AggFunc::Count, None),
            (f, Some(p)) => OqlExpr::Agg(f, Some(p.clone())),
            (_, None) => return false,
        };
        // Keep grouping if present; replace the measure part.
        let group: Vec<OqlExpr> = oql
            .group_by
            .iter()
            .map(|g| OqlExpr::Prop(g.clone()))
            .collect();
        oql.select = group.into_iter().chain(std::iter::once(agg)).collect();
        oql.order_by.clear();
        oql.limit = None;
        true
    }

    fn set_group(&mut self, mention: &LinkedMention) -> bool {
        let Some(oql) = &mut self.oql else {
            return false;
        };
        let LinkKind::Property { concept, property } = &mention.kind else {
            return false;
        };
        let prop = PropRef::new(concept.clone(), property.clone());
        // The aggregate to pair with the new grouping: the existing
        // aggregate select item, else COUNT(*).
        let agg = oql
            .select
            .iter()
            .find(|e| matches!(e, OqlExpr::Agg(..)))
            .cloned()
            .unwrap_or(OqlExpr::Agg(AggFunc::Count, None));
        oql.group_by = vec![prop.clone()];
        oql.select = vec![OqlExpr::Prop(prop), agg];
        true
    }

    fn set_top_n(&mut self, utterance: &str, ctx: &SchemaContext) -> bool {
        let Some(oql) = &mut self.oql else {
            return false;
        };
        let tokens = tokenize(utterance);
        let Some(top) = signals::find_top_cue(&tokens) else {
            return false;
        };
        let order_expr = oql
            .select
            .iter()
            .find(|e| matches!(e, OqlExpr::Agg(..)))
            .cloned()
            .or_else(|| {
                let m = ctx.ontology.measures_of(&oql.focus);
                m.first()
                    .map(|p| OqlExpr::Prop(PropRef::new(oql.focus.clone(), p.label.clone())))
            });
        let Some(expr) = order_expr else { return false };
        oql.order_by = vec![OqlOrder {
            expr,
            asc: !top.desc,
        }];
        oql.limit = Some(top.n);
        true
    }

    fn set_order(&mut self, utterance: &str, ctx: &SchemaContext) -> bool {
        let Some(oql) = &mut self.oql else {
            return false;
        };
        let tokens = tokenize(utterance);
        let Some((idx, asc)) = signals::find_order_cue(&tokens) else {
            return false;
        };
        let mentions = nlidb_core::linking::link_mentions(&tokens, ctx);
        let prop = mentions
            .iter()
            .filter(|m| m.start >= idx)
            .find_map(|m| match &m.kind {
                LinkKind::Property { concept, property } => {
                    Some(PropRef::new(concept.clone(), property.clone()))
                }
                _ => None,
            });
        let Some(prop) = prop else { return false };
        oql.order_by = vec![OqlOrder {
            expr: OqlExpr::Prop(prop),
            asc,
        }];
        true
    }

    fn switch_focus(&mut self, concept: &str, ctx: &SchemaContext) -> bool {
        let Some(oql) = &mut self.oql else {
            return false;
        };
        if ctx.ontology.concept(concept).is_none() {
            return false;
        }
        let old = std::mem::replace(&mut oql.focus, concept.to_string());
        // Keep predicates still reachable from the new focus; drop the
        // projection/grouping, which referred to the old subject.
        let graph = &ctx.graph;
        oql.predicates.retain(|p| match p {
            OqlPredicate::Compare { prop, .. }
            | OqlPredicate::ValueIn { prop, .. }
            | OqlPredicate::Between { prop, .. }
            | OqlPredicate::Like { prop, .. }
            | OqlPredicate::CompareToGlobalAgg { prop, .. } => {
                graph.shortest_path(concept, &prop.concept).is_some()
            }
            OqlPredicate::HasNoRelated { other } | OqlPredicate::HasRelated { other } => {
                graph.shortest_path(concept, other).is_some() && other != concept
            }
        });
        oql.select.clear();
        oql.group_by.clear();
        oql.having.clear();
        oql.order_by.clear();
        oql.limit = None;
        oql.extra_joins.clear();
        let _ = old;
        true
    }
}

fn get_or(slot: Option<usize>, i: usize) -> Option<usize> {
    slot.or(Some(i))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::acts::detect_act;
    use nlidb_engine::{ColumnType, Database, TableSchema, Value};

    fn ctx() -> SchemaContext {
        let mut db = Database::new("d");
        db.create_table(
            TableSchema::new("customers")
                .column("id", ColumnType::Int)
                .column("name", ColumnType::Text)
                .column("city", ColumnType::Text)
                .primary_key("id"),
        )
        .unwrap();
        db.create_table(
            TableSchema::new("orders")
                .column("id", ColumnType::Int)
                .column("customer_id", ColumnType::Int)
                .column("amount", ColumnType::Float)
                .primary_key("id")
                .foreign_key("customer_id", "customers", "id"),
        )
        .unwrap();
        for (id, n, c) in [(1, "Ada", "Austin"), (2, "Bob", "Boston")] {
            db.insert(
                "customers",
                vec![Value::Int(id), Value::from(n), Value::from(c)],
            )
            .unwrap();
        }
        db.insert(
            "orders",
            vec![Value::Int(1), Value::Int(1), Value::Float(10.0)],
        )
        .unwrap();
        SchemaContext::build(&db)
    }

    fn state_after(turns: &[&str], ctx: &SchemaContext) -> DialogueState {
        let mut st = DialogueState::new();
        for t in turns {
            let act = detect_act(t, ctx, st.has_context());
            assert!(st.apply(&act, t, ctx), "failed to apply turn: {t}");
        }
        st
    }

    fn sql(st: &DialogueState, ctx: &SchemaContext) -> String {
        st.oql
            .as_ref()
            .unwrap()
            .to_sql(&ctx.ontology, &ctx.graph)
            .unwrap()
            .to_string()
    }

    #[test]
    fn replace_value_swaps_filter() {
        let ctx = ctx();
        let st = state_after(&["show customers in Austin", "what about Boston"], &ctx);
        assert_eq!(
            sql(&st, &ctx),
            "SELECT * FROM customers WHERE city = 'Boston'"
        );
    }

    #[test]
    fn add_filter_narrows() {
        let ctx = ctx();
        let st = state_after(&["show orders", "only those with amount over 5"], &ctx);
        assert_eq!(sql(&st, &ctx), "SELECT * FROM orders WHERE amount > 5");
    }

    #[test]
    fn set_aggregation_counts_context() {
        let ctx = ctx();
        let st = state_after(
            &["show customers in Austin", "how many of those are there"],
            &ctx,
        );
        assert_eq!(
            sql(&st, &ctx),
            "SELECT COUNT(*) FROM customers WHERE city = 'Austin'"
        );
    }

    #[test]
    fn set_group_regroups() {
        let ctx = ctx();
        let st = state_after(
            &["how many customers are there", "break that down by city"],
            &ctx,
        );
        assert_eq!(
            sql(&st, &ctx),
            "SELECT city, COUNT(*) FROM customers GROUP BY city"
        );
    }

    #[test]
    fn top_n_follow_up() {
        let ctx = ctx();
        let st = state_after(&["show orders", "just the top 3"], &ctx);
        assert_eq!(
            sql(&st, &ctx),
            "SELECT * FROM orders ORDER BY amount DESC LIMIT 3"
        );
    }

    #[test]
    fn remove_filters_widens() {
        let ctx = ctx();
        let st = state_after(
            &["show customers in Austin", "remove the filters please"],
            &ctx,
        );
        assert_eq!(sql(&st, &ctx), "SELECT * FROM customers");
    }

    #[test]
    fn switch_focus_keeps_reachable_filters() {
        let ctx = ctx();
        let st = state_after(&["show customers in Austin", "what about orders"], &ctx);
        let s = sql(&st, &ctx);
        assert!(s.starts_with("SELECT * FROM orders"), "{s}");
        assert!(
            s.contains("customers.city = 'Austin'"),
            "filter should survive: {s}"
        );
        assert!(s.contains("JOIN customers"), "{s}");
    }

    #[test]
    fn acts_fail_without_context() {
        let ctx = ctx();
        let mut st = DialogueState::new();
        assert!(!st.apply(&DialogueAct::RemoveFilters, "remove filters", &ctx));
        assert!(!st.apply(&DialogueAct::SetTopN, "top 5", &ctx));
    }

    #[test]
    fn unknown_never_applies() {
        let ctx = ctx();
        let mut st = DialogueState::new();
        assert!(!st.apply(&DialogueAct::Unknown, "gibberish", &ctx));
    }
}
