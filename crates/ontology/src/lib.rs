#![warn(missing_docs)]

//! # nlidb-ontology — domain ontologies over relational schemas
//!
//! ATHENA interprets natural language against a *domain ontology*
//! rather than the raw schema, and the tooling framework of Jammi et
//! al. generates that ontology automatically from database metadata.
//! This crate reproduces both:
//!
//! * [`model`] — concepts, data properties (with semantic roles:
//!   identifier / descriptor / measure / temporal / categorical), and
//!   object properties (relationships),
//! * [`generate`] — automatic ontology construction from an
//!   [`nlidb_engine::Database`] catalog (tables → concepts, foreign
//!   keys → relationships, column types → property roles),
//! * [`graph`] — the join graph plus ATHENA-style join-path inference:
//!   BFS shortest paths for concept pairs and a Steiner-tree
//!   approximation when a query touches three or more concepts,
//! * [`cache`] — a bounded, thread-safe LRU memo for join plans,
//!   shared by the serving runtime's workers (`nlidb-serve`),
//! * [`relax`] — vocabulary matching of user terms against ontology
//!   labels through a synonym/hypernym lexicon (the query-relaxation
//!   technique of Lei et al.).

pub mod cache;
pub mod generate;
pub mod graph;
pub mod model;
pub mod relax;

pub use cache::{JoinCacheStats, JoinPathCache};
pub use generate::generate_ontology;
pub use graph::{JoinEdge, JoinGraph, JoinPlan};
pub use model::{Concept, DataProperty, ObjectProperty, Ontology, PropertyRole};
pub use relax::{match_term, TermMatch, TermTarget};
