//! The ontology model: concepts, data properties, object properties.

/// Semantic role of a data property, driving interpretation defaults:
/// measures aggregate, temporals take date ranges, categoricals group
/// and filter, identifiers join.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PropertyRole {
    /// Primary/foreign key material.
    Identifier,
    /// Human-readable name of the concept instance.
    Descriptor,
    /// Numeric quantity that aggregates (SUM/AVG…).
    Measure,
    /// Date/time attribute.
    Temporal,
    /// Discrete attribute for grouping and filtering.
    Categorical,
}

/// A class of things in the domain, bound to one base table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Concept {
    /// Canonical label (singular, lowercased, e.g. `customer`).
    pub label: String,
    /// Backing table name.
    pub table: String,
    /// Primary key column, if declared.
    pub primary_key: Option<String>,
}

/// An attribute of a concept, bound to one column.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DataProperty {
    /// Owning concept label.
    pub concept: String,
    /// Property label (lowercased words, e.g. `order date`).
    pub label: String,
    /// Backing column name.
    pub column: String,
    /// Semantic role.
    pub role: PropertyRole,
}

/// A relationship between two concepts, bound to a foreign key.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ObjectProperty {
    /// Source concept (the FK owner).
    pub from: String,
    /// Target concept (the referenced table's concept).
    pub to: String,
    /// FK column on the source table.
    pub from_column: String,
    /// Referenced column on the target table.
    pub to_column: String,
    /// Relationship label (e.g. `placed by`).
    pub label: String,
}

/// A domain ontology: the semantic abstraction ATHENA queries against.
#[derive(Debug, Clone, Default)]
pub struct Ontology {
    /// All concepts.
    pub concepts: Vec<Concept>,
    /// All data properties.
    pub data_properties: Vec<DataProperty>,
    /// All object properties (directed: FK owner → referenced).
    pub object_properties: Vec<ObjectProperty>,
}

impl Ontology {
    /// Look up a concept by label.
    pub fn concept(&self, label: &str) -> Option<&Concept> {
        self.concepts.iter().find(|c| c.label == label)
    }

    /// Look up a concept by its backing table.
    pub fn concept_for_table(&self, table: &str) -> Option<&Concept> {
        self.concepts.iter().find(|c| c.table == table)
    }

    /// Data properties of one concept.
    pub fn properties_of(&self, concept: &str) -> Vec<&DataProperty> {
        self.data_properties
            .iter()
            .filter(|p| p.concept == concept)
            .collect()
    }

    /// The descriptor (name-like) property of a concept, if any.
    pub fn descriptor_of(&self, concept: &str) -> Option<&DataProperty> {
        self.data_properties
            .iter()
            .find(|p| p.concept == concept && p.role == PropertyRole::Descriptor)
    }

    /// All measure properties of a concept.
    pub fn measures_of(&self, concept: &str) -> Vec<&DataProperty> {
        self.data_properties
            .iter()
            .filter(|p| p.concept == concept && p.role == PropertyRole::Measure)
            .collect()
    }

    /// Relationships touching a concept (either direction).
    pub fn relationships_of(&self, concept: &str) -> Vec<&ObjectProperty> {
        self.object_properties
            .iter()
            .filter(|r| r.from == concept || r.to == concept)
            .collect()
    }

    /// Find a data property by `(concept, label)`.
    pub fn property(&self, concept: &str, label: &str) -> Option<&DataProperty> {
        self.data_properties
            .iter()
            .find(|p| p.concept == concept && p.label == label)
    }

    /// Total element count (diagnostic; used in bootstrap reports).
    pub fn size(&self) -> usize {
        self.concepts.len() + self.data_properties.len() + self.object_properties.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Ontology {
        Ontology {
            concepts: vec![
                Concept {
                    label: "customer".into(),
                    table: "customers".into(),
                    primary_key: Some("id".into()),
                },
                Concept {
                    label: "order".into(),
                    table: "orders".into(),
                    primary_key: Some("id".into()),
                },
            ],
            data_properties: vec![
                DataProperty {
                    concept: "customer".into(),
                    label: "name".into(),
                    column: "name".into(),
                    role: PropertyRole::Descriptor,
                },
                DataProperty {
                    concept: "order".into(),
                    label: "amount".into(),
                    column: "amount".into(),
                    role: PropertyRole::Measure,
                },
            ],
            object_properties: vec![ObjectProperty {
                from: "order".into(),
                to: "customer".into(),
                from_column: "customer_id".into(),
                to_column: "id".into(),
                label: "customer".into(),
            }],
        }
    }

    #[test]
    fn lookups() {
        let o = tiny();
        assert_eq!(o.concept("customer").unwrap().table, "customers");
        assert_eq!(o.concept_for_table("orders").unwrap().label, "order");
        assert!(o.concept("ghost").is_none());
        assert_eq!(o.properties_of("customer").len(), 1);
        assert_eq!(o.descriptor_of("customer").unwrap().column, "name");
        assert!(o.descriptor_of("order").is_none());
        assert_eq!(o.measures_of("order").len(), 1);
        assert_eq!(o.relationships_of("customer").len(), 1);
        assert_eq!(o.relationships_of("order").len(), 1);
        assert_eq!(o.size(), 5);
        assert!(o.property("order", "amount").is_some());
    }
}
