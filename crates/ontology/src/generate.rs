//! Automatic ontology generation from a relational catalog — the
//! Jammi-et-al. tooling path: "the ontology and the mappings to the
//! underlying data can be either provided manually, or generated
//! automatically from the database information".

use nlidb_engine::{ColumnType, Database, TableSchema};

use crate::model::{Concept, DataProperty, ObjectProperty, Ontology, PropertyRole};

/// Singularize a table name heuristically (`customers` → `customer`,
/// `categories` → `category`, `status` stays).
pub fn singularize(name: &str) -> String {
    if let Some(stem) = name.strip_suffix("ies") {
        return format!("{stem}y");
    }
    if let Some(stem) = name.strip_suffix("sses") {
        return format!("{stem}ss");
    }
    if name.ends_with("ss") || name.ends_with("us") || name.ends_with("is") {
        return name.to_string();
    }
    if let Some(stem) = name.strip_suffix('s') {
        return stem.to_string();
    }
    name.to_string()
}

/// Turn a snake_case column name into a space-separated label,
/// stripping `_id` suffixes for identifier columns.
pub fn labelize(column: &str) -> String {
    column.trim_end_matches("_id").replace('_', " ")
}

fn role_of(schema: &TableSchema, column: &str, ty: ColumnType) -> PropertyRole {
    let is_pk = schema.primary_key.as_deref() == Some(column);
    let is_fk = schema.foreign_keys.iter().any(|f| f.column == column);
    if is_pk || is_fk || column.ends_with("_id") || column == "id" {
        return PropertyRole::Identifier;
    }
    match ty {
        ColumnType::Int | ColumnType::Float => PropertyRole::Measure,
        ColumnType::Date => PropertyRole::Temporal,
        ColumnType::Bool => PropertyRole::Categorical,
        ColumnType::Text => {
            if column == "name" || column.ends_with("_name") || column == "title" {
                PropertyRole::Descriptor
            } else {
                PropertyRole::Categorical
            }
        }
    }
}

/// Generate a domain ontology from the database catalog.
///
/// * Each table becomes a concept labelled by the singularized table
///   name.
/// * Each column becomes a data property; the role is derived from key
///   metadata and the column type.
/// * Each foreign key becomes an object property from the owning
///   concept to the referenced concept, labelled by the FK column with
///   `_id` stripped.
pub fn generate_ontology(db: &Database) -> Ontology {
    let mut onto = Ontology::default();
    for table in db.tables() {
        let label = singularize(&table.schema.name);
        onto.concepts.push(Concept {
            label: label.clone(),
            table: table.schema.name.clone(),
            primary_key: table.schema.primary_key.clone(),
        });
        for col in &table.schema.columns {
            onto.data_properties.push(DataProperty {
                concept: label.clone(),
                label: labelize(&col.name),
                column: col.name.clone(),
                role: role_of(&table.schema, &col.name, col.ty),
            });
        }
    }
    for table in db.tables() {
        let from = singularize(&table.schema.name);
        for fk in &table.schema.foreign_keys {
            let to = singularize(&fk.references_table);
            onto.object_properties.push(ObjectProperty {
                from: from.clone(),
                to,
                from_column: fk.column.clone(),
                to_column: fk.references_column.clone(),
                label: labelize(&fk.column),
            });
        }
    }
    onto
}

#[cfg(test)]
mod tests {
    use super::*;
    use nlidb_engine::{ColumnType, TableSchema};

    fn sample_db() -> Database {
        let mut db = Database::new("shop");
        db.create_table(
            TableSchema::new("customers")
                .column("id", ColumnType::Int)
                .column("name", ColumnType::Text)
                .column("city", ColumnType::Text)
                .column("signup_date", ColumnType::Date)
                .primary_key("id"),
        )
        .unwrap();
        db.create_table(
            TableSchema::new("orders")
                .column("id", ColumnType::Int)
                .column("customer_id", ColumnType::Int)
                .column("amount", ColumnType::Float)
                .column("shipped", ColumnType::Bool)
                .primary_key("id")
                .foreign_key("customer_id", "customers", "id"),
        )
        .unwrap();
        db
    }

    #[test]
    fn singularization() {
        assert_eq!(singularize("customers"), "customer");
        assert_eq!(singularize("categories"), "category");
        assert_eq!(singularize("addresses"), "address");
        assert_eq!(singularize("status"), "status");
        assert_eq!(singularize("person"), "person");
    }

    #[test]
    fn labelization() {
        assert_eq!(labelize("signup_date"), "signup date");
        assert_eq!(labelize("customer_id"), "customer");
        assert_eq!(labelize("name"), "name");
    }

    #[test]
    fn concepts_from_tables() {
        let onto = generate_ontology(&sample_db());
        assert_eq!(onto.concepts.len(), 2);
        assert_eq!(onto.concept("customer").unwrap().table, "customers");
        assert_eq!(
            onto.concept("order").unwrap().primary_key.as_deref(),
            Some("id")
        );
    }

    #[test]
    fn property_roles_inferred() {
        let onto = generate_ontology(&sample_db());
        assert_eq!(
            onto.property("customer", "name").unwrap().role,
            PropertyRole::Descriptor
        );
        assert_eq!(
            onto.property("customer", "city").unwrap().role,
            PropertyRole::Categorical
        );
        assert_eq!(
            onto.property("customer", "signup date").unwrap().role,
            PropertyRole::Temporal
        );
        assert_eq!(
            onto.property("order", "amount").unwrap().role,
            PropertyRole::Measure
        );
        assert_eq!(
            onto.property("order", "id").unwrap().role,
            PropertyRole::Identifier
        );
        // FK column is an identifier, not a measure, despite being Int.
        assert_eq!(
            onto.property("order", "customer").unwrap().role,
            PropertyRole::Identifier
        );
        assert_eq!(
            onto.property("order", "shipped").unwrap().role,
            PropertyRole::Categorical
        );
    }

    #[test]
    fn relationships_from_fks() {
        let onto = generate_ontology(&sample_db());
        assert_eq!(onto.object_properties.len(), 1);
        let r = &onto.object_properties[0];
        assert_eq!((r.from.as_str(), r.to.as_str()), ("order", "customer"));
        assert_eq!(r.from_column, "customer_id");
        assert_eq!(r.to_column, "id");
        assert_eq!(r.label, "customer");
    }
}
