//! Vocabulary matching of user terms against ontology labels, with
//! lexicon-driven relaxation (synonyms, stems, hypernyms, fuzzy) — the
//! technique of Lei et al. for bridging colloquial user vocabulary and
//! curated KB terms.

use nlidb_nlp::{mention_score, porter_stem, Lexicon};

use crate::model::Ontology;

/// What a matched term refers to.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TermTarget {
    /// A concept (table).
    Concept {
        /// Concept label.
        concept: String,
    },
    /// A data property (column) of a concept.
    Property {
        /// Owning concept label.
        concept: String,
        /// Property label.
        property: String,
    },
}

/// A scored match of a user term to an ontology element.
#[derive(Debug, Clone, PartialEq)]
pub struct TermMatch {
    /// The matched element.
    pub target: TermTarget,
    /// Confidence in `[0, 1]`.
    pub score: f64,
    /// Which mechanism produced the match (for explanations).
    pub mechanism: MatchMechanism,
}

/// How a term matched.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MatchMechanism {
    /// Identical label.
    Exact,
    /// Equal after Porter stemming.
    Stem,
    /// Lexicon synonym ring.
    Synonym,
    /// Lexicon hypernym relation.
    Hypernym,
    /// Character/token-level fuzzy similarity.
    Fuzzy,
}

fn score_label(term: &str, label: &str, lexicon: &Lexicon) -> Option<(f64, MatchMechanism)> {
    if term == label {
        return Some((1.0, MatchMechanism::Exact));
    }
    let stem_eq = |a: &str, b: &str| {
        let sa: Vec<String> = a.split_whitespace().map(porter_stem).collect();
        let sb: Vec<String> = b.split_whitespace().map(porter_stem).collect();
        sa == sb
    };
    if stem_eq(term, label) {
        return Some((0.97, MatchMechanism::Stem));
    }
    // Single-word synonym / hypernym checks (multi-word labels compare
    // their last word, the lexical head: "order date" heads on "date").
    let head = |s: &str| s.split_whitespace().last().unwrap_or(s).to_string();
    if lexicon.are_synonyms(term, label) || lexicon.are_synonyms(&head(term), &head(label)) {
        // For multi-word labels require the modifier words to overlap too.
        let tw: Vec<&str> = term.split_whitespace().collect();
        let lw: Vec<&str> = label.split_whitespace().collect();
        if tw.len() == 1 && lw.len() == 1 {
            return Some((0.92, MatchMechanism::Synonym));
        }
        let mods_match = tw[..tw.len() - 1].iter().all(|m| {
            lw[..lw.len() - 1]
                .iter()
                .any(|l| lexicon.are_synonyms(m, l))
        });
        if mods_match && tw.len() == lw.len() {
            return Some((0.9, MatchMechanism::Synonym));
        }
    }
    if lexicon
        .hypernym_chain(term)
        .iter()
        .any(|h| *h == label || lexicon.are_synonyms(h, label))
    {
        return Some((0.75, MatchMechanism::Hypernym));
    }
    let fuzzy = mention_score(term, label);
    if fuzzy >= 0.85 {
        return Some((fuzzy * 0.9, MatchMechanism::Fuzzy));
    }
    None
}

/// Match a (lowercased) user term against every concept and property
/// label in the ontology; results sorted by descending score.
///
/// Mechanism cascade: exact (1.0) → stem (0.97) → synonym (0.90–0.92)
/// → hypernym (0.75) → fuzzy (≥0.85 surface similarity, scaled).
pub fn match_term(term: &str, onto: &Ontology, lexicon: &Lexicon) -> Vec<TermMatch> {
    let term = term.to_lowercase();
    let mut out = Vec::new();
    for c in &onto.concepts {
        if let Some((score, mechanism)) = score_label(&term, &c.label, lexicon) {
            out.push(TermMatch {
                target: TermTarget::Concept {
                    concept: c.label.clone(),
                },
                score,
                mechanism,
            });
        }
    }
    for p in &onto.data_properties {
        if let Some((score, mechanism)) = score_label(&term, &p.label, lexicon) {
            out.push(TermMatch {
                target: TermTarget::Property {
                    concept: p.concept.clone(),
                    property: p.label.clone(),
                },
                // Properties score slightly below equal-scoring concepts
                // so concept mentions win ties deterministically.
                score: score - 0.001,
                mechanism,
            });
        }
    }
    out.sort_by(|a, b| {
        b.score
            .partial_cmp(&a.score)
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Concept, DataProperty, PropertyRole};

    fn onto() -> Ontology {
        Ontology {
            concepts: vec![Concept {
                label: "customer".into(),
                table: "customers".into(),
                primary_key: Some("id".into()),
            }],
            data_properties: vec![
                DataProperty {
                    concept: "customer".into(),
                    label: "city".into(),
                    column: "city".into(),
                    role: PropertyRole::Categorical,
                },
                DataProperty {
                    concept: "customer".into(),
                    label: "signup date".into(),
                    column: "signup_date".into(),
                    role: PropertyRole::Temporal,
                },
                DataProperty {
                    concept: "customer".into(),
                    label: "revenue".into(),
                    column: "revenue".into(),
                    role: PropertyRole::Measure,
                },
            ],
            object_properties: vec![],
        }
    }

    fn lex() -> Lexicon {
        Lexicon::business_default()
    }

    #[test]
    fn exact_match_wins() {
        let m = match_term("customer", &onto(), &lex());
        assert_eq!(m[0].score, 1.0);
        assert_eq!(m[0].mechanism, MatchMechanism::Exact);
        assert_eq!(
            m[0].target,
            TermTarget::Concept {
                concept: "customer".into()
            }
        );
    }

    #[test]
    fn plural_matches_by_stem() {
        let m = match_term("customers", &onto(), &lex());
        assert!(!m.is_empty());
        assert_eq!(m[0].mechanism, MatchMechanism::Stem);
        assert!(m[0].score > 0.95);
    }

    #[test]
    fn synonym_matches() {
        let m = match_term("clients", &onto(), &lex());
        assert!(
            !m.is_empty(),
            "clients should reach customer via synonym ring"
        );
        assert!(matches!(m[0].target, TermTarget::Concept { .. }));
        let m = match_term("sales", &onto(), &lex());
        assert!(m.iter().any(|m| m.target
            == TermTarget::Property {
                concept: "customer".into(),
                property: "revenue".into()
            }));
    }

    #[test]
    fn fuzzy_match_tolerates_typo() {
        let m = match_term("custmer", &onto(), &lex());
        assert!(!m.is_empty());
        assert_eq!(m[0].mechanism, MatchMechanism::Fuzzy);
    }

    #[test]
    fn unrelated_term_no_match() {
        let m = match_term("zebra", &onto(), &lex());
        assert!(m.is_empty());
    }

    #[test]
    fn multiword_head_synonym() {
        // "signup day" ~ "signup date" via date/day synonyms.
        let m = match_term("signup day", &onto(), &lex());
        assert!(m.iter().any(|m| matches!(
            &m.target,
            TermTarget::Property { property, .. } if property == "signup date"
        )));
    }

    #[test]
    fn results_sorted_by_score() {
        let m = match_term("customer", &onto(), &lex());
        for w in m.windows(2) {
            assert!(w[0].score >= w[1].score);
        }
    }
}
