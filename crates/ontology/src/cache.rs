//! A bounded, shared memo for join-path inference.
//!
//! Steiner-tree planning is the most expensive step of entity-based
//! interpretation, and a serving workload asks for the same small set
//! of terminal combinations over and over (every "total order amount by
//! customer city" needs `order ⋈ customer`). [`JoinPathCache`] fronts
//! [`crate::JoinGraph::steiner_plan`] with a capacity-bounded LRU memo.
//!
//! **Single-flight semantics:** the compute closure runs while the
//! cache lock is held, so for any key the plan is computed exactly once
//! no matter how many threads race on it — every other thread waits and
//! then hits. This serializes *planning* (not interpretation as a
//! whole) and in exchange makes hit/miss counters deterministic for a
//! deterministic request stream, which experiment E12 asserts.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use crate::graph::JoinPlan;

/// Counters and content of the memo, guarded by one lock.
#[derive(Debug, Default)]
struct CacheInner {
    /// Key (terminal sequence joined by `\u{1}`) →
    /// (memoized plan, last-touch stamp).
    map: HashMap<String, (Option<JoinPlan>, u64)>,
    /// Monotonic touch counter driving LRU eviction.
    stamp: u64,
}

/// A bounded LRU memo of `terminals → Option<JoinPlan>`.
///
/// Negative results (disconnected terminal sets) are cached too: a
/// question that cannot be planned stays expensive to recompute
/// otherwise.
#[derive(Debug)]
pub struct JoinPathCache {
    inner: Mutex<CacheInner>,
    capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

/// A point-in-time view of the cache counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JoinCacheStats {
    /// Lookups answered from the memo.
    pub hits: u64,
    /// Lookups that ran the planner.
    pub misses: u64,
    /// Entries displaced by capacity pressure.
    pub evictions: u64,
    /// Entries currently resident.
    pub len: usize,
}

impl JoinCacheStats {
    /// Hit fraction in `[0, 1]` (`0` before any lookup).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

impl JoinPathCache {
    /// A cache holding at most `capacity` plans (`capacity` ≥ 1).
    pub fn new(capacity: usize) -> JoinPathCache {
        JoinPathCache {
            inner: Mutex::new(CacheInner::default()),
            capacity: capacity.max(1),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// Look up `terminals`, running `compute` on a miss (single-flight:
    /// `compute` runs under the cache lock).
    ///
    /// The key is the exact terminal sequence: plan growth starts from
    /// the first terminal, so order is semantically significant.
    pub fn get_or_compute(
        &self,
        terminals: &[&str],
        compute: impl FnOnce() -> Option<JoinPlan>,
    ) -> Option<JoinPlan> {
        let key = terminals.join("\u{1}");
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        inner.stamp += 1;
        let stamp = inner.stamp;
        if let Some((plan, touched)) = inner.map.get_mut(&key) {
            *touched = stamp;
            self.hits.fetch_add(1, Ordering::Relaxed);
            return plan.clone();
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let plan = compute();
        if inner.map.len() >= self.capacity {
            // Evict the least-recently-touched entry.
            if let Some(victim) = inner
                .map
                .iter()
                .min_by_key(|(_, (_, touched))| *touched)
                .map(|(k, _)| k.clone())
            {
                inner.map.remove(&victim);
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
        inner.map.insert(key, (plan.clone(), stamp));
        plan
    }

    /// Drop all entries and zero the counters (used between experiment
    /// passes that must start cold).
    pub fn clear(&self) {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        inner.map.clear();
        inner.stamp = 0;
        self.hits.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
        self.evictions.store(0, Ordering::Relaxed);
    }

    /// Counter snapshot.
    pub fn stats(&self) -> JoinCacheStats {
        let inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        JoinCacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            len: inner.map.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan(root: &str) -> Option<JoinPlan> {
        Some(JoinPlan {
            concepts: vec![root.to_string()],
            edges: Vec::new(),
        })
    }

    #[test]
    fn memoizes_and_counts() {
        let cache = JoinPathCache::new(8);
        let mut computed = 0;
        for _ in 0..3 {
            let p = cache.get_or_compute(&["a", "b"], || {
                computed += 1;
                plan("a")
            });
            assert_eq!(p.unwrap().concepts, vec!["a".to_string()]);
        }
        assert_eq!(computed, 1);
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.len), (2, 1, 1));
        assert!((s.hit_rate() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn caches_negative_results() {
        let cache = JoinPathCache::new(8);
        let mut computed = 0;
        for _ in 0..2 {
            let p = cache.get_or_compute(&["x", "island"], || {
                computed += 1;
                None
            });
            assert!(p.is_none());
        }
        assert_eq!(computed, 1);
    }

    #[test]
    fn terminal_order_is_part_of_the_key() {
        let cache = JoinPathCache::new(8);
        cache.get_or_compute(&["a", "b"], || plan("a"));
        let p = cache.get_or_compute(&["b", "a"], || plan("b"));
        assert_eq!(p.unwrap().concepts, vec!["b".to_string()]);
        assert_eq!(cache.stats().misses, 2);
    }

    #[test]
    fn evicts_least_recently_used() {
        let cache = JoinPathCache::new(2);
        cache.get_or_compute(&["a"], || plan("a"));
        cache.get_or_compute(&["b"], || plan("b"));
        cache.get_or_compute(&["a"], || plan("never"));
        // Inserting c evicts b (a was touched more recently than b).
        cache.get_or_compute(&["c"], || plan("c"));
        let mut b_recomputed = false;
        cache.get_or_compute(&["b"], || {
            b_recomputed = true;
            plan("b")
        });
        assert!(b_recomputed, "b must have been evicted by c");
        // b's reinsertion in turn evicted a — the LRU of {a, c}.
        let mut a_recomputed = false;
        cache.get_or_compute(&["a"], || {
            a_recomputed = true;
            plan("a")
        });
        assert!(a_recomputed, "a was least-recently used when b returned");
        assert_eq!(cache.stats().evictions, 3);
        assert_eq!(cache.stats().len, 2);
    }

    #[test]
    fn clear_resets_everything() {
        let cache = JoinPathCache::new(4);
        cache.get_or_compute(&["a"], || plan("a"));
        cache.clear();
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.len), (0, 0, 0));
    }
}
