//! A bounded, shared memo for join-path inference.
//!
//! Steiner-tree planning is the most expensive step of entity-based
//! interpretation, and a serving workload asks for the same small set
//! of terminal combinations over and over (every "total order amount by
//! customer city" needs `order ⋈ customer`). [`JoinPathCache`] fronts
//! [`crate::JoinGraph::steiner_plan`] with a capacity-bounded LRU memo.
//!
//! **Single-flight semantics:** the compute closure runs while the
//! cache lock is held, so for any key the plan is computed exactly once
//! no matter how many threads race on it — every other thread waits and
//! then hits. This serializes *planning* (not interpretation as a
//! whole) and in exchange makes hit/miss counters deterministic for a
//! deterministic request stream, which experiment E12 asserts.
//!
//! **Scopes:** one cache can be shared across independent schemas
//! (multi-tenant serving shares a single memo across every tenant
//! pipeline). Each entry is namespaced by a caller-chosen `u64` scope —
//! in serving, the tenant's schema fingerprint — so two schemas can
//! never exchange plans, and [`JoinPathCache::evict_scope`] removes one
//! tenant's entries without disturbing the others.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use crate::graph::JoinPlan;

/// Counters and content of the memo, guarded by one lock.
#[derive(Debug, Default)]
struct CacheInner {
    /// Key (scope then terminal sequence, joined by `\u{1}`) →
    /// (memoized plan, last-touch stamp).
    map: HashMap<String, (Option<JoinPlan>, u64)>,
    /// Monotonic touch counter driving LRU eviction.
    stamp: u64,
}

/// Render the internal key for `(scope, terminals)`. The scope leads
/// so [`JoinPathCache::evict_scope`] can match by prefix.
fn scoped_key(scope: u64, terminals: &[&str]) -> String {
    let mut key = format!("{scope:016x}");
    for t in terminals {
        key.push('\u{1}');
        key.push_str(t);
    }
    key
}

/// A bounded LRU memo of `terminals → Option<JoinPlan>`.
///
/// Negative results (disconnected terminal sets) are cached too: a
/// question that cannot be planned stays expensive to recompute
/// otherwise.
#[derive(Debug)]
pub struct JoinPathCache {
    inner: Mutex<CacheInner>,
    capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

/// A point-in-time view of the cache counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JoinCacheStats {
    /// Lookups answered from the memo.
    pub hits: u64,
    /// Lookups that ran the planner.
    pub misses: u64,
    /// Entries displaced by capacity pressure.
    pub evictions: u64,
    /// Entries currently resident.
    pub len: usize,
}

impl JoinCacheStats {
    /// Hit fraction in `[0, 1]` (`0` before any lookup).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

impl JoinPathCache {
    /// A cache holding at most `capacity` plans (`capacity` ≥ 1).
    pub fn new(capacity: usize) -> JoinPathCache {
        JoinPathCache {
            inner: Mutex::new(CacheInner::default()),
            capacity: capacity.max(1),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// Look up `terminals`, running `compute` on a miss (single-flight:
    /// `compute` runs under the cache lock).
    ///
    /// The key is the exact terminal sequence: plan growth starts from
    /// the first terminal, so order is semantically significant.
    /// Equivalent to [`JoinPathCache::get_or_compute_scoped`] in the
    /// default scope `0`.
    pub fn get_or_compute(
        &self,
        terminals: &[&str],
        compute: impl FnOnce() -> Option<JoinPlan>,
    ) -> Option<JoinPlan> {
        self.get_or_compute_scoped(0, terminals, compute)
    }

    /// [`JoinPathCache::get_or_compute`], namespaced under `scope` —
    /// lookups in different scopes can never observe each other's
    /// plans, which is what lets multi-tenant serving share one memo
    /// across schemas (scope = schema fingerprint).
    pub fn get_or_compute_scoped(
        &self,
        scope: u64,
        terminals: &[&str],
        compute: impl FnOnce() -> Option<JoinPlan>,
    ) -> Option<JoinPlan> {
        let key = scoped_key(scope, terminals);
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        inner.stamp += 1;
        let stamp = inner.stamp;
        if let Some((plan, touched)) = inner.map.get_mut(&key) {
            *touched = stamp;
            self.hits.fetch_add(1, Ordering::Relaxed);
            return plan.clone();
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let plan = compute();
        if inner.map.len() >= self.capacity {
            // Evict the least-recently-touched entry.
            if let Some(victim) = inner
                .map
                .iter()
                .min_by_key(|(_, (_, touched))| *touched)
                .map(|(k, _)| k.clone())
            {
                inner.map.remove(&victim);
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
        inner.map.insert(key, (plan.clone(), stamp));
        plan
    }

    /// Drop all entries and zero the counters (used between experiment
    /// passes that must start cold).
    pub fn clear(&self) {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        inner.map.clear();
        inner.stamp = 0;
        self.hits.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
        self.evictions.store(0, Ordering::Relaxed);
    }

    /// Drop every entry in `scope`, returning how many were evicted.
    /// Counters are left untouched: a tenant leaving does not rewrite
    /// the history of lookups it performed. Other scopes' entries (and
    /// their recency stamps) are unaffected.
    pub fn evict_scope(&self, scope: u64) -> usize {
        let prefix = format!("{scope:016x}\u{1}");
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        let victims: Vec<String> = inner
            .map
            .keys()
            .filter(|k| k.starts_with(&prefix))
            .cloned()
            .collect();
        for k in &victims {
            inner.map.remove(k);
        }
        victims.len()
    }

    /// Resident entry count in `scope` alone.
    pub fn len_in_scope(&self, scope: u64) -> usize {
        let prefix = format!("{scope:016x}\u{1}");
        let inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        inner.map.keys().filter(|k| k.starts_with(&prefix)).count()
    }

    /// Counter snapshot.
    pub fn stats(&self) -> JoinCacheStats {
        let inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        JoinCacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            len: inner.map.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan(root: &str) -> Option<JoinPlan> {
        Some(JoinPlan {
            concepts: vec![root.to_string()],
            edges: Vec::new(),
        })
    }

    #[test]
    fn memoizes_and_counts() {
        let cache = JoinPathCache::new(8);
        let mut computed = 0;
        for _ in 0..3 {
            let p = cache.get_or_compute(&["a", "b"], || {
                computed += 1;
                plan("a")
            });
            assert_eq!(p.unwrap().concepts, vec!["a".to_string()]);
        }
        assert_eq!(computed, 1);
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.len), (2, 1, 1));
        assert!((s.hit_rate() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn caches_negative_results() {
        let cache = JoinPathCache::new(8);
        let mut computed = 0;
        for _ in 0..2 {
            let p = cache.get_or_compute(&["x", "island"], || {
                computed += 1;
                None
            });
            assert!(p.is_none());
        }
        assert_eq!(computed, 1);
    }

    #[test]
    fn scopes_never_share_plans() {
        let cache = JoinPathCache::new(8);
        let a = cache.get_or_compute_scoped(1, &["order", "customer"], || plan("a"));
        // Same terminals, different scope: must recompute, not leak.
        let b = cache.get_or_compute_scoped(2, &["order", "customer"], || plan("b"));
        assert_eq!(a.unwrap().concepts, vec!["a".to_string()]);
        assert_eq!(b.unwrap().concepts, vec!["b".to_string()]);
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.len), (0, 2, 2));
        // Within a scope the memo still hits.
        let again = cache.get_or_compute_scoped(1, &["order", "customer"], || plan("never"));
        assert_eq!(again.unwrap().concepts, vec!["a".to_string()]);
        assert_eq!(cache.stats().hits, 1);
        // The default scope is scope 0.
        cache.get_or_compute(&["order", "customer"], || plan("zero"));
        assert_eq!(cache.stats().misses, 3);
    }

    #[test]
    fn evict_scope_removes_one_tenant_only() {
        let cache = JoinPathCache::new(8);
        cache.get_or_compute_scoped(7, &["a", "b"], || plan("a"));
        cache.get_or_compute_scoped(7, &["c"], || plan("c"));
        cache.get_or_compute_scoped(9, &["a", "b"], || plan("x"));
        assert_eq!(cache.len_in_scope(7), 2);
        assert_eq!(cache.len_in_scope(9), 1);
        assert_eq!(cache.evict_scope(7), 2);
        assert_eq!(cache.len_in_scope(7), 0);
        assert_eq!(cache.stats().len, 1, "scope 9 survives");
        // Scope 9's entry still hits; scope 7 recomputes cold.
        let kept = cache.get_or_compute_scoped(9, &["a", "b"], || plan("never"));
        assert_eq!(kept.unwrap().concepts, vec!["x".to_string()]);
        let mut recomputed = false;
        cache.get_or_compute_scoped(7, &["a", "b"], || {
            recomputed = true;
            plan("a")
        });
        assert!(recomputed, "evicted scope must start cold");
        assert_eq!(cache.evict_scope(12345), 0, "unknown scope is a no-op");
    }

    #[test]
    fn terminal_order_is_part_of_the_key() {
        let cache = JoinPathCache::new(8);
        cache.get_or_compute(&["a", "b"], || plan("a"));
        let p = cache.get_or_compute(&["b", "a"], || plan("b"));
        assert_eq!(p.unwrap().concepts, vec!["b".to_string()]);
        assert_eq!(cache.stats().misses, 2);
    }

    #[test]
    fn evicts_least_recently_used() {
        let cache = JoinPathCache::new(2);
        cache.get_or_compute(&["a"], || plan("a"));
        cache.get_or_compute(&["b"], || plan("b"));
        cache.get_or_compute(&["a"], || plan("never"));
        // Inserting c evicts b (a was touched more recently than b).
        cache.get_or_compute(&["c"], || plan("c"));
        let mut b_recomputed = false;
        cache.get_or_compute(&["b"], || {
            b_recomputed = true;
            plan("b")
        });
        assert!(b_recomputed, "b must have been evicted by c");
        // b's reinsertion in turn evicted a — the LRU of {a, c}.
        let mut a_recomputed = false;
        cache.get_or_compute(&["a"], || {
            a_recomputed = true;
            plan("a")
        });
        assert!(a_recomputed, "a was least-recently used when b returned");
        assert_eq!(cache.stats().evictions, 3);
        assert_eq!(cache.stats().len, 2);
    }

    #[test]
    fn clear_resets_everything() {
        let cache = JoinPathCache::new(4);
        cache.get_or_compute(&["a"], || plan("a"));
        cache.clear();
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.len), (0, 0, 0));
    }
}
