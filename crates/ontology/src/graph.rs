//! The join graph and ATHENA-style join-path inference.
//!
//! Entity-based systems must connect the concepts a question mentions:
//! "customers in California with more than 5 orders" touches
//! `customer` and `order`, so the generated SQL needs the FK path
//! between them. For two concepts a BFS shortest path suffices; for
//! three or more, ATHENA computes a minimal connecting tree — we use
//! the classic 2-approximation: grow the tree by repeatedly attaching
//! the nearest unconnected terminal by its shortest path.

use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

use crate::cache::JoinPathCache;
use crate::model::Ontology;

/// One traversable FK edge (stored in both directions).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JoinEdge {
    /// Source concept.
    pub from: String,
    /// Target concept.
    pub to: String,
    /// Join column on the source concept's table.
    pub from_column: String,
    /// Join column on the target concept's table.
    pub to_column: String,
}

/// A join plan: the concepts to include and the edges connecting them,
/// in an order where each edge attaches one new concept.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct JoinPlan {
    /// Concepts in attach order; the first is the plan root.
    pub concepts: Vec<String>,
    /// Edges in attach order (`edges.len() == concepts.len() - 1`).
    pub edges: Vec<JoinEdge>,
}

impl JoinPlan {
    /// Number of join edges.
    pub fn join_count(&self) -> usize {
        self.edges.len()
    }
}

/// Undirected join graph over ontology concepts.
#[derive(Debug, Clone, Default)]
pub struct JoinGraph {
    adjacency: HashMap<String, Vec<JoinEdge>>,
    /// Optional shared memo for [`JoinGraph::steiner_plan`]; cloning
    /// the graph shares the cache. Entries are keyed by
    /// `(cache_scope, terminals)`, so sharing one cache across
    /// *different* graphs is sound only when each graph carries a
    /// distinct scope (see [`JoinGraph::with_scoped_cache`]).
    cache: Option<Arc<JoinPathCache>>,
    /// Namespace for this graph's entries in the shared cache.
    /// `0` (the default) is the single-schema scope used by
    /// [`JoinGraph::with_cache`].
    cache_scope: u64,
}

impl JoinGraph {
    /// Build from an ontology's object properties.
    pub fn from_ontology(onto: &Ontology) -> Self {
        let mut g = JoinGraph::default();
        for r in &onto.object_properties {
            g.adjacency
                .entry(r.from.clone())
                .or_default()
                .push(JoinEdge {
                    from: r.from.clone(),
                    to: r.to.clone(),
                    from_column: r.from_column.clone(),
                    to_column: r.to_column.clone(),
                });
            g.adjacency.entry(r.to.clone()).or_default().push(JoinEdge {
                from: r.to.clone(),
                to: r.from.clone(),
                from_column: r.to_column.clone(),
                to_column: r.from_column.clone(),
            });
        }
        for c in &onto.concepts {
            g.adjacency.entry(c.label.clone()).or_default();
        }
        g
    }

    /// Attach a shared plan cache; subsequent [`JoinGraph::steiner_plan`]
    /// calls are memoized through it (in the default scope `0`).
    pub fn with_cache(mut self, cache: Arc<JoinPathCache>) -> Self {
        self.cache = Some(cache);
        self.cache_scope = 0;
        self
    }

    /// Attach a shared plan cache under an explicit namespace. Use this
    /// when one [`JoinPathCache`] is shared across graphs of *different*
    /// ontologies (multi-tenant serving keys each tenant's graph by its
    /// schema fingerprint): entries from distinct scopes can never be
    /// observed through each other's graphs.
    pub fn with_scoped_cache(mut self, cache: Arc<JoinPathCache>, scope: u64) -> Self {
        self.cache = Some(cache);
        self.cache_scope = scope;
        self
    }

    /// The attached plan cache, if any.
    pub fn cache(&self) -> Option<&Arc<JoinPathCache>> {
        self.cache.as_ref()
    }

    /// Neighbors of a concept.
    pub fn neighbors(&self, concept: &str) -> &[JoinEdge] {
        self.adjacency
            .get(concept)
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// BFS shortest edge path between two concepts (deterministic:
    /// neighbor order follows ontology declaration order).
    pub fn shortest_path(&self, from: &str, to: &str) -> Option<Vec<JoinEdge>> {
        if from == to {
            return Some(Vec::new());
        }
        let mut prev: HashMap<String, JoinEdge> = HashMap::new();
        let mut queue = VecDeque::from([from.to_string()]);
        let mut visited = std::collections::HashSet::from([from.to_string()]);
        while let Some(cur) = queue.pop_front() {
            for edge in self.neighbors(&cur) {
                if visited.insert(edge.to.clone()) {
                    prev.insert(edge.to.clone(), edge.clone());
                    if edge.to == to {
                        // Reconstruct.
                        let mut path = Vec::new();
                        let mut node = to.to_string();
                        while node != from {
                            let e = prev[&node].clone();
                            node = e.from.clone();
                            path.push(e);
                        }
                        path.reverse();
                        return Some(path);
                    }
                    queue.push_back(edge.to.clone());
                }
            }
        }
        None
    }

    /// Steiner-tree approximation connecting all `terminals`.
    ///
    /// Grows from the first terminal; at each step attaches the
    /// unconnected terminal with the shortest path to any connected
    /// concept. Returns `None` if the terminals are not all connected
    /// in the graph. When a [`JoinPathCache`] is attached via
    /// [`JoinGraph::with_cache`], results (including `None`) are
    /// memoized by the exact terminal sequence.
    pub fn steiner_plan(&self, terminals: &[&str]) -> Option<JoinPlan> {
        match &self.cache {
            Some(cache) => cache.get_or_compute_scoped(self.cache_scope, terminals, || {
                self.steiner_plan_uncached(terminals)
            }),
            None => self.steiner_plan_uncached(terminals),
        }
    }

    fn steiner_plan_uncached(&self, terminals: &[&str]) -> Option<JoinPlan> {
        let mut terminals: Vec<&str> = {
            let mut seen = std::collections::HashSet::new();
            terminals
                .iter()
                .copied()
                .filter(|t| seen.insert(*t))
                .collect()
        };
        let Some(first) = terminals.first().copied() else {
            return Some(JoinPlan::default());
        };
        if !self.adjacency.contains_key(first) {
            return None;
        }
        let mut plan = JoinPlan {
            concepts: vec![first.to_string()],
            edges: Vec::new(),
        };
        terminals.remove(0);

        while !terminals.is_empty() {
            // Find (terminal, path) with minimal path length to the tree.
            let mut best: Option<(usize, usize, Vec<JoinEdge>)> = None;
            for (ti, t) in terminals.iter().enumerate() {
                for anchor in &plan.concepts {
                    if let Some(path) = self.shortest_path(anchor, t) {
                        let better = match &best {
                            None => true,
                            Some((_, len, _)) => path.len() < *len,
                        };
                        if better {
                            best = Some((ti, path.len(), path));
                        }
                    }
                }
            }
            let (ti, _, path) = best?;
            terminals.remove(ti);
            for edge in path {
                if !plan.concepts.contains(&edge.to) {
                    plan.concepts.push(edge.to.clone());
                    plan.edges.push(edge);
                }
            }
        }
        Some(plan)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Concept, ObjectProperty, Ontology};

    /// Star schema: orders → customers, orders → products,
    /// orders → stores; stores → regions.
    fn star() -> Ontology {
        let concept = |l: &str, t: &str| Concept {
            label: l.into(),
            table: t.into(),
            primary_key: Some("id".into()),
        };
        let rel = |from: &str, to: &str, col: &str| ObjectProperty {
            from: from.into(),
            to: to.into(),
            from_column: col.into(),
            to_column: "id".into(),
            label: to.into(),
        };
        Ontology {
            concepts: vec![
                concept("order", "orders"),
                concept("customer", "customers"),
                concept("product", "products"),
                concept("store", "stores"),
                concept("region", "regions"),
                concept("island", "islands"),
            ],
            data_properties: vec![],
            object_properties: vec![
                rel("order", "customer", "customer_id"),
                rel("order", "product", "product_id"),
                rel("order", "store", "store_id"),
                rel("store", "region", "region_id"),
            ],
        }
    }

    #[test]
    fn shortest_path_direct() {
        let g = JoinGraph::from_ontology(&star());
        let p = g.shortest_path("order", "customer").unwrap();
        assert_eq!(p.len(), 1);
        assert_eq!(p[0].from_column, "customer_id");
    }

    #[test]
    fn shortest_path_two_hops() {
        let g = JoinGraph::from_ontology(&star());
        let p = g.shortest_path("customer", "product").unwrap();
        assert_eq!(p.len(), 2);
        assert_eq!(p[0].to, "order");
        assert_eq!(p[1].to, "product");
    }

    #[test]
    fn reverse_edges_have_swapped_columns() {
        let g = JoinGraph::from_ontology(&star());
        let p = g.shortest_path("customer", "order").unwrap();
        assert_eq!(p[0].from_column, "id");
        assert_eq!(p[0].to_column, "customer_id");
    }

    #[test]
    fn disconnected_returns_none() {
        let g = JoinGraph::from_ontology(&star());
        assert!(g.shortest_path("order", "island").is_none());
        assert!(g.steiner_plan(&["order", "island"]).is_none());
    }

    #[test]
    fn same_node_is_empty_path() {
        let g = JoinGraph::from_ontology(&star());
        assert_eq!(g.shortest_path("order", "order").unwrap().len(), 0);
    }

    #[test]
    fn steiner_three_terminals() {
        let g = JoinGraph::from_ontology(&star());
        let plan = g.steiner_plan(&["customer", "product", "region"]).unwrap();
        // Tree must contain all terminals plus the connectors order+store.
        for t in ["customer", "product", "region", "order", "store"] {
            assert!(plan.concepts.contains(&t.to_string()), "missing {t}");
        }
        assert_eq!(plan.join_count(), plan.concepts.len() - 1);
    }

    #[test]
    fn steiner_dedups_terminals() {
        let g = JoinGraph::from_ontology(&star());
        let plan = g.steiner_plan(&["order", "order", "customer"]).unwrap();
        assert_eq!(plan.concepts.len(), 2);
        assert_eq!(plan.join_count(), 1);
    }

    #[test]
    fn steiner_single_terminal() {
        let g = JoinGraph::from_ontology(&star());
        let plan = g.steiner_plan(&["customer"]).unwrap();
        assert_eq!(plan.concepts, vec!["customer".to_string()]);
        assert!(plan.edges.is_empty());
    }

    #[test]
    fn steiner_empty() {
        let g = JoinGraph::from_ontology(&star());
        assert_eq!(g.steiner_plan(&[]).unwrap(), JoinPlan::default());
    }

    #[test]
    fn parallel_fact_edges_to_two_dims() {
        // Clinic shape: visits → patients, visits → doctors.
        let concept = |l: &str, t: &str| Concept {
            label: l.into(),
            table: t.into(),
            primary_key: Some("id".into()),
        };
        let onto = Ontology {
            concepts: vec![
                concept("visit", "visits"),
                concept("patient", "patients"),
                concept("doctor", "doctors"),
            ],
            data_properties: vec![],
            object_properties: vec![
                ObjectProperty {
                    from: "visit".into(),
                    to: "patient".into(),
                    from_column: "patient_id".into(),
                    to_column: "id".into(),
                    label: "patient".into(),
                },
                ObjectProperty {
                    from: "visit".into(),
                    to: "doctor".into(),
                    from_column: "doctor_id".into(),
                    to_column: "id".into(),
                    label: "doctor".into(),
                },
            ],
        };
        let g = JoinGraph::from_ontology(&onto);
        // Patient ↔ doctor connect through the fact table.
        let p = g.shortest_path("patient", "doctor").unwrap();
        assert_eq!(p.len(), 2);
        assert_eq!(p[0].to, "visit");
        let plan = g.steiner_plan(&["patient", "doctor", "visit"]).unwrap();
        assert_eq!(plan.concepts.len(), 3);
        assert_eq!(plan.join_count(), 2);
    }

    #[test]
    fn cached_plans_match_uncached() {
        let plain = JoinGraph::from_ontology(&star());
        let cached = plain.clone().with_cache(Arc::new(JoinPathCache::new(16)));
        let cases: [&[&str]; 4] = [
            &["customer", "product", "region"],
            &["order", "island"],
            &["region", "customer"],
            &["customer"],
        ];
        for terminals in cases {
            // Twice: the second call is served from the memo.
            assert_eq!(
                cached.steiner_plan(terminals),
                plain.steiner_plan(terminals)
            );
            assert_eq!(
                cached.steiner_plan(terminals),
                plain.steiner_plan(terminals)
            );
        }
        let stats = cached.cache().unwrap().stats();
        assert_eq!((stats.hits, stats.misses), (4, 4));
    }

    #[test]
    fn scoped_graphs_share_one_cache_without_mixing() {
        // Two structurally different graphs over one memo: the star
        // schema and the clinic shape both ask for two-terminal plans,
        // and each must see only its own answers.
        let concept = |l: &str, t: &str| Concept {
            label: l.into(),
            table: t.into(),
            primary_key: Some("id".into()),
        };
        let clinic = Ontology {
            concepts: vec![concept("order", "visits"), concept("customer", "patients")],
            data_properties: vec![],
            object_properties: vec![ObjectProperty {
                from: "order".into(),
                to: "customer".into(),
                from_column: "patient_id".into(),
                to_column: "id".into(),
                label: "customer".into(),
            }],
        };
        let cache = Arc::new(JoinPathCache::new(16));
        let a = JoinGraph::from_ontology(&star()).with_scoped_cache(Arc::clone(&cache), 1);
        let b = JoinGraph::from_ontology(&clinic).with_scoped_cache(Arc::clone(&cache), 2);
        let pa = a.steiner_plan(&["order", "customer"]).unwrap();
        let pb = b.steiner_plan(&["order", "customer"]).unwrap();
        // Same terminals, different schemas: different join columns.
        assert_eq!(pa.edges[0].from_column, "customer_id");
        assert_eq!(pb.edges[0].from_column, "patient_id");
        // Both entries live in the one cache, and repeats hit.
        assert_eq!(cache.stats().len, 2);
        assert_eq!(b.steiner_plan(&["order", "customer"]).unwrap(), pb);
        assert_eq!(cache.stats().hits, 1);
    }

    #[test]
    fn each_edge_attaches_new_concept() {
        let g = JoinGraph::from_ontology(&star());
        let plan = g.steiner_plan(&["region", "customer"]).unwrap();
        let mut present = std::collections::HashSet::new();
        present.insert(plan.concepts[0].clone());
        for e in &plan.edges {
            assert!(
                present.contains(&e.from),
                "edge source must already be attached"
            );
            assert!(present.insert(e.to.clone()), "edge target must be new");
        }
    }
}
