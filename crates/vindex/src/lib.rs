#![warn(missing_docs)]

//! # nlidb-vindex — value and metadata indices
//!
//! The lookup machinery of the entity-based family: SODA consults "two
//! different indices: one for the data in a database, and one for the
//! meta-data"; Précis and QUICK bind query keywords to inverted-index
//! hits over instances, concepts, and properties. This crate provides
//! both indices:
//!
//! * [`ValueIndex`] — an inverted index over the *data*: every
//!   distinct text/date value of every column, tokenized, with fuzzy
//!   and multi-word lookup,
//! * [`MetadataIndex`] — an index over the *schema/ontology
//!   vocabulary*: concept and property labels expanded with lexicon
//!   synonyms,
//! * mention resolution that combines both, yielding the candidate
//!   interpretations downstream interpreters rank.

pub mod meta;
pub mod value_index;

pub use meta::{MetaHit, MetaKind, MetadataIndex};
pub use value_index::{ValueHit, ValueIndex};

use nlidb_engine::Database;
use nlidb_nlp::Lexicon;
use nlidb_ontology::Ontology;

/// Both indices bundled, as the entity interpreters consume them.
#[derive(Debug)]
pub struct Indices {
    /// Data-value index.
    pub values: ValueIndex,
    /// Schema/ontology vocabulary index.
    pub metadata: MetadataIndex,
}

impl Indices {
    /// Build both indices for a database + its ontology.
    pub fn build(db: &Database, onto: &Ontology, lexicon: &Lexicon) -> Indices {
        Indices {
            values: ValueIndex::build(db),
            metadata: MetadataIndex::build(onto, lexicon),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nlidb_engine::{ColumnType, TableSchema, Value};
    use nlidb_ontology::generate_ontology;

    #[test]
    fn bundle_builds() {
        let mut db = Database::new("d");
        db.create_table(
            TableSchema::new("cities")
                .column("id", ColumnType::Int)
                .column("name", ColumnType::Text),
        )
        .unwrap();
        db.insert("cities", vec![Value::Int(1), Value::from("Lisbon")])
            .unwrap();
        let onto = generate_ontology(&db);
        let lex = Lexicon::business_default();
        let idx = Indices::build(&db, &onto, &lex);
        assert!(!idx.values.lookup("lisbon").is_empty());
        assert!(!idx.metadata.lookup("city").is_empty());
    }
}
