//! Inverted index over distinct data values.

use std::collections::{HashMap, HashSet};

use nlidb_engine::{ColumnType, Database, Value};
use nlidb_nlp::{mention_score, porter_stem, tokenize, TokenKind};

/// One indexed-value hit for a mention lookup.
#[derive(Debug, Clone, PartialEq)]
pub struct ValueHit {
    /// Table containing the value.
    pub table: String,
    /// Column containing the value.
    pub column: String,
    /// The stored value (original casing).
    pub value: String,
    /// Match confidence in `[0, 1]`.
    pub score: f64,
}

#[derive(Debug, Clone)]
struct Entry {
    table: String,
    column: String,
    value: String,
    lower: String,
}

/// Inverted index over every distinct text/date value of every column.
///
/// Lookup is token-driven: a mention's (stemmed) tokens select
/// candidate entries, which are then scored with the blended fuzzy
/// [`mention_score`]. Exact full-string matches are also served from a
/// direct map so they cost O(1).
#[derive(Debug, Default)]
pub struct ValueIndex {
    entries: Vec<Entry>,
    by_token: HashMap<String, Vec<u32>>,
    exact: HashMap<String, Vec<u32>>,
}

impl ValueIndex {
    /// Index all text/date columns of `db`.
    pub fn build(db: &Database) -> ValueIndex {
        let mut idx = ValueIndex::default();
        for table in db.tables() {
            for col in &table.schema.columns {
                if !matches!(col.ty, ColumnType::Text | ColumnType::Date) {
                    continue;
                }
                for v in table.distinct_values(&col.name) {
                    if let Value::Str(s) = v {
                        idx.add(&table.schema.name, &col.name, &s);
                    }
                }
            }
        }
        idx
    }

    fn add(&mut self, table: &str, column: &str, value: &str) {
        let lower = value.to_lowercase();
        let id = self.entries.len() as u32;
        self.entries.push(Entry {
            table: table.to_string(),
            column: column.to_string(),
            value: value.to_string(),
            lower: lower.clone(),
        });
        self.exact.entry(lower.clone()).or_default().push(id);
        for tok in index_tokens(&lower) {
            self.by_token.entry(tok).or_default().push(id);
        }
    }

    /// Number of indexed values.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Look up a mention. Returns hits sorted by descending score,
    /// deduplicated per (table, column, value); only hits scoring
    /// ≥ 0.82 (or exact) are returned.
    pub fn lookup(&self, mention: &str) -> Vec<ValueHit> {
        let mention_lower = mention.to_lowercase();
        let mut seen: HashSet<u32> = HashSet::new();
        let mut out: Vec<ValueHit> = Vec::new();

        if let Some(ids) = self.exact.get(&mention_lower) {
            for &id in ids {
                if seen.insert(id) {
                    let e = &self.entries[id as usize];
                    out.push(ValueHit {
                        table: e.table.clone(),
                        column: e.column.clone(),
                        value: e.value.clone(),
                        score: 1.0,
                    });
                }
            }
        }
        // Candidate generation by token overlap. Candidates are
        // visited in id order: iterating a `HashSet` here would leak
        // the process-random hasher seed into result order (equal
        // score+value hits keep insertion order through the stable
        // sort below), breaking run-over-run determinism.
        let mut candidates: Vec<u32> = Vec::new();
        for tok in index_tokens(&mention_lower) {
            if let Some(ids) = self.by_token.get(&tok) {
                candidates.extend(ids.iter().copied());
            }
        }
        candidates.sort_unstable();
        candidates.dedup();
        for id in candidates {
            if seen.contains(&id) {
                continue;
            }
            let e = &self.entries[id as usize];
            let score = mention_score(&mention_lower, &e.lower);
            if score >= 0.82 {
                seen.insert(id);
                out.push(ValueHit {
                    table: e.table.clone(),
                    column: e.column.clone(),
                    value: e.value.clone(),
                    score,
                });
            }
        }
        out.sort_by(|a, b| {
            b.score
                .partial_cmp(&a.score)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.value.cmp(&b.value))
                .then_with(|| a.table.cmp(&b.table))
                .then_with(|| a.column.cmp(&b.column))
        });
        out
    }

    /// Best hit for a mention restricted to one table, if any.
    pub fn lookup_in_table(&self, mention: &str, table: &str) -> Option<ValueHit> {
        self.lookup(mention).into_iter().find(|h| h.table == table)
    }
}

/// Tokens under which a value is indexed: surface words plus their
/// Porter stems.
fn index_tokens(lower: &str) -> Vec<String> {
    let mut out = Vec::new();
    for t in tokenize(lower) {
        if t.kind == TokenKind::Word {
            let stem = porter_stem(&t.norm);
            if stem != t.norm {
                out.push(stem);
            }
            out.push(t.norm);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use nlidb_engine::{ColumnType, TableSchema};

    fn db() -> Database {
        let mut db = Database::new("d");
        db.create_table(
            TableSchema::new("customers")
                .column("id", ColumnType::Int)
                .column("name", ColumnType::Text)
                .column("city", ColumnType::Text),
        )
        .unwrap();
        for (id, name, city) in [
            (1, "Ada Lovelace", "New York"),
            (2, "Bob Smith", "San Jose"),
            (3, "Carol Jones", "New York"),
            (4, "Dan Brown", "Newark"),
        ] {
            db.insert(
                "customers",
                vec![Value::Int(id), Value::from(name), Value::from(city)],
            )
            .unwrap();
        }
        db
    }

    #[test]
    fn exact_lookup_scores_one() {
        let idx = ValueIndex::build(&db());
        let hits = idx.lookup("New York");
        assert_eq!(hits[0].score, 1.0);
        assert_eq!(hits[0].column, "city");
        assert_eq!(hits[0].value, "New York");
    }

    #[test]
    fn distinct_values_indexed_once() {
        let idx = ValueIndex::build(&db());
        // 4 names + 3 distinct cities.
        assert_eq!(idx.len(), 7);
        assert!(!idx.is_empty());
    }

    #[test]
    fn case_insensitive() {
        let idx = ValueIndex::build(&db());
        assert_eq!(idx.lookup("new york")[0].score, 1.0);
        assert_eq!(idx.lookup("NEW YORK")[0].score, 1.0);
    }

    #[test]
    fn fuzzy_typo_tolerated() {
        let idx = ValueIndex::build(&db());
        let hits = idx.lookup("San Jsoe");
        assert!(!hits.is_empty());
        assert_eq!(hits[0].value, "San Jose");
        assert!(hits[0].score < 1.0);
    }

    #[test]
    fn partial_token_candidates() {
        let idx = ValueIndex::build(&db());
        // "york" shares a token with "New York" but full-string score is
        // below threshold — should not explode into noise.
        let hits = idx.lookup("zzz unrelated");
        assert!(hits.is_empty());
    }

    #[test]
    fn lookup_in_table_filters() {
        let idx = ValueIndex::build(&db());
        assert!(idx.lookup_in_table("New York", "customers").is_some());
        assert!(idx.lookup_in_table("New York", "orders").is_none());
    }

    #[test]
    fn hits_sorted_and_deterministic() {
        let idx = ValueIndex::build(&db());
        let hits = idx.lookup("new");
        for w in hits.windows(2) {
            assert!(w[0].score >= w[1].score);
        }
        assert_eq!(idx.lookup("new"), idx.lookup("new"));
    }

    #[test]
    fn numeric_columns_not_indexed() {
        let idx = ValueIndex::build(&db());
        assert!(idx.lookup("1").is_empty());
    }
}
