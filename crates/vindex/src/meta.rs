//! Metadata (schema/ontology vocabulary) index.

use nlidb_nlp::Lexicon;
use nlidb_ontology::{match_term, Ontology, TermMatch, TermTarget};

/// What kind of schema element a metadata hit refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetaKind {
    /// A concept / table.
    Concept,
    /// A data property / column.
    Property,
}

/// One metadata hit.
#[derive(Debug, Clone, PartialEq)]
pub struct MetaHit {
    /// Hit kind.
    pub kind: MetaKind,
    /// Concept label (owning concept for properties).
    pub concept: String,
    /// Property label (empty for concept hits).
    pub property: String,
    /// Match confidence in `[0, 1]`.
    pub score: f64,
}

/// Vocabulary index over concept and property labels. Thin,
/// lexicon-expanded wrapper around [`nlidb_ontology::match_term`],
/// owning clones of the ontology vocabulary so lookups need no
/// ontology reference.
#[derive(Debug)]
pub struct MetadataIndex {
    ontology: Ontology,
    lexicon: Lexicon,
}

impl MetadataIndex {
    /// Build from an ontology and a lexicon.
    pub fn build(onto: &Ontology, lexicon: &Lexicon) -> MetadataIndex {
        MetadataIndex {
            ontology: onto.clone(),
            lexicon: lexicon.clone(),
        }
    }

    /// Look up a (possibly multi-word) term; hits sorted by score.
    pub fn lookup(&self, term: &str) -> Vec<MetaHit> {
        match_term(term, &self.ontology, &self.lexicon)
            .into_iter()
            .map(|m: TermMatch| match m.target {
                TermTarget::Concept { concept } => MetaHit {
                    kind: MetaKind::Concept,
                    concept,
                    property: String::new(),
                    score: m.score,
                },
                TermTarget::Property { concept, property } => MetaHit {
                    kind: MetaKind::Property,
                    concept,
                    property,
                    score: m.score,
                },
            })
            .collect()
    }

    /// Best concept hit for a term.
    pub fn best_concept(&self, term: &str) -> Option<MetaHit> {
        self.lookup(term)
            .into_iter()
            .find(|h| h.kind == MetaKind::Concept)
    }

    /// Best property hit for a term, optionally restricted to a concept.
    pub fn best_property(&self, term: &str, concept: Option<&str>) -> Option<MetaHit> {
        self.lookup(term).into_iter().find(|h| {
            h.kind == MetaKind::Property && concept.map(|c| h.concept == c).unwrap_or(true)
        })
    }

    /// The wrapped ontology (for interpreters needing structure).
    pub fn ontology(&self) -> &Ontology {
        &self.ontology
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nlidb_engine::{ColumnType, Database, TableSchema};
    use nlidb_ontology::generate_ontology;

    fn index() -> MetadataIndex {
        let mut db = Database::new("d");
        db.create_table(
            TableSchema::new("customers")
                .column("id", ColumnType::Int)
                .column("name", ColumnType::Text)
                .column("city", ColumnType::Text)
                .primary_key("id"),
        )
        .unwrap();
        db.create_table(
            TableSchema::new("orders")
                .column("id", ColumnType::Int)
                .column("customer_id", ColumnType::Int)
                .column("amount", ColumnType::Float)
                .primary_key("id")
                .foreign_key("customer_id", "customers", "id"),
        )
        .unwrap();
        let onto = generate_ontology(&db);
        MetadataIndex::build(&onto, &Lexicon::business_default())
    }

    #[test]
    fn concept_lookup() {
        let idx = index();
        let hit = idx.best_concept("customers").unwrap();
        assert_eq!(hit.concept, "customer");
        assert!(hit.score > 0.9);
    }

    #[test]
    fn synonym_concept_lookup() {
        let idx = index();
        let hit = idx.best_concept("clients").unwrap();
        assert_eq!(hit.concept, "customer");
    }

    #[test]
    fn property_lookup_scoped() {
        let idx = index();
        let hit = idx.best_property("amount", Some("order")).unwrap();
        assert_eq!(hit.property, "amount");
        assert!(idx.best_property("amount", Some("customer")).is_none());
    }

    #[test]
    fn property_synonym() {
        let idx = index();
        // "price" ~ "amount" via the price/cost/amount/value ring.
        let hit = idx.best_property("price", None).unwrap();
        assert_eq!(hit.property, "amount");
    }

    #[test]
    fn no_hit_for_unknown() {
        let idx = index();
        assert!(idx.lookup("zeppelin").is_empty());
        assert!(idx.best_concept("zeppelin").is_none());
    }

    #[test]
    fn ontology_accessible() {
        let idx = index();
        assert_eq!(idx.ontology().concepts.len(), 2);
    }
}
