//! E15 must hold at more than the canonical seed: the crash-recovery
//! equalities (recovered stream == never-crashed baseline, replay
//! divergence 0) are properties of the recovery machinery, not of one
//! lucky stream. Seed 42 is exercised by the `experiments` binary and
//! the drift gate; this test re-proves the claim at another seed.

use nlidb_bench::experiments::run_experiment;

#[test]
fn e15_holds_at_an_alternate_seed() {
    // Every E15 equality is an assert inside the experiment itself;
    // reaching the table at all is the proof.
    let table = run_experiment("e15", 7).expect("e15 is a known experiment");
    let rendered = table.to_string();
    assert!(rendered.contains("E15"), "table carries its title");
    assert!(
        rendered.contains("panic mid-conversation"),
        "the session-crash regime ran"
    );
}
