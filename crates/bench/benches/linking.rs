//! B3 — mention linking and index lookup, with the
//! synonym-expansion ablation (the Lei et al. relaxation claim): how
//! much does lexicon-backed lookup cost over exact-only lookup, and
//! what does it buy (measured in E2; timed here)?

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use nlidb_benchdata::retail_database;
use nlidb_core::linking::link_mentions;
use nlidb_core::pipeline::SchemaContext;
use nlidb_nlp::{tokenize, Lexicon, LexiconBuilder};

fn bench_linking(c: &mut Criterion) {
    let db = retail_database(42);
    let with_lexicon = SchemaContext::build_with_lexicon(&db, Lexicon::business_default());
    let exact_only = SchemaContext::build_with_lexicon(&db, LexiconBuilder::new().build());
    let questions = [
        ("canonical", "total order amount by customer city"),
        ("synonymous", "combined purchase value by client town"),
        (
            "value-heavy",
            "show customers in New York with segment consumer",
        ),
    ];
    let mut group = c.benchmark_group("linking");
    for (label, q) in questions {
        let tokens = tokenize(q);
        group.bench_with_input(BenchmarkId::new("lexicon", label), &tokens, |b, tokens| {
            b.iter(|| std::hint::black_box(link_mentions(tokens, &with_lexicon)))
        });
        group.bench_with_input(
            BenchmarkId::new("exact-only", label),
            &tokens,
            |b, tokens| b.iter(|| std::hint::black_box(link_mentions(tokens, &exact_only))),
        );
    }
    // Raw index lookups.
    group.bench_function("value-index/exact", |b| {
        b.iter(|| std::hint::black_box(with_lexicon.indices.values.lookup("New York")))
    });
    group.bench_function("value-index/fuzzy", |b| {
        b.iter(|| std::hint::black_box(with_lexicon.indices.values.lookup("New Yrok")))
    });
    group.bench_function("metadata-index/synonym", |b| {
        b.iter(|| std::hint::black_box(with_lexicon.indices.metadata.lookup("clients")))
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(50);
    targets = bench_linking
}
criterion_main!(benches);
