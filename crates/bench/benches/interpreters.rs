//! B1 — interpretation latency per family × complexity rung.
//!
//! The survey's "Enterprise Adaption" challenge implies interactive
//! latency budgets; this bench shows each family's cost profile on
//! one representative question per §3 rung.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use nlidb_bench::workloads::setup_domain;
use nlidb_core::interpretation::InterpreterKind;

fn bench_interpreters(c: &mut Criterion) {
    let setup = setup_domain("retail", 42, 120);
    let ctx = setup.pipeline.context();
    let questions: [(&str, &str); 4] = [
        ("select", "show customers in Austin"),
        ("aggregate", "total amount by status"),
        ("join", "total order amount by customer city"),
        ("nested", "customers without orders"),
    ];
    let mut group = c.benchmark_group("interpret");
    for kind in InterpreterKind::all() {
        for (class, q) in questions {
            group.bench_with_input(BenchmarkId::new(kind.label(), class), &q, |b, q| {
                b.iter(|| std::hint::black_box(setup.pipeline.interpreter(kind).interpret(q, ctx)))
            });
        }
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_interpreters
}
criterion_main!(benches);
