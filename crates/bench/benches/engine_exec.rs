//! B2 — engine execution latency per §3 complexity rung.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use nlidb_benchdata::retail_database;
use nlidb_engine::execute;
use nlidb_sqlir::parse_query;

fn bench_engine(c: &mut Criterion) {
    let db = retail_database(42);
    let queries: [(&str, &str); 5] = [
        ("select", "SELECT * FROM customers WHERE city = 'Austin'"),
        (
            "aggregate",
            "SELECT status, SUM(amount) FROM orders GROUP BY status",
        ),
        (
            "join",
            "SELECT customers.city, SUM(orders.amount) FROM orders \
             JOIN customers ON orders.customer_id = customers.id GROUP BY customers.city",
        ),
        (
            "nested-uncorrelated",
            "SELECT * FROM customers WHERE id NOT IN (SELECT customer_id FROM orders)",
        ),
        (
            "nested-correlated",
            "SELECT name FROM customers AS c WHERE EXISTS \
             (SELECT * FROM orders WHERE orders.customer_id = c.id AND orders.amount > 1000)",
        ),
    ];
    let mut group = c.benchmark_group("engine");
    for (label, sql) in queries {
        let q = parse_query(sql).expect("bench SQL parses");
        group.bench_with_input(BenchmarkId::from_parameter(label), &q, |b, q| {
            b.iter(|| std::hint::black_box(execute(&db, q).expect("executes")))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(50);
    targets = bench_engine
}
criterion_main!(benches);
