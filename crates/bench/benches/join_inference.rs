//! B4 — join-path inference ablation: ATHENA-style Steiner-tree
//! planning vs naive pairwise shortest paths, as the number of
//! terminal concepts grows.
//!
//! DESIGN.md calls this ablation out: the Steiner plan guarantees a
//! single connected tree where pairwise paths can visit connector
//! tables repeatedly.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use nlidb_benchdata::all_domains;
use nlidb_ontology::{generate_ontology, JoinGraph};

fn bench_join_inference(c: &mut Criterion) {
    // Build one combined multi-domain graph by merging ontologies —
    // a larger search space than any single domain.
    let dbs = all_domains(42);
    let ontologies: Vec<_> = dbs.iter().map(generate_ontology).collect();
    let graphs: Vec<JoinGraph> = ontologies.iter().map(JoinGraph::from_ontology).collect();

    let mut group = c.benchmark_group("join_inference");
    // Retail graph: customers / products / orders.
    let retail = &graphs[0];
    let terminal_sets: [(&str, Vec<&str>); 3] = [
        ("pair", vec!["customer", "product"]),
        ("triple", vec!["customer", "product", "order"]),
        ("clinic-triple", vec!["patient", "doctor", "visit"]),
    ];
    for (label, terminals) in &terminal_sets {
        let graph = if *label == "clinic-triple" {
            &graphs[5]
        } else {
            retail
        };
        group.bench_with_input(
            BenchmarkId::new("steiner", label),
            terminals,
            |b, terminals| b.iter(|| std::hint::black_box(graph.steiner_plan(terminals))),
        );
        group.bench_with_input(
            BenchmarkId::new("pairwise", label),
            terminals,
            |b, terminals| {
                b.iter(|| {
                    // Ablation baseline: independent shortest paths from
                    // the first terminal to each other terminal.
                    let first = terminals[0];
                    let paths: Vec<_> = terminals[1..]
                        .iter()
                        .map(|t| graph.shortest_path(first, t))
                        .collect();
                    std::hint::black_box(paths)
                })
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(60);
    targets = bench_join_inference
}
criterion_main!(benches);
