//! B6 — serving throughput scaling across worker counts.
//!
//! Four regimes per worker count (1, 2, 4), all replaying the same
//! seeded 64-request stream closed-loop through a warm server:
//!
//! * `pure-cpu` — interpretation work only, warm interpretation cache.
//!   Scaling here is bounded by the number of hardware threads; on a
//!   single-core host the curve is flat (workers only add handoff
//!   overhead).
//! * `pure-cpu-uncached` — the same work with the interpretation cache
//!   off: every request pays full interpretation. The baseline the two
//!   backend-touching regimes below are compared against.
//! * `stall-1ms` — a 1 ms per-interpretation stall injected through
//!   the server's request hook, standing in for the external-database
//!   round-trip a production NLIDB front-end waits on. Cache hits
//!   bypass the hook (a replayed answer touches no backend), so this
//!   regime runs uncached to stall on every request. Workers overlap
//!   stalls, so throughput scales with the pool even on one core — the
//!   latency-hiding case the serving runtime exists for.
//! * `faulted` — the default seeded fault schedule (≈10% transient,
//!   ≈5% fatal) wrapped periodically so every warm replay
//!   re-experiences the same faults, uncached for the same reason: the
//!   steady-state cost of retries + degradation relative to
//!   `pure-cpu-uncached`.
//! * `multi-tenant` — the same request volume split over three tenant
//!   databases behind one `TenantServer`, warm caches: the per-request
//!   cost of tenant attribution (salted routing, scoped metrics,
//!   per-tenant cache selection) relative to `pure-cpu`.
//!
//! The stall uses wall-clock sleep *in the bench harness only*; the
//! serving library itself never reads a clock it wasn't given.

use std::sync::Arc;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use nlidb_benchdata::{
    derive_slots, domain_database, interleave_streams, request_stream, retail_database, FaultPlan,
    FaultRates, RequestSpec, DOMAIN_NAMES,
};
use nlidb_core::pipeline::{NliPipeline, SchemaContext};
use nlidb_ontology::JoinPathCache;
use nlidb_serve::{
    fault_plan_hook, run_closed_loop, run_closed_loop_tenants, tenant_pipeline, Clock, ManualClock,
    RequestHook, Server, ServerConfig, TenantPolicy, TenantRegistry, TenantServer,
};

const REQUESTS: usize = 64;

fn build_pipeline() -> Arc<NliPipeline> {
    let db = retail_database(7);
    let mut ctx = SchemaContext::build(&db);
    ctx.graph = ctx
        .graph
        .clone()
        .with_cache(Arc::new(JoinPathCache::new(128)));
    Arc::new(NliPipeline::with_context(&db, ctx))
}

fn build_stream() -> Vec<RequestSpec> {
    let db = retail_database(7);
    let slots = derive_slots(&db);
    request_stream(&slots, 42, REQUESTS, 0.0)
}

fn bench_regime(
    c: &mut Criterion,
    name: &str,
    interp_cache: usize,
    hook: fn() -> Option<RequestHook>,
) {
    let pipeline = build_pipeline();
    let stream = build_stream();
    let mut group = c.benchmark_group(name);
    group
        .sample_size(10)
        .throughput(Throughput::Elements(REQUESTS as u64));
    for workers in [1usize, 2, 4] {
        let clock = Arc::new(ManualClock::new());
        let mut server = Server::start_with_hook(
            Arc::clone(&pipeline),
            ServerConfig {
                workers,
                queue_capacity: REQUESTS,
                interp_cache,
                service_estimate: 1,
                ..ServerConfig::default()
            },
            clock.clone() as Arc<dyn Clock>,
            hook(),
        );
        // Warm the caches so we measure steady-state serving.
        run_closed_loop(&mut server, &clock, &stream, REQUESTS);
        group.bench_function(BenchmarkId::from_parameter(workers), |b| {
            b.iter(|| {
                let report = run_closed_loop(&mut server, &clock, &stream, REQUESTS);
                assert_eq!(report.completions.len(), REQUESTS);
            })
        });
        server.shutdown();
    }
    group.finish();
}

fn serving_pure_cpu(c: &mut Criterion) {
    bench_regime(c, "b6-serving/pure-cpu", 256, || None);
    bench_regime(c, "b6-serving/pure-cpu-uncached", 0, || None);
}

fn serving_stall(c: &mut Criterion) {
    bench_regime(c, "b6-serving/stall-1ms", 0, || {
        Some(Box::new(|_ctx| {
            std::thread::sleep(Duration::from_millis(1));
            None
        }))
    });
}

fn serving_multi_tenant(c: &mut Criterion) {
    const TENANTS: usize = 3;
    let cache = Arc::new(JoinPathCache::new(256));
    let mut registry = TenantRegistry::new();
    let mut streams = Vec::with_capacity(TENANTS);
    for (i, name) in DOMAIN_NAMES.iter().take(TENANTS).enumerate() {
        let db = domain_database(name, 7 + i as u64);
        let slots = derive_slots(&db);
        let (fp, pipeline) = tenant_pipeline(&db, &cache);
        registry.register(*name, pipeline, TenantPolicy::default());
        let per_tenant = REQUESTS / TENANTS;
        streams.push((fp, request_stream(&slots, 42 + i as u64, per_tenant, 0.0)));
    }
    let stream = interleave_streams(42, streams);
    let mut group = c.benchmark_group("b6-serving/multi-tenant");
    group
        .sample_size(10)
        .throughput(Throughput::Elements(stream.len() as u64));
    for workers in [1usize, 2, 4] {
        let clock = Arc::new(ManualClock::new());
        let mut server = TenantServer::start(
            &registry,
            ServerConfig {
                workers,
                queue_capacity: REQUESTS,
                interp_cache: 256,
                service_estimate: 1,
                ..ServerConfig::default()
            },
            clock.clone() as Arc<dyn Clock>,
        );
        run_closed_loop_tenants(&mut server, &clock, &stream, REQUESTS);
        group.bench_function(BenchmarkId::from_parameter(workers), |b| {
            b.iter(|| {
                let report = run_closed_loop_tenants(&mut server, &clock, &stream, REQUESTS);
                assert_eq!(report.completions.len(), stream.len());
            })
        });
        server.shutdown();
    }
    group.finish();
}

fn serving_faulted(c: &mut Criterion) {
    bench_regime(c, "b6-serving/faulted", 0, || {
        // Periodic so the warm server's ever-increasing request ids
        // wrap onto the same 64-id schedule every replay.
        Some(fault_plan_hook(
            FaultPlan::seeded(42, REQUESTS as u64, &FaultRates::default())
                .periodic(REQUESTS as u64),
        ))
    });
}

criterion_group!(
    benches,
    serving_pure_cpu,
    serving_stall,
    serving_faulted,
    serving_multi_tenant
);
criterion_main!(benches);
