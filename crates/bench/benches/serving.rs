//! B6 — serving throughput scaling across worker counts.
//!
//! Two regimes per worker count (1, 2, 4), both replaying the same
//! seeded 64-request stream closed-loop through a warm server:
//!
//! * `pure-cpu` — interpretation work only. Scaling here is bounded by
//!   the number of hardware threads; on a single-core host the curve
//!   is flat (workers only add handoff overhead).
//! * `stall-1ms` — a 1 ms per-request stall injected through the
//!   server's request hook, standing in for the external-database
//!   round-trip a production NLIDB front-end waits on. Workers overlap
//!   stalls, so throughput scales with the pool even on one core —
//!   the latency-hiding case the serving runtime exists for.
//!
//! The stall uses wall-clock sleep *in the bench harness only*; the
//! serving library itself never reads a clock it wasn't given.

use std::sync::Arc;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use nlidb_benchdata::{derive_slots, request_stream, retail_database, RequestSpec};
use nlidb_core::pipeline::{NliPipeline, SchemaContext};
use nlidb_ontology::JoinPathCache;
use nlidb_serve::{run_closed_loop, Clock, ManualClock, RequestHook, Server, ServerConfig};

const REQUESTS: usize = 64;

fn build_pipeline() -> Arc<NliPipeline> {
    let db = retail_database(7);
    let mut ctx = SchemaContext::build(&db);
    ctx.graph = ctx
        .graph
        .clone()
        .with_cache(Arc::new(JoinPathCache::new(128)));
    Arc::new(NliPipeline::with_context(&db, ctx))
}

fn build_stream() -> Vec<RequestSpec> {
    let db = retail_database(7);
    let slots = derive_slots(&db);
    request_stream(&slots, 42, REQUESTS, 0.0)
}

fn bench_regime(c: &mut Criterion, name: &str, hook: fn() -> Option<RequestHook>) {
    let pipeline = build_pipeline();
    let stream = build_stream();
    let mut group = c.benchmark_group(name);
    group
        .sample_size(10)
        .throughput(Throughput::Elements(REQUESTS as u64));
    for workers in [1usize, 2, 4] {
        let clock = Arc::new(ManualClock::new());
        let mut server = Server::start_with_hook(
            Arc::clone(&pipeline),
            ServerConfig {
                workers,
                queue_capacity: REQUESTS,
                interp_cache: 256,
                service_estimate: 1,
            },
            clock.clone() as Arc<dyn Clock>,
            hook(),
        );
        // Warm the caches so we measure steady-state serving.
        run_closed_loop(&mut server, &clock, &stream, REQUESTS);
        group.bench_function(BenchmarkId::from_parameter(workers), |b| {
            b.iter(|| {
                let report = run_closed_loop(&mut server, &clock, &stream, REQUESTS);
                assert_eq!(report.completions.len(), REQUESTS);
            })
        });
        server.shutdown();
    }
    group.finish();
}

fn serving_pure_cpu(c: &mut Criterion) {
    bench_regime(c, "b6-serving/pure-cpu", || None);
}

fn serving_stall(c: &mut Criterion) {
    bench_regime(c, "b6-serving/stall-1ms", || {
        Some(Box::new(|| std::thread::sleep(Duration::from_millis(1))))
    });
}

criterion_group!(benches, serving_pure_cpu, serving_stall);
criterion_main!(benches);
