//! B5 — training cost of the learned components: the neural sketch
//! model, the QUEST-style HMM tagger (trained inside the hybrid), and
//! the bootstrap intent classifier. The §4.2 data-hunger claim has a
//! cost side too: every domain re-train is paid in wall-clock.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use nlidb_bench::workloads::training_examples;
use nlidb_benchdata::{derive_slots, retail_database};
use nlidb_core::hybrid::HybridInterpreter;
use nlidb_core::neural::NeuralInterpreter;
use nlidb_core::pipeline::SchemaContext;
use nlidb_dialogue::{bootstrap_from_ontology, IntentClassifier};

fn bench_training(c: &mut Criterion) {
    let db = retail_database(42);
    let slots = derive_slots(&db);
    let ctx = SchemaContext::build(&db);

    let mut group = c.benchmark_group("training");
    group.sample_size(10);
    for &n in &[50usize, 200] {
        let examples = training_examples(&slots, 7, n, &[0, 1, 2, 3]);
        group.bench_with_input(BenchmarkId::new("neural", n), &examples, |b, examples| {
            b.iter(|| std::hint::black_box(NeuralInterpreter::train(examples, &ctx, 9)))
        });
        group.bench_with_input(BenchmarkId::new("hybrid", n), &examples, |b, examples| {
            b.iter(|| {
                let mut h = HybridInterpreter::new();
                h.train(examples, &ctx, 9);
                std::hint::black_box(h.has_neural())
            })
        });
    }
    let artifacts = bootstrap_from_ontology(&db, &ctx);
    group.bench_function("intent-classifier", |b| {
        b.iter(|| std::hint::black_box(IntentClassifier::train(&artifacts, 9)))
    });
    group.bench_function("schema-context-build", |b| {
        b.iter(|| std::hint::black_box(SchemaContext::build(&db)))
    });
    group.finish();
}

criterion_group!(benches, bench_training);
criterion_main!(benches);
