//! The soak trajectory binary.
//!
//! Runs every soak shape (see [`nlidb_bench::SOAK_SHAPES`]) open-loop
//! at a configurable request count and appends one JSON line — the
//! run's throughput/latency trajectory — to `BENCH_soak.json`:
//!
//! ```text
//! soak                                  # 10⁵ requests, seed 42, append to BENCH_soak.json
//! soak --requests 10000                 # the CI smoke scale
//! soak --seed 7 --out /tmp/soak.json    # elsewhere
//! soak --git "$(git describe --always)" # stamp the producing commit
//! ```
//!
//! The emitted line is `{"schema":"nlidb-soak-v1","index":i,...}` with
//! `index` = the number of lines already in the file — so the file is
//! an append-only, strictly-indexed trajectory that
//! `scripts/check_bench_json.py` validates. Provenance (`git`) is
//! passed in by the caller: library code takes no wall-clock and runs
//! no subprocesses, so the binary does not either.

use std::env;
use std::io::Write;

fn usage() -> ! {
    eprintln!(
        "usage: soak [--seed N] [--requests N] [--out PATH] [--git DESCRIBE]\n\
         appends one nlidb-soak-v1 JSON line per invocation"
    );
    std::process::exit(2);
}

fn parse<T: std::str::FromStr>(flag: &str, raw: Option<&String>) -> T {
    let Some(raw) = raw else {
        eprintln!("{flag} requires a value");
        usage();
    };
    match raw.parse() {
        Ok(v) => v,
        Err(_) => {
            eprintln!("{flag}: bad value {raw:?}");
            usage();
        }
    }
}

fn main() {
    let args: Vec<String> = env::args().skip(1).collect();
    let mut seed = 42u64;
    let mut requests = 100_000usize;
    let mut out = String::from("BENCH_soak.json");
    let mut git = String::from("unstamped");
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--seed" => seed = parse("--seed", args.get(i + 1)),
            "--requests" => requests = parse("--requests", args.get(i + 1)),
            "--out" => out = parse("--out", args.get(i + 1)),
            "--git" => git = parse("--git", args.get(i + 1)),
            other => {
                eprintln!("unknown argument: {other}");
                usage();
            }
        }
        i += 2;
    }
    if requests == 0 {
        eprintln!("--requests wants at least 1");
        usage();
    }

    let mut shapes = Vec::new();
    for shape in nlidb_bench::SOAK_SHAPES {
        let start = std::time::Instant::now();
        let outcome = nlidb_bench::run_soak_shape(shape, seed, requests);
        eprintln!(
            "[{shape}: {requests} requests in {:.1}s] {}",
            start.elapsed().as_secs_f64(),
            outcome.summary_line()
        );
        shapes.push(outcome.json());
    }

    // index = lines already present, so indices are strictly
    // increasing across appends and 0 on a fresh file.
    let index = std::fs::read_to_string(&out)
        .map(|s| s.lines().filter(|l| !l.trim().is_empty()).count())
        .unwrap_or(0);
    let line = format!(
        "{{\"schema\":\"nlidb-soak-v1\",\"index\":{index},\"seed\":{seed},\
         \"requests\":{requests},\"git\":\"{git}\",\"shapes\":[{}]}}\n",
        shapes.join(",")
    );
    let mut file = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&out)
        .unwrap_or_else(|e| panic!("cannot open {out}: {e}"));
    file.write_all(line.as_bytes())
        .unwrap_or_else(|e| panic!("cannot append to {out}: {e}"));
    println!(
        "appended trajectory line {index} ({} shapes) to {out}",
        nlidb_bench::SOAK_SHAPES.len()
    );
}
