//! Render the perf-drift baseline: per-stage profiles, the
//! clean-vs-faulted diff, the full metric/counter export for the
//! seeded retail stream, the engine's row-vs-batch tick totals per
//! complexity rung, and execute-span cost bucketed by plan shape —
//! every number a logical-tick cost, so the output is a pure function
//! of the seed and `scripts/check_perf_drift.py` can compare it
//! byte-for-byte against `scripts/perf_baseline_seed42.txt`. Any
//! mismatch is a semantic change in pipeline work, never noise.
//!
//! ```text
//! cargo run --release -p nlidb-bench --bin perfgate            # seed 42
//! cargo run --release -p nlidb-bench --bin perfgate -- --seed 7
//! ```

use std::env;
use std::process::exit;

use nlidb_bench::experiments::{engine_corpus_pass, faulted_regime_plan, traced_serve_run};
use nlidb_benchdata::FaultPlan;
use nlidb_obs::{attr_cost_breakdown, Profile, ProfileDiff};
use nlidb_sqlir::ComplexityClass;

const N: usize = 120;

fn main() {
    let args: Vec<String> = env::args().skip(1).collect();
    let seed = match args.as_slice() {
        [] => 42,
        [flag, value] if flag == "--seed" => value.parse().unwrap_or_else(|_| {
            eprintln!("--seed wants an integer, got {value:?}");
            exit(2);
        }),
        _ => {
            eprintln!("usage: perfgate [--seed <u64>]");
            exit(2);
        }
    };

    let plan = faulted_regime_plan(seed, N);
    let (_, c_m, c_obs) = traced_serve_run(seed, N, FaultPlan::none());
    let (_, f_m, f_obs) = traced_serve_run(seed, N, plan);
    let clean = Profile::from_traces(&c_obs.sink.traces());
    let faulted = Profile::from_traces(&f_obs.sink.traces());
    c_m.export_into(&c_obs.registry);
    f_m.export_into(&f_obs.registry);

    let engine = engine_corpus_pass(seed);
    let mut engine_text = String::new();
    for (k, class) in ComplexityClass::all().iter().enumerate() {
        engine_text.push_str(&format!(
            "rung {} queries={} row={} batch={}\n",
            class.label(),
            engine.queries[k],
            engine.row_ticks[k],
            engine.batch_ticks[k]
        ));
    }
    let mut shape_text = String::new();
    for bucket in attr_cost_breakdown(&c_obs.sink.traces(), "execute", "plan_shape") {
        shape_text.push_str(&bucket.export_line());
    }

    print!(
        "perfgate seed={seed} n={N}\n\
         == profile clean ==\n{}\
         == profile faulted ==\n{}\
         == diff faulted-clean ==\n{}\
         == metrics clean ==\n{}\
         == metrics faulted ==\n{}\
         == engine row-vs-batch ==\n{engine_text}\
         == execute cost by plan shape ==\n{shape_text}",
        clean.export_text(),
        faulted.export_text(),
        ProfileDiff::between(&clean, &faulted).export_text(),
        c_obs.registry.report().export_text(),
        f_obs.registry.report().export_text()
    );
}
