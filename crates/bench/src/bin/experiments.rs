//! The reproduction harness CLI.
//!
//! ```text
//! experiments                 # run all of E1–E20
//! experiments --exp e2        # run one experiment
//! experiments --seed 7        # change the global seed
//! experiments --exp e17 --tenants 3   # scale the multi-tenant regime
//! experiments --exp e20 --soak-requests 10000   # scale the soak regimes
//! experiments --list          # list experiment ids and descriptions
//! ```
//!
//! Bad arguments fail fast at parse time with one-line errors — a
//! typo'd `--seed` must never silently fall back to the default and
//! masquerade as the canonical run.

use std::env;

fn usage_hint() -> ! {
    eprintln!("run `experiments --list` for the known experiment ids");
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = env::args().skip(1).collect();
    let mut seed = 42u64;
    let mut only: Option<String> = None;
    let mut tenants: Option<usize> = None;
    let mut soak_requests: Option<usize> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--seed" => {
                let Some(raw) = args.get(i + 1) else {
                    eprintln!("--seed requires a value");
                    usage_hint();
                };
                seed = match raw.parse() {
                    Ok(s) => s,
                    Err(_) => {
                        eprintln!("--seed wants an unsigned integer, got {raw:?}");
                        usage_hint();
                    }
                };
                i += 2;
            }
            "--exp" => {
                let Some(id) = args.get(i + 1) else {
                    eprintln!("--exp requires an experiment id");
                    usage_hint();
                };
                if !nlidb_bench::EXPERIMENT_IDS.contains(&id.as_str()) {
                    eprintln!("unknown experiment id: {id}");
                    usage_hint();
                }
                only = Some(id.clone());
                i += 2;
            }
            "--tenants" => {
                let Some(raw) = args.get(i + 1) else {
                    eprintln!("--tenants requires a value");
                    usage_hint();
                };
                tenants = match raw.parse::<usize>() {
                    Ok(n) if (2..=6).contains(&n) => Some(n),
                    Ok(n) => {
                        eprintln!("--tenants wants 2..=6 (the benchdata domains), got {n}");
                        usage_hint();
                    }
                    Err(_) => {
                        eprintln!("--tenants wants an integer in 2..=6, got {raw:?}");
                        usage_hint();
                    }
                };
                i += 2;
            }
            "--soak-requests" => {
                let Some(raw) = args.get(i + 1) else {
                    eprintln!("--soak-requests requires a value");
                    usage_hint();
                };
                soak_requests = match raw.parse::<usize>() {
                    Ok(n) if n >= 1000 => Some(n),
                    Ok(n) => {
                        eprintln!(
                            "--soak-requests wants at least 1000 (the overload regime needs \
                             enough windows to open episodes), got {n}"
                        );
                        usage_hint();
                    }
                    Err(_) => {
                        eprintln!("--soak-requests wants an unsigned integer, got {raw:?}");
                        usage_hint();
                    }
                };
                i += 2;
            }
            "--list" => {
                for (id, summary) in nlidb_bench::EXPERIMENT_SUMMARIES {
                    println!("{id:>4}  {summary}");
                }
                return;
            }
            other => {
                eprintln!("unknown argument: {other}");
                usage_hint();
            }
        }
    }
    if tenants.is_some() && only.as_deref() != Some("e17") {
        eprintln!("--tenants only applies to the multi-tenant experiment: pair it with --exp e17");
        usage_hint();
    }
    if soak_requests.is_some() && only.as_deref() != Some("e20") {
        eprintln!("--soak-requests only applies to the soak experiment: pair it with --exp e20");
        usage_hint();
    }
    let ids: Vec<&str> = match &only {
        Some(id) => vec![id.as_str()],
        None => nlidb_bench::EXPERIMENT_IDS.to_vec(),
    };
    println!("nlidb reproduction harness (seed {seed})");
    println!("paper: Özcan et al., \"State of the Art and Open Challenges in Natural");
    println!("Language Interfaces to Data\", SIGMOD 2020 — see EXPERIMENTS.md\n");
    for id in ids {
        let start = std::time::Instant::now();
        let table = match (tenants, soak_requests) {
            (Some(n), _) => nlidb_bench::e17_multi_tenant_with(seed, n),
            (_, Some(n)) => nlidb_bench::e20_soak_with(seed, n),
            (None, None) => nlidb_bench::run_experiment(id, seed)
                .expect("ids are validated at parse time and EXPERIMENT_IDS is exhaustive"),
        };
        println!("{table}");
        println!(
            "[{id} completed in {:.1}s]\n",
            start.elapsed().as_secs_f64()
        );
    }
}
