//! The reproduction harness CLI.
//!
//! ```text
//! experiments                 # run all of E1–E14
//! experiments --exp e2        # run one experiment
//! experiments --seed 7        # change the global seed
//! experiments --list          # list experiment ids and descriptions
//! ```

use std::env;

fn main() {
    let args: Vec<String> = env::args().skip(1).collect();
    let mut seed = 42u64;
    let mut only: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--seed" => {
                seed = args.get(i + 1).and_then(|s| s.parse().ok()).unwrap_or(42);
                i += 2;
            }
            "--exp" => {
                only = args.get(i + 1).cloned();
                i += 2;
            }
            "--list" => {
                for (id, summary) in nlidb_bench::EXPERIMENT_SUMMARIES {
                    println!("{id:>4}  {summary}");
                }
                return;
            }
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
    }
    let ids: Vec<&str> = match &only {
        Some(id) => vec![id.as_str()],
        None => nlidb_bench::EXPERIMENT_IDS.to_vec(),
    };
    println!("nlidb reproduction harness (seed {seed})");
    println!("paper: Özcan et al., \"State of the Art and Open Challenges in Natural");
    println!("Language Interfaces to Data\", SIGMOD 2020 — see EXPERIMENTS.md\n");
    for id in ids {
        let start = std::time::Instant::now();
        match nlidb_bench::run_experiment(id, seed) {
            Some(table) => {
                println!("{table}");
                println!(
                    "[{id} completed in {:.1}s]\n",
                    start.elapsed().as_secs_f64()
                );
            }
            None => {
                eprintln!(
                    "unknown experiment id: {id} (known: {:?})",
                    nlidb_bench::EXPERIMENT_IDS
                );
                std::process::exit(2);
            }
        }
    }
}
