//! Diagnostic: per-complexity-class execution accuracy of the entity
//! interpreter over every domain's canonical Spider-like suite.
//! Pass `-v` to print each miss with the gold and produced SQL.
//!
//! ```text
//! cargo run -p nlidb-bench --bin probe [-- -v]
//! ```

use nlidb_benchdata::{derive_slots, spider_like};
use nlidb_core::entity::EntityInterpreter;
use nlidb_core::{pipeline::SchemaContext, Interpreter};
use nlidb_evalkit::execution_match;
use std::collections::HashMap;

fn main() {
    let mut per_class: HashMap<String, (usize, usize)> = HashMap::new();
    for db in nlidb_benchdata::all_domains(42) {
        let slots = derive_slots(&db);
        let ctx = SchemaContext::build(&db);
        let suite = spider_like(&slots, 7, 48);
        for pair in suite {
            let e = per_class.entry(pair.class.label().to_string()).or_default();
            e.1 += 1;
            let pred = EntityInterpreter::new().best(&pair.question, &ctx);
            let ok = pred
                .as_ref()
                .map(|p| execution_match(&db, &pair.sql, &p.sql))
                .unwrap_or(false);
            if ok {
                e.0 += 1;
            } else if std::env::args().nth(1).as_deref() == Some("-v") {
                println!("MISS [{}] {} :: {}", pair.id, pair.question, pair.sql);
                match &pred {
                    Some(p) => println!("   got: {}", p.sql),
                    None => println!("   got: (none)"),
                }
            }
        }
    }
    let mut keys: Vec<_> = per_class.keys().cloned().collect();
    keys.sort();
    for k in keys {
        let (c, t) = per_class[&k];
        println!("{k}: {c}/{t}");
    }
}
