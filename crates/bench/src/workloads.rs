//! Shared workload construction for experiments and benches.

use nlidb_benchdata::{derive_slots, domain_database, paraphrase, wikisql_like, QaPair, SlotSet};
use nlidb_core::interpretation::InterpreterKind;
use nlidb_core::neural::TrainingExample;
use nlidb_core::pipeline::NliPipeline;
use nlidb_engine::Database;
use nlidb_evalkit::{execution_match, EvalOutcome};
use nlidb_nlp::Lexicon;

/// A fully assembled domain: database + slots + trained pipeline.
pub struct DomainSetup {
    /// The database.
    pub db: Database,
    /// Derived template slots.
    pub slots: SlotSet,
    /// Pipeline with trained neural/hybrid models.
    pub pipeline: NliPipeline,
}

/// Build (question, gold) training pairs from the WikiSQL-like
/// generator, paraphrased at the given levels (cycled) so the learned
/// models see lexical variation.
pub fn training_examples(
    slots: &SlotSet,
    seed: u64,
    n: usize,
    levels: &[u8],
) -> Vec<TrainingExample> {
    let lexicon = Lexicon::business_default();
    wikisql_like(slots, seed, n)
        .into_iter()
        .enumerate()
        .map(|(i, p)| {
            let level = if levels.is_empty() {
                0
            } else {
                levels[i % levels.len()]
            };
            TrainingExample {
                question: paraphrase(
                    &p.question,
                    &p.protected,
                    level,
                    &lexicon,
                    seed ^ (i as u64).wrapping_mul(0x9e3779b97f4a7c15),
                ),
                sql: p.sql,
            }
        })
        .collect()
}

/// Build one domain with a pipeline trained on `train_n` paraphrased
/// examples (levels 0–3 cycled). `train_n == 0` leaves the learned
/// models untrained.
pub fn setup_domain(name: &str, seed: u64, train_n: usize) -> DomainSetup {
    let db = domain_database(name, seed);
    let slots = derive_slots(&db);
    let mut pipeline = NliPipeline::standard(&db);
    if train_n > 0 {
        let train = training_examples(&slots, seed.wrapping_add(101), train_n, &[0, 1, 2, 3]);
        pipeline.train_neural(&train, seed.wrapping_add(202));
    }
    DomainSetup {
        db,
        slots,
        pipeline,
    }
}

/// Paraphrase an evaluation suite at a fixed level.
pub fn paraphrased(pairs: &[QaPair], level: u8, seed: u64) -> Vec<QaPair> {
    let lexicon = Lexicon::business_default();
    pairs
        .iter()
        .enumerate()
        .map(|(i, p)| {
            let mut q = p.clone();
            q.question = paraphrase(
                &p.question,
                &p.protected,
                level,
                &lexicon,
                seed ^ (i as u64).wrapping_mul(0x2545f4914f6cdd1d),
            );
            q
        })
        .collect()
}

/// Evaluate one interpreter family on a suite (execution accuracy).
pub fn evaluate(setup: &DomainSetup, kind: InterpreterKind, suite: &[QaPair]) -> EvalOutcome {
    let mut out = EvalOutcome::default();
    for pair in suite {
        let pred = setup
            .pipeline
            .interpreter(kind)
            .best(&pair.question, setup.pipeline.context());
        match pred {
            Some(p) => {
                let ok = execution_match(&setup.db, &pair.sql, &p.sql);
                out.record(true, ok);
            }
            None => out.record(false, false),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use nlidb_benchdata::spider_like;
    use nlidb_sqlir::ComplexityClass;

    #[test]
    fn setup_trains_models() {
        let s = setup_domain("retail", 5, 60);
        let out = evaluate(&s, InterpreterKind::Entity, &spider_like(&s.slots, 77, 12));
        assert!(out.total == 12);
        assert!(out.recall() > 0.5, "{out}");
    }

    #[test]
    fn untrained_neural_answers_nothing() {
        let s = setup_domain("retail", 5, 0);
        let suite = spider_like(&s.slots, 77, 8);
        let out = evaluate(&s, InterpreterKind::Neural, &suite);
        assert_eq!(out.answered, 0);
    }

    #[test]
    fn training_examples_are_paraphrase_mixed() {
        let db = domain_database("retail", 5);
        let slots = derive_slots(&db);
        let canonical = training_examples(&slots, 9, 40, &[0]);
        let mixed = training_examples(&slots, 9, 40, &[3]);
        let differing = canonical
            .iter()
            .zip(&mixed)
            .filter(|(a, b)| a.question != b.question)
            .count();
        assert!(
            differing > 20,
            "level-3 paraphrase must alter most questions"
        );
    }

    #[test]
    fn paraphrased_preserves_gold() {
        let db = domain_database("retail", 5);
        let slots = derive_slots(&db);
        let suite = spider_like(&slots, 3, 10);
        let para = paraphrased(&suite, 2, 4);
        for (a, b) in suite.iter().zip(&para) {
            assert_eq!(a.sql, b.sql);
            assert_eq!(a.class, b.class);
        }
        assert!(para
            .iter()
            .all(|p| ComplexityClass::all().contains(&p.class)));
    }
}
