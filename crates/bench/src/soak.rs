//! Shared soak regimes: the load shapes and open-loop schedules that
//! E20 and the `soak` binary both drive.
//!
//! Each regime pairs one seeded load shape from [`nlidb_benchdata`]'s
//! soak generators (zipfian-skewed popularity, flash-crowd bursts,
//! long CoSQL-shaped sessions, tenant-skewed mixes, deliberate
//! overload) with a fixed open-loop schedule, and returns the
//! streaming [`SoakReport`] plus the server's final metrics and the
//! health hub's per-window throughput / p99 / burn-rate series. The
//! stream is handed to the driver as a lazy iterator and completions
//! fold as they drain, so a regime's memory footprint is independent
//! of `n` — the property E20 exists to keep honest at 10⁵ requests.

use std::sync::Arc;

use nlidb_benchdata::{derive_slots, domain_database, DOMAIN_NAMES};
use nlidb_core::pipeline::NliPipeline;
use nlidb_ontology::JoinPathCache;
use nlidb_serve::{
    run_open_loop, run_open_loop_tenants, tenant_pipeline, Clock, HealthConfig, ManualClock,
    MetricsSnapshot, OpenLoopConfig, OverloadPolicy, ServeObs, Server, ServerConfig, SoakReport,
    TenantPolicy, TenantRegistry, TenantServer, WindowSample,
};

/// The soak shapes, in run order. `overload` is the robustness
/// regime: its schedule outruns the watermark on purpose.
pub const SOAK_SHAPES: [&str; 5] = [
    "zipfian",
    "flash-crowd",
    "long-session",
    "tenant-skew",
    "overload",
];

/// The question-pool size every single-tenant shape draws from.
const POOL: usize = 32;

/// The overload regime's watermark policy: the open-loop window
/// (12 arrivals × 4 ticks = 48 outstanding) crosses `high_watermark`
/// mid-window every window, and every drain empties the ledger past
/// `low_watermark`, so episodes provably open *and* close.
/// `cost_threshold: 0` makes every learned plan "expensive" — the
/// shed-first set is exactly the repeats whose cost the server has
/// already measured.
pub const OVERLOAD_POLICY: OverloadPolicy = OverloadPolicy {
    high_watermark: 24,
    low_watermark: 8,
    cost_threshold: 0,
    early_warning: None,
};

/// The overload regime's schedule (also used by the prefix audit).
pub const OVERLOAD_SCHEDULE: OpenLoopConfig = OpenLoopConfig {
    arrivals_per_tick: 12,
    drain_every: 4,
};

/// Everything one soak regime produced.
#[derive(Debug)]
pub struct SoakOutcome {
    /// Which of [`SOAK_SHAPES`] ran.
    pub shape: &'static str,
    /// The streaming open-loop report.
    pub report: SoakReport,
    /// The server's final metrics snapshot.
    pub metrics: MetricsSnapshot,
    /// `(traces stored, traces sampled out)` when the regime ran with
    /// a sampling [`ServeObs`] attached (the zipfian shape does, to
    /// keep the bounded-span claim measured, not assumed).
    pub spans: Option<(usize, u64)>,
    /// Per-window health series from the regime's [`HealthHub`]
    /// (merged over tenants): served count, p99 sojourn, availability
    /// burn per fixed-width logical-tick window. Every shape runs with
    /// a health hub attached; the hub observes drains only, so the
    /// report and metrics are byte-identical to an unobserved run.
    ///
    /// [`HealthHub`]: nlidb_serve::HealthHub
    pub windows: Vec<WindowSample>,
}

impl SoakOutcome {
    /// One canonical line — the [`SoakReport`] summary extended with
    /// the overload counters (and span retention when observed). E20
    /// byte-compares exactly this across paired runs.
    pub fn summary_line(&self) -> String {
        let mut line = format!(
            "{}: {} shed_overload={} entered={} recovered={} shed_full={} shed_cost={}",
            self.shape,
            self.report.summary_line(),
            self.metrics.shed_overload,
            self.metrics.overload_entered,
            self.metrics.overload_recovered,
            self.metrics.shed_full,
            self.metrics.shed_cost,
        );
        if let Some((stored, sampled_out)) = self.spans {
            line.push_str(&format!(" spans={stored} sampled_out={sampled_out}"));
        }
        let burn_max = self.windows.iter().map(|w| w.burn_milli).max().unwrap_or(0);
        line.push_str(&format!(
            " windows={} burn_max={burn_max}",
            self.windows.len()
        ));
        line
    }

    /// The outcome as one JSON object (hand-rendered: every value is
    /// an integer or a fixed-width hex string, so the encoding is
    /// trivially canonical). `scripts/check_bench_json.py` validates
    /// this schema.
    pub fn json(&self) -> String {
        let r = &self.report;
        let served = r.served();
        let p = |q: f64| r.latency.percentile(q).unwrap_or(0);
        let windows: Vec<String> = self
            .windows
            .iter()
            .map(|w| {
                format!(
                    "{{\"index\":{},\"served\":{},\"p99\":{},\"burn_milli\":{}}}",
                    w.index, w.served, w.p99, w.burn_milli
                )
            })
            .collect();
        format!(
            "{{\"shape\":\"{}\",\"requests\":{},\"served\":{},\"answered\":{},\"session\":{},\
             \"degraded\":{},\"refused\":{},\"shed\":{},\"deadline\":{},\"drains\":{},\
             \"ticks\":{},\"p50\":{},\"p95\":{},\"p99\":{},\"served_per_kilotick\":{},\
             \"shed_overload\":{},\"overload_entered\":{},\"overload_recovered\":{},\
             \"digest\":\"{:016x}\",\"windows\":[{}]}}",
            self.shape,
            r.requests,
            served,
            r.answered,
            r.session_replies,
            r.degraded,
            r.refused,
            r.shed,
            r.deadline_exceeded,
            r.drains,
            r.ticks,
            p(50.0),
            p(95.0),
            p(99.0),
            served * 1000 / r.ticks.max(1),
            self.metrics.shed_overload,
            self.metrics.overload_entered,
            self.metrics.overload_recovered,
            r.signature_digest(),
            windows.join(","),
        )
    }
}

/// A retail-domain server for the single-tenant shapes (also E21's
/// overload regime).
pub(crate) fn retail_server(
    seed: u64,
    overload: Option<OverloadPolicy>,
    obs: Option<ServeObs>,
) -> (Server, Arc<ManualClock>) {
    let db = domain_database("retail", seed);
    let pipeline = Arc::new(NliPipeline::standard(&db));
    let clock = Arc::new(ManualClock::new());
    let server = Server::start_observed(
        pipeline,
        ServerConfig {
            workers: 4,
            queue_capacity: 4096,
            interp_cache: 256,
            service_estimate: 1,
            overload,
            ..ServerConfig::default()
        },
        clock.clone() as Arc<dyn Clock>,
        None,
        obs,
    );
    (server, clock)
}

/// The retail question pool every single-tenant shape draws from.
pub fn retail_pool(seed: u64) -> Vec<String> {
    let db = domain_database("retail", seed);
    let slots = derive_slots(&db);
    nlidb_benchdata::question_pool(&slots, seed, POOL)
}

/// Run one soak shape (a name from [`SOAK_SHAPES`]) for `n` requests
/// at `seed`.
///
/// # Panics
///
/// On an unknown shape name — the binaries validate names at parse
/// time.
pub fn run_soak_shape(shape: &str, seed: u64, n: usize) -> SoakOutcome {
    // Every shape runs with a sampling + health-tracking ServeObs:
    // span memory stays at the sink capacity no matter how long the
    // run is, and the health hub folds every drained completion into
    // its windowed scopes (bounded by the ring, not the stream).
    let obs = ServeObs::with_health(64, 1024, HealthConfig::default());
    let hub = obs.health.clone().expect("with_health attaches a hub");
    match shape {
        "zipfian" => {
            let (mut server, clock) = retail_server(seed, None, Some(obs.clone()));
            let stream = nlidb_benchdata::zipfian_stream(retail_pool(seed), seed, n, 1.2);
            let report = run_open_loop(
                &mut server,
                &clock,
                stream,
                OpenLoopConfig {
                    arrivals_per_tick: 8,
                    drain_every: 4,
                },
            );
            let metrics = server.shutdown();
            SoakOutcome {
                shape: "zipfian",
                report,
                metrics,
                spans: Some((obs.sink.len(), obs.sink.sampled_out())),
                windows: hub.window_series(),
            }
        }
        "flash-crowd" => {
            let (mut server, clock) = retail_server(seed, None, Some(obs.clone()));
            let stream = nlidb_benchdata::flash_crowd_stream(retail_pool(seed), seed, n, 50, 10);
            let report = run_open_loop(
                &mut server,
                &clock,
                stream,
                OpenLoopConfig {
                    arrivals_per_tick: 8,
                    drain_every: 4,
                },
            );
            let metrics = server.shutdown();
            SoakOutcome {
                shape: "flash-crowd",
                report,
                metrics,
                spans: None,
                windows: hub.window_series(),
            }
        }
        "long-session" => {
            // Dialogue turns execute the full pipeline every turn —
            // caching a turn is off the table because session state
            // must advance — so this shape is ~100× the per-request
            // cost of the cached singles shapes. It runs at a tenth
            // of the headline scale to keep the harness fast; the
            // bounded-memory property it guards is scale-free.
            let n = (n / 10).max(1);
            let db = domain_database("retail", seed);
            let slots = derive_slots(&db);
            let (mut server, clock) = retail_server(seed, None, Some(obs.clone()));
            let stream = nlidb_benchdata::long_session_stream(&slots, seed, n, 8, 6);
            let report = run_open_loop(
                &mut server,
                &clock,
                stream,
                OpenLoopConfig {
                    arrivals_per_tick: 4,
                    drain_every: 2,
                },
            );
            let metrics = server.shutdown();
            SoakOutcome {
                shape: "long-session",
                report,
                metrics,
                spans: None,
                windows: hub.window_series(),
            }
        }
        "tenant-skew" => {
            let cache = Arc::new(JoinPathCache::new(256));
            let mut registry = TenantRegistry::new();
            let mut tenants = Vec::new();
            for (i, name) in DOMAIN_NAMES.iter().take(3).enumerate() {
                let db = domain_database(name, seed.wrapping_add(i as u64));
                let slots = derive_slots(&db);
                let (fp, pipeline) = tenant_pipeline(&db, &cache);
                registry.register(*name, pipeline, TenantPolicy::default());
                tenants.push((
                    fp,
                    nlidb_benchdata::question_pool(&slots, seed.wrapping_add(i as u64), 16),
                ));
            }
            let clock = Arc::new(ManualClock::new());
            let mut server = TenantServer::start_observed(
                &registry,
                ServerConfig {
                    workers: 4,
                    queue_capacity: 4096,
                    interp_cache: 256,
                    service_estimate: 1,
                    ..ServerConfig::default()
                },
                clock.clone() as Arc<dyn Clock>,
                None,
                Some(obs.clone()),
            );
            let stream = nlidb_benchdata::tenant_skew_stream(tenants, seed, n, 1.5);
            let report = run_open_loop_tenants(
                &mut server,
                &clock,
                stream,
                OpenLoopConfig {
                    arrivals_per_tick: 8,
                    drain_every: 4,
                },
            );
            let metrics = server.shutdown();
            SoakOutcome {
                shape: "tenant-skew",
                report,
                metrics,
                spans: None,
                windows: hub.window_series(),
            }
        }
        "overload" => {
            let (mut server, clock) = retail_server(seed, Some(OVERLOAD_POLICY), Some(obs.clone()));
            let stream = nlidb_benchdata::zipfian_stream(retail_pool(seed), seed, n, 1.0);
            let report = run_open_loop(&mut server, &clock, stream, OVERLOAD_SCHEDULE);
            let metrics = server.shutdown();
            SoakOutcome {
                shape: "overload",
                report,
                metrics,
                spans: None,
                windows: hub.window_series(),
            }
        }
        other => panic!("unknown soak shape {other:?} (see SOAK_SHAPES)"),
    }
}

/// The E20 overload-fidelity audit: replay the overload regime's
/// exact schedule while recording, per request id, the signature of
/// every *served* completion — then compare each against an unloaded
/// closed-loop oracle over the same stream. Returns
/// `(served, shed, n)` after asserting that the served set is a
/// signature-identical subset of the oracle (overload degrades *which*
/// requests get answered, never *what* an answered request says).
pub fn overload_prefix_audit(seed: u64, n: usize) -> (usize, usize, usize) {
    let (served, shed, n, _) = overload_audit_observed(seed, n, OVERLOAD_POLICY, None);
    (served, shed, n)
}

/// [`overload_prefix_audit`] parameterized over the overload policy
/// and an optional [`ServeObs`] attached to the audited (loaded)
/// server. E21 uses it to audit the `early_warning` regime: with a
/// health hub attached and a burn threshold set, episodes open below
/// the watermark — and the served subset must *still* be
/// signature-identical to the unloaded oracle. Returns
/// `(served, shed, n, final metrics of the loaded server)`.
pub fn overload_audit_observed(
    seed: u64,
    n: usize,
    policy: OverloadPolicy,
    obs: Option<ServeObs>,
) -> (usize, usize, usize, MetricsSnapshot) {
    use nlidb_serve::{run_closed_loop, Disposition};

    let stream: Vec<_> = nlidb_benchdata::zipfian_stream(retail_pool(seed), seed, n, 1.0).collect();

    // The oracle: every request answered, no overload policy.
    let (mut server, clock) = retail_server(seed, None, None);
    let oracle = run_closed_loop(&mut server, &clock, &stream, 32);
    server.shutdown();
    assert_eq!(oracle.completions.len(), n, "oracle serves everything");
    let mut oracle_sig = vec![0u64; n];
    for c in &oracle.completions {
        assert!(
            matches!(c.disposition, Disposition::Answered { .. }),
            "oracle run must answer every request, got {}",
            c.signature()
        );
        oracle_sig[c.id as usize] = sig_digest(&c.signature());
    }

    // The audit: the regime's schedule, drains inspected in place.
    let (mut server, clock) = retail_server(seed, Some(policy), obs);
    let arrivals = OVERLOAD_SCHEDULE.arrivals_per_tick;
    let drain_every = OVERLOAD_SCHEDULE.drain_every;
    let (mut served, mut shed) = (0usize, 0usize);
    let mut check = |completions: Vec<nlidb_serve::Completion>| {
        for c in completions {
            match c.disposition {
                Disposition::Answered { .. } => {
                    assert_eq!(
                        sig_digest(&c.signature()),
                        oracle_sig[c.id as usize],
                        "request {} diverged from the unloaded oracle",
                        c.id
                    );
                    served += 1;
                }
                Disposition::Shed => shed += 1,
                ref other => panic!("unexpected disposition in audit: {other:?}"),
            }
        }
    };
    let mut next = 0usize;
    let mut since_drain = 0u64;
    while next < n {
        for spec in stream.iter().skip(next).take(arrivals) {
            server.submit(spec);
        }
        next += arrivals.min(n - next);
        clock.advance(1);
        since_drain += 1;
        if since_drain >= drain_every {
            check(server.drain());
            since_drain = 0;
        }
    }
    check(server.drain());
    let metrics = server.shutdown();
    assert_eq!(served + shed, n, "audit accounts for every request");
    assert!(shed > 0, "the overload schedule must actually shed");
    (served, shed, n, metrics)
}

/// FNV-1a of one signature string.
fn sig_digest(signature: &str) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in signature.as_bytes() {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x100_0000_01b3);
    }
    hash
}
