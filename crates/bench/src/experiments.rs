//! The reproduction experiments E1–E21 (see `EXPERIMENTS.md`).
//!
//! The paper is a tutorial: it publishes claims, not tables. Each
//! experiment here operationalizes one claim into a measured table;
//! the mapping from claim to experiment is recorded in `DESIGN.md` §3.

use std::collections::HashMap;

use nlidb_benchdata::{
    cosql_like, dataset_stats, derive_slots, domain_database, paper_reference, sparc_like,
    spider_like, wikisql_like, SessionKind, DOMAIN_NAMES,
};
use nlidb_core::clarify;
use nlidb_core::interpretation::InterpreterKind;
use nlidb_dialogue::{bootstrap_from_ontology, ConversationSession, IntentClassifier, ManagerKind};
use nlidb_engine::{execute, execute_rowwise_with_stats, execute_with_stats, explain};
use nlidb_evalkit::table::pct;
use nlidb_evalkit::{execution_match, EvalOutcome, Table};
use nlidb_nlp::Lexicon;
use nlidb_sqlir::ComplexityClass;

use crate::workloads::{evaluate, paraphrased, setup_domain, DomainSetup};

/// All experiment identifiers, in order.
pub const EXPERIMENT_IDS: [&str; 21] = [
    "e1", "e2", "e3", "e4", "e5", "e6", "e7", "e8", "e9", "e10", "e11", "e12", "e13", "e14", "e15",
    "e16", "e17", "e18", "e19", "e20", "e21",
];

/// One-line description per experiment, in [`EXPERIMENT_IDS`] order
/// (the `--list` output of the `experiments` binary).
pub const EXPERIMENT_SUMMARIES: [(&str, &str); 21] = [
    (
        "e1",
        "capability matrix: family accuracy per §3 complexity rung",
    ),
    (
        "e2",
        "paraphrase brittleness: accuracy under rewording intensity",
    ),
    ("e3", "learning curve: neural accuracy vs training-set size"),
    ("e4", "hybrid ranker: best-of-both over grammar and neural"),
    (
        "e5",
        "dialogue managers: follow-up accuracy per §5 strategy",
    ),
    (
        "e6",
        "decomposition: nested-query accuracy with/without splitting",
    ),
    (
        "e7",
        "benchmark statistics: synthetic suites vs published shapes",
    ),
    (
        "e8",
        "nested detection: classifier precision/recall on §3 rungs",
    ),
    (
        "e9",
        "clarification: ambiguity dialogue payoff per §5 claim",
    ),
    ("e10", "ontology bootstrap: coverage from schema vs curated"),
    (
        "e11",
        "answer denotation: WTQ-style lax metric vs execution match",
    ),
    (
        "e12",
        "serving runtime: concurrency/cache equivalence + backpressure",
    ),
    (
        "e13",
        "fault injection: deterministic retry/degrade/breaker regimes",
    ),
    (
        "e14",
        "observability: byte-identical traces, attributed fault evidence",
    ),
    (
        "e15",
        "crash recovery: journaled sessions replay, lost work re-admits",
    ),
    (
        "e16",
        "trace profiler: critical-path attribution, reproducible exports",
    ),
    (
        "e17",
        "multi-tenant sharding: N domains, one runtime ≡ N isolated runs",
    ),
    (
        "e18",
        "engine equivalence: batch ≡ row oracle, vectorized tick savings",
    ),
    (
        "e19",
        "candidate validation: rerank+validate precision vs pick-first",
    ),
    (
        "e20",
        "soak open loop: overload shed/recover, bounded memory, trajectory",
    ),
    (
        "e21",
        "windowed SLO: burn-rate health events, reconciled, early warning",
    ),
];

/// Run one experiment by id; `None` for unknown ids.
pub fn run_experiment(id: &str, seed: u64) -> Option<Table> {
    match id {
        "e1" => Some(e1_capability_matrix(seed)),
        "e2" => Some(e2_paraphrase_robustness(seed)),
        "e3" => Some(e3_learning_curve(seed)),
        "e4" => Some(e4_hybrid_best_of_both(seed)),
        "e5" => Some(e5_dialogue_managers(seed)),
        "e6" => Some(e6_decomposition(seed)),
        "e7" => Some(e7_benchmark_statistics(seed)),
        "e8" => Some(e8_nested_detection(seed)),
        "e9" => Some(e9_clarification(seed)),
        "e10" => Some(e10_ontology_bootstrap(seed)),
        "e11" => Some(e11_answer_denotation(seed)),
        "e12" => Some(e12_serving_runtime(seed)),
        "e13" => Some(e13_fault_injection(seed)),
        "e14" => Some(e14_observability(seed)),
        "e15" => Some(e15_crash_recovery(seed)),
        "e16" => Some(e16_trace_profile(seed)),
        "e17" => Some(e17_multi_tenant(seed)),
        "e18" => Some(e18_engine_equivalence(seed)),
        "e19" => Some(e19_candidate_validation(seed)),
        "e20" => Some(e20_soak(seed)),
        "e21" => Some(e21_windowed_slo(seed)),
        _ => None,
    }
}

/// E1 — §3 capability matrix: execution accuracy of each interpreter
/// family per complexity rung, across all six domains.
pub fn e1_capability_matrix(seed: u64) -> Table {
    let mut per: HashMap<(InterpreterKind, ComplexityClass), EvalOutcome> = HashMap::new();
    for (i, name) in DOMAIN_NAMES.iter().enumerate() {
        let setup = setup_domain(name, seed.wrapping_add(i as u64), 160);
        let suite = spider_like(&setup.slots, seed.wrapping_add(1000 + i as u64), 48);
        for kind in InterpreterKind::all() {
            for class in ComplexityClass::all() {
                let class_suite: Vec<_> =
                    suite.iter().filter(|p| p.class == class).cloned().collect();
                let out = evaluate(&setup, kind, &class_suite);
                per.entry((kind, class)).or_default().merge(out);
            }
        }
    }
    let mut t = Table::new(["interpreter", "select", "aggregate", "join", "nested"])
        .title("E1 — capability matrix (execution accuracy per §3 rung)");
    for kind in InterpreterKind::all() {
        let cells: Vec<String> = ComplexityClass::all()
            .iter()
            .map(|c| pct(per[&(kind, *c)].recall()))
            .collect();
        t.row([
            kind.label().to_string(),
            cells[0].clone(),
            cells[1].clone(),
            cells[2].clone(),
            cells[3].clone(),
        ]);
    }
    t
}

/// E2 — paraphrase brittleness: accuracy under increasing paraphrase
/// intensity (WikiSQL-regime questions so all families compete on the
/// same ground).
pub fn e2_paraphrase_robustness(seed: u64) -> Table {
    let kinds = [
        InterpreterKind::Entity,
        InterpreterKind::Neural,
        InterpreterKind::Hybrid,
    ];
    let mut per: HashMap<(InterpreterKind, u8), EvalOutcome> = HashMap::new();
    for (i, name) in ["retail", "hr", "library"].iter().enumerate() {
        let setup = setup_domain(name, seed.wrapping_add(i as u64), 240);
        let base = wikisql_like(&setup.slots, seed.wrapping_add(500 + i as u64), 48);
        for level in 0..=3u8 {
            let suite = paraphrased(&base, level, seed.wrapping_add(level as u64 * 97));
            for kind in kinds {
                let out = evaluate(&setup, kind, &suite);
                per.entry((kind, level)).or_default().merge(out);
            }
        }
    }
    let mut t = Table::new([
        "interpreter",
        "level 0",
        "level 1",
        "level 2",
        "level 3",
        "drop 0→3",
    ])
    .title("E2 — accuracy under paraphrase intensity (§4.1 brittleness claim)");
    for kind in kinds {
        let accs: Vec<f64> = (0..=3u8).map(|l| per[&(kind, l)].recall()).collect();
        t.row([
            kind.label().to_string(),
            pct(accs[0]),
            pct(accs[1]),
            pct(accs[2]),
            pct(accs[3]),
            format!("{:+.1}pp", (accs[3] - accs[0]) * 100.0),
        ]);
    }
    t
}

/// E3 — training-data hunger and cross-domain transfer gap of the
/// neural family.
pub fn e3_learning_curve(seed: u64) -> Table {
    let mut t = Table::new([
        "train size",
        "in-domain acc",
        "NN-baseline acc",
        "cross-domain acc",
        "gap",
    ])
    .title("E3 — neural learning curve + transfer gap (§4.2 data-hunger claim)");
    let eval_domain = setup_domain("hr", seed.wrapping_add(7), 0); // foreign schema
    for &n in &[25usize, 50, 100, 200, 400] {
        let setup = setup_domain("retail", seed, n);
        let in_suite = wikisql_like(&setup.slots, seed.wrapping_add(3000), 60);
        let in_acc = evaluate(&setup, InterpreterKind::Neural, &in_suite).recall();
        // Monolithic nearest-neighbor ablation (Seq2SQL-vs-SQLNet):
        // same training data, no sketch structure.
        let nn = nlidb_core::neural::NearestNeighborBaseline::train(
            &crate::workloads::training_examples(
                &setup.slots,
                seed.wrapping_add(101),
                n,
                &[0, 1, 2, 3],
            ),
        );
        let mut nn_out = EvalOutcome::default();
        for pair in &in_suite {
            match nn.predict(&pair.question) {
                Some((sql, _)) => nn_out.record(true, execution_match(&setup.db, &pair.sql, &sql)),
                None => nn_out.record(false, false),
            }
        }
        // Same trained model, pointed at the HR schema.
        let hr_suite = wikisql_like(&eval_domain.slots, seed.wrapping_add(4000), 60);
        let mut cross = EvalOutcome::default();
        for pair in &hr_suite {
            let pred = setup
                .pipeline
                .interpreter(InterpreterKind::Neural)
                .best(&pair.question, eval_domain.pipeline.context());
            match pred {
                Some(p) => cross.record(true, execution_match(&eval_domain.db, &pair.sql, &p.sql)),
                None => cross.record(false, false),
            }
        }
        t.row([
            n.to_string(),
            pct(in_acc),
            pct(nn_out.recall()),
            pct(cross.recall()),
            format!("{:+.1}pp", (cross.recall() - in_acc) * 100.0),
        ]);
    }
    t
}

/// E4 — hybrid precision/recall: the §4.3 best-of-both claim, on a
/// mixed suite (all rungs, paraphrase levels 0–3 mixed).
pub fn e4_hybrid_best_of_both(seed: u64) -> Table {
    let kinds = [
        InterpreterKind::Entity,
        InterpreterKind::Neural,
        InterpreterKind::Hybrid,
    ];
    let mut per: HashMap<InterpreterKind, EvalOutcome> = HashMap::new();
    for (i, name) in DOMAIN_NAMES.iter().enumerate() {
        let setup = setup_domain(name, seed.wrapping_add(i as u64), 200);
        let base = spider_like(&setup.slots, seed.wrapping_add(600 + i as u64), 40);
        // Mix paraphrase levels question-by-question.
        let mut suite = Vec::new();
        for (j, p) in base.iter().enumerate() {
            let level = (j % 4) as u8;
            suite.extend(paraphrased(std::slice::from_ref(p), level, seed ^ j as u64));
        }
        for kind in kinds {
            per.entry(kind)
                .or_default()
                .merge(evaluate(&setup, kind, &suite));
        }
    }
    let mut t = Table::new(["interpreter", "coverage", "precision", "recall", "F1"])
        .title("E4 — hybrid best-of-both (§4.3) on mixed complexity × paraphrase");
    for kind in kinds {
        let o = per[&kind];
        t.row([
            kind.label().to_string(),
            pct(o.coverage()),
            pct(o.precision()),
            pct(o.recall()),
            pct(o.f1()),
        ]);
    }
    t
}

/// E5 — the §5 dialogue-management flexibility ladder: session
/// completion per manager × session shape.
pub fn e5_dialogue_managers(seed: u64) -> Table {
    let mut per: HashMap<(ManagerKind, SessionKind), (usize, usize)> = HashMap::new();
    let mut turn_acc: HashMap<ManagerKind, EvalOutcome> = HashMap::new();
    for (i, name) in ["retail", "hr", "clinic"].iter().enumerate() {
        let setup = setup_domain(name, seed.wrapping_add(i as u64), 0);
        let ctx = setup.pipeline.context();
        let sessions = sparc_like(&setup.slots, seed.wrapping_add(50 + i as u64), 12);
        for manager in ManagerKind::all() {
            for s in &sessions {
                let mut conv = ConversationSession::new(&setup.db, ctx, manager);
                let mut all_ok = true;
                for turn in &s.turns {
                    let r = conv.turn(&turn.utterance);
                    let gold_rs = execute(&setup.db, &turn.gold).expect("gold executes");
                    let ok = r.accepted
                        && r.result
                            .as_ref()
                            .map(|rs| {
                                if turn.gold.order_by.is_empty() {
                                    gold_rs.unordered_eq(rs)
                                } else {
                                    gold_rs.ordered_eq(rs)
                                }
                            })
                            .unwrap_or(false);
                    turn_acc.entry(manager).or_default().record(r.accepted, ok);
                    all_ok &= ok;
                }
                let e = per.entry((manager, s.kind)).or_default();
                e.1 += 1;
                if all_ok {
                    e.0 += 1;
                }
            }
        }
    }
    let mut t = Table::new([
        "manager",
        "scripted",
        "slot-refill",
        "user-initiative",
        "turn acc",
    ])
    .title("E5 — session completion per dialogue-management regime (§5)");
    for manager in ManagerKind::all() {
        let cell = |kind: SessionKind| {
            let (ok, n) = per.get(&(manager, kind)).copied().unwrap_or((0, 0));
            if n == 0 {
                "n/a".to_string()
            } else {
                pct(ok as f64 / n as f64)
            }
        };
        t.row([
            manager.label().to_string(),
            cell(SessionKind::Scripted),
            cell(SessionKind::SlotRefill),
            cell(SessionKind::UserInitiative),
            pct(turn_acc[&manager].recall()),
        ]);
    }
    t
}

/// E6 — decomposition: which complex questions can be answered as a
/// sequence of simple ones (§5 ¶1), and which cannot.
pub fn e6_decomposition(seed: u64) -> Table {
    let mut t = Table::new([
        "question family",
        "one-shot acc",
        "decomposed acc",
        "verdict",
    ])
    .title("E6 — one-shot vs sequence-of-simple-questions (§5 decomposition claim)");

    let mut filtered_count_one = EvalOutcome::default();
    let mut filtered_count_multi = EvalOutcome::default();
    let mut above_avg_one = EvalOutcome::default();
    let mut above_avg_multi = EvalOutcome::default();
    let mut without_one = EvalOutcome::default();
    let mut without_multi = EvalOutcome::default();

    for (i, name) in ["retail", "hr", "library"].iter().enumerate() {
        let setup = setup_domain(name, seed.wrapping_add(i as u64), 0);
        let ctx = setup.pipeline.context();

        // Family 1: filter + count — decomposable via a scripted session.
        for s in sparc_like(&setup.slots, seed.wrapping_add(10 + i as u64), 9)
            .into_iter()
            .filter(|s| s.kind == SessionKind::Scripted)
        {
            let final_gold = &s.turns.last().unwrap().gold;
            let gold_rs = execute(&setup.db, final_gold).unwrap();
            // One shot: splice the turns into a single question.
            let narrow = &s.turns[1].utterance; // "only those with m over t"
            let base = &s.turns[0].utterance; // "show X in V"
            let one_shot = format!(
                "how many {} {}",
                base.trim_start_matches("show "),
                narrow.trim_start_matches("only those ")
            );
            record_question(&setup, &one_shot, &gold_rs, &mut filtered_count_one);
            // Multi-turn via the agent manager.
            let mut conv = ConversationSession::new(&setup.db, ctx, ManagerKind::Agent);
            let mut last = None;
            for turn in &s.turns {
                last = conv.turn(&turn.utterance).result;
            }
            let ok = last.map(|rs| gold_rs.unordered_eq(&rs)).unwrap_or(false);
            filtered_count_multi.record(true, ok);
        }

        // Families 2–3: nested questions.
        let suite = spider_like(&setup.slots, seed.wrapping_add(20 + i as u64), 60);
        for pair in suite
            .iter()
            .filter(|p| p.class == ComplexityClass::NestedSubquery)
        {
            let gold_rs = execute(&setup.db, &pair.sql).unwrap();
            let is_avg = pair.id.contains("n_above_avg");
            let is_without = pair.id.contains("n_without");
            if is_avg {
                record_question(&setup, &pair.question, &gold_rs, &mut above_avg_one);
                // Two-step decomposition: ask for the average, read the
                // number, ask the comparison with the literal value.
                let ok = decompose_above_avg(&setup, pair, &gold_rs);
                above_avg_multi.record(true, ok);
            } else if is_without {
                record_question(&setup, &pair.question, &gold_rs, &mut without_one);
                // No sequence of simple (non-nested) dialogue acts can
                // express an anti-join: every act adds positive filters
                // or aggregates. Attempt the closest simple session and
                // score it honestly.
                let mut conv = ConversationSession::new(&setup.db, ctx, ManagerKind::Agent);
                let plural = pair.question.split_whitespace().next().unwrap_or("");
                let r1 = conv.turn(&format!("show all {plural}"));
                let ok = r1
                    .result
                    .map(|rs| gold_rs.unordered_eq(&rs))
                    .unwrap_or(false);
                without_multi.record(true, ok);
            }
        }
    }

    t.row([
        "filter + count".to_string(),
        pct(filtered_count_one.recall()),
        pct(filtered_count_multi.recall()),
        "decomposable".to_string(),
    ]);
    t.row([
        "above average (nested scalar)".to_string(),
        pct(above_avg_one.recall()),
        pct(above_avg_multi.recall()),
        "decomposable w/ value transfer".to_string(),
    ]);
    t.row([
        "without related (anti-join)".to_string(),
        pct(without_one.recall()),
        pct(without_multi.recall()),
        "NOT decomposable".to_string(),
    ]);
    t
}

fn record_question(
    setup: &DomainSetup,
    question: &str,
    gold_rs: &nlidb_engine::ResultSet,
    out: &mut EvalOutcome,
) {
    let pred = setup
        .pipeline
        .interpreter(InterpreterKind::Entity)
        .best(question, setup.pipeline.context());
    match pred {
        Some(p) => {
            let ok = execute(&setup.db, &p.sql)
                .map(|rs| gold_rs.unordered_eq(&rs))
                .unwrap_or(false);
            out.record(true, ok);
        }
        None => out.record(false, false),
    }
}

/// Oracle two-step decomposition of an "above/below average" question:
/// turn 1 asks for the average, turn 2 re-asks with the literal value.
fn decompose_above_avg(
    setup: &DomainSetup,
    pair: &nlidb_benchdata::QaPair,
    gold_rs: &nlidb_engine::ResultSet,
) -> bool {
    // Parse "X with M above average" from the canonical question.
    let words: Vec<&str> = pair.question.split_whitespace().collect();
    let Some(with_pos) = words.iter().position(|w| *w == "with") else {
        return false;
    };
    let plural = words[..with_pos].join(" ");
    let Some(dir_pos) = words.iter().position(|w| *w == "above" || *w == "below") else {
        return false;
    };
    let measure = words[with_pos + 1..dir_pos].join(" ");
    let step1 = format!("average {measure} of {plural}");
    let Some(avg_interp) = setup
        .pipeline
        .interpreter(InterpreterKind::Entity)
        .best(&step1, setup.pipeline.context())
    else {
        return false;
    };
    let Ok(avg_rs) = execute(&setup.db, &avg_interp.sql) else {
        return false;
    };
    let Some(avg) = avg_rs
        .rows
        .first()
        .and_then(|r| r.first())
        .and_then(|v| v.as_f64())
    else {
        return false;
    };
    let cmp = if words[dir_pos] == "above" {
        "over"
    } else {
        "under"
    };
    let step2 = format!("show {plural} with {measure} {cmp} {avg}");
    let Some(final_interp) = setup
        .pipeline
        .interpreter(InterpreterKind::Entity)
        .best(&step2, setup.pipeline.context())
    else {
        return false;
    };
    execute(&setup.db, &final_interp.sql)
        .map(|rs| gold_rs.unordered_eq(&rs))
        .unwrap_or(false)
}

/// E7 — benchmark statistics: our synthetic suites vs the numbers the
/// paper reports for the public datasets (§6 Benchmarks).
pub fn e7_benchmark_statistics(seed: u64) -> Table {
    let mut wikisql_pairs = Vec::new();
    let mut wtq_count = 0usize;
    let mut spider_pairs = Vec::new();
    let mut sparc_sessions = Vec::new();
    let mut cosql_sessions = Vec::new();
    for (i, name) in DOMAIN_NAMES.iter().enumerate() {
        let db = nlidb_benchdata::domain_database(name, seed.wrapping_add(i as u64));
        let slots = derive_slots(&db);
        wikisql_pairs.extend(wikisql_like(&slots, seed.wrapping_add(i as u64), 672));
        wtq_count +=
            nlidb_benchdata::wtq_like(&db, &slots, seed.wrapping_add(60 + i as u64), 184).len();
        spider_pairs.extend(spider_like(&slots, seed.wrapping_add(90 + i as u64), 200));
        sparc_sessions.extend(sparc_like(&slots, seed.wrapping_add(80 + i as u64), 33));
        cosql_sessions.extend(cosql_like(&slots, seed.wrapping_add(70 + i as u64), 25));
    }
    let mut wtq_stats = dataset_stats("WTQ-like (ours)", &[], &[]);
    wtq_stats.questions = wtq_count;
    wtq_stats.tables = 15;
    wtq_stats.domains = DOMAIN_NAMES.len();
    let ours = [
        dataset_stats("WikiSQL-like (ours)", &wikisql_pairs, &[]),
        wtq_stats,
        dataset_stats("Spider-like (ours)", &spider_pairs, &[]),
        dataset_stats("SParC-like (ours)", &[], &sparc_sessions),
        dataset_stats("CoSQL-like (ours)", &[], &cosql_sessions),
    ];
    let mut t = Table::new([
        "dataset",
        "questions",
        "tables",
        "domains",
        "sequences",
        "turns",
        "turns/seq",
    ])
    .title("E7 — benchmark shape: paper-reported vs generated (≈1/20 scale)");
    for s in paper_reference().iter().chain(ours.iter()) {
        t.row([
            s.name.clone(),
            s.questions.to_string(),
            s.tables.to_string(),
            s.domains.to_string(),
            s.sequences.to_string(),
            s.turns.to_string(),
            format!("{:.1}", s.turns_per_sequence()),
        ]);
    }
    t
}

/// E8 — nested-query *detection* (§6 open challenge): does the system
/// even recognize that a question needs a sub-query?
pub fn e8_nested_detection(seed: u64) -> Table {
    let kinds = [
        InterpreterKind::Pattern,
        InterpreterKind::Entity,
        InterpreterKind::Neural,
        InterpreterKind::Hybrid,
    ];
    // (true positives, false positives, false negatives) per kind.
    let mut counts: HashMap<InterpreterKind, (usize, usize, usize)> = HashMap::new();
    for (i, name) in DOMAIN_NAMES.iter().enumerate() {
        let setup = setup_domain(name, seed.wrapping_add(i as u64), 160);
        let suite = spider_like(&setup.slots, seed.wrapping_add(800 + i as u64), 48);
        for pair in &suite {
            let gold_nested = pair.class == ComplexityClass::NestedSubquery;
            for kind in kinds {
                let predicted_nested = setup
                    .pipeline
                    .interpreter(kind)
                    .best(&pair.question, setup.pipeline.context())
                    .map(|p| p.sql.has_subquery())
                    .unwrap_or(false);
                let e = counts.entry(kind).or_default();
                match (gold_nested, predicted_nested) {
                    (true, true) => e.0 += 1,
                    (false, true) => e.1 += 1,
                    (true, false) => e.2 += 1,
                    (false, false) => {}
                }
            }
        }
    }
    let mut t = Table::new(["interpreter", "precision", "recall", "F1"])
        .title("E8 — nested-query detection (§6 sub-queries challenge)");
    for kind in kinds {
        let (tp, fp, fneg) = counts[&kind];
        let p = if tp + fp == 0 {
            1.0
        } else {
            tp as f64 / (tp + fp) as f64
        };
        let r = if tp + fneg == 0 {
            0.0
        } else {
            tp as f64 / (tp + fneg) as f64
        };
        let f1 = if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        };
        t.row([kind.label().to_string(), pct(p), pct(r), pct(f1)]);
    }
    t
}

/// E9 — value of one round of multi-choice clarification
/// (NaLIR/DialSQL interaction): a genuinely ambiguous suite (value
/// strings that exist in two different columns) plus typo-heavy
/// paraphrase suites.
pub fn e9_clarification(seed: u64) -> Table {
    let mut t = Table::new(["suite", "baseline acc", "clarified acc", "questions asked"])
        .title("E9 — clarification lift (NaLIR/DialSQL-style multi-choice)");

    // --- Ambiguous-value suite: clinic city names exist on both
    // patients.city and doctors.city; "visits in Austin" has two
    // legitimate readings. Convention: the gold reading goes through
    // the patient (the survey's NaLIR example is exactly this kind of
    // mapping ambiguity, resolved by asking).
    {
        let setup = setup_domain("clinic", seed, 0);
        let patients = setup.db.table("patients").expect("clinic schema");
        let doctors = setup.db.table("doctors").expect("clinic schema");
        let shared: Vec<String> = patients
            .distinct_values("city")
            .into_iter()
            .filter_map(|v| match v {
                nlidb_engine::Value::Str(s) => Some(s),
                _ => None,
            })
            .filter(|c| {
                doctors
                    .distinct_values("city")
                    .iter()
                    .any(|d| matches!(d, nlidb_engine::Value::Str(s) if s == c))
            })
            .collect();
        let mut baseline = EvalOutcome::default();
        let mut clarified = EvalOutcome::default();
        let mut asks = 0usize;
        for city in &shared {
            let question = format!("show visits in {city}");
            let gold = nlidb_sqlir::parse_query(&format!(
                "SELECT * FROM visits JOIN patients ON visits.patient_id = patients.id \
                 WHERE patients.city = '{city}'"
            ))
            .expect("gold parses");
            let cands = setup
                .pipeline
                .candidates(&question, InterpreterKind::Entity);
            match cands.first() {
                Some(p) => baseline.record(true, execution_match(&setup.db, &gold, &p.sql)),
                None => baseline.record(false, false),
            }
            if clarify::needs_clarification(&cands, 0.15) {
                asks += 1;
            }
            let resolved = clarify::resolve_with_oracle(&cands, 0.15, |cand| {
                execution_match(&setup.db, &gold, &cand.sql)
            });
            match resolved {
                Some(p) => clarified.record(true, execution_match(&setup.db, &gold, &p.sql)),
                None => clarified.record(false, false),
            }
        }
        t.row([
            "clinic / ambiguous values".to_string(),
            pct(baseline.recall()),
            pct(clarified.recall()),
            asks.to_string(),
        ]);
    }

    // --- Typo-heavy paraphrase suites: clarification can only help
    // when the correct reading survives into the candidate list.
    for (i, name) in ["retail", "library"].iter().enumerate() {
        let setup = setup_domain(name, seed.wrapping_add(i as u64), 0);
        let base = spider_like(&setup.slots, seed.wrapping_add(40 + i as u64), 60);
        let suite = paraphrased(&base, 3, seed.wrapping_add(999));
        let mut baseline = EvalOutcome::default();
        let mut clarified = EvalOutcome::default();
        let mut asks = 0usize;
        for pair in &suite {
            let cands = setup
                .pipeline
                .candidates(&pair.question, InterpreterKind::Entity);
            match cands.first() {
                Some(p) => baseline.record(true, execution_match(&setup.db, &pair.sql, &p.sql)),
                None => baseline.record(false, false),
            }
            if clarify::needs_clarification(&cands, 0.15) {
                asks += 1;
            }
            let resolved = clarify::resolve_with_oracle(&cands, 0.15, |cand| {
                execution_match(&setup.db, &pair.sql, &cand.sql)
            });
            match resolved {
                Some(p) => clarified.record(true, execution_match(&setup.db, &pair.sql, &p.sql)),
                None => clarified.record(false, false),
            }
        }
        t.row([
            format!("{name} / level-3 paraphrase"),
            pct(baseline.recall()),
            pct(clarified.recall()),
            asks.to_string(),
        ]);
    }
    t
}

/// E10 — ontology-driven bootstrap (§5, Quamar et al.): intent
/// classification from generated artifacts vs a minimal hand-authored
/// baseline.
pub fn e10_ontology_bootstrap(seed: u64) -> Table {
    let lexicon = Lexicon::business_default();
    let mut t = Table::new([
        "domain",
        "intents",
        "examples",
        "entities",
        "bootstrap acc",
        "minimal acc",
    ])
    .title("E10 — ontology-driven conversation bootstrap (§5)");
    for (i, name) in DOMAIN_NAMES.iter().enumerate() {
        let setup = setup_domain(name, seed.wrapping_add(i as u64), 0);
        let ctx = setup.pipeline.context();
        let artifacts = bootstrap_from_ontology(&setup.db, ctx);
        // Minimal baseline: one example per intent (what a developer
        // might hand-author on day one).
        let mut minimal = artifacts.clone();
        for intent in &mut minimal.intents {
            intent.examples.truncate(1);
        }
        let full_clf = IntentClassifier::train(&artifacts, seed);
        let min_clf = IntentClassifier::train(&minimal, seed);
        // Held-out eval: paraphrased versions of the generated examples.
        let mut eval_pairs = Vec::new();
        for intent in &artifacts.intents {
            for (j, e) in intent.examples.iter().enumerate().take(3) {
                let para = nlidb_benchdata::paraphrase(
                    e,
                    &[],
                    1,
                    &lexicon,
                    seed.wrapping_add(5000 + j as u64),
                );
                eval_pairs.push((para, intent.name.clone()));
            }
        }
        t.row([
            name.to_string(),
            artifacts.intents.len().to_string(),
            artifacts.example_count().to_string(),
            artifacts.entities.len().to_string(),
            pct(full_clf.accuracy(&eval_pairs)),
            pct(min_clf.accuracy(&eval_pairs)),
        ]);
    }
    t
}

/// One E12 serving pass: build a fresh cached pipeline over `domain`,
/// replay `passes` rounds of the same seeded request stream in
/// closed-loop batches, and return (signatures, metrics, join-cache
/// stats).
#[allow(clippy::too_many_arguments)]
fn e12_serve_run(
    domain: &str,
    seed: u64,
    n: usize,
    session_share: f64,
    workers: usize,
    queue_capacity: usize,
    interp_cache: usize,
    passes: usize,
    deadlines: Option<(usize, u64)>,
    batch: usize,
) -> (
    Vec<String>,
    nlidb_serve::MetricsSnapshot,
    nlidb_ontology::JoinCacheStats,
) {
    use nlidb_core::pipeline::{NliPipeline, SchemaContext};
    use nlidb_ontology::JoinPathCache;
    use nlidb_serve::{run_closed_loop, with_deadlines, Clock, ManualClock, Server, ServerConfig};
    use std::sync::Arc;

    let db = nlidb_benchdata::domain_database(domain, seed);
    let slots = derive_slots(&db);
    let join_cache = Arc::new(JoinPathCache::new(128));
    let mut ctx = SchemaContext::build(&db);
    ctx.graph = ctx.graph.clone().with_cache(Arc::clone(&join_cache));
    let pipeline = Arc::new(NliPipeline::with_context(&db, ctx));
    let mut stream = nlidb_benchdata::request_stream(&slots, seed, n, session_share);
    if let Some((period, budget)) = deadlines {
        stream = with_deadlines(stream, period, budget, batch);
    }
    let clock = Arc::new(ManualClock::new());
    let mut server = Server::start(
        pipeline,
        ServerConfig {
            workers,
            queue_capacity,
            interp_cache,
            service_estimate: 1,
            ..ServerConfig::default()
        },
        clock.clone() as Arc<dyn Clock>,
    );
    let mut sigs = Vec::with_capacity(n * passes);
    for _ in 0..passes {
        sigs.extend(run_closed_loop(&mut server, &clock, &stream, batch).signatures());
    }
    let metrics = server.shutdown();
    (sigs, metrics, join_cache.stats())
}

/// E12 — serving equivalence & cache efficacy: the §7 "NLIs must grow
/// into multi-user systems" challenge, operationalized. A concurrent
/// worker pool must (a) answer *identically* to a serial run — the
/// per-request signature streams are compared and asserted equal, at
/// any worker count, with caches hot or disabled — and (b) make repeat
/// traffic cheap: interpretation-cache and join-path-cache hit rates
/// per workload. Backpressure rows show deterministic shed/deadline
/// accounting under a tight queue bound.
pub fn e12_serving_runtime(seed: u64) -> Table {
    let mut t = Table::new([
        "workload",
        "workers",
        "requests",
        "answered",
        "turns",
        "shed",
        "deadline",
        "interp hit",
        "join hit",
        "== serial",
    ])
    .title("E12 — serving equivalence & cache efficacy (retail, seeded stream)");
    const N: usize = 120;
    const BATCH: usize = 16;
    let mixed = |workers| e12_serve_run("retail", seed, N, 0.25, workers, N, 256, 1, None, BATCH);
    let (serial_sigs, m1, j1) = mixed(1);
    let mut row = |label: &str,
                   workers: usize,
                   sigs: &[String],
                   m: &nlidb_serve::MetricsSnapshot,
                   j: &nlidb_ontology::JoinCacheStats,
                   baseline: Option<&[String]>| {
        let equiv = match baseline {
            None => "(base)".to_string(),
            Some(base) => {
                assert_eq!(base, sigs, "E12: {label} diverged from the serial baseline");
                "yes".to_string()
            }
        };
        let interp_cell = if m.cache_disabled {
            "off".to_string()
        } else {
            pct(m.interp_hit_rate())
        };
        t.row([
            label.to_string(),
            workers.to_string(),
            m.submitted.to_string(),
            m.answered.to_string(),
            m.session_turns.to_string(),
            m.shed_full.to_string(),
            m.shed_deadline.to_string(),
            interp_cell,
            pct(j.hit_rate()),
            equiv,
        ]);
    };
    row("mixed 25% sessions", 1, &serial_sigs, &m1, &j1, None);
    for workers in [2, 4] {
        let (sigs, m, j) = mixed(workers);
        row(
            "mixed 25% sessions",
            workers,
            &sigs,
            &m,
            &j,
            Some(&serial_sigs),
        );
    }
    // Interp cache off: same answers; lookups are still counted as
    // misses but the snapshot carries the explicit disabled flag.
    let (sigs, m, j) = e12_serve_run("retail", seed, N, 0.25, 4, N, 0, 1, None, BATCH);
    assert!(m.cache_disabled, "interp_cache=0 must flag the snapshot");
    assert_eq!(m.interp_hits, 0, "disabled cache can never hit");
    assert!(m.interp_misses > 0, "lookups are counted even when off");
    row("mixed, interp off", 4, &sigs, &m, &j, Some(&serial_sigs));
    // Hot replay: a second identical pass over a warm server.
    let (sigs2, m, j) = e12_serve_run("retail", seed, N, 0.0, 2, N, 256, 2, None, BATCH);
    let (serial2, _, _) = e12_serve_run("retail", seed, N, 0.0, 1, N, 256, 2, None, BATCH);
    row("singles ×2 (warm)", 2, &sigs2, &m, &j, Some(&serial2));
    // Backpressure: tight queues + periodic deadlines, large batches.
    let (_, m, j) = e12_serve_run("retail", seed, N, 0.0, 2, 8, 256, 1, Some((5, 2)), 48);
    t.row([
        "backpressure q=8".to_string(),
        "2".to_string(),
        m.submitted.to_string(),
        m.answered.to_string(),
        m.session_turns.to_string(),
        m.shed_full.to_string(),
        m.shed_deadline.to_string(),
        pct(m.interp_hit_rate()),
        pct(j.hit_rate()),
        "n/a".to_string(),
    ]);
    assert!(
        m.shed_full + m.shed_deadline > 0,
        "E12 backpressure row must actually shed"
    );
    t
}

/// One E13 serving pass over the retail domain under `plan`: the same
/// seeded mixed stream E12 replays, through a 2-worker server with the
/// plan threaded in as the request hook. Returns (signatures, ids of
/// requests answered fresh — i.e. requests that actually reached the
/// fault hook — and final metrics).
fn e13_serve_run(
    seed: u64,
    n: usize,
    plan: nlidb_benchdata::FaultPlan,
) -> (Vec<String>, Vec<u64>, nlidb_serve::MetricsSnapshot) {
    use nlidb_core::pipeline::NliPipeline;
    use nlidb_serve::{
        fault_plan_hook, run_closed_loop, Clock, Disposition, ManualClock, Server, ServerConfig,
    };
    use std::sync::Arc;

    let db = nlidb_benchdata::domain_database("retail", seed);
    let slots = derive_slots(&db);
    let pipeline = Arc::new(NliPipeline::standard(&db));
    let stream = nlidb_benchdata::request_stream(&slots, seed, n, 0.25);
    let clock = Arc::new(ManualClock::new());
    let mut server = Server::start_with_hook(
        pipeline,
        ServerConfig {
            workers: 2,
            queue_capacity: n,
            ..ServerConfig::default()
        },
        clock.clone() as Arc<dyn Clock>,
        Some(fault_plan_hook(plan)),
    );
    let report = run_closed_loop(&mut server, &clock, &stream, 16);
    let fresh = report
        .completions
        .iter()
        .filter(|c| {
            matches!(
                c.disposition,
                Disposition::Answered {
                    from_cache: false,
                    ..
                }
            )
        })
        .map(|c| c.id)
        .collect();
    (report.signatures(), fresh, server.shutdown())
}

/// E13 — deterministic fault injection & graceful degradation: the §4
/// "families fail differently" claim under serving-path failure. Every
/// regime is run twice and asserted bit-identical in both its
/// signature stream and its metrics snapshot; transient faults inside
/// the retry budget must additionally leave the stream byte-identical
/// to the unfaulted run (the robustness layer is transparent when it
/// has absorbed the fault). Fatal faults degrade down the family
/// ladder, bursts trip circuit breakers, and a worker panic is
/// contained — the run still completes, with the losses surfaced as
/// refusals.
pub fn e13_fault_injection(seed: u64) -> Table {
    use nlidb_benchdata::{FaultKind, FaultPlan, FaultRates};
    nlidb_serve::silence_worker_panics();
    let mut t = Table::new([
        "fault regime",
        "answered",
        "degraded",
        "refused",
        "retries",
        "backoff",
        "trips",
        "deaths",
        "crashed",
        "== clean",
    ])
    .title("E13 — deterministic fault injection & graceful degradation (retail, seeded stream)");
    const N: usize = 120;
    // The clean pass identifies which requests actually reach the
    // fault hook: fresh singles (cache hits replay a stored answer and
    // touch no backend; session turns take the session path). Pinning
    // the guarantee-carrying faults on fresh ids makes every regime's
    // assertion hold at *any* seed — a faulted run's cache contents
    // are always a subset of the clean run's (faults only ever prevent
    // caching), so a clean-run fresh single stays fresh under faults.
    let (clean_sigs, fresh, clean_m) = e13_serve_run(seed, N, FaultPlan::none());
    assert!(
        fresh.len() >= 14,
        "E13 needs fresh singles to pin faults on ({} found)",
        fresh.len()
    );
    // An outage window: every id from the first fresh single through
    // the twelfth faults fatally at rung 0. Pinning the whole window
    // (cache hits never consult the hook, so the extra pins are inert
    // on replayed answers) means no healthy request can reach rung 0
    // inside it and reset a breaker's failure streak: with ≥12 rung-0
    // failures across 2 workers, one worker sees ≥6 consecutive,
    // clearing the trip threshold of 3 at any seed.
    let burst = {
        let mut p = FaultPlan::none();
        for id in fresh[0]..=fresh[11] {
            p = p.with(id, FaultKind::Fatal { depth: 1 });
        }
        p
    };
    let regimes: Vec<(&str, FaultPlan)> = vec![
        ("none", FaultPlan::none()),
        (
            "transient 20% (in budget)",
            FaultPlan::seeded(
                seed,
                N as u64,
                &FaultRates {
                    transient: 0.2,
                    fatal: 0.0,
                    ..FaultRates::default()
                },
            )
            .with(fresh[12], FaultKind::Transient { failures: 2 }),
        ),
        (
            "mixed 10%/5% + pinned fatal",
            FaultPlan::seeded(seed, N as u64, &FaultRates::default())
                .with(fresh[12], FaultKind::Fatal { depth: 1 }),
        ),
        ("fatal outage window", burst),
        (
            "mixed + pinned worker panic",
            FaultPlan::seeded(seed, N as u64, &FaultRates::default())
                .with(fresh[13], FaultKind::WorkerPanic),
        ),
    ];
    for (label, plan) in regimes {
        let (sigs, _, m) = e13_serve_run(seed, N, plan.clone());
        let (sigs2, _, m2) = e13_serve_run(seed, N, plan);
        assert_eq!(
            sigs, sigs2,
            "E13 {label}: signature stream must replay bit-identically"
        );
        assert_eq!(
            m, m2,
            "E13 {label}: metrics snapshot must replay bit-identically"
        );
        match label {
            "none" => assert_eq!(sigs, clean_sigs, "E13 baseline must equal itself"),
            "transient 20% (in budget)" => {
                assert_eq!(
                    sigs, clean_sigs,
                    "E13: absorbed transients must be invisible in the stream"
                );
                assert!(m.retries > 0, "E13: transient regime must actually retry");
                assert_eq!(m.degraded, 0, "E13: in-budget transients never degrade");
            }
            "mixed 10%/5% + pinned fatal" => {
                // The pinned fresh request cannot come back full
                // fidelity: it either degrades down the ladder or the
                // ladder exhausts and it refuses.
                assert!(
                    m.degraded > 0 || m.refused > clean_m.refused,
                    "E13: a fatal fault on a fresh request must degrade or refuse"
                )
            }
            "fatal outage window" => {
                assert!(m.breaker_trips > 0, "E13: the outage must trip a breaker")
            }
            "mixed + pinned worker panic" => {
                assert!(m.worker_deaths >= 1, "E13: the panic must be recorded");
                assert!(m.crashed_requests >= 1, "E13: crash losses must surface");
            }
            _ => unreachable!(),
        }
        t.row([
            label.to_string(),
            m.answered.to_string(),
            m.degraded.to_string(),
            m.refused.to_string(),
            m.retries.to_string(),
            m.retry_backoff_ticks.to_string(),
            m.breaker_trips.to_string(),
            m.worker_deaths.to_string(),
            m.crashed_requests.to_string(),
            if sigs == clean_sigs { "yes" } else { "no" }.to_string(),
        ]);
    }
    t
}

/// One traced serving pass: exactly the E13 stream and server config,
/// with a [`nlidb_serve::ServeObs`] attached. Returns (signatures,
/// final metrics, the obs handles). Public because E14, E16, and the
/// `perfgate` drift-baseline binary all measure this exact run.
pub fn traced_serve_run(
    seed: u64,
    n: usize,
    plan: nlidb_benchdata::FaultPlan,
) -> (
    Vec<String>,
    nlidb_serve::MetricsSnapshot,
    nlidb_serve::ServeObs,
) {
    use nlidb_core::pipeline::NliPipeline;
    use nlidb_serve::{
        fault_plan_hook, run_closed_loop, Clock, ManualClock, ServeObs, Server, ServerConfig,
    };
    use std::sync::Arc;

    let db = nlidb_benchdata::domain_database("retail", seed);
    let slots = derive_slots(&db);
    let pipeline = Arc::new(NliPipeline::standard(&db));
    let stream = nlidb_benchdata::request_stream(&slots, seed, n, 0.25);
    let clock = Arc::new(ManualClock::new());
    let obs = ServeObs::new(n);
    let mut server = Server::start_observed(
        pipeline,
        ServerConfig {
            workers: 2,
            queue_capacity: n,
            ..ServerConfig::default()
        },
        clock.clone() as Arc<dyn Clock>,
        Some(fault_plan_hook(plan)),
        Some(obs.clone()),
    );
    let report = run_closed_loop(&mut server, &clock, &stream, 16);
    (report.signatures(), server.shutdown(), obs)
}

/// E14 — deterministic observability: the open "explain yourself"
/// challenge (§7) made a measurable property of the serving path.
/// Every request — including E13's faulted ones — finishes as a span
/// tree stamped with logical ticks only, so the *entire* exported
/// trace stream is byte-identical run over run; and every retry,
/// backoff tick, breaker trip/skip, and degradation in the metrics is
/// attributable to a specific span carrying the evidence. The table
/// reports per-stage cost (in trace ticks — span-event sequence
/// deltas, a deterministic work proxy) under the faulted regime.
pub fn e14_observability(seed: u64) -> Table {
    use nlidb_benchdata::{FaultKind, FaultPlan, FaultRates};
    const N: usize = 120;
    // Fresh ids from a clean pass, exactly as in E13: faults are only
    // consulted on cache misses, so the guarantee-carrying fatal
    // window must land on fresh singles to fault at any seed.
    let (clean_sigs, fresh, _clean_m) = e13_serve_run(seed, N, FaultPlan::none());
    assert!(
        fresh.len() >= 12,
        "E14 needs fresh singles to pin faults on ({} found)",
        fresh.len()
    );

    // Clean regime: tracing is invisible and bit-reproducible.
    let (t_sigs, t_m, t_obs) = traced_serve_run(seed, N, FaultPlan::none());
    let (t_sigs2, t_m2, t_obs2) = traced_serve_run(seed, N, FaultPlan::none());
    assert_eq!(t_sigs, t_sigs2, "E14: traced stream must replay");
    assert_eq!(t_m, t_m2, "E14: traced metrics must replay");
    assert_eq!(
        t_obs.sink.export_jsonl(),
        t_obs2.sink.export_jsonl(),
        "E14: clean trace export must be byte-identical run over run"
    );
    assert_eq!(
        t_sigs, clean_sigs,
        "E14: tracing must not perturb the answer stream"
    );

    // Faulted regime: E13's transient rate plus its fatal outage
    // window, traced. The export must still be byte-identical, and
    // the span trees must account for every piece of fault evidence
    // the metrics counted.
    let plan = || {
        let mut p = FaultPlan::seeded(
            seed,
            N as u64,
            &FaultRates {
                transient: 0.2,
                fatal: 0.0,
                ..FaultRates::default()
            },
        );
        for id in fresh[0]..=fresh[11] {
            p = p.with(id, FaultKind::Fatal { depth: 1 });
        }
        p
    };
    let (f_sigs, f_m, f_obs) = traced_serve_run(seed, N, plan());
    let (f_sigs2, f_m2, f_obs2) = traced_serve_run(seed, N, plan());
    assert_eq!(f_sigs, f_sigs2, "E14: faulted stream must replay");
    assert_eq!(f_m, f_m2, "E14: faulted metrics must replay");
    assert_eq!(
        f_obs.sink.export_jsonl(),
        f_obs2.sink.export_jsonl(),
        "E14: faulted trace export must be byte-identical run over run"
    );
    assert!(
        f_m.retries > 0 && f_m.breaker_trips > 0 && f_m.degraded > 0,
        "E14: the faulted regime must exercise retry, breaker, and ladder"
    );
    let traces = f_obs.sink.traces();
    assert_eq!(traces.len(), N, "E14: one trace per request");
    let (mut retries, mut backoff, mut trips, mut skips, mut degraded) =
        (0u64, 0u64, 0u64, 0u64, 0u64);
    for trace in &traces {
        let root = trace.root().expect("every trace has a root span");
        if root.attr("outcome") == Some("degraded") {
            degraded += 1;
        }
        for s in &trace.spans {
            if let Some(r) = s.attr("retries") {
                retries += r.parse::<u64>().expect("retries attr is a count");
            }
            if let Some(b) = s.attr("backoff") {
                backoff += b.parse::<u64>().expect("backoff attr is ticks");
            }
            match s.attr("breaker") {
                Some("tripped") => trips += 1,
                Some("open") => skips += 1,
                _ => {}
            }
        }
    }
    assert_eq!(retries, f_m.retries, "E14: every retry has a span");
    assert_eq!(backoff, f_m.retry_backoff_ticks, "E14: backoff attributed");
    assert_eq!(trips, f_m.breaker_trips, "E14: every trip has a span");
    assert_eq!(skips, f_m.breaker_skips, "E14: every skip has a span");
    assert_eq!(degraded, f_m.degraded, "E14: every degradation has a span");

    // The serving counters join the per-stage histograms in one
    // registry; the table reads the histogram side.
    f_m.export_into(&f_obs.registry);
    let report = f_obs.registry.report();
    assert_eq!(report.counter("serve.retries"), Some(f_m.retries));
    let mut t = Table::new(["stage", "spans", "p50", "p95", "max", "total"]).title(
        "E14 — traced serving: per-stage cost in trace ticks (faulted regime, retail, N=120)",
    );
    for (name, h) in &report.histograms {
        if let Some(stage) = name.strip_prefix("span.") {
            t.row([
                stage.to_string(),
                h.count.to_string(),
                h.p50.to_string(),
                h.p95.to_string(),
                h.max.to_string(),
                h.sum.to_string(),
            ]);
        }
    }
    t
}

/// One E15 serving pass: the E13 stream and server config, returning
/// the *full* completion list (E15 compares per-id, not just the
/// concatenated signature stream) and final metrics.
fn e15_serve_run(
    seed: u64,
    n: usize,
    plan: nlidb_benchdata::FaultPlan,
) -> (Vec<nlidb_serve::Completion>, nlidb_serve::MetricsSnapshot) {
    use nlidb_core::pipeline::NliPipeline;
    use nlidb_serve::{fault_plan_hook, run_closed_loop, Clock, ManualClock, Server, ServerConfig};
    use std::sync::Arc;

    let db = nlidb_benchdata::domain_database("retail", seed);
    let slots = derive_slots(&db);
    let pipeline = Arc::new(NliPipeline::standard(&db));
    let stream = nlidb_benchdata::request_stream(&slots, seed, n, 0.25);
    let clock = Arc::new(ManualClock::new());
    let mut server = Server::start_with_hook(
        pipeline,
        ServerConfig {
            workers: 2,
            queue_capacity: n,
            ..ServerConfig::default()
        },
        clock.clone() as Arc<dyn Clock>,
        Some(fault_plan_hook(plan)),
    );
    let report = run_closed_loop(&mut server, &clock, &stream, 16);
    (report.completions, server.shutdown())
}

/// E15 — deterministic crash recovery: no dialogue state dies with a
/// worker. E13 showed a panic is *contained*; E15 shows it is
/// *absorbed*: every committed dialogue turn is journaled before its
/// reply is released, a dead worker's queued work bounces back for
/// re-admission to live workers, and its sessions are rebuilt there by
/// exact replay of their journaled turns. The measurable claim: a
/// pure-panic regime produces the same answer stream as a run that
/// never crashed (lost work ≡ replayed work), and under mixed drawn
/// faults every *session turn* still answers exactly as the same
/// fault schedule answers without the crash. Every regime is run
/// twice and asserted bit-identical.
pub fn e15_crash_recovery(seed: u64) -> Table {
    use nlidb_benchdata::{
        request_stream, session_turn_ids, sessions_with_min_turns, FaultKind, FaultPlan, FaultRates,
    };
    nlidb_serve::silence_worker_panics();
    const N: usize = 120;
    let mut t = Table::new([
        "crash regime",
        "answered",
        "turns",
        "refused",
        "deaths",
        "crashed",
        "readmitted",
        "recovered",
        "replayed",
        "diverged",
        "== baseline",
    ])
    .title("E15 — deterministic crash recovery (retail, seeded stream, 2 workers)");
    // Victim selection is data-driven off the very stream the server
    // replays: a conversation with ≥3 turns has committed state before
    // its middle turn and more turns after it — exactly what replay
    // must carry across the crash. `mixed` drawn faults must not be
    // overwritten by the pin (the baseline run would then see a fault
    // the crashed run doesn't), so the pinned turn is chosen fault-free
    // under the drawn schedule.
    let db = nlidb_benchdata::domain_database("retail", seed);
    let slots = derive_slots(&db);
    let stream = request_stream(&slots, seed, N, 0.25);
    let candidates = sessions_with_min_turns(&stream, 3);
    assert!(
        !candidates.is_empty(),
        "E15 needs a ≥3-turn conversation in the stream"
    );
    let mixed = || FaultPlan::seeded(seed, N as u64, &FaultRates::default());
    let mid_turn = session_turn_ids(&stream, candidates[0])[1];
    let mixed_victim = candidates
        .iter()
        .find_map(|&s| {
            let ids = session_turn_ids(&stream, s);
            // First turn fault-free → it commits to the journal, so
            // the crash on the second turn has state to replay.
            (mixed().fault_for(ids[0]).is_none() && mixed().fault_for(ids[1]).is_none())
                .then_some(ids[1])
        })
        .expect(
            "E15: a conversation whose first two turns are fault-free under the drawn schedule",
        );
    // A fresh single for the single-crash regime, found as in E13/E14.
    let (_sigs, fresh, _m) = e13_serve_run(seed, N, FaultPlan::none());
    assert!(!fresh.is_empty(), "E15 needs a fresh single to panic on");

    let (clean, clean_m) = e15_serve_run(seed, N, FaultPlan::none());
    let (mixed_base, mixed_base_m) = e15_serve_run(seed, N, mixed());
    let sig = |cs: &[nlidb_serve::Completion]| -> Vec<String> {
        cs.iter().map(|c| c.signature()).collect()
    };
    // (label, plan, baseline completions, whole-stream equality expected)
    let regimes: Vec<(&str, FaultPlan, &Vec<nlidb_serve::Completion>, bool)> = vec![
        ("none", FaultPlan::none(), &clean, true),
        (
            "panic on a fresh single",
            FaultPlan::none().with(fresh[0], FaultKind::WorkerPanic),
            &clean,
            true,
        ),
        (
            "panic mid-conversation",
            FaultPlan::none().with(mid_turn, FaultKind::WorkerPanic),
            &clean,
            true,
        ),
        ("mixed 10%/5% (no crash)", mixed(), &mixed_base, true),
        (
            "mixed + panic mid-conversation",
            mixed().with(mixed_victim, FaultKind::WorkerPanic),
            &mixed_base,
            false,
        ),
    ];
    for (label, plan, baseline, whole_stream) in regimes {
        let (done, m) = e15_serve_run(seed, N, plan.clone());
        let (done2, m2) = e15_serve_run(seed, N, plan);
        assert_eq!(
            sig(&done),
            sig(&done2),
            "E15 {label}: completion stream must replay bit-identically"
        );
        assert_eq!(m, m2, "E15 {label}: metrics must replay bit-identically");
        assert_eq!(done.len(), N, "E15 {label}: every request completes");
        if whole_stream {
            // Recovery is invisible: the crashed run answers exactly
            // like its never-crashed baseline, request for request.
            assert_eq!(
                sig(&done),
                sig(baseline),
                "E15 {label}: recovered stream must equal the no-crash baseline"
            );
        } else {
            // Under drawn faults a lost cache can expose singles to
            // faults a hit would have skipped; the recovery claim is
            // about dialogue state, and *every turn* must still answer
            // as the crash-free schedule answers it.
            for (c, b) in done.iter().zip(baseline.iter()) {
                assert_eq!(c.id, b.id);
                if stream[c.id as usize].session.is_some() {
                    assert_eq!(
                        c.signature(),
                        b.signature(),
                        "E15 {label}: turn {} must survive the crash unchanged",
                        c.id
                    );
                }
            }
        }
        match label {
            "none" => assert_eq!(m, clean_m, "E15 baseline must equal itself"),
            "mixed 10%/5% (no crash)" => {
                assert_eq!(m, mixed_base_m, "E15 mixed baseline must equal itself")
            }
            _ => {
                assert!(m.worker_deaths >= 1, "E15 {label}: the panic must land");
                assert!(m.readmitted >= 1, "E15 {label}: bounced work re-admits");
                assert_eq!(
                    m.readmit_refused, 0,
                    "E15 {label}: nothing may be lost to recovery"
                );
            }
        }
        if label.contains("mid-conversation") {
            assert!(m.sessions_recovered >= 1, "E15 {label}: session rebuilt");
            assert!(m.turns_replayed >= 1, "E15 {label}: journal replayed");
        }
        assert_eq!(m.replay_divergence, 0, "E15 {label}: replay is exact");
        let baseline_sig = sig(baseline);
        let matches = sig(&done)
            .iter()
            .zip(&baseline_sig)
            .filter(|(a, b)| a == b)
            .count();
        t.row([
            label.to_string(),
            m.answered.to_string(),
            m.session_turns.to_string(),
            m.refused.to_string(),
            m.worker_deaths.to_string(),
            m.crashed_requests.to_string(),
            m.readmitted.to_string(),
            m.sessions_recovered.to_string(),
            m.turns_replayed.to_string(),
            m.replay_divergence.to_string(),
            if matches == N {
                "yes".to_string()
            } else {
                format!("{matches}/{N}")
            },
        ]);
    }
    t
}

/// The E14/E16 faulted regime for the seeded retail stream: E13's
/// transient rate plus a fatal outage window pinned on clean-run
/// fresh singles (faults are only consulted on cache misses, so the
/// window must land on fresh ids to fault at any seed). Public so the
/// `perfgate` drift-baseline binary measures exactly the regime E16
/// asserts on.
pub fn faulted_regime_plan(seed: u64, n: usize) -> nlidb_benchdata::FaultPlan {
    use nlidb_benchdata::{FaultKind, FaultPlan, FaultRates};
    let (_sigs, fresh, _m) = e13_serve_run(seed, n, FaultPlan::none());
    assert!(
        fresh.len() >= 12,
        "the faulted regime needs fresh singles to pin faults on ({} found)",
        fresh.len()
    );
    let mut p = FaultPlan::seeded(
        seed,
        n as u64,
        &FaultRates {
            transient: 0.2,
            fatal: 0.0,
            ..FaultRates::default()
        },
    );
    for id in fresh[0]..=fresh[11] {
        p = p.with(id, FaultKind::Fatal { depth: 1 });
    }
    p
}

/// E16 — trace profiling & critical-path attribution: the analysis
/// layer over E14's byte-reproducible traces. Both regimes (clean and
/// E13's faulted plan) are profiled twice and every artifact — the
/// per-stage profile, the Chrome Trace export, the folded stacks —
/// asserted byte-identical run over run; the exported JSONL re-imports
/// to exactly the recorded corpus (what `tracetool` operates on). The
/// cost accounting must balance exactly: per-stage self costs
/// partition the root cost, critical-path self costs partition the
/// critical cost, and the tail attribution accounts for every tail
/// trace. The clean-vs-faulted diff isolates what the faults cost,
/// and the table reports where the faulted regime's critical-path
/// time went.
pub fn e16_trace_profile(seed: u64) -> Table {
    use nlidb_benchdata::FaultPlan;
    use nlidb_obs::{
        chrome_trace_json, folded_stacks, parse_jsonl, tail_attribution, Profile, ProfileDiff,
    };
    const N: usize = 120;
    let plan = faulted_regime_plan(seed, N);

    let (_, _, c_obs) = traced_serve_run(seed, N, FaultPlan::none());
    let (_, _, c_obs2) = traced_serve_run(seed, N, FaultPlan::none());
    let (_, f_m, f_obs) = traced_serve_run(seed, N, plan.clone());
    let (_, _, f_obs2) = traced_serve_run(seed, N, plan);
    for (a, b, label) in [(&c_obs, &c_obs2, "clean"), (&f_obs, &f_obs2, "faulted")] {
        let (ta, tb) = (a.sink.traces(), b.sink.traces());
        assert_eq!(
            Profile::from_traces(&ta).export_text(),
            Profile::from_traces(&tb).export_text(),
            "E16 {label}: profile must be byte-identical run over run"
        );
        assert_eq!(
            chrome_trace_json(&ta),
            chrome_trace_json(&tb),
            "E16 {label}: Chrome Trace export must be byte-identical"
        );
        assert_eq!(
            folded_stacks(&ta),
            folded_stacks(&tb),
            "E16 {label}: folded stacks must be byte-identical"
        );
    }
    let f_traces = f_obs.sink.traces();
    assert_eq!(
        parse_jsonl(&f_obs.sink.export_jsonl()).expect("E16: canonical export parses"),
        f_traces,
        "E16: the JSONL export must re-import to the recorded corpus"
    );

    // The books must balance: self costs partition the root cost,
    // critical-path self costs partition the critical cost, and the
    // hot spine never costs more than the roots it spans.
    let f_profile = Profile::from_traces(&f_traces);
    let clean_profile = Profile::from_traces(&c_obs.sink.traces());
    assert_eq!(f_profile.traces, N as u64, "E16: one trace per request");
    assert_eq!(
        f_profile.stages.iter().map(|s| s.self_cost).sum::<u64>(),
        f_profile.root_cost,
        "E16: per-stage self costs must partition the root cost"
    );
    assert_eq!(
        f_profile
            .stages
            .iter()
            .map(|s| s.crit_self_cost)
            .sum::<u64>(),
        f_profile.crit_cost,
        "E16: critical-path self costs must partition the critical cost"
    );
    assert!(f_profile.crit_cost <= f_profile.root_cost);

    let tail = tail_attribution(&f_traces, 95.0).expect("E16: a served corpus has a tail");
    assert!(tail.tail_traces >= 1);
    assert_eq!(
        tail.dominant.iter().map(|(_, n)| n).sum::<u64>(),
        tail.tail_traces,
        "E16: every tail trace has a dominant stage"
    );
    assert_eq!(
        tail.split.iter().map(|(_, n)| n).sum::<u64>(),
        tail.tail_traces,
        "E16: every tail trace lands in a rung/family bucket"
    );

    // The diff isolates what the faults cost: positive overhead, and
    // the retries the metrics counted surface as extra rung spans.
    let diff = ProfileDiff::between(&clean_profile, &f_profile);
    assert!(
        diff.overhead() > 0,
        "E16: the faulted regime must cost more than the clean one"
    );
    assert!(f_m.retries > 0, "E16: the faulted regime must retry");
    let rungs = |p: &Profile| p.stage("rung").map_or(0, |s| s.spans);
    assert!(
        rungs(&f_profile) > rungs(&clean_profile),
        "E16: retries and degradations must add rung spans"
    );

    let mut t = Table::new([
        "stage",
        "spans",
        "total",
        "self",
        "crit spans",
        "crit self",
        "crit share",
    ])
    .title("E16 — per-stage critical-path attribution (faulted regime, retail, N=120)");
    for s in &f_profile.stages {
        t.row([
            s.name.clone(),
            s.spans.to_string(),
            s.total_cost.to_string(),
            s.self_cost.to_string(),
            s.crit_spans.to_string(),
            s.crit_self_cost.to_string(),
            pct(s.crit_self_cost as f64 / f_profile.crit_cost as f64),
        ]);
    }
    t
}

/// E11 — WTQ-style answer-denotation accuracy (§6): "given the
/// question and the table, the task is to answer the question based on
/// the table". The laxest metric: any SQL that denotes the right
/// answer counts, which is how heterogeneous system families were ever
/// comparable on WikiTableQuestions.
pub fn e11_answer_denotation(seed: u64) -> Table {
    let mut t = Table::new(["domain", "denotation acc", "execution acc", "laxness gain"])
        .title("E11 — answer-denotation vs execution accuracy (WTQ metric, §6)");
    for (i, name) in DOMAIN_NAMES.iter().enumerate() {
        let setup = setup_domain(name, seed.wrapping_add(i as u64), 0);
        let examples = nlidb_benchdata::wtq_like(
            &setup.db,
            &setup.slots,
            seed.wrapping_add(300 + i as u64),
            48,
        );
        let lexicon = Lexicon::business_default();
        let mut denot = EvalOutcome::default();
        let mut exec = EvalOutcome::default();
        for (j, ex) in examples.iter().enumerate() {
            // Mild paraphrase: systems answer differently-shaped SQL,
            // which is where the denotation metric's laxness matters.
            let question = nlidb_benchdata::paraphrase(
                &ex.question,
                &ex.protected,
                1,
                &lexicon,
                seed ^ j as u64,
            );
            let pred = setup
                .pipeline
                .interpreter(InterpreterKind::Entity)
                .best(&question, setup.pipeline.context());
            match pred {
                Some(p) => {
                    let rs = execute(&setup.db, &p.sql).ok();
                    denot.record(
                        true,
                        rs.as_ref()
                            .map(|rs| nlidb_benchdata::answer_match(&ex.answer, rs))
                            .unwrap_or(false),
                    );
                    exec.record(true, execution_match(&setup.db, &ex.gold_sql, &p.sql));
                }
                None => {
                    denot.record(false, false);
                    exec.record(false, false);
                }
            }
        }
        t.row([
            name.to_string(),
            pct(denot.recall()),
            pct(exec.recall()),
            format!("{:+.1}pp", (denot.recall() - exec.recall()) * 100.0),
        ]);
    }
    t
}

/// What one multi-tenant E17 pass produced: the global completion
/// stream, which tenant owns each request id, and per-tenant
/// metrics/journal digests.
struct E17Run {
    sigs: Vec<String>,
    /// Request id → owning tenant index (ids are submission order, so
    /// this is exactly the interleaved stream's ownership sequence).
    owner: Vec<usize>,
    per_tenant: Vec<nlidb_serve::MetricsSnapshot>,
    journals: Vec<Vec<(u64, usize)>>,
    global: nlidb_serve::MetricsSnapshot,
}

const E17_REQUESTS_PER_TENANT: usize = 48;
const E17_WORKERS: usize = 4;
const E17_BATCH: usize = 16;

/// One multi-tenant serving pass: the first `tenants` benchdata
/// domains registered over one shared join-path cache, their seeded
/// streams interleaved deterministically, driven closed-loop through a
/// single [`nlidb_serve::TenantServer`]. `budgets[i]` (where present)
/// becomes tenant i's admission budget.
fn e17_multi_run(seed: u64, tenants: usize, budgets: &[Option<u64>]) -> E17Run {
    use nlidb_ontology::JoinPathCache;
    use nlidb_serve::{
        run_closed_loop_tenants, tenant_pipeline, Clock, ManualClock, ServerConfig, TenantPolicy,
        TenantRegistry, TenantServer,
    };
    use std::sync::Arc;

    let cache = Arc::new(JoinPathCache::new(256));
    let mut registry = TenantRegistry::new();
    let mut fps = Vec::with_capacity(tenants);
    let mut streams = Vec::with_capacity(tenants);
    for (i, name) in DOMAIN_NAMES.iter().take(tenants).enumerate() {
        let db = nlidb_benchdata::domain_database(name, seed.wrapping_add(i as u64));
        let slots = derive_slots(&db);
        let (fp, pipeline) = tenant_pipeline(&db, &cache);
        registry.register(
            *name,
            pipeline,
            TenantPolicy {
                admission_budget: budgets.get(i).copied().flatten(),
                ..TenantPolicy::default()
            },
        );
        streams.push((
            fp,
            nlidb_benchdata::request_stream(
                &slots,
                seed.wrapping_add(i as u64),
                E17_REQUESTS_PER_TENANT,
                0.25,
            ),
        ));
        fps.push(fp);
    }
    let interleaved = nlidb_benchdata::interleave_streams(seed, streams);
    let owner: Vec<usize> = interleaved
        .iter()
        .map(|(fp, _)| fps.iter().position(|f| f == fp).expect("registered"))
        .collect();
    let clock = Arc::new(ManualClock::new());
    let mut server = TenantServer::start(
        &registry,
        ServerConfig {
            workers: E17_WORKERS,
            queue_capacity: interleaved.len(),
            interp_cache: 256,
            service_estimate: 1,
            ..ServerConfig::default()
        },
        clock.clone() as Arc<dyn Clock>,
    );
    let sigs = run_closed_loop_tenants(&mut server, &clock, &interleaved, E17_BATCH).signatures();
    let per_tenant = fps
        .iter()
        .map(|&fp| server.tenant_metrics(fp).expect("registered"))
        .collect();
    let journals = fps
        .iter()
        .map(|&fp| {
            let j = server.journal(fp).expect("registered");
            j.sessions().iter().map(|&s| (s, j.turn_count(s))).collect()
        })
        .collect();
    E17Run {
        sigs,
        owner,
        per_tenant,
        journals,
        global: server.shutdown(),
    }
}

/// One isolated single-tenant pass over domain `i`: the same stream,
/// config, and closed-loop cadence as the multi-tenant run, on a
/// private [`nlidb_serve::Server`]. E17's baseline.
fn e17_isolated_run(
    seed: u64,
    i: usize,
    queue_capacity: usize,
) -> (Vec<String>, nlidb_serve::MetricsSnapshot, Vec<(u64, usize)>) {
    use nlidb_core::pipeline::{NliPipeline, SchemaContext};
    use nlidb_ontology::JoinPathCache;
    use nlidb_serve::{run_closed_loop, Clock, ManualClock, Server, ServerConfig};
    use std::sync::Arc;

    let db = nlidb_benchdata::domain_database(DOMAIN_NAMES[i], seed.wrapping_add(i as u64));
    let slots = derive_slots(&db);
    let join_cache = Arc::new(JoinPathCache::new(256));
    let mut ctx = SchemaContext::build(&db);
    ctx.graph = ctx.graph.clone().with_cache(Arc::clone(&join_cache));
    let pipeline = Arc::new(NliPipeline::with_context(&db, ctx));
    let stream = nlidb_benchdata::request_stream(
        &slots,
        seed.wrapping_add(i as u64),
        E17_REQUESTS_PER_TENANT,
        0.25,
    );
    let clock = Arc::new(ManualClock::new());
    let mut server = Server::start(
        pipeline,
        ServerConfig {
            workers: E17_WORKERS,
            queue_capacity,
            interp_cache: 256,
            service_estimate: 1,
            ..ServerConfig::default()
        },
        clock.clone() as Arc<dyn Clock>,
    );
    let sigs = run_closed_loop(&mut server, &clock, &stream, E17_BATCH).signatures();
    let journal: Vec<(u64, usize)> = {
        let j = server.journal();
        j.sessions().iter().map(|&s| (s, j.turn_count(s))).collect()
    };
    (sigs, server.shutdown(), journal)
}

/// Rewrite a signature's request id to the per-tenant rank `rank`: a
/// tenant's k-th completion in the shared runtime carries a global id,
/// while the isolated baseline numbered the same request k — the rest
/// of the digest must match byte for byte.
fn e17_relabel(sig: &str, rank: usize) -> String {
    let rest = sig.split_once(' ').map(|(_, r)| r).unwrap_or("");
    format!("#{rank} {rest}")
}

/// Every placement-independent counter of a snapshot, for cross-run
/// equality (`max_queue_depth` and `per_worker` legitimately differ
/// between a shared and an isolated pool).
fn e17_scalars(m: &nlidb_serve::MetricsSnapshot) -> [u64; 22] {
    [
        m.submitted,
        m.admitted,
        m.shed_full,
        m.shed_deadline,
        m.quota_refused,
        m.answered,
        m.refused,
        m.session_turns,
        m.interp_hits,
        m.interp_misses,
        m.retries,
        m.retry_backoff_ticks,
        m.breaker_trips,
        m.breaker_skips,
        m.degraded,
        m.worker_deaths,
        m.crashed_requests,
        m.readmitted,
        m.readmit_refused,
        m.sessions_recovered,
        m.turns_replayed,
        m.replay_divergence,
    ]
}

/// E17 — multi-tenant sharding isolation: the §7 enterprise challenge
/// of one NLI runtime fronting many databases. A shared
/// [`nlidb_serve::TenantServer`] over N benchdata domains must be
/// *indistinguishable*, per tenant, from N isolated single-tenant
/// servers: after rewriting global request ids to per-tenant ranks,
/// every tenant's completion stream, placement-independent counters,
/// and journal digest are asserted equal to its isolated baseline —
/// and the whole shared run replays byte-identically. The quota rows
/// show per-tenant admission budgets refusing deterministically
/// without perturbing co-tenants.
pub fn e17_multi_tenant(seed: u64) -> Table {
    e17_multi_tenant_with(seed, 6)
}

/// [`e17_multi_tenant`] over the first `tenants` benchdata domains
/// (2..=6; the committed table uses all six).
pub fn e17_multi_tenant_with(seed: u64, tenants: usize) -> Table {
    assert!(
        (2..=DOMAIN_NAMES.len()).contains(&tenants),
        "E17 needs 2..=6 tenants"
    );
    let mut t = Table::new([
        "tenant",
        "requests",
        "answered",
        "turns",
        "quota refused",
        "interp hit",
        "vs isolated",
    ])
    .title(format!(
        "E17 — multi-tenant sharding ({tenants} tenants, one runtime vs isolated runs)"
    ));
    let run = e17_multi_run(seed, tenants, &[]);
    // The headline invariant, part 2: the shared run replays
    // byte-identically — stream, counters, everything.
    let rerun = e17_multi_run(seed, tenants, &[]);
    assert_eq!(run.sigs, rerun.sigs, "E17: rerun diverged");
    assert_eq!(run.global, rerun.global, "E17: rerun metrics diverged");
    let total = tenants * E17_REQUESTS_PER_TENANT;
    // Part 1: each tenant's slice of the shared run is its isolated run.
    for (i, name) in DOMAIN_NAMES.iter().take(tenants).enumerate() {
        let tenant_sigs: Vec<String> = run
            .sigs
            .iter()
            .enumerate()
            .filter(|&(id, _)| run.owner[id] == i)
            .enumerate()
            .map(|(rank, (_, sig))| e17_relabel(sig, rank))
            .collect();
        let (iso_sigs, iso_m, iso_j) = e17_isolated_run(seed, i, total);
        assert_eq!(
            tenant_sigs, iso_sigs,
            "E17: {name} answered differently shared vs isolated"
        );
        let m = &run.per_tenant[i];
        assert_eq!(
            e17_scalars(m),
            e17_scalars(&iso_m),
            "E17: {name} counters diverged shared vs isolated"
        );
        assert_eq!(
            run.journals[i], iso_j,
            "E17: {name} journal diverged shared vs isolated"
        );
        t.row([
            name.to_string(),
            m.submitted.to_string(),
            m.answered.to_string(),
            m.session_turns.to_string(),
            m.quota_refused.to_string(),
            pct(m.interp_hit_rate()),
            "identical".to_string(),
        ]);
    }
    t.row([
        "all (one runtime)".to_string(),
        run.global.submitted.to_string(),
        run.global.answered.to_string(),
        run.global.session_turns.to_string(),
        run.global.quota_refused.to_string(),
        pct(run.global.interp_hit_rate()),
        "rerun byte-identical".to_string(),
    ]);
    // Quota regime: halve tenant 0's budget; its overflow is refused
    // deterministically while every co-tenant's stream is untouched.
    let budget = (E17_REQUESTS_PER_TENANT / 2) as u64;
    let budgeted = e17_multi_run(seed, tenants, &[Some(budget)]);
    let b0 = &budgeted.per_tenant[0];
    assert_eq!(b0.admitted, budget, "E17: budget not enforced");
    assert_eq!(
        b0.quota_refused,
        E17_REQUESTS_PER_TENANT as u64 - budget,
        "E17: overflow not refused as quota"
    );
    for (i, name) in DOMAIN_NAMES.iter().take(tenants).enumerate().skip(1) {
        let slice = |r: &E17Run| -> Vec<String> {
            r.sigs
                .iter()
                .enumerate()
                .filter(|&(id, _)| r.owner[id] == i)
                .map(|(_, s)| s.clone())
                .collect()
        };
        assert_eq!(
            slice(&run),
            slice(&budgeted),
            "E17: {name}'s stream perturbed by a co-tenant's quota"
        );
    }
    t.row([
        format!("{} (budget {budget})", DOMAIN_NAMES[0]),
        b0.submitted.to_string(),
        b0.answered.to_string(),
        b0.session_turns.to_string(),
        b0.quota_refused.to_string(),
        pct(b0.interp_hit_rate()),
        "budget enforced".to_string(),
    ]);
    let co_submitted: u64 = budgeted.per_tenant[1..].iter().map(|m| m.submitted).sum();
    let co_answered: u64 = budgeted.per_tenant[1..].iter().map(|m| m.answered).sum();
    let co_turns: u64 = budgeted.per_tenant[1..]
        .iter()
        .map(|m| m.session_turns)
        .sum();
    t.row([
        "co-tenants under quota".to_string(),
        co_submitted.to_string(),
        co_answered.to_string(),
        co_turns.to_string(),
        "0".to_string(),
        "-".to_string(),
        "unchanged".to_string(),
    ]);
    t
}

/// Per-rung tick accounting for one E18 corpus pass, plus the
/// concatenation of every `EXPLAIN` rendering in corpus order, so a
/// second pass can be compared wholesale for byte-identity.
#[derive(PartialEq, Eq)]
pub struct EnginePass {
    /// Gold queries executed per §3 rung ([`ComplexityClass::all`] order).
    pub queries: [u64; 4],
    /// Row-engine logical ticks per rung.
    pub row_ticks: [u64; 4],
    /// Batch-engine logical ticks per rung.
    pub batch_ticks: [u64; 4],
    /// Every plan rendering, concatenated in corpus order.
    pub explains: String,
}

/// Execute the full spider-like gold corpus (six domains × 48 queries)
/// through *both* engines, asserting per query that the batch engine's
/// result is row-identical to the row-at-a-time oracle (and bag-equal,
/// the execution-accuracy notion), and accumulating logical ticks per
/// complexity rung. Shared by E18 and the perf-drift gate.
pub fn engine_corpus_pass(seed: u64) -> EnginePass {
    let mut pass = EnginePass {
        queries: [0; 4],
        row_ticks: [0; 4],
        batch_ticks: [0; 4],
        explains: String::new(),
    };
    for (i, name) in DOMAIN_NAMES.iter().enumerate() {
        let db = domain_database(name, seed.wrapping_add(i as u64));
        let slots = derive_slots(&db);
        for pair in spider_like(&slots, seed.wrapping_add(1000 + i as u64), 48) {
            let (row_rs, row_stats) = execute_rowwise_with_stats(&db, &pair.sql)
                .unwrap_or_else(|e| panic!("E18: row engine failed on {}: {e}", pair.id));
            let (batch_rs, batch_stats) = execute_with_stats(&db, &pair.sql)
                .unwrap_or_else(|e| panic!("E18: batch engine failed on {}: {e}", pair.id));
            assert!(
                batch_rs.unordered_eq(&row_rs),
                "E18: engines disagree as bags on {}",
                pair.id
            );
            assert_eq!(
                batch_rs, row_rs,
                "E18: engines disagree on row order for {}",
                pair.id
            );
            let k = ComplexityClass::all()
                .iter()
                .position(|c| *c == pair.class)
                .expect("spider_like classifies every query");
            pass.queries[k] += 1;
            pass.row_ticks[k] += row_stats.ticks;
            pass.batch_ticks[k] += batch_stats.ticks;
            pass.explains.push_str(&explain(&db, &pair.sql).render());
        }
    }
    pass
}

/// E18 — engine equivalence and vectorization payoff. The batch
/// engine (the default [`nlidb_engine::execute`]) must return exactly
/// the oracle's rows — identical order *and* bag-equal — on every
/// gold query of the full spider-like corpus, while spending fewer
/// logical ticks on the join rung its hash paths vectorize. A second
/// full pass (results, tick totals, and every `EXPLAIN` rendering) is
/// asserted byte-identical to the first.
pub fn e18_engine_equivalence(seed: u64) -> Table {
    let pass = engine_corpus_pass(seed);
    let rerun = engine_corpus_pass(seed);
    assert!(pass == rerun, "E18: rerun diverged");
    let join = ComplexityClass::all()
        .iter()
        .position(|c| *c == ComplexityClass::MultiTableJoin)
        .expect("ladder has a join rung");
    assert!(
        pass.batch_ticks[join] < pass.row_ticks[join],
        "E18: batch engine must beat the row oracle on the join rung \
         ({} >= {})",
        pass.batch_ticks[join],
        pass.row_ticks[join]
    );
    let mut t = Table::new([
        "rung",
        "queries",
        "row ticks",
        "batch ticks",
        "batch/row",
        "results",
    ])
    .title("E18 — engine equivalence (batch vs row-oracle ticks per §3 rung)");
    for (k, class) in ComplexityClass::all().iter().enumerate() {
        t.row([
            class.label().to_string(),
            pass.queries[k].to_string(),
            pass.row_ticks[k].to_string(),
            pass.batch_ticks[k].to_string(),
            format!(
                "{:.2}×",
                pass.batch_ticks[k] as f64 / pass.row_ticks[k] as f64
            ),
            "identical".to_string(),
        ]);
    }
    let (q, r, b) = (
        pass.queries.iter().sum::<u64>(),
        pass.row_ticks.iter().sum::<u64>(),
        pass.batch_ticks.iter().sum::<u64>(),
    );
    t.row([
        "all".to_string(),
        q.to_string(),
        r.to_string(),
        b.to_string(),
        format!("{:.2}×", b as f64 / r as f64),
        "rerun byte-identical".to_string(),
    ]);
    t
}

/// E19 — the candidate-validation payoff (the §6 guardrail claim:
/// interpretations should be *proposed, checked, and approved*, not
/// executed on faith). On the E4 regime (six domains, mixed
/// complexity × paraphrase), each family answers every question two
/// ways: pick-first (execute the top-confidence interpretation) and
/// approved ([`nlidb_core::pipeline::NliPipeline::ask_approved`]:
/// rerank the candidate set, validate each candidate against schema,
/// grounding, shape, and cost *before* execution, execute the first
/// survivor). Precision is over answered questions, so the lift comes
/// from two effects: vetoing every candidate of an unanswerable
/// reading (the answer becomes a refusal instead of a wrong table) and
/// rescuing a lower-ranked valid reading ("rescued"). The whole pass
/// runs twice and is asserted byte-identical.
pub fn e19_candidate_validation(seed: u64) -> Table {
    use nlidb_core::InterpretError;

    #[derive(Default, Clone, Copy)]
    struct Tally {
        questions: usize,
        candidates: usize,
        rescued: usize,
        vetoed: usize,
    }
    let build = || {
        let mut pick: HashMap<InterpreterKind, EvalOutcome> = HashMap::new();
        let mut appr: HashMap<InterpreterKind, EvalOutcome> = HashMap::new();
        let mut tally: HashMap<InterpreterKind, Tally> = HashMap::new();
        for (i, name) in DOMAIN_NAMES.iter().enumerate() {
            let setup = setup_domain(name, seed.wrapping_add(i as u64), 200);
            let base = spider_like(&setup.slots, seed.wrapping_add(600 + i as u64), 40);
            // Mix paraphrase levels question-by-question, as E4 does.
            let mut suite = Vec::new();
            for (j, p) in base.iter().enumerate() {
                let level = (j % 4) as u8;
                suite.extend(paraphrased(std::slice::from_ref(p), level, seed ^ j as u64));
            }
            // Unanswerable probes — the §6 guardrail case: every 4th
            // question re-asked with its protected value swapped for a
            // quoted string the database does not hold. There is no
            // right answer; a family that executes anyway pays
            // precision, while validation vetoes the ungrounded
            // literal and refuses. Gold stays the original query, so
            // an executed probe can never count as correct.
            let probes: Vec<_> = base
                .iter()
                .enumerate()
                .filter(|(j, p)| {
                    j % 4 == 0
                        && p.protected
                            .first()
                            .is_some_and(|v| p.question.contains(v.as_str()))
                })
                .map(|(j, p)| {
                    let v = p.protected.first().expect("filtered on a value");
                    let mut q = p.clone();
                    q.question = q.question.replace(v.as_str(), &format!("'zorblatt{j}'"));
                    q
                })
                .collect();
            suite.extend(probes);
            for kind in InterpreterKind::all() {
                pick.entry(kind)
                    .or_default()
                    .merge(evaluate(&setup, kind, &suite));
                let a = appr.entry(kind).or_default();
                let t = tally.entry(kind).or_default();
                for pair in &suite {
                    t.questions += 1;
                    match setup.pipeline.ask_approved(&pair.question, kind) {
                        Ok(ap) => {
                            let ok = execution_match(&setup.db, &pair.sql, &ap.answer.query);
                            a.record(true, ok);
                            t.candidates += ap.report.candidate_count;
                            t.vetoed += ap.report.vetoed_count();
                            if ap.report.chosen_rank > 0 {
                                t.rescued += 1;
                            }
                        }
                        Err(InterpretError::AllCandidatesRejected { count, .. }) => {
                            a.record(false, false);
                            t.candidates += count;
                            t.vetoed += count;
                        }
                        Err(_) => a.record(false, false),
                    }
                }
            }
        }
        let mut t = Table::new([
            "interpreter",
            "cands/q",
            "pick-first prec",
            "approved prec",
            "Δ prec",
            "rescued",
            "rejected",
        ])
        .title("E19 — candidate validation (§6 guardrails) vs pick-first execution");
        for kind in InterpreterKind::all() {
            let (p, a, y) = (pick[&kind], appr[&kind], tally[&kind]);
            t.row([
                kind.label().to_string(),
                format!("{:.2}", y.candidates as f64 / y.questions as f64),
                pct(p.precision()),
                pct(a.precision()),
                format!("{:+.1}pp", (a.precision() - p.precision()) * 100.0),
                y.rescued.to_string(),
                y.vetoed.to_string(),
            ]);
        }
        t
    };
    let (first, rerun) = (build(), build());
    assert_eq!(
        first.to_string(),
        rerun.to_string(),
        "E19: rerun must be byte-identical"
    );
    first
}

/// The soak scale E20 runs at: large enough that any per-request
/// accumulation in the open-loop driver would be unmissable, small
/// enough that the doubled (determinism) runs keep the harness fast.
const E20_REQUESTS: usize = 100_000;

/// E20 — soak-scale open loop: the §7 "NLIs must grow into
/// multi-user systems" challenge taken to its operational limit.
/// Five seeded load shapes (zipfian popularity skew, flash-crowd
/// bursts, long CoSQL-shaped sessions, a tenant-skewed mix, and a
/// schedule that deliberately outruns the overload watermark) each
/// stream 10⁵ requests through the open-loop driver, which folds
/// completions into a bounded [`nlidb_serve::SoakReport`] as they
/// drain. Every regime runs twice and the summaries — counters,
/// latency sketch percentiles, rolling signature digest — are
/// asserted byte-identical. The overload regime additionally proves
/// robustness, not collapse: episodes open under pressure and every
/// one closes at a drain; shedding targets learned-expensive repeats;
/// and an audited replay shows each *served* answer byte-identical to
/// an unloaded closed-loop oracle — overload changes which requests
/// get answered, never what an answer says.
pub fn e20_soak(seed: u64) -> Table {
    e20_soak_with(seed, E20_REQUESTS)
}

/// [`e20_soak`] at an explicit request count — the `--soak-requests`
/// knob of the `experiments` binary; CI smokes the regime at 10⁴.
pub fn e20_soak_with(seed: u64, requests: usize) -> Table {
    use crate::soak::{run_soak_shape, SOAK_SHAPES};

    let mut t = Table::new([
        "shape",
        "requests",
        "served",
        "shed",
        "p50",
        "p95",
        "p99",
        "served/ktick",
        "episodes",
        "repeat ==",
    ])
    .title("E20 — soak-scale open loop: throughput/latency trajectory & overload robustness");
    for shape in SOAK_SHAPES {
        let first = run_soak_shape(shape, seed, requests);
        let rerun = run_soak_shape(shape, seed, requests);
        assert_eq!(
            first.summary_line(),
            rerun.summary_line(),
            "E20 {shape}: soak rerun must be byte-identical"
        );
        let r = &first.report;
        let m = &first.metrics;
        assert_eq!(
            r.served() + r.refused + r.shed + r.deadline_exceeded,
            r.requests,
            "E20 {shape}: every request is accounted for"
        );
        if shape == "overload" {
            assert!(m.overload_entered > 0, "E20: pressure must open episodes");
            assert_eq!(
                m.overload_entered, m.overload_recovered,
                "E20: every overload episode must close at a drain"
            );
            assert!(m.shed_overload > 0, "E20: learned repeats must be shed");
            assert_eq!(r.shed, m.shed_overload, "E20: overload is the only shedder");
        } else {
            assert_eq!(r.shed, 0, "E20 {shape}: no shedding without pressure");
            assert_eq!(r.refused, 0, "E20 {shape}: no refusals in a clean regime");
        }
        if let Some((stored, sampled_out)) = first.spans {
            assert!(
                stored <= 64,
                "E20 {shape}: sampled sink must hold its bound, stored {stored}"
            );
            assert!(
                sampled_out > 0,
                "E20 {shape}: soak-scale tracing must actually sample"
            );
        }
        let p = |q: f64| {
            r.latency
                .percentile(q)
                .map_or("-".into(), |v| v.to_string())
        };
        t.row([
            shape.to_string(),
            r.requests.to_string(),
            r.served().to_string(),
            r.shed.to_string(),
            p(50.0),
            p(95.0),
            p(99.0),
            (r.served() * 1000 / r.ticks.max(1)).to_string(),
            m.overload_entered.to_string(),
            "yes".to_string(),
        ]);
    }
    // The fidelity audit: the overload regime's served subset is
    // answer-identical to the unloaded oracle, request by request.
    let (served, shed, n) = crate::soak::overload_prefix_audit(seed, requests);
    t.row([
        "overload audit".to_string(),
        n.to_string(),
        served.to_string(),
        shed.to_string(),
        "-".to_string(),
        "-".to_string(),
        "-".to_string(),
        "-".to_string(),
        "-".to_string(),
        "≡ oracle".to_string(),
    ]);
    t
}

/// The health configuration every E21 regime runs under: 4-tick
/// windows in a 64-window ring (no regime outruns it, so eviction is
/// zero and retained sums must equal totals outright), a 99.0%
/// availability objective and a 95.0% / 8-tick latency objective,
/// burn over a (2, 4)-window short/long pair, firing at 300 milli.
/// The fire threshold is sized to the faulted regime's arithmetic
/// floor: one refusal anywhere in the 4-window long span (at most
/// 256 completions) yields ⌊1000/256⌋ = 3 milli of bad share, i.e. a
/// burn of 300 against the 10-milli budget — so a single refusal is
/// guaranteed to fire, at any seed.
fn e21_health_config() -> nlidb_serve::HealthConfig {
    nlidb_serve::HealthConfig {
        window_ticks: 4,
        windows: 64,
        availability_target_milli: 990,
        latency_target_milli: 950,
        latency_threshold_ticks: 8,
        short_windows: 2,
        long_windows: 4,
        fire_burn_milli: 300,
    }
}

/// What one E21 regime pass produced: the cumulative counters it must
/// reconcile against, the hub renderings it must replay byte-for-byte,
/// and the table row ingredients.
struct E21Pass {
    metrics: nlidb_serve::MetricsSnapshot,
    /// `HealthHub::render_all()` — window matrix + event log.
    health_render: String,
    /// JSONL export of the *health* traces only (ids ≥
    /// [`nlidb_obs::HEALTH_TRACE_BASE`]). Health traces are stamped at
    /// drain ticks by the single-threaded submitter, so they replay
    /// byte-identically even under the open loop, where request span
    /// ticks depend on when a worker reads the advancing clock (which
    /// is why E20 bounds the sink but never byte-compares it — only
    /// the closed loop's request traces are byte-stable, E14's claim).
    health_jsonl: String,
    /// The trace sink's full JSONL export (requests + health traces);
    /// byte-compared only for the closed-loop faulted regime.
    trace_jsonl: String,
    /// Per-window merged series (throughput / p99 / burn).
    windows: Vec<nlidb_serve::WindowSample>,
    /// (fired, cleared) health-event counts.
    events: (u64, u64),
    obs: nlidb_serve::ServeObs,
}

impl E21Pass {
    fn capture(obs: nlidb_serve::ServeObs, metrics: nlidb_serve::MetricsSnapshot) -> E21Pass {
        let hub = obs.health.clone().expect("E21 runs with a health hub");
        let mut fired = 0;
        let mut cleared = 0;
        for (_, event) in hub.events() {
            match event.kind {
                nlidb_obs::HealthEventKind::Fired => fired += 1,
                nlidb_obs::HealthEventKind::Cleared => cleared += 1,
            }
        }
        let health_jsonl: String = obs
            .sink
            .traces()
            .iter()
            .filter(|t| t.id >= nlidb_obs::HEALTH_TRACE_BASE)
            .map(|t| format!("{}\n", t.to_json()))
            .collect();
        E21Pass {
            metrics,
            health_render: hub.render_all(),
            health_jsonl,
            trace_jsonl: obs.sink.export_jsonl(),
            windows: hub.window_series(),
            events: (fired, cleared),
            obs,
        }
    }

    /// The acceptance invariant: per-window sums reconcile *exactly*
    /// with the cumulative serve counters — for every series,
    /// retained window deltas + evicted spill == the windowed total
    /// == the atomic counter the server kept independently.
    fn reconcile(&self, label: &str) {
        let hub = self.obs.health.clone().expect("hub");
        let scope = hub
            .scope_snapshot("default")
            .expect("single-tenant regimes feed the `default` scope");
        let m = &self.metrics;
        let expect = [
            ("answered", m.answered),
            ("session", m.session_turns),
            ("degraded", m.degraded),
            ("refused", m.refused),
            ("shed", m.shed_full + m.shed_cost + m.shed_overload),
            ("deadline", m.shed_deadline),
        ];
        for (name, want) in expect {
            let counter = scope.counter_ref(name);
            let total = counter.map_or(0, |c| c.total());
            assert_eq!(
                total, want,
                "E21 {label}: windowed `{name}` total must equal the cumulative counter"
            );
            if let Some(c) = counter {
                assert_eq!(
                    c.retained_sum() + c.evicted(),
                    c.total(),
                    "E21 {label}: `{name}` ring must account for every recorded unit"
                );
            }
        }
        let served = m.answered + m.session_turns + m.degraded;
        let sojourn = scope.histogram_ref("sojourn");
        assert_eq!(
            sojourn.map_or(0, |h| h.total_count()),
            served,
            "E21 {label}: every served completion records exactly one sojourn"
        );
        if let Some(h) = sojourn {
            assert_eq!(
                h.retained_count() + h.evicted_count(),
                h.total_count(),
                "E21 {label}: sojourn ring must account for every sample"
            );
        }
        let from_windows: u64 = self.windows.iter().map(|w| w.served).sum();
        assert_eq!(
            from_windows, served,
            "E21 {label}: the merged window series must sum to the served count"
        );
    }

    fn burn_max(&self) -> u64 {
        self.windows.iter().map(|w| w.burn_milli).max().unwrap_or(0)
    }
}

/// The E21 clean regime: the zipfian open loop (arrivals decoupled
/// from drains, sojourns 1–4 ticks) with zero refusals and zero
/// sheds — burn must stay at exactly 0 and no health event may fire.
fn e21_clean_run(seed: u64) -> (E21Pass, u64) {
    use nlidb_serve::{run_open_loop, OpenLoopConfig, ServeObs};
    const N: usize = 2000;
    let obs = ServeObs::with_health(N + 64, 1, e21_health_config());
    let (mut server, clock) = crate::soak::retail_server(seed, None, Some(obs.clone()));
    let stream = nlidb_benchdata::zipfian_stream(crate::soak::retail_pool(seed), seed, N, 1.2);
    let report = run_open_loop(
        &mut server,
        &clock,
        stream,
        OpenLoopConfig {
            arrivals_per_tick: 8,
            drain_every: 4,
        },
    );
    let metrics = server.shutdown();
    assert_eq!(report.requests, N as u64, "E21 clean: stream fully drained");
    (E21Pass::capture(obs, metrics), N as u64)
}

/// The E21 faulted regime: E13's seeded retail stream, submitted
/// *twice* (640 requests, ids 0–639), with `Fatal { depth: 4 }` —
/// ladder exhaustion, so a refusal — pinned on a dense window of
/// clean-run-fresh ids in the first copy. The refusal burst drives
/// availability burn over the fire threshold; the second, fault-free
/// copy starves the short window back to zero, so the engine must
/// fire *and* clear within the run, at any seed.
fn e21_faulted_run(seed: u64) -> (E21Pass, u64) {
    use nlidb_benchdata::{FaultKind, FaultPlan};
    use nlidb_core::pipeline::NliPipeline;
    use nlidb_serve::{
        fault_plan_hook, run_closed_loop, Clock, ManualClock, ServeObs, Server, ServerConfig,
    };
    use std::sync::Arc;
    const N: usize = 320;

    // The clean pass pins the fault window on ids that actually reach
    // the hook (fresh singles) — the same freshness-transfer argument
    // E13 documents: faults only ever prevent caching, so a clean-run
    // fresh single stays fresh under faults.
    let (_, fresh, _) = e13_serve_run(seed, N, FaultPlan::none());
    assert!(
        fresh.len() >= 12,
        "E21 needs a dozen fresh singles to pin the outage on ({} found)",
        fresh.len()
    );
    let mut plan = FaultPlan::none();
    for id in fresh[0]..=fresh[11] {
        plan = plan.with(id, FaultKind::Fatal { depth: 4 });
    }

    let db = nlidb_benchdata::domain_database("retail", seed);
    let slots = derive_slots(&db);
    let pipeline = Arc::new(NliPipeline::standard(&db));
    let stream = nlidb_benchdata::request_stream(&slots, seed, N, 0.25);
    let doubled: Vec<_> = stream.iter().chain(stream.iter()).cloned().collect();
    let clock = Arc::new(ManualClock::new());
    let obs = ServeObs::with_health(2 * N + 64, 1, e21_health_config());
    let mut server = Server::start_observed(
        pipeline,
        ServerConfig {
            workers: 2,
            queue_capacity: 2 * N,
            ..ServerConfig::default()
        },
        clock.clone() as Arc<dyn Clock>,
        Some(fault_plan_hook(plan)),
        Some(obs.clone()),
    );
    let report = run_closed_loop(&mut server, &clock, &doubled, 16);
    let metrics = server.shutdown();
    assert_eq!(report.completions.len(), 2 * N, "E21 faulted: all drained");
    (E21Pass::capture(obs, metrics), 2 * N as u64)
}

/// The E21 overload regime: the E20 overload schedule with the
/// opt-in `early_warning` knob set — once the first shedding drain
/// pushes short-window availability burn past the threshold, every
/// later episode opens *below* the high watermark. Runs through the
/// signature audit, so every request the early-warning server still
/// serves is asserted answer-identical to the unloaded oracle.
fn e21_overload_run(seed: u64) -> (E21Pass, u64, u64) {
    use nlidb_serve::{OverloadPolicy, ServeObs};
    const N: usize = 2000;
    let obs = ServeObs::with_health(N + 64, 1, e21_health_config());
    let policy = OverloadPolicy {
        early_warning: Some(10_000),
        ..crate::soak::OVERLOAD_POLICY
    };
    let (served, shed, n, metrics) =
        crate::soak::overload_audit_observed(seed, N, policy, Some(obs.clone()));
    assert_eq!(served + shed, n, "E21 overload: audit accounts for all");
    assert!(
        metrics.overload_entered_early > 0,
        "E21: the burn signal must open episodes below the watermark"
    );
    assert!(
        metrics.overload_entered_early <= metrics.overload_entered,
        "E21: early openings are a subset of all openings"
    );
    assert_eq!(
        metrics.overload_entered, metrics.overload_recovered,
        "E21: every episode (early or not) must close at a drain"
    );
    (E21Pass::capture(obs, metrics), N as u64, shed as u64)
}

/// E21 — windowed telemetry & the deterministic SLO engine: §6's
/// "operate it, don't just answer" challenge made a replayable
/// property. Every drained completion lands in per-tenant fixed-width
/// logical-tick windows; an [`nlidb_obs::SloEngine`] computes rolling
/// error-budget burn over a short/long window pair and emits
/// fire/clear [`nlidb_obs::HealthEvent`]s into the same trace sink as
/// the requests. Three regimes (clean, faulted, overload with
/// `early_warning`) each run twice: window sums must reconcile
/// exactly with the cumulative serve counters, the health log, window
/// matrix, and full trace export must replay byte-identically, and
/// the early-warning controller must shed no request the unloaded
/// oracle answers differently.
pub fn e21_windowed_slo(seed: u64) -> Table {
    let mut t = Table::new([
        "regime",
        "requests",
        "served",
        "bad",
        "windows",
        "burn max",
        "fired",
        "cleared",
        "early",
        "repeat ==",
    ])
    .title("E21 — windowed telemetry & deterministic SLO burn-rate health");

    type RegimeRunner = fn(u64) -> (E21Pass, u64);
    let regimes: [(&str, RegimeRunner); 3] = [
        ("clean", e21_clean_run),
        ("faulted", e21_faulted_run),
        ("overload+early", |s| {
            let (pass, n, _) = e21_overload_run(s);
            (pass, n)
        }),
    ];
    for (label, run) in regimes {
        let (first, requests) = run(seed);
        let (rerun, _) = run(seed);
        assert_eq!(
            first.health_render, rerun.health_render,
            "E21 {label}: window matrix + health log must replay byte-identically"
        );
        assert_eq!(
            first.health_jsonl, rerun.health_jsonl,
            "E21 {label}: health traces in the sink must replay byte-identically"
        );
        if label == "faulted" {
            // The closed loop never advances the clock while a worker
            // holds a request, so even the *request* span ticks are
            // byte-stable — the full sink export must replay.
            assert_eq!(
                first.trace_jsonl, rerun.trace_jsonl,
                "E21 {label}: the full trace export must replay byte-identically"
            );
        }
        first.reconcile(label);

        let m = &first.metrics;
        let served = m.answered + m.session_turns + m.degraded;
        let bad = m.refused + m.shed_full + m.shed_cost + m.shed_overload + m.shed_deadline;
        let (fired, cleared) = first.events;
        match label {
            "clean" => {
                assert_eq!(bad, 0, "E21 clean: nothing sheds or refuses");
                assert_eq!(first.burn_max(), 0, "E21 clean: burn stays at zero");
                assert_eq!((fired, cleared), (0, 0), "E21 clean: no health events");
            }
            "faulted" => {
                assert!(m.refused >= 12, "E21 faulted: the pinned window refuses");
                assert!(fired >= 1, "E21 faulted: the refusal burst must fire");
                assert!(cleared >= 1, "E21 faulted: the clean tail must clear");
                let hub = first.obs.health.clone().expect("hub");
                assert!(
                    !hub.is_firing("default", "availability"),
                    "E21 faulted: availability must end the run healthy"
                );
            }
            "overload+early" => {
                assert!(bad > 0, "E21 overload: the schedule must shed");
                assert!(fired >= 1, "E21 overload: sustained burn must fire");
            }
            _ => unreachable!(),
        }
        t.row([
            label.to_string(),
            requests.to_string(),
            served.to_string(),
            bad.to_string(),
            first.windows.len().to_string(),
            first.burn_max().to_string(),
            fired.to_string(),
            cleared.to_string(),
            m.overload_entered_early.to_string(),
            "yes".to_string(),
        ]);
    }
    t
}
