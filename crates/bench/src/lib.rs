//! # nlidb-bench — the reproduction harness
//!
//! One function per experiment in `EXPERIMENTS.md` (E1–E10), each
//! returning a rendered [`nlidb_evalkit::Table`]. The `experiments`
//! binary prints them; the Criterion benches under `benches/` reuse
//! [`workloads`] for the latency measurements (B1–B5).

pub mod experiments;
pub mod workloads;

pub use experiments::{run_experiment, EXPERIMENT_IDS};
