//! # nlidb-bench — the reproduction harness
//!
//! One function per experiment in `EXPERIMENTS.md` (E1–E14), each
//! returning a rendered [`nlidb_evalkit::Table`]. The `experiments`
//! binary prints them; the Criterion benches under `benches/` reuse
//! [`workloads`] for the latency measurements (B1–B5) and drive the
//! serving runtime for the throughput-scaling bench (B6).

pub mod experiments;
pub mod workloads;

pub use experiments::{run_experiment, EXPERIMENT_IDS, EXPERIMENT_SUMMARIES};
