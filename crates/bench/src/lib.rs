//! # nlidb-bench — the reproduction harness
//!
//! One function per experiment in `EXPERIMENTS.md` (E1–E21), each
//! returning a rendered [`nlidb_evalkit::Table`]. The `experiments`
//! binary prints them; the `perfgate` binary renders the perf-drift
//! baseline (per-stage profiles, clean-vs-faulted diff, and metric
//! counters at a fixed seed) that `scripts/check_perf_drift.py`
//! byte-compares against `scripts/perf_baseline_seed42.txt`; the
//! `soak` binary drives the [`soak`] regimes open-loop and appends the
//! tracked throughput/latency trajectory to `BENCH_soak.json`; the
//! Criterion benches under `benches/` reuse [`workloads`] for the
//! latency measurements (B1–B5) and drive the serving runtime for the
//! throughput-scaling bench (B6).

pub mod experiments;
pub mod soak;
pub mod workloads;

pub use experiments::{
    e17_multi_tenant_with, e20_soak_with, run_experiment, EXPERIMENT_IDS, EXPERIMENT_SUMMARIES,
};
pub use soak::{
    overload_audit_observed, overload_prefix_audit, run_soak_shape, SoakOutcome, SOAK_SHAPES,
};
