//! Deterministic cardinality estimation and logical-cost `EXPLAIN`.
//!
//! [`explain`] walks the query AST against catalog row counts only —
//! no data inspection, no RNG, no wall-clock — so the same (database,
//! query) pair always renders the identical plan. Costs are quoted in
//! the same logical-tick currency as the batch engine's cost model
//! (vectorized operators amortize at `1 + n/64`, per-row fallbacks pay
//! row rate), which makes `est_cost` a usable admission signal: `serve`
//! sheds expensive plans first under pressure and enforces per-tenant
//! cost ceilings against it (see `serve::TenantPolicy`).
//!
//! The estimator is a *total* function: unknown tables estimate as
//! empty rather than erroring, so admission control never rejects a
//! query the engine could have answered with a proper error.

use nlidb_sqlir::ast::{BinOp, Expr, JoinKind, Query, SelectItem, TableSource};

use crate::catalog::Database;

/// A rendered logical plan with its estimates.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Explain {
    /// Structural plan-shape label from [`Query::shape`].
    pub shape: String,
    /// Estimated output rows.
    pub est_rows: u64,
    /// Estimated logical cost in ticks.
    pub est_cost: u64,
    lines: Vec<String>,
}

impl Explain {
    /// Deterministic multi-line plan rendering.
    pub fn render(&self) -> String {
        let mut out = format!(
            "EXPLAIN {} (est_rows={}, est_cost={})\n",
            self.shape, self.est_rows, self.est_cost
        );
        for l in &self.lines {
            out.push_str("  ");
            out.push_str(l);
            out.push('\n');
        }
        out
    }
}

/// Split a predicate into its AND-conjuncts.
fn conjuncts(e: &Expr) -> Vec<&Expr> {
    match e {
        Expr::Binary {
            left,
            op: BinOp::And,
            right,
        } => {
            let mut out = conjuncts(left);
            out.extend(conjuncts(right));
            out
        }
        other => vec![other],
    }
}

/// Selectivity divisor for one conjunct: `est_out = est_in / divisor`.
/// Coarse textbook defaults — equality is most selective, negations
/// barely filter.
fn selectivity_div(e: &Expr) -> u64 {
    match e {
        Expr::Binary { op, .. } => match op {
            BinOp::Eq => 4,
            BinOp::Lt | BinOp::LtEq | BinOp::Gt | BinOp::GtEq => 3,
            BinOp::NotEq => 2,
            BinOp::Or => 2,
            _ => 2,
        },
        Expr::Between { .. } => 3,
        Expr::InList { .. } | Expr::InSubquery { .. } => 3,
        Expr::Like { .. } => 2,
        Expr::IsNull { .. } => 5,
        Expr::Exists { .. } => 2,
        Expr::Unary { .. } => 2,
        _ => 2,
    }
}

/// Does the ON condition carry at least one column-to-column equality
/// (the executor's hash-join trigger)?
fn has_equi(on: &Expr) -> bool {
    conjuncts(on).iter().any(|c| {
        matches!(
            c,
            Expr::Binary {
                left,
                op: BinOp::Eq,
                right
            } if matches!((left.as_ref(), right.as_ref()), (Expr::Column(_), Expr::Column(_)))
        )
    })
}

fn vec_op(n: u64) -> u64 {
    1 + n / 64
}

/// Scale `est` down by `div`, never estimating a non-empty input to
/// zero rows.
fn scale_down(est: u64, div: u64) -> u64 {
    if est == 0 {
        0
    } else {
        (est / div).max(1)
    }
}

/// Sub-queries reachable from scalar positions (WHERE/HAVING/SELECT) —
/// FROM/JOIN derived tables are costed by the source walk instead.
fn scalar_subqueries(q: &Query) -> Vec<&Query> {
    fn from_expr<'a>(e: &'a Expr, out: &mut Vec<&'a Query>) {
        match e {
            Expr::InSubquery { subquery, expr, .. } => {
                out.push(subquery);
                from_expr(expr, out);
            }
            Expr::Exists { subquery, .. } => out.push(subquery),
            Expr::ScalarSubquery(sq) => out.push(sq),
            Expr::Binary { left, right, .. } => {
                from_expr(left, out);
                from_expr(right, out);
            }
            Expr::Unary { expr, .. } => from_expr(expr, out),
            Expr::Between {
                expr, low, high, ..
            } => {
                from_expr(expr, out);
                from_expr(low, out);
                from_expr(high, out);
            }
            Expr::InList { expr, list, .. } => {
                from_expr(expr, out);
                for e in list {
                    from_expr(e, out);
                }
            }
            Expr::Agg { arg, .. } => {
                if let Some(a) = arg {
                    from_expr(a, out);
                }
            }
            Expr::Like { expr, .. } | Expr::IsNull { expr, .. } => from_expr(expr, out),
            Expr::Column(_) | Expr::Literal(_) => {}
        }
    }
    let mut out = Vec::new();
    if let Some(w) = &q.where_clause {
        from_expr(w, &mut out);
    }
    if let Some(h) = &q.having {
        from_expr(h, &mut out);
    }
    for s in &q.select {
        if let SelectItem::Expr { expr, .. } = s {
            from_expr(expr, &mut out);
        }
    }
    out
}

/// (rows, scan cost, descriptive line) for one FROM/JOIN source.
fn source_estimate(db: &Database, source: &TableSource, lines: &mut Vec<String>) -> (u64, u64) {
    match source {
        TableSource::Table { name, .. } => match db.table(name) {
            Ok(t) => {
                let n = t.rows.len() as u64;
                let width = t.schema.columns.len() as u64;
                lines.push(format!("scan {name} (rows={n})"));
                (n, width * vec_op(n))
            }
            Err(_) => {
                lines.push(format!("scan {name} (rows=0, unknown table)"));
                (0, 1)
            }
        },
        TableSource::Subquery { query, alias } => {
            let sub = explain(db, query);
            lines.push(format!(
                "derived {alias} {} (est_rows={}, est_cost={})",
                sub.shape, sub.est_rows, sub.est_cost
            ));
            (sub.est_rows, sub.est_cost)
        }
    }
}

/// Estimate `q` against `db`: cardinalities from catalog row counts and
/// coarse selectivities, cost in batch-engine logical ticks.
pub fn explain(db: &Database, q: &Query) -> Explain {
    let mut lines = Vec::new();
    let mut cost: u64 = 0;

    let mut est = match &q.from {
        Some(src) => {
            let (rows, c) = source_estimate(db, src, &mut lines);
            cost = cost.saturating_add(c);
            rows
        }
        None => 1,
    };

    for join in &q.joins {
        let (r, c) = source_estimate(db, &join.source, &mut lines);
        cost = cost.saturating_add(c);
        let equi = has_equi(&join.on);
        let mut joined = if equi {
            // Key-foreign-key assumption: output near the larger side.
            est.max(r)
        } else {
            // Theta joins keep a third of the cross product.
            scale_down(est.saturating_mul(r), 3)
        };
        if equi {
            cost = cost.saturating_add(vec_op(est) + vec_op(r) + vec_op(joined));
        } else {
            // Nested loop pays the full cross product at row rate.
            cost = cost.saturating_add(est.saturating_mul(r.max(1)));
        }
        if join.kind == JoinKind::Left {
            joined = joined.max(est);
        }
        let label = if equi { "hash_join" } else { "nested_loop" };
        let kind = match join.kind {
            JoinKind::Inner => "inner",
            JoinKind::Left => "left",
        };
        lines.push(format!(
            "{label} {kind} (left={est}, right={r}, est={joined})"
        ));
        est = joined;
    }

    if let Some(w) = &q.where_clause {
        let cs = conjuncts(w);
        cost = cost.saturating_add(cs.len() as u64 * vec_op(est));
        for c in &cs {
            est = scale_down(est, selectivity_div(c));
        }
        lines.push(format!("filter {} conjuncts (est={est})", cs.len()));
    }

    if q.has_aggregation() {
        let groups = if q.group_by.is_empty() {
            1
        } else {
            scale_down(est, 3)
        };
        // Vectorized grouping keys plus per-row aggregate evaluation.
        cost = cost
            .saturating_add(q.group_by.len() as u64 * vec_op(est))
            .saturating_add(est);
        lines.push(format!(
            "aggregate {} keys (est={groups})",
            q.group_by.len()
        ));
        est = groups;
    }

    cost = cost.saturating_add(q.select.len() as u64 * vec_op(est));

    if q.distinct {
        if est > 1 {
            est = (est * 2 / 3).max(1);
        }
        cost = cost.saturating_add(vec_op(est));
        lines.push(format!("distinct (est={est})"));
    }

    if !q.order_by.is_empty() {
        cost = cost.saturating_add(est);
        lines.push(format!("sort {} keys (est={est})", q.order_by.len()));
    }

    if let Some(l) = q.limit {
        est = est.min(l);
        lines.push(format!("limit {l} (est={est})"));
    }

    // Scalar-position sub-queries execute at least once each (the
    // engine caches uncorrelated ones, so charge a single run).
    for sq in scalar_subqueries(q) {
        let sub = explain(db, sq);
        cost = cost.saturating_add(sub.est_cost);
        lines.push(format!(
            "subplan {} (est_rows={}, est_cost={})",
            sub.shape, sub.est_rows, sub.est_cost
        ));
    }

    Explain {
        shape: q.shape(),
        est_rows: est,
        est_cost: cost,
        lines,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::{ColumnType, TableSchema};
    use crate::value::Value;
    use nlidb_sqlir::parse_query;

    fn db() -> Database {
        let mut db = Database::new("d");
        db.create_table(
            TableSchema::new("a")
                .column("id", ColumnType::Int)
                .column("bid", ColumnType::Int),
        )
        .unwrap();
        db.create_table(TableSchema::new("b").column("id", ColumnType::Int))
            .unwrap();
        for i in 0..100i64 {
            db.insert("a", vec![Value::Int(i), Value::Int(i % 10)])
                .unwrap();
        }
        for i in 0..10i64 {
            db.insert("b", vec![Value::Int(i)]).unwrap();
        }
        db
    }

    #[test]
    fn explain_is_deterministic() {
        let db = db();
        let q = parse_query(
            "SELECT a.id FROM a JOIN b ON a.bid = b.id WHERE a.id > 5 ORDER BY a.id LIMIT 3",
        )
        .unwrap();
        let e1 = explain(&db, &q);
        let e2 = explain(&db, &q);
        assert_eq!(e1, e2);
        assert_eq!(e1.render(), e2.render());
        assert!(e1.render().starts_with("EXPLAIN q-join1-filter-sort-limit"));
        assert_eq!(e1.est_rows, 3);
    }

    #[test]
    fn joins_cost_more_than_scans() {
        let db = db();
        let scan = explain(&db, &parse_query("SELECT id FROM a").unwrap());
        let join = explain(
            &db,
            &parse_query("SELECT a.id FROM a JOIN b ON a.bid = b.id").unwrap(),
        );
        let theta = explain(
            &db,
            &parse_query("SELECT a.id FROM a JOIN b ON a.id < b.id").unwrap(),
        );
        assert!(join.est_cost > scan.est_cost);
        assert!(
            theta.est_cost > join.est_cost,
            "nested loop dwarfs hash join"
        );
    }

    #[test]
    fn unknown_tables_estimate_empty_without_error() {
        let db = db();
        let e = explain(&db, &parse_query("SELECT x FROM ghost").unwrap());
        assert_eq!(e.est_rows, 0);
        assert!(e.render().contains("unknown table"));
    }

    #[test]
    fn subqueries_add_cost() {
        let db = db();
        let flat = explain(&db, &parse_query("SELECT id FROM a WHERE id > 3").unwrap());
        let nested = explain(
            &db,
            &parse_query("SELECT id FROM a WHERE id > (SELECT MAX(id) FROM b)").unwrap(),
        );
        assert!(nested.est_cost > flat.est_cost);
        assert!(nested.render().contains("subplan"));
    }
}
