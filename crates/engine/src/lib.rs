#![warn(missing_docs)]

//! # nlidb-engine — in-memory relational engine
//!
//! The execution substrate of the reproduction. Every interpreter
//! family emits [`nlidb_sqlir`] ASTs; this engine executes them so
//! the evaluation kit can measure *execution accuracy* (same results),
//! not just string-match accuracy — the metric the survey's benchmark
//! discussion (§6) centers on.
//!
//! Supported surface: single-table selection, aggregation with GROUP
//! BY / HAVING, DISTINCT, inner/left equi- and theta-joins, ORDER BY /
//! LIMIT, and sub-queries (`IN`, `EXISTS`, scalar, derived tables)
//! including correlated forms — i.e. all four rungs of the survey's
//! complexity ladder.
//!
//! Design: deterministic and single-threaded, with **two engines over
//! one semantics**. The default [`execute`] runs the batch-vectorized
//! columnar engine ([`batch`]): relations flow as column vectors,
//! predicates/projections evaluate column-at-a-time, and hash join /
//! hash aggregation key on vectorized per-column strings. The original
//! row-at-a-time volcano-lite engine survives as
//! [`execute_rowwise`](exec::execute_rowwise) — the semantics oracle
//! the batch engine is asserted row-identical to (experiment E18).
//! Hash joins are used for equi-join conjuncts; anything else falls
//! back to nested loops. [`cost`] estimates cardinality and logical
//! cost per plan ([`explain`]), feeding cost-aware admission upstream.

pub mod batch;
pub mod catalog;
pub mod cost;
pub mod error;
pub mod eval;
pub mod exec;
pub mod value;

pub use batch::{execute, execute_with_stats};
pub use catalog::{Column, ColumnType, Database, ForeignKey, Table, TableSchema};
pub use cost::{explain, Explain};
pub use error::EngineError;
pub use exec::{execute_rowwise, execute_rowwise_with_stats, ExecStats, ResultSet};
pub use value::Value;

#[cfg(test)]
mod integration_tests {
    use super::*;
    use nlidb_sqlir::parse_query;

    fn db() -> Database {
        let mut db = Database::new("shop");
        db.create_table(
            TableSchema::new("customers")
                .column("id", ColumnType::Int)
                .column("name", ColumnType::Text)
                .column("city", ColumnType::Text)
                .primary_key("id"),
        )
        .unwrap();
        db.create_table(
            TableSchema::new("orders")
                .column("id", ColumnType::Int)
                .column("customer_id", ColumnType::Int)
                .column("amount", ColumnType::Float)
                .primary_key("id")
                .foreign_key("customer_id", "customers", "id"),
        )
        .unwrap();
        for (id, name, city) in [
            (1, "Ada", "Austin"),
            (2, "Bo", "Boston"),
            (3, "Cy", "Austin"),
        ] {
            db.insert(
                "customers",
                vec![Value::Int(id), Value::from(name), Value::from(city)],
            )
            .unwrap();
        }
        for (id, cid, amt) in [(10, 1, 50.0), (11, 1, 70.0), (12, 2, 20.0)] {
            db.insert(
                "orders",
                vec![Value::Int(id), Value::Int(cid), Value::Float(amt)],
            )
            .unwrap();
        }
        db
    }

    fn run(db: &Database, sql: &str) -> ResultSet {
        execute(db, &parse_query(sql).unwrap()).unwrap()
    }

    #[test]
    fn end_to_end_selection() {
        let db = db();
        let rs = run(&db, "SELECT name FROM customers WHERE city = 'Austin'");
        assert_eq!(rs.rows.len(), 2);
    }

    #[test]
    fn end_to_end_join_aggregate() {
        let db = db();
        let rs = run(
            &db,
            "SELECT c.name, SUM(o.amount) AS total FROM customers AS c \
             JOIN orders AS o ON c.id = o.customer_id \
             GROUP BY c.name ORDER BY SUM(o.amount) DESC",
        );
        assert_eq!(rs.rows.len(), 2);
        assert_eq!(rs.rows[0][0], Value::from("Ada"));
        assert_eq!(rs.rows[0][1], Value::Float(120.0));
    }

    #[test]
    fn end_to_end_nested() {
        let db = db();
        let rs = run(
            &db,
            "SELECT name FROM customers WHERE id NOT IN (SELECT customer_id FROM orders)",
        );
        assert_eq!(rs.rows.len(), 1);
        assert_eq!(rs.rows[0][0], Value::from("Cy"));
    }

    #[test]
    fn end_to_end_correlated_exists() {
        let db = db();
        let rs = run(
            &db,
            "SELECT name FROM customers WHERE EXISTS \
             (SELECT * FROM orders WHERE orders.customer_id = customers.id \
              AND orders.amount > 60.0)",
        );
        assert_eq!(rs.rows.len(), 1);
        assert_eq!(rs.rows[0][0], Value::from("Ada"));
    }
}
