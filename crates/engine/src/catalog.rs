//! Schema catalog and row storage.
//!
//! The catalog doubles as the metadata source for the ontology
//! generator: primary keys and foreign keys declared here become the
//! concepts and relationships of the derived domain ontology (the
//! Jammi-et-al. tooling-framework path described in §4.1).

use std::collections::HashMap;

use crate::error::EngineError;
use crate::value::Value;

/// Column data types.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ColumnType {
    /// 64-bit integer.
    Int,
    /// Double-precision float.
    Float,
    /// UTF-8 text.
    Text,
    /// Boolean.
    Bool,
    /// ISO-8601 date stored as text.
    Date,
}

impl ColumnType {
    /// Is this a numeric (measure-capable) type?
    pub fn is_numeric(&self) -> bool {
        matches!(self, ColumnType::Int | ColumnType::Float)
    }

    /// Does `v` inhabit this type (NULL inhabits all)?
    #[allow(clippy::match_like_matches_macro)] // table form reads better
    pub fn admits(&self, v: &Value) -> bool {
        match (self, v) {
            (_, Value::Null) => true,
            (ColumnType::Int, Value::Int(_)) => true,
            (ColumnType::Float, Value::Float(_) | Value::Int(_)) => true,
            (ColumnType::Text, Value::Str(_)) => true,
            (ColumnType::Bool, Value::Bool(_)) => true,
            (ColumnType::Date, Value::Str(_)) => true,
            _ => false,
        }
    }
}

/// One column definition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Column {
    /// Column name (snake_case by convention).
    pub name: String,
    /// Data type.
    pub ty: ColumnType,
}

/// A foreign-key edge from a column of this table to a column of
/// another table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ForeignKey {
    /// Referencing column in this table.
    pub column: String,
    /// Referenced table.
    pub references_table: String,
    /// Referenced column.
    pub references_column: String,
}

/// Table schema definition (builder-style).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableSchema {
    /// Table name.
    pub name: String,
    /// Ordered columns.
    pub columns: Vec<Column>,
    /// Primary-key column name, if declared.
    pub primary_key: Option<String>,
    /// Outgoing foreign keys.
    pub foreign_keys: Vec<ForeignKey>,
}

impl TableSchema {
    /// Start a schema for `name`.
    pub fn new(name: impl Into<String>) -> Self {
        TableSchema {
            name: name.into(),
            columns: Vec::new(),
            primary_key: None,
            foreign_keys: Vec::new(),
        }
    }

    /// Append a column.
    pub fn column(mut self, name: impl Into<String>, ty: ColumnType) -> Self {
        self.columns.push(Column {
            name: name.into(),
            ty,
        });
        self
    }

    /// Declare the primary key (must be an existing column).
    pub fn primary_key(mut self, name: impl Into<String>) -> Self {
        self.primary_key = Some(name.into());
        self
    }

    /// Declare a foreign key.
    pub fn foreign_key(
        mut self,
        column: impl Into<String>,
        references_table: impl Into<String>,
        references_column: impl Into<String>,
    ) -> Self {
        self.foreign_keys.push(ForeignKey {
            column: column.into(),
            references_table: references_table.into(),
            references_column: references_column.into(),
        });
        self
    }

    /// Index of a column by name.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c.name == name)
    }

    /// Column names in order.
    pub fn column_names(&self) -> Vec<&str> {
        self.columns.iter().map(|c| c.name.as_str()).collect()
    }
}

/// A table: schema + materialized rows.
#[derive(Debug, Clone)]
pub struct Table {
    /// The schema.
    pub schema: TableSchema,
    /// Row store.
    pub rows: Vec<Vec<Value>>,
}

impl Table {
    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// All distinct non-null values of a column (order of first
    /// appearance) — used to build the value index.
    pub fn distinct_values(&self, column: &str) -> Vec<Value> {
        let Some(idx) = self.schema.column_index(column) else {
            return Vec::new();
        };
        let mut seen = std::collections::HashSet::new();
        let mut out = Vec::new();
        for row in &self.rows {
            let v = &row[idx];
            if !v.is_null() && seen.insert(v.group_key()) {
                out.push(v.clone());
            }
        }
        out
    }
}

/// A named collection of tables.
#[derive(Debug, Clone)]
pub struct Database {
    /// Database name.
    pub name: String,
    tables: HashMap<String, Table>,
    /// Creation order, for deterministic iteration.
    order: Vec<String>,
}

impl Database {
    /// Create an empty database.
    pub fn new(name: impl Into<String>) -> Self {
        Database {
            name: name.into(),
            tables: HashMap::new(),
            order: Vec::new(),
        }
    }

    /// Register a table schema.
    pub fn create_table(&mut self, schema: TableSchema) -> Result<(), EngineError> {
        if self.tables.contains_key(&schema.name) {
            return Err(EngineError::DuplicateTable(schema.name));
        }
        if let Some(pk) = &schema.primary_key {
            if schema.column_index(pk).is_none() {
                return Err(EngineError::SchemaViolation(format!(
                    "primary key {pk} is not a column of {}",
                    schema.name
                )));
            }
        }
        self.order.push(schema.name.clone());
        self.tables.insert(
            schema.name.clone(),
            Table {
                schema,
                rows: Vec::new(),
            },
        );
        Ok(())
    }

    /// Insert one row, checking arity and types.
    pub fn insert(&mut self, table: &str, row: Vec<Value>) -> Result<(), EngineError> {
        let t = self
            .tables
            .get_mut(table)
            .ok_or_else(|| EngineError::UnknownTable(table.to_string()))?;
        if row.len() != t.schema.columns.len() {
            return Err(EngineError::SchemaViolation(format!(
                "{table}: expected {} values, got {}",
                t.schema.columns.len(),
                row.len()
            )));
        }
        for (col, v) in t.schema.columns.iter().zip(&row) {
            if !col.ty.admits(v) {
                return Err(EngineError::SchemaViolation(format!(
                    "{table}.{}: value {v:?} does not fit {:?}",
                    col.name, col.ty
                )));
            }
        }
        t.rows.push(row);
        Ok(())
    }

    /// Bulk insert.
    pub fn insert_all(
        &mut self,
        table: &str,
        rows: impl IntoIterator<Item = Vec<Value>>,
    ) -> Result<(), EngineError> {
        for row in rows {
            self.insert(table, row)?;
        }
        Ok(())
    }

    /// Look up a table.
    pub fn table(&self, name: &str) -> Result<&Table, EngineError> {
        self.tables
            .get(name)
            .ok_or_else(|| EngineError::UnknownTable(name.to_string()))
    }

    /// Tables in creation order.
    pub fn tables(&self) -> impl Iterator<Item = &Table> {
        self.order.iter().filter_map(|n| self.tables.get(n))
    }

    /// Table names in creation order.
    pub fn table_names(&self) -> Vec<&str> {
        self.order.iter().map(String::as_str).collect()
    }

    /// Total row count across all tables.
    pub fn total_rows(&self) -> usize {
        self.tables.values().map(|t| t.rows.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> TableSchema {
        TableSchema::new("t")
            .column("id", ColumnType::Int)
            .column("name", ColumnType::Text)
            .column("score", ColumnType::Float)
            .primary_key("id")
    }

    #[test]
    fn create_and_insert() {
        let mut db = Database::new("test");
        db.create_table(schema()).unwrap();
        db.insert(
            "t",
            vec![Value::Int(1), Value::from("a"), Value::Float(0.5)],
        )
        .unwrap();
        assert_eq!(db.table("t").unwrap().len(), 1);
        assert_eq!(db.total_rows(), 1);
    }

    #[test]
    fn duplicate_table_rejected() {
        let mut db = Database::new("test");
        db.create_table(schema()).unwrap();
        assert_eq!(
            db.create_table(schema()),
            Err(EngineError::DuplicateTable("t".into()))
        );
    }

    #[test]
    fn bad_primary_key_rejected() {
        let mut db = Database::new("test");
        let s = TableSchema::new("x")
            .column("a", ColumnType::Int)
            .primary_key("nope");
        assert!(matches!(
            db.create_table(s),
            Err(EngineError::SchemaViolation(_))
        ));
    }

    #[test]
    fn arity_checked() {
        let mut db = Database::new("test");
        db.create_table(schema()).unwrap();
        assert!(matches!(
            db.insert("t", vec![Value::Int(1)]),
            Err(EngineError::SchemaViolation(_))
        ));
    }

    #[test]
    fn type_checked_with_widening() {
        let mut db = Database::new("test");
        db.create_table(schema()).unwrap();
        // Int widens into Float column.
        db.insert("t", vec![Value::Int(1), Value::from("a"), Value::Int(2)])
            .unwrap();
        // Str into Int column is rejected.
        assert!(matches!(
            db.insert("t", vec![Value::from("x"), Value::from("a"), Value::Null]),
            Err(EngineError::SchemaViolation(_))
        ));
        // NULL fits anywhere.
        db.insert("t", vec![Value::Int(2), Value::Null, Value::Null])
            .unwrap();
    }

    #[test]
    fn unknown_table_errors() {
        let db = Database::new("test");
        assert!(matches!(
            db.table("ghost"),
            Err(EngineError::UnknownTable(_))
        ));
    }

    #[test]
    fn distinct_values_dedup() {
        let mut db = Database::new("test");
        db.create_table(schema()).unwrap();
        for (i, n) in [(1, "a"), (2, "b"), (3, "a")] {
            db.insert("t", vec![Value::Int(i), Value::from(n), Value::Null])
                .unwrap();
        }
        let t = db.table("t").unwrap();
        assert_eq!(
            t.distinct_values("name"),
            vec![Value::from("a"), Value::from("b")]
        );
        assert!(t.distinct_values("score").is_empty());
        assert!(t.distinct_values("missing").is_empty());
    }

    #[test]
    fn iteration_order_is_creation_order() {
        let mut db = Database::new("test");
        for name in ["zeta", "alpha", "mid"] {
            db.create_table(TableSchema::new(name).column("a", ColumnType::Int))
                .unwrap();
        }
        assert_eq!(db.table_names(), vec!["zeta", "alpha", "mid"]);
    }
}
